//! The adversarial scenario engine is replayable: a script with a
//! flash crowd, a backbone partition that heals, and a murdered
//! gateway, run twice from the same seed under the virtual clock,
//! produces byte-identical canonical reports — and both runs tear
//! down to zero leaked conversations with fabric-wide frame
//! conservation intact.

use plan9_support::vtime;

const SCRIPT: &str = "\
seed 77
topology grid cities=3 hosts=6 ndb-lines=400
at 100ms flashcrowd city=2 dials=24 size=512 window=400ms
at 600ms partition {0}|{1,2} heal 300ms
at 1200ms kill gateway city=1
end 2s
";

#[test]
fn partition_heal_and_kill_replay_byte_identical() {
    let sc = plan9_scenario::dsl::parse(SCRIPT).expect("script parses");
    let guard = vtime::enter();
    let first = plan9_scenario::run(&sc);
    let second = plan9_scenario::run(&sc);
    drop(guard);

    assert!(
        first.clean(),
        "first run dirty: {} violations, {} residual conversations\n{}",
        first.conservation_violations,
        first.residual_conns,
        first.text
    );
    assert_eq!(first.dials_ok, 24, "the crowd must land every dial");
    assert_eq!(first.residual_conns, 0, "gateway kill leaked conversations");
    assert_eq!(
        first.text, second.text,
        "same-seed runs diverged under the virtual clock"
    );
}
