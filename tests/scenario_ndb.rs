//! The generated internet's database round-trips: the topology
//! generator's ndb text parses back through the real ndb machinery,
//! and a gateway machine's own CS and DNS — fed nothing but that
//! text — resolve a sampled host from every city. The filler
//! population (padding the file toward the paper's 43k-line scale)
//! deliberately belongs to no DNS zone, so one of its names must
//! come back as a resolution error, not an answer.

use plan9_ndb::db::Db;
use plan9_ninep::procfs::OpenMode;
use plan9_scenario::Topology;

/// Reads a query file to exhaustion, one answer line per read.
fn drain(p: &plan9_core::proc::Proc, fd: i32) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let chunk = p.read(fd, 256).expect("read query file");
        if chunk.is_empty() {
            break;
        }
        lines.push(String::from_utf8_lossy(&chunk).into_owned());
    }
    lines
}

#[test]
fn generated_ndb_round_trips_through_cs_and_dns() {
    let hosts_per_city = 3;
    let mut topo = Topology::grid_with(3, hosts_per_city, 2_000, 0x9db);

    // Parse-back: the generated text through the real parser.
    let db = Db::from_texts(&[&topo.ndb.text]);
    assert!(db.len() > 100, "filler population missing from the ndb");
    for (c, city) in topo.cities.iter().enumerate() {
        let sample = &topo.ndb.hosts[c * hosts_per_city + (c % hosts_per_city)];
        let entry = db
            .find_system(&sample.sys)
            .unwrap_or_else(|| panic!("{} lost in parse-back", sample.sys));
        assert_eq!(entry.get("ip"), Some(sample.ip.as_str()));
        assert_eq!(entry.get("dom"), Some(sample.dom.as_str()));

        // CS on the city's own gateway: sys name to dial string.
        let p = city.gateway.proc();
        let fd = p.open("/net/cs", OpenMode::RDWR).expect("open /net/cs");
        p.write_str(fd, &format!("il!{}", sample.sys)).expect("cs query");
        let answers = drain(&p, fd);
        p.close(fd);
        assert!(
            answers.iter().any(|l| l.contains(&sample.ip)),
            "cs on gw{c} answered {answers:?}, wanted {}",
            sample.ip
        );

        // DNS: the fully qualified name, through the zone walk.
        let fd = p.open("/net/dns", OpenMode::RDWR).expect("open /net/dns");
        p.write_str(fd, &format!("{} ip", sample.dom)).expect("dns query");
        let answers = drain(&p, fd);
        p.close(fd);
        assert!(
            answers.iter().any(|l| l.contains(&sample.ip)),
            "dns on gw{c} answered {answers:?}, wanted {}",
            sample.ip
        );
    }

    // A filler system is in the ndb but in no zone: NXDOMAIN.
    let filler = topo
        .ndb
        .text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("dom=").map(str::to_string))
        .find(|d| d.ends_with(".att.com"))
        .expect("filler domain in the generated ndb");
    let p = topo.cities[0].gateway.proc();
    let fd = p.open("/net/dns", OpenMode::RDWR).expect("open /net/dns");
    let err = p
        .write_str(fd, &format!("{filler} ip"))
        .expect_err("a filler name must not resolve");
    assert!(err.0.contains("no answer"), "unexpected NXDOMAIN shape: {err}");
    p.close(fd);

    topo.shutdown();
}
