//! Deterministic race coverage for the connection-scale layer: queue
//! close/hangup against blocked putters and getters, and dials racing
//! a listener teardown — all under the virtual clock, so every
//! "racing" interleaving is actually the *same* interleaving on every
//! run and there is not a timing sleep in sight. The waits below are
//! virtual-time sleeps: free of wall time, replayed identically.

use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_streams::block::Block;
use plan9_streams::queue::Queue;
use plan9_support::{time, vtime};
use std::sync::Arc;
use std::time::Duration;

/// Spins (virtually) until `cond` holds. Under the virtual clock each
/// sleep is a deterministic census event, not wall time.
fn vwait(cond: impl Fn() -> bool) {
    while !cond() {
        time::sleep(Duration::from_millis(1));
    }
}

#[test]
fn close_races_blocked_putters_deterministically() {
    const PUTTERS: usize = 6;
    let guard = vtime::enter();
    let h = vtime::kproc("close-race", || {
        let q = Arc::new(Queue::new(4));
        q.put(Block::data(vec![0; 4])).expect("fill");
        let putters: Vec<_> = (0..PUTTERS)
            .map(|i| {
                let q = Arc::clone(&q);
                vtime::kproc(&format!("putter-{i}"), move || {
                    q.put(Block::data(vec![1; 4]))
                })
                .expect("spawn putter")
            })
            .collect();
        // All six must be parked on flow control before the close
        // fires — that is the race under test.
        vwait(|| q.stall_count() >= PUTTERS as u64);
        q.close();
        let results: Vec<_> = putters.into_iter().map(|p| p.join().expect("join")).collect();
        (q.put_count(), results)
    })
    .expect("spawn scenario");
    let (puts, results) = h.join().expect("scenario");
    drop(guard);
    assert_eq!(puts, 1, "no blocked putter may slip a block past close");
    for r in &results {
        assert!(r.is_err(), "a putter woken by close must fail, got {r:?}");
    }
}

#[test]
fn hangup_races_blocked_getters_deterministically() {
    const GETTERS: usize = 4;
    let guard = vtime::enter();
    let h = vtime::kproc("hangup-race", || {
        let q = Arc::new(Queue::new(64));
        q.put(Block::data(vec![7])).expect("seed one block");
        let getters: Vec<_> = (0..GETTERS)
            .map(|i| {
                let q = Arc::clone(&q);
                vtime::kproc(&format!("getter-{i}"), move || q.get()).expect("spawn getter")
            })
            .collect();
        // Whatever order the getters arrive in, exactly one can win
        // the queued block; the rest park until the hangup.
        q.hangup();
        getters.into_iter().map(|g| g.join().expect("join")).collect::<Vec<_>>()
    })
    .expect("spawn scenario");
    let results = h.join().expect("scenario");
    drop(guard);
    let some = results.iter().filter(|r| r.is_some()).count();
    let none = results.iter().filter(|r| r.is_none()).count();
    assert_eq!(
        (some, none),
        (1, GETTERS - 1),
        "one getter drains the block, the rest see end-of-file"
    );
}

#[test]
fn blocked_getter_survives_put_then_close() {
    // The close must not beat a concurrent put to a parked getter:
    // data queued before the close drains, then EOF.
    let guard = vtime::enter();
    let h = vtime::kproc("drain-race", || {
        let q = Arc::new(Queue::new(64));
        let q2 = Arc::clone(&q);
        let getter = vtime::kproc("getter", move || (q2.get(), q2.get())).expect("spawn getter");
        let q3 = Arc::clone(&q);
        vtime::kproc("put-close", move || {
            q3.put(Block::data(vec![9])).expect("put");
            q3.close();
        })
        .expect("spawn put-close")
        .join()
        .expect("put-close");
        getter.join().expect("getter")
    })
    .expect("spawn scenario");
    let (first, second) = h.join().expect("scenario");
    drop(guard);
    assert_eq!(first.map(|b| b.data), Some(vec![9]), "queued data drains before EOF");
    assert!(second.is_none(), "then the close is EOF");
}

#[test]
fn dial_racing_listener_close_fails_cleanly() {
    let guard = vtime::enter();
    let h = vtime::kproc("listener-close", || {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = IpStack::new_pooled(
            seg.attach([8, 0, 0, 0xe, 0, 1]),
            IpConfig::local("10.60.0.1"),
        );
        let b = IpStack::new_pooled(
            seg.attach([8, 0, 0, 0xe, 0, 2]),
            IpConfig::local("10.60.0.2"),
        );
        let listener = b.il_module().listen(&b, 17100).expect("listen");
        // A dial that lands while the listener lives completes.
        let conn = a.il_module().connect(&a, b.addr(), 17100).expect("first dial");
        let srv = listener.accept_timeout(Duration::from_secs(5)).expect("accept");
        conn.close();
        srv.close();
        // Now the teardown race: the listener dies, then a dial
        // arrives at the dead port. The dialer must get a clean error
        // (the Close reply), not a wedged conversation.
        drop(listener);
        let res = a.il_module().connect(&a, b.addr(), 17100);
        let live_after = (a.il_module().conn_count(), b.il_module().conn_count());
        (res.map(|_| ()), live_after)
    })
    .expect("spawn scenario");
    let (res, (a_conns, b_conns)) = h.join().expect("scenario");
    drop(guard);
    assert!(res.is_err(), "dial to a closed listener must fail, got {res:?}");
    assert_eq!(a_conns, 0, "the failed dial must not leak a conns-table entry");
    assert_eq!(b_conns, 0, "the dead port must not hold half-open conversations");
}
