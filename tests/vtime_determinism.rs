//! Replayability on the virtual clock: two runs of the same lossy
//! 9P-over-IL scenario, from the same impairment seed, must be
//! byte-identical — same IL stats, same nettrace span layout, down to
//! the nanosecond. This is the property that makes a failure seed a
//! bug report: whatever happened, it happens again.

use plan9_inet::il::IlConn;
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netlog::trace;
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_ninep::client::NineClient;
use plan9_ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9_ninep::transport::{MsgSink, MsgSource};
use plan9_support::vtime;
use std::fmt::Write as _;
use std::sync::Arc;

/// An IL conversation as a delimited 9P transport.
#[derive(Clone)]
struct IlIo(Arc<IlConn>);

impl MsgSink for IlIo {
    fn sendmsg(&mut self, msg: &[u8]) -> plan9_ninep::Result<()> {
        self.0.send(msg)
    }
}

impl MsgSource for IlIo {
    fn recvmsg(&mut self) -> plan9_ninep::Result<Option<Vec<u8>>> {
        self.0.recv()
    }
}

const RPCS: usize = 200;
const LOSS: f64 = 0.10;

/// The scenario body: a 9P read loop over a 10%-loss Ethernet. Runs
/// entirely in registered kernel processes so the quiescence census
/// sees every actor. Returns the IL stats render.
fn scenario(seed: u64) -> String {
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(LOSS).with_seed(seed));
    let a = IpStack::new(seg.attach([8, 0, 0, 0xd, 0, 1]), IpConfig::local("10.50.0.1"));
    let b = IpStack::new(seg.attach([8, 0, 0, 0xd, 0, 2]), IpConfig::local("10.50.0.2"));
    let listener = b.il_module().listen(&b, 17012).expect("listen");
    let server = vtime::kproc("det-server", move || {
        let conn = listener.accept().expect("accept");
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/blob", &[0x42u8; 512]).expect("seed blob");
        let fs: Arc<dyn ProcFs> = fs;
        let io = IlIo(conn);
        let _ = plan9_ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
    })
    .expect("spawn server");
    let conn = a.il_module().connect(&a, b.addr(), 17012).expect("connect");
    let io = IlIo(Arc::clone(&conn));
    let client = NineClient::new(Box::new(io.clone()), Box::new(io));
    let (fid, _) = client.attach("det", "").expect("attach");
    client.walk(fid, "blob").expect("walk");
    client.open(fid, OpenMode::READ).expect("open");
    for _ in 0..RPCS {
        let d = client.read(fid, 0, 512).expect("read");
        assert_eq!(d.len(), 512);
    }
    let _ = client.clunk(fid);
    conn.close();
    let _ = server.join();

    let mut out = String::new();
    for (side, stack) in [("a", &a), ("b", &b)] {
        let s = &stack.il_module().stats;
        writeln!(
            out,
            "il {side}: tx={} rx={} queries={} acks={} rexmit_msgs={} \
             rexmit_bytes={} rtt_samples={} rtt_sum_us={}",
            s.tx_msgs.get(),
            s.rx_msgs.get(),
            s.queries.get(),
            s.acks.get(),
            s.retransmit_msgs.get(),
            s.retransmit_bytes.get(),
            s.rtt.count(),
            s.rtt.sum_us(),
        )
        .expect("write stats");
    }
    out
}

/// One full run under a fresh virtual clock: stats render plus the
/// normalized trace span layout. Normalized means relative to the
/// run's earliest root, so only virtual-time deltas remain — the real
/// instant the clock was installed at cancels out.
fn one_run(seed: u64) -> String {
    let guard = vtime::enter();
    let tracer = trace::global();
    tracer.ctl("clear").expect("clear");
    tracer.ctl("trace on").expect("trace on");
    let h = vtime::kproc("det-scenario", move || scenario(seed)).expect("spawn scenario");
    let mut out = h.join().expect("scenario");
    tracer.ctl("trace off").expect("trace off");
    let roots = tracer.roots();
    tracer.ctl("clear").expect("clear");
    drop(guard);

    let base = roots.iter().map(|r| r.start_ns).min().unwrap_or(0);
    writeln!(out, "roots={}", roots.len()).expect("write roots");
    for r in &roots {
        writeln!(
            out,
            "root {} [{}..{}]",
            r.label,
            r.start_ns.saturating_sub(base),
            r.end_ns.saturating_sub(base),
        )
        .expect("write root");
        for s in &r.spans {
            writeln!(
                out,
                "  span {} +{} {}ns",
                s.name,
                s.start_ns.saturating_sub(r.start_ns),
                s.end_ns.saturating_sub(s.start_ns),
            )
            .expect("write span");
        }
    }
    out
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let first = one_run(0x5eed);
    let second = one_run(0x5eed);
    assert!(
        first.contains("queries="),
        "stats render missing: {first:?}"
    );
    // A 10% loss sweep must actually have exercised recovery, or the
    // determinism claim is vacuous.
    assert!(
        !first.contains("queries=0"),
        "no queries at 10% loss — scenario too easy:\n{first}"
    );
    if first != second {
        // Show the first divergent line, not a 40 KiB dump.
        for (l, r) in first.lines().zip(second.lines()) {
            assert_eq!(l, r, "first divergence between same-seed runs");
        }
        panic!(
            "runs differ in length: {} vs {} bytes",
            first.len(),
            second.len()
        );
    }
}
