//! Integration: the `cpu` service (§6) — a remote process whose name
//! space includes the terminal's, served back over the same wire.

use plan9::core::machine::MachineBuilder;
use plan9::exportfs::cpu::{cpu, cpu_listener};
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::OpenMode;
use std::sync::Arc;

#[test]
fn remote_job_reads_and_writes_the_terminals_namespace() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=server ip=10.51.0.1 proto=il\nsys=term ip=10.51.0.2 proto=il\nil=cpu port=17005\n";
    let server = MachineBuilder::new("server")
        .ether(&seg, [8, 0, 0, 51, 0, 1], IpConfig::local("10.51.0.1"))
        .ndb(ndb)
        .build()
        .unwrap();
    let term = MachineBuilder::new("term")
        .ether(&seg, [8, 0, 0, 51, 0, 2], IpConfig::local("10.51.0.2"))
        .ndb(ndb)
        .build()
        .unwrap();
    // The terminal has a window-local file the job will read.
    term.rootfs
        .put_file("/tmp/question", b"what is 6 x 7?")
        .unwrap();

    // The job: read the terminal's question, compute, write the answer
    // back into the terminal's /tmp — all through /mnt/term.
    let job: plan9::exportfs::cpu::CpuJob = Arc::new(|p| {
        let fd = p
            .open("/mnt/term/tmp/question", OpenMode::READ)
            .expect("read question");
        let q = p.read_string(fd).expect("question");
        assert_eq!(q, "what is 6 x 7?");
        let fd = p
            .create("/mnt/term/tmp/answer", 0o644, OpenMode::WRITE)
            .expect("create answer");
        p.write(fd, b"42").expect("write answer");
        p.close(fd);
    });
    cpu_listener(server.proc(), "il!*!cpu", job, 1).expect("cpu listener");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // The terminal runs cpu, serving its whole name space.
    let tp = term.proc();
    cpu(&tp, "il!server!cpu", "/").expect("cpu session");

    // The job's output landed in the terminal's own /tmp.
    let fd = tp.open("/tmp/answer", OpenMode::READ).expect("open answer");
    assert_eq!(tp.read_string(fd).unwrap(), "42");
}
