//! Integration: §6.1 — exportfs/import gatewaying between networks.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::{Machine, MachineBuilder};
use plan9::core::namespace::MAFTER;
use plan9::exportfs::exportfs::exportfs_listener;
use plan9::exportfs::import::import;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::Profiles;
use std::sync::Arc;

const NDB: &str = "\
sys=helix ip=10.21.0.1 dk=nj/astro/helix proto=il proto=tcp
sys=musca ip=10.21.0.9 proto=tcp
sys=gnot dk=nj/astro/gnot
";

/// helix has ether+dk; musca is ether-only; gnot is dk-only.
fn world() -> (Arc<Machine>, Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let switch = DatakitSwitch::new(Profiles::datakit_fast());
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0, 21, 0, 1], IpConfig::local("10.21.0.1"))
        .datakit(&switch, "nj/astro/helix")
        .ndb(NDB)
        .build()
        .unwrap();
    let musca = MachineBuilder::new("musca")
        .ether(&seg, [8, 0, 0, 21, 0, 9], IpConfig::local("10.21.0.9"))
        .ndb(NDB)
        .build()
        .unwrap();
    let gnot = MachineBuilder::new("gnot")
        .datakit(&switch, "nj/astro/gnot")
        .ndb(NDB)
        .build()
        .unwrap();
    (helix, musca, gnot)
}

#[test]
fn union_shows_local_before_remote_and_adds_unique() {
    let (helix, _musca, gnot) = world();
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    let before: Vec<String> = p.ls("/net").unwrap().iter().map(|d| d.name.clone()).collect();
    assert!(before.contains(&"dk".to_string()));
    assert!(before.contains(&"cs".to_string()));
    assert!(!before.contains(&"tcp".to_string()), "terminal has no tcp");
    import(&p, "dk!nj/astro/helix!exportfs", "/net", "/net", MAFTER).expect("import");
    let after: Vec<String> = p.ls("/net").unwrap().iter().map(|d| d.name.clone()).collect();
    // Unique remote entries are now visible...
    for name in ["tcp", "il", "udp", "ether0"] {
        assert!(after.contains(&name.to_string()), "{name} missing: {after:?}");
    }
    // ...and shared names appear once (local supersedes remote).
    assert_eq!(after.iter().filter(|n| *n == "cs").count(), 1);
    assert_eq!(after.iter().filter(|n| *n == "dk").count(), 1);
}

#[test]
fn gatewayed_dial_reaches_ether_only_host() {
    let (helix, musca, gnot) = world();
    // A daytime server on the ether-only host.
    let mp = musca.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&mp, "tcp!*!daytime").expect("announce");
        loop {
            let Ok((lcfd, ldir)) = listen(&mp, &adir) else { return };
            let Ok(dfd) = accept(&mp, lcfd, &ldir) else { return };
            let _ = mp.write(dfd, b"16 Jul 1992 17:28");
            mp.close(dfd);
            mp.close(lcfd);
        }
    });
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    let p = gnot.proc();
    import(&p, "dk!nj/astro/helix!exportfs", "/net", "/net", MAFTER).expect("import");
    // The dial goes through gnot's (dk-only) cs, falls back to the raw
    // clone path, and the connect executes on helix — which resolves
    // the name "musca" in its own database.
    let conn = dial(&p, "tcp!musca!daytime").expect("dial through gateway");
    let date = p.read(conn.data_fd, 128).expect("read");
    assert_eq!(date, b"16 Jul 1992 17:28");
}

#[test]
fn remote_status_files_visible_through_gateway() {
    let (helix, _musca, gnot) = world();
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    import(&p, "dk!nj/astro/helix!exportfs", "/net", "/net", MAFTER).expect("import");
    // Reading helix's ether stats across the gateway.
    let fd = p
        .open("/net/ether0/clone", plan9::ninep::procfs::OpenMode::RDWR)
        .expect("open remote clone");
    // §2.3 order: read the connection number, then write the ctl.
    let n = String::from_utf8(p.read(fd, 16).unwrap()).unwrap();
    p.write_str(fd, "connect 2048").expect("connect");
    let sfd = p
        .open(
            &format!("/net/ether0/{n}/stats"),
            plan9::ninep::procfs::OpenMode::READ,
        )
        .expect("open stats");
    let stats = p.read_string(sfd).expect("read stats");
    assert!(stats.contains("addr:"), "{stats}");
}

#[test]
fn import_subtree_other_than_net() {
    let (helix, _musca, gnot) = world();
    // Put something notable in helix's /lib.
    helix
        .rootfs
        .put_file("/lib/ndb/global", b"# the AT&T-wide file\n")
        .unwrap();
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    import(
        &p,
        "dk!nj/astro/helix!exportfs",
        "/lib/ndb",
        "/n/helixndb",
        plan9::core::namespace::MREPL,
    )
    .expect("import /lib/ndb");
    let fd = p
        .open("/n/helixndb/global", plan9::ninep::procfs::OpenMode::READ)
        .expect("open");
    assert_eq!(p.read_string(fd).unwrap(), "# the AT&T-wide file\n");
}

#[test]
fn import_missing_tree_reports_error() {
    let (helix, _musca, gnot) = world();
    exportfs_listener(helix.proc(), "dk!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    let err = import(
        &p,
        "dk!nj/astro/helix!exportfs",
        "/no/such/tree",
        "/n/x",
        plan9::core::namespace::MREPL,
    )
    .unwrap_err();
    assert!(err.0.contains("NO"), "{err}");
}
