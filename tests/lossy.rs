//! Integration: end-to-end behavior over impaired media — the failures
//! IL, TCP and URP exist to mask.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::{Machine, MachineBuilder};
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::{LinkProfile, Profiles};
use std::sync::Arc;

fn machines_on(profile: LinkProfile) -> (Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(profile);
    let switch = DatakitSwitch::new(Profiles::datakit_fast().with_loss(0.05));
    let ndb = "\
sys=a ip=10.31.0.1 dk=nj/x/a proto=il proto=tcp
sys=b ip=10.31.0.2 dk=nj/x/b proto=il proto=tcp
";
    let a = MachineBuilder::new("a")
        .ether(&seg, [8, 0, 0, 31, 0, 1], IpConfig::local("10.31.0.1"))
        .datakit(&switch, "nj/x/a")
        .ndb(ndb)
        .build()
        .unwrap();
    let b = MachineBuilder::new("b")
        .ether(&seg, [8, 0, 0, 31, 0, 2], IpConfig::local("10.31.0.2"))
        .datakit(&switch, "nj/x/b")
        .ndb(ndb)
        .build()
        .unwrap();
    (a, b)
}

fn sink_server(m: &Arc<Machine>, addr: &'static str, expect_total: usize) -> std::thread::JoinHandle<Vec<u8>> {
    let p = m.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&p, addr).expect("announce");
        let (lcfd, ldir) = listen(&p, &adir).expect("listen");
        let dfd = accept(&p, lcfd, &ldir).expect("accept");
        let mut got = Vec::new();
        while got.len() < expect_total {
            let chunk = p.read(dfd, 65536).expect("read");
            assert!(!chunk.is_empty(), "early eof at {}", got.len());
            got.extend(chunk);
        }
        got
    })
}

#[test]
fn il_bulk_integrity_under_loss_dup_reorder() {
    let profile = Profiles::ether_fast()
        .with_loss(0.05)
        .with_dup(0.02)
        .with_reorder(0.02);
    let (a, b) = machines_on(profile);
    let payload: Vec<u8> = (0..120_000u32).map(|i| (i * 31 % 251) as u8).collect();
    let server = sink_server(&b, "il!*!9fs", payload.len());
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = a.proc();
    let conn = dial(&p, "il!b!9fs").expect("dial");
    for chunk in payload.chunks(4000) {
        p.write(conn.data_fd, chunk).expect("write");
    }
    assert_eq!(server.join().unwrap(), payload);
}

#[test]
fn tcp_bulk_integrity_under_corruption() {
    // Corrupted frames must be caught by checksums and repaired by
    // retransmission, never delivered wrong.
    let profile = Profiles::ether_fast().with_corrupt(0.03);
    let (a, b) = machines_on(profile);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 253) as u8).collect();
    let server = sink_server(&b, "tcp!*!9fs", payload.len());
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = a.proc();
    let conn = dial(&p, "tcp!b!9fs").expect("dial");
    for chunk in payload.chunks(8000) {
        p.write(conn.data_fd, chunk).expect("write");
    }
    assert_eq!(server.join().unwrap(), payload);
}

#[test]
fn urp_bulk_integrity_over_lossy_circuit() {
    let (a, b) = machines_on(Profiles::ether_fast());
    let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 241) as u8).collect();
    let server = sink_server(&b, "dk!*!bulk", payload.len());
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = a.proc();
    let conn = dial(&p, "dk!nj/x/b!bulk").expect("dial");
    for chunk in payload.chunks(5000) {
        p.write(conn.data_fd, chunk).expect("write");
    }
    assert_eq!(server.join().unwrap(), payload);
}

plan9_support::props! {
    /// Arbitrary message sequences survive a lossy Ethernet with their
    /// boundaries intact (IL's contract with 9P).
    fn prop_il_messages_survive_loss(g, cases = 4) {
        let msgs = g.vec(1..20, |g| g.bytes(0..3000));
        let loss = g.f64_in(0.0..0.08);
        let (a, b) = machines_on(Profiles::ether_fast().with_loss(loss));
        let n = msgs.len();
        let p = b.proc();
        let server = std::thread::spawn(move || {
            let (_afd, adir) = announce(&p, "il!*!9fs").expect("announce");
            let (lcfd, ldir) = listen(&p, &adir).expect("listen");
            let dfd = accept(&p, lcfd, &ldir).expect("accept");
            let mut got = Vec::new();
            for _ in 0..n {
                got.push(p.read(dfd, 65536).expect("read"));
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let p = a.proc();
        let conn = dial(&p, "il!b!9fs").expect("dial");
        for m in &msgs {
            p.write(conn.data_fd, m).expect("write");
        }
        let got = server.join().unwrap();
        // Empty messages collapse at the device-read layer (a zero-byte
        // read means EOF there), so compare non-empty prefixes
        // message-by-message.
        let sent: Vec<&Vec<u8>> = msgs.iter().collect();
        assert_eq!(got.len(), sent.len());
        for (got_msg, sent_msg) in got.iter().zip(sent) {
            assert_eq!(got_msg, sent_msg);
        }
    }
}
