//! nettrace end-to-end properties: causal attribution survives a lossy,
//! duplicating wire.
//!
//! The tracer is process-global, so these tests serialize on a lock and
//! reset it between runs.

use plan9::core::machine::{Machine, MachineBuilder};
use plan9::core::namespace::MREPL;
use plan9::exportfs::exportfs::exportfs_listener;
use plan9::exportfs::import::import;
use plan9::inet::il::IlConn;
use plan9::inet::ip::{IpConfig, IpStack};
use plan9::netlog::trace::{self, RootSpan, Tracer};
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::client::NineClient;
use plan9::ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9::ninep::transport::{MsgSink, MsgSource};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn reset(tracer: &Arc<Tracer>) {
    tracer.ctl("trace off").unwrap();
    tracer.ctl("clear").unwrap();
    tracer.ctl("filter").unwrap();
}

/// An IL conversation as a delimited 9P transport.
#[derive(Clone)]
struct IlIo(Arc<IlConn>);

impl MsgSink for IlIo {
    fn sendmsg(&mut self, msg: &[u8]) -> plan9::ninep::Result<()> {
        self.0.send(msg)
    }
}

impl MsgSource for IlIo {
    fn recvmsg(&mut self) -> plan9::ninep::Result<Option<Vec<u8>>> {
        self.0.recv()
    }
}

fn lossy_stacks(salt: u8) -> (Arc<IpStack>, Arc<IpStack>) {
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(0.06).with_dup(0.03));
    let a = IpStack::new(
        seg.attach([8, 0, 0, 0xd, salt, 1]),
        IpConfig::local(&format!("10.{}.0.1", 200u16.saturating_add(salt as u16).min(254))),
    );
    let b = IpStack::new(
        seg.attach([8, 0, 0, 0xd, salt, 2]),
        IpConfig::local(&format!("10.{}.0.2", 200u16.saturating_add(salt as u16).min(254))),
    );
    (a, b)
}

fn count_rexmit_log_lines(stack: &Arc<IpStack>) -> usize {
    stack
        .netlog()
        .events
        .render()
        .lines()
        .filter(|l| l.contains("rexmit id"))
        .count()
}

fn count_rexmit_span_events(roots: &[RootSpan]) -> usize {
    roots
        .iter()
        .flat_map(|r| r.events.iter())
        .filter(|e| e.msg.starts_with("rexmit id"))
        .count()
}

/// Every `rexmit id ...` line the netlog records must reappear as a span
/// event on exactly one root span — attribution loses nothing and
/// duplicates nothing, even while the wire loses and duplicates frames.
#[test]
fn rexmit_events_attach_to_exactly_one_root() {
    let _g = lock();
    let tracer = trace::global();
    reset(tracer);

    let (a, b) = lossy_stacks(1);
    let listener = b.il_module().listen(&b, 17011).unwrap();
    let server = std::thread::spawn(move || {
        let conn = listener.accept().unwrap();
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/blob", &[0x7au8; 700]).unwrap();
        let fs: Arc<dyn ProcFs> = fs;
        let io = IlIo(conn);
        let _ = plan9::ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
    });
    let conn = a.il_module().connect(&a, b.addr(), 17011).unwrap();
    // Count only traffic sent while both recorders watch: the handshake
    // is acked by the time connect returns.
    a.netlog().events.ctl("set il").unwrap();
    b.netlog().events.ctl("set il").unwrap();
    tracer.ctl("trace on").unwrap();

    let io = IlIo(Arc::clone(&conn));
    let client = NineClient::new(Box::new(io.clone()), Box::new(io));
    let (fid, _) = client.attach("test", "").unwrap();
    client.walk(fid, "blob").unwrap();
    client.open(fid, OpenMode::READ).unwrap();
    for _ in 0..150 {
        assert_eq!(client.read(fid, 0, 700).unwrap().len(), 700);
    }
    let _ = client.clunk(fid);
    // Stop both endpoints, then let in-flight recovery drain before
    // snapshotting either record.
    conn.close();
    let _ = server.join();
    std::thread::sleep(Duration::from_millis(300));

    let logged = count_rexmit_log_lines(&a) + count_rexmit_log_lines(&b);
    let roots = tracer.roots();
    let attached = count_rexmit_span_events(&roots);
    assert!(
        logged >= 1,
        "6% loss over 150 RPCs produced no retransmissions"
    );
    assert_eq!(
        attached, logged,
        "every netlog rexmit must appear as a span event on exactly one root"
    );
    reset(tracer);
}

fn boot_pair() -> (Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(0.05).with_dup(0.03));
    let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 proto=il proto=tcp
sys=gnot ip=135.104.9.40 proto=il proto=tcp
";
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .ndb(ndb)
        .build()
        .unwrap();
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .ndb(ndb)
        .build()
        .unwrap();
    (helix, gnot)
}

/// Queue-residency spans land on the RPC that enqueued the block, and
/// nest inside that RPC's root interval — while a lossy, duplicating IL
/// import churns the same recorder.
#[test]
fn queue_spans_nest_inside_rpc_roots() {
    let _g = lock();
    let tracer = trace::global();
    reset(tracer);

    let (helix, gnot) = boot_pair();
    helix.rootfs.put_file("/lib/blob", &[0x33u8; 900]).unwrap();
    exportfs_listener(helix.proc(), "il!*!exportfs", usize::MAX).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let p = gnot.proc();
    tracer.ctl("trace on").unwrap();

    // The lossy side: RPCs over IL.
    import(&p, "il!helix!exportfs", "/lib", "/n/helix", MREPL).unwrap();
    for _ in 0..20 {
        let fd = p.open("/n/helix/blob", OpenMode::READ).unwrap();
        assert_eq!(p.read(fd, 4096).unwrap().len(), 900);
        p.close(fd);
    }

    // The queued side: the same tree served over a local pipe, where 9P
    // messages ride the stream queues.
    let (mfd, sfd) = p.pipe().unwrap();
    let io = p.io(sfd).unwrap();
    let sink = io.clone();
    let fs: Arc<dyn ProcFs> = gnot.rootfs.clone();
    std::thread::spawn(move || {
        let _ = plan9::ninep::server::serve(fs, Box::new(io), Box::new(sink));
    });
    p.mount_fd(mfd, "", "/n/self", MREPL, false).unwrap();
    for _ in 0..20 {
        let fd = p.open("/n/self/lib/ndb/local", OpenMode::READ).unwrap();
        assert!(!p.read(fd, 4096).unwrap().is_empty());
        p.close(fd);
    }
    std::thread::sleep(Duration::from_millis(200));

    let roots = tracer.roots();
    let mut queue_spans = 0usize;
    for r in roots.iter().filter(|r| !r.label.starts_with("serve")) {
        for s in r.spans.iter().filter(|s| s.name == "queue") {
            queue_spans += 1;
            assert!(
                s.start_ns >= r.start_ns && s.end_ns <= r.end_ns,
                "queue span [{}, {}] escapes root {} [{}, {}]",
                s.start_ns,
                s.end_ns,
                r.label,
                r.start_ns,
                r.end_ns
            );
        }
    }
    assert!(
        queue_spans >= 20,
        "expected queue residency on the pipe-mounted RPCs, saw {queue_spans}"
    );
    reset(tracer);
}

/// With tracing off (the default), a full RPC workload adds nothing to
/// the span ring: the recorder is pay-for-use.
#[test]
fn tracing_off_leaves_ring_untouched() {
    let _g = lock();
    let tracer = trace::global();
    reset(tracer);
    let before = (tracer.len(), tracer.active_len());

    let (a, b) = lossy_stacks(40);
    let listener = b.il_module().listen(&b, 17012).unwrap();
    let server = std::thread::spawn(move || {
        let conn = listener.accept().unwrap();
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/blob", &[0x11u8; 256]).unwrap();
        let fs: Arc<dyn ProcFs> = fs;
        let io = IlIo(conn);
        let _ = plan9::ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
    });
    let conn = a.il_module().connect(&a, b.addr(), 17012).unwrap();
    let io = IlIo(Arc::clone(&conn));
    let client = NineClient::new(Box::new(io.clone()), Box::new(io));
    let (fid, _) = client.attach("test", "").unwrap();
    client.walk(fid, "blob").unwrap();
    client.open(fid, OpenMode::READ).unwrap();
    for _ in 0..20 {
        assert_eq!(client.read(fid, 0, 256).unwrap().len(), 256);
    }
    let _ = client.clunk(fid);
    conn.close();
    let _ = server.join();

    assert_eq!(
        (tracer.len(), tracer.active_len()),
        before,
        "tracing off must record nothing"
    );
}
