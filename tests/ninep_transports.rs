//! Integration: 9P carried over every transport the paper discusses.
//!
//! "Nearly all traffic between Plan 9 systems consists of 9P messages"
//! (§2.1). These tests mount a remote RAM file server over a pipe, over
//! IL (delimiters preserved natively), and over TCP (delimiters restored
//! by the marshaling layer), then exercise the full file API through the
//! mount.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::core::namespace::MREPL;
use plan9::core::proc::Proc;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::{MemFs, OpenMode, ProcFs};
use std::sync::Arc;

fn two_machines() -> (Arc<plan9::core::machine::Machine>, Arc<plan9::core::machine::Machine>) {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=fsrv ip=10.7.0.1 proto=il proto=tcp\nsys=term ip=10.7.0.2 proto=il proto=tcp\n";
    let fsrv = MachineBuilder::new("fsrv")
        .ether(&seg, [8, 0, 0, 7, 0, 1], IpConfig::local("10.7.0.1"))
        .ndb(ndb)
        .build()
        .unwrap();
    let term = MachineBuilder::new("term")
        .ether(&seg, [8, 0, 0, 7, 0, 2], IpConfig::local("10.7.0.2"))
        .ndb(ndb)
        .build()
        .unwrap();
    (fsrv, term)
}

/// Serves `fs` over the next call accepted at `addr` on machine proc
/// `sp`, using framing when the transport is a byte stream.
fn serve_one(sp: Proc, addr: &'static str, fs: Arc<MemFs>) {
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&sp, addr).expect("announce");
        let (lcfd, ldir) = listen(&sp, &adir).expect("listen");
        let dfd = accept(&sp, lcfd, &ldir).expect("accept");
        let io = sp.io(dfd).expect("io");
        let fs: Arc<dyn ProcFs> = fs;
        if addr.starts_with("tcp") {
            let source = plan9::ninep::marshal::FramedSource::new(io.clone());
            let sink = plan9::ninep::marshal::FramedSink::new(io);
            let _ = plan9::ninep::server::serve(fs, Box::new(source), Box::new(sink));
        } else {
            let _ = plan9::ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
        }
    });
}

fn exercise_mounted_tree(p: &Proc, mountpoint: &str) {
    // Read a prepared file.
    let fd = p
        .open(&format!("{mountpoint}/motd"), OpenMode::READ)
        .expect("open motd");
    assert_eq!(p.read_string(fd).expect("read motd"), "have a nice day\n");
    p.close(fd);
    // Create, write, stat, reread, remove.
    let fd = p
        .create(&format!("{mountpoint}/new/file.txt"), 0o644, OpenMode::WRITE)
        .map_err(|e| e.to_string());
    // Parent directory does not exist: expected failure, then create it
    // properly.
    assert!(fd.is_err());
    let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    let fd = p
        .create(&format!("{mountpoint}/bulk.bin"), 0o644, OpenMode::WRITE)
        .expect("create");
    // Bigger than one 9P message: the client chunks it.
    let mut off = 0;
    while off < big.len() {
        let n = p.write(fd, &big[off..(off + 8192).min(big.len())]).expect("write");
        off += n;
    }
    p.close(fd);
    let st = p.stat(&format!("{mountpoint}/bulk.bin")).expect("stat");
    assert_eq!(st.length as usize, big.len());
    let fd = p
        .open(&format!("{mountpoint}/bulk.bin"), OpenMode::READ)
        .expect("open");
    let mut got = Vec::new();
    loop {
        let chunk = p.read(fd, 8192).expect("read");
        if chunk.is_empty() {
            break;
        }
        got.extend(chunk);
    }
    assert_eq!(got, big);
    p.close(fd);
    p.remove(&format!("{mountpoint}/bulk.bin")).expect("remove");
    assert!(p.stat(&format!("{mountpoint}/bulk.bin")).is_err());
    // Directory listing through the mount.
    let names: Vec<String> = p
        .ls(mountpoint)
        .expect("ls")
        .iter()
        .map(|d| d.name.clone())
        .collect();
    assert!(names.contains(&"motd".to_string()));
}

fn remote_tree() -> Arc<MemFs> {
    let fs = MemFs::new("ram", "bootes");
    fs.put_file("/motd", b"have a nice day\n").unwrap();
    fs
}

#[test]
fn ninep_over_il_preserves_delimiters_natively() {
    let (fsrv, term) = two_machines();
    serve_one(fsrv.proc(), "il!*!9fs", remote_tree());
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = term.proc();
    let conn = dial(&p, "il!10.7.0.1!9fs").expect("dial");
    p.mount_fd(conn.data_fd, "", "/n/remote", MREPL, false)
        .expect("mount");
    exercise_mounted_tree(&p, "/n/remote");
}

#[test]
fn ninep_over_tcp_needs_marshaling() {
    let (fsrv, term) = two_machines();
    serve_one(fsrv.proc(), "tcp!*!9fs", remote_tree());
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = term.proc();
    let conn = dial(&p, "tcp!10.7.0.1!9fs").expect("dial");
    // framed = true engages the length-prefix marshal layer (§2.1).
    p.mount_fd(conn.data_fd, "", "/n/remote", MREPL, true)
        .expect("mount");
    exercise_mounted_tree(&p, "/n/remote");
}

#[test]
fn ninep_over_pipe_like_a_local_user_server() {
    // "The mount system call provides a file descriptor, which can be a
    // pipe to a user process..." — here the user process is a thread
    // serving a MemFs over an in-memory pipe.
    use plan9::ninep::transport::MsgPipeEnd;
    let (client_end, server_end) = MsgPipeEnd::pair();
    let fs: Arc<dyn ProcFs> = remote_tree();
    std::thread::spawn(move || {
        let (sink, source) = server_end.split();
        let _ = plan9::ninep::server::serve(fs, Box::new(source), Box::new(sink));
    });
    let (sink, source) = client_end.split();
    let driver = plan9::core::mountdrv::MountDriver::from_client(
        plan9::ninep::client::NineClient::new(Box::new(sink), Box::new(source)),
    );
    // Build a minimal namespace around the mount.
    let rootfs = MemFs::new("root", "bootes");
    rootfs.put_dir("/n/remote").unwrap();
    let root_dyn: Arc<dyn ProcFs> = rootfs;
    let ns = plan9::core::namespace::Namespace::new(
        plan9::core::namespace::Source::attach(&root_dyn, "u", "").unwrap(),
    );
    let p = Proc::new(ns, "u");
    let drv_dyn: Arc<dyn ProcFs> = driver;
    p.mount_fs(&drv_dyn, "", "/n/remote", MREPL).expect("mount");
    exercise_mounted_tree(&p, "/n/remote");
}
