//! Integration: dial/announce/listen over every protocol device, and
//! the delimiter contrast that motivates IL (§3).

use plan9::core::dial::{accept, announce, dial, listen, netmkaddr};
use plan9::core::machine::{Machine, MachineBuilder};
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::Profiles;
use std::sync::Arc;

fn machines() -> (Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let switch = DatakitSwitch::new(Profiles::datakit_fast());
    let ndb = "\
sys=helix ip=10.9.0.1 dk=nj/astro/helix proto=il proto=tcp
sys=gnot ip=10.9.0.2 dk=nj/astro/gnot proto=il proto=tcp
";
    let a = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0, 9, 0, 1], IpConfig::local("10.9.0.1"))
        .datakit(&switch, "nj/astro/helix")
        .ndb(ndb)
        .build()
        .unwrap();
    let b = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0, 9, 0, 2], IpConfig::local("10.9.0.2"))
        .datakit(&switch, "nj/astro/gnot")
        .ndb(ndb)
        .build()
        .unwrap();
    (a, b)
}

/// Starts an echo server for `addr` on machine `m`, serving one call.
fn echo_once(m: &Arc<Machine>, addr: &'static str) {
    let p = m.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&p, addr).expect("announce");
        let (lcfd, ldir) = listen(&p, &adir).expect("listen");
        let dfd = accept(&p, lcfd, &ldir).expect("accept");
        while let Ok(msg) = p.read(dfd, 65536) {
            if msg.is_empty() {
                break;
            }
            if p.write(dfd, &msg).is_err() {
                break;
            }
        }
    });
}

#[test]
fn dial_each_protocol_explicitly() {
    let (helix, gnot) = machines();
    for (announce_addr, dial_addr) in [
        ("il!*!echo", "il!helix!echo"),
        ("tcp!*!echo", "tcp!helix!echo"),
        ("dk!*!echo", "dk!nj/astro/helix!echo"),
    ] {
        echo_once(&helix, announce_addr);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let p = gnot.proc();
        let conn = dial(&p, dial_addr).unwrap_or_else(|e| panic!("{dial_addr}: {e}"));
        p.write(conn.data_fd, b"ping").expect("write");
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(p.read(conn.data_fd, 4096).expect("read"));
        }
        assert_eq!(got, b"ping", "{dial_addr}");
        p.close(conn.data_fd);
        p.close(conn.ctl_fd);
    }
}

#[test]
fn dial_net_metaname_picks_common_network() {
    let (helix, gnot) = machines();
    echo_once(&helix, "il!*!echo");
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    let conn = dial(&p, "net!helix!echo").expect("dial net!helix!echo");
    // IL is first in preference order and helix supports it.
    assert!(conn.dir.starts_with("/net/il/"), "{}", conn.dir);
    p.write(conn.data_fd, b"x").unwrap();
    assert_eq!(p.read(conn.data_fd, 10).unwrap(), b"x");
}

#[test]
fn il_preserves_write_boundaries_tcp_does_not() {
    let (helix, gnot) = machines();
    // Servers that report the size of each read they see.
    for proto in ["il", "tcp"] {
        let p = helix.proc();
        let addr: &'static str = if proto == "il" { "il!*!discard" } else { "tcp!*!discard" };
        std::thread::spawn(move || {
            let (_afd, adir) = announce(&p, addr).expect("announce");
            let (lcfd, ldir) = listen(&p, &adir).expect("listen");
            let dfd = accept(&p, lcfd, &ldir).expect("accept");
            // Report each read's length back on the same connection.
            while let Ok(msg) = p.read(dfd, 65536) {
                if msg.is_empty() {
                    break;
                }
                let _ = p.write(dfd, format!("{} ", msg.len()).as_bytes());
            }
        });
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    // IL: three writes arrive as exactly three messages.
    let conn = dial(&p, "il!helix!discard").expect("dial il");
    for _ in 0..3 {
        p.write(conn.data_fd, b"abc").unwrap();
        // Each write is one message: the size report is "3".
        assert_eq!(p.read(conn.data_fd, 100).unwrap(), b"3 ");
    }
    // TCP: rapid-fire writes may coalesce; sizes can differ from the
    // write boundaries. We only assert the total arrives.
    let conn = dial(&p, "tcp!helix!discard").expect("dial tcp");
    p.write(conn.data_fd, b"abc").unwrap();
    p.write(conn.data_fd, b"def").unwrap();
    let mut reported = 0usize;
    while reported < 6 {
        let r = p.read(conn.data_fd, 100).unwrap();
        reported += String::from_utf8_lossy(&r)
            .split_whitespace()
            .map(|n| n.parse::<usize>().unwrap_or(0))
            .sum::<usize>();
    }
    assert_eq!(reported, 6);
}

#[test]
fn netmkaddr_normalizes() {
    assert_eq!(netmkaddr("helix", "net", "9fs"), "net!helix!9fs");
    assert_eq!(netmkaddr("net!helix", "x", "9fs"), "net!helix!9fs");
    assert_eq!(netmkaddr("il!helix!echo", "x", "y"), "il!helix!echo");
}

#[test]
fn rejected_datakit_call_reports_eof() {
    let (helix, gnot) = machines();
    let _keep = helix;
    let p = gnot.proc();
    // Nothing announced "bogus": the dispatcher rejects with a reason.
    let conn = dial(&p, "dk!nj/astro/helix!bogus").expect("circuit opens");
    assert_eq!(p.read(conn.data_fd, 100).unwrap(), b"");
}

#[test]
fn announce_stays_in_force_until_closed() {
    let (helix, gnot) = machines();
    let hp = helix.proc();
    let (afd, adir) = announce(&hp, "tcp!*!daytime").expect("announce");
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let Ok((lcfd, ldir)) = listen(&hp, &adir) else { return };
            let Ok(dfd) = accept(&hp, lcfd, &ldir) else { return };
            let _ = hp.write(dfd, b"Jul 16 17:28");
            hp.close(dfd);
            hp.close(lcfd);
        }
        hp.close(afd);
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    let p = gnot.proc();
    for _ in 0..2 {
        let conn = dial(&p, "tcp!helix!daytime").expect("dial");
        let date = p.read(conn.data_fd, 100).expect("read");
        assert_eq!(date, b"Jul 16 17:28");
        p.close(conn.data_fd);
        p.close(conn.ctl_fd);
    }
    server.join().unwrap();
}
