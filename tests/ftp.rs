//! Integration: ftpfs (§6.2) — FTP as a mounted file system with a
//! cache.

use plan9::core::machine::{Machine, MachineBuilder};
use plan9::core::namespace::MREPL;
use plan9::exportfs::ftpd::FtpServer;
use plan9::exportfs::ftpfs::FtpFs;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::Profiles;
use plan9::ninep::procfs::{OpenMode, ProcFs};
use std::sync::Arc;

fn world() -> (Arc<Machine>, Arc<Machine>, Arc<FtpServer>) {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=site ip=10.41.0.1 proto=tcp\nsys=term ip=10.41.0.2 proto=tcp\n";
    let site = MachineBuilder::new("site")
        .ether(&seg, [8, 0, 0, 41, 0, 1], IpConfig::local("10.41.0.1"))
        .ndb(ndb)
        .build()
        .unwrap();
    let term = MachineBuilder::new("term")
        .ether(&seg, [8, 0, 0, 41, 0, 2], IpConfig::local("10.41.0.2"))
        .ndb(ndb)
        .build()
        .unwrap();
    let ftpd = Arc::new(FtpServer::new("guest"));
    ftpd.tree.put_file("/pub/README", b"hello ftp").unwrap();
    ftpd.tree.put_file("/pub/deep/leaf.txt", b"leaf").unwrap();
    Arc::clone(&ftpd).serve(site.proc(), 8).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    (site, term, ftpd)
}

fn mounted_term(term: &Arc<Machine>) -> (plan9::core::proc::Proc, Arc<FtpFs>) {
    let p = term.proc();
    let fs = FtpFs::dial_and_login(term.proc(), "tcp!site!ftp", "philw", "guest").expect("login");
    let dynfs: Arc<dyn ProcFs> = fs.clone();
    p.mount_fs(&dynfs, "", "/n/ftp", MREPL).expect("mount");
    (p, fs)
}

#[test]
fn list_read_and_walk_deep() {
    let (_site, term, _ftpd) = world();
    let (p, _fs) = mounted_term(&term);
    let names: Vec<String> = p
        .ls("/n/ftp/pub")
        .expect("ls")
        .iter()
        .map(|d| d.name.clone())
        .collect();
    assert!(names.contains(&"README".to_string()));
    assert!(names.contains(&"deep".to_string()));
    let fd = p.open("/n/ftp/pub/deep/leaf.txt", OpenMode::READ).unwrap();
    assert_eq!(p.read_string(fd).unwrap(), "leaf");
}

#[test]
fn reads_are_cached() {
    let (_site, term, _ftpd) = world();
    let (p, fs) = mounted_term(&term);
    let fd = p.open("/n/ftp/pub/README", OpenMode::READ).unwrap();
    let _ = p.read_string(fd).unwrap();
    p.close(fd);
    let before = fs.round_trips.get();
    for _ in 0..5 {
        let fd = p.open("/n/ftp/pub/README", OpenMode::READ).unwrap();
        assert_eq!(p.read_string(fd).unwrap(), "hello ftp");
        p.close(fd);
    }
    assert_eq!(fs.round_trips.get(), before);
}

#[test]
fn create_updates_cache_and_server() {
    let (_site, term, ftpd) = world();
    let (p, _fs) = mounted_term(&term);
    let fd = p
        .create("/n/ftp/pub/new.txt", 0o644, OpenMode::WRITE)
        .expect("create");
    p.write(fd, b"created via ftpfs").unwrap();
    p.close(fd); // flush on clunk
    // Visible locally through the cache...
    let fd = p.open("/n/ftp/pub/new.txt", OpenMode::READ).unwrap();
    assert_eq!(p.read_string(fd).unwrap(), "created via ftpfs");
    // ...and on the server's own tree.
    let root = ftpd.tree.attach("ftp", "").unwrap();
    let node =
        plan9::ninep::procfs::walk_path(&*ftpd.tree, &root, "pub/new.txt").expect("server walk");
    let node = ftpd.tree.open(&node, OpenMode::READ).unwrap();
    assert_eq!(ftpd.tree.read(&node, 0, 100).unwrap(), b"created via ftpfs");
}

#[test]
fn remove_propagates() {
    let (_site, term, ftpd) = world();
    let (p, _fs) = mounted_term(&term);
    p.remove("/n/ftp/pub/README").expect("remove");
    let root = ftpd.tree.attach("ftp", "").unwrap();
    assert!(plan9::ninep::procfs::walk_path(&*ftpd.tree, &root, "pub/README").is_err());
}

#[test]
fn wrong_password_refused() {
    let (_site, term, _ftpd) = world();
    let err =
        FtpFs::dial_and_login(term.proc(), "tcp!site!ftp", "philw", "wrong").unwrap_err();
    assert!(err.0.contains("530") || err.0.contains("unexpected"), "{err}");
}
