//! Integration: the netlog subsystem's numbers are trustworthy.
//!
//! Two reconciliations under randomized impairment profiles: the wire's
//! own frame accounting must balance exactly, and IL's retransmission
//! counter must agree with the event trace — the counters and the log
//! are two views of the same recovery machinery, so they may not drift.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::{Machine, MachineBuilder};
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::profile::{LinkProfile, Profiles};
use std::sync::Arc;

fn machines_on(profile: LinkProfile) -> (Arc<EtherSegment>, Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(profile);
    let ndb = "\
sys=a ip=10.31.0.1 proto=il proto=tcp
sys=b ip=10.31.0.2 proto=il proto=tcp
";
    let a = MachineBuilder::new("a")
        .ether(&seg, [8, 0, 0, 31, 0, 1], IpConfig::local("10.31.0.1"))
        .ndb(ndb)
        .build()
        .unwrap();
    let b = MachineBuilder::new("b")
        .ether(&seg, [8, 0, 0, 31, 0, 2], IpConfig::local("10.31.0.2"))
        .ndb(ndb)
        .build()
        .unwrap();
    (seg, a, b)
}

plan9_support::props! {
    /// Under a random loss/duplication profile, every wire balances:
    /// delivered == sent − dropped + duplicated.
    fn prop_wire_stats_identity_under_impairment(g, cases = 4) {
        let loss = g.f64_in(0.0..0.10);
        let dup = g.f64_in(0.0..0.05);
        let msgs = g.vec(5..20, |g| g.bytes(1..3000));
        let (seg, a, b) = machines_on(
            Profiles::ether_fast().with_loss(loss).with_dup(dup),
        );
        let n = msgs.len();
        let p = b.proc();
        let server = std::thread::spawn(move || {
            let (_afd, adir) = announce(&p, "il!*!9fs").expect("announce");
            let (lcfd, ldir) = listen(&p, &adir).expect("listen");
            let dfd = accept(&p, lcfd, &ldir).expect("accept");
            for _ in 0..n {
                p.read(dfd, 65536).expect("read");
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let p = a.proc();
        let conn = dial(&p, "il!b!9fs").expect("dial");
        for m in &msgs {
            p.write(conn.data_fd, m).expect("write");
        }
        server.join().unwrap();
        let stats = seg.medium().stats();
        let (sent, delivered) = (stats.sent.get(), stats.delivered.get());
        let (dropped, duplicated) = (stats.dropped.get(), stats.duplicated.get());
        assert!(sent > 0, "no traffic reached the wire");
        assert_eq!(
            delivered,
            sent - dropped + duplicated,
            "wire out of balance: sent {sent} dropped {dropped} duplicated {duplicated}"
        );
    }

    /// IL's retransmit counter equals the number of query-recovery
    /// events in the event log: each repaired message logs exactly one
    /// `rexmit` line.
    fn prop_il_rexmit_counter_matches_event_log(g, cases = 4) {
        let loss = g.f64_in(0.02..0.10);
        let msgs = g.vec(10..25, |g| g.bytes(500..3000));
        let (_seg, a, b) = machines_on(Profiles::ether_fast().with_loss(loss));
        let sender = a.ip.as_ref().unwrap();
        sender.netlog().events.ctl("set il").unwrap();
        let n = msgs.len();
        let p = b.proc();
        let server = std::thread::spawn(move || {
            let (_afd, adir) = announce(&p, "il!*!9fs").expect("announce");
            let (lcfd, ldir) = listen(&p, &adir).expect("listen");
            let dfd = accept(&p, lcfd, &ldir).expect("accept");
            for _ in 0..n {
                p.read(dfd, 65536).expect("read");
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let p = a.proc();
        let conn = dial(&p, "il!b!9fs").expect("dial");
        for m in &msgs {
            p.write(conn.data_fd, m).expect("write");
        }
        server.join().unwrap();
        let rexmit_events = sender
            .netlog()
            .events
            .events()
            .iter()
            .filter(|e| e.msg.starts_with("rexmit "))
            .count() as u64;
        assert_eq!(
            sender.il_module().stats.retransmit_msgs.get(),
            rexmit_events,
            "counter and event log disagree"
        );
    }
}
