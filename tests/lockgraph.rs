//! Runtime lock-order capture: drive the kernel across its concurrency
//! surface — a scenario fabric with a flash crowd and netmon collector,
//! then a two-machine segment doing IL and TCP dials, ether clone
//! opens, and a pipe — and snapshot the lock-order graph lockdep
//! observed along the way.
//!
//! With `LOCKGRAPH_UPDATE=1` the snapshot is written to
//! `scripts/lockgraph-observed.txt`, the dump `plan9-check --flow`
//! cross-checks its static lock-order edges against (edges the runtime
//! never saw are reported as untested, not silently trusted). Without
//! the variable the test only checks the live graph and that the
//! checked-in dump is well-formed, so CI stays read-only.
//!
//! One test function on purpose: lockdep is a process singleton, and a
//! single ordered exercise keeps the captured graph a superset of every
//! piece rather than whichever test the harness ran last.

use plan9::core::dial::{accept, announce, dial, listen};
use plan9::core::machine::MachineBuilder;
use plan9::inet::ip::IpConfig;
use plan9::netsim::ether::EtherSegment;
use plan9::netsim::fabric::DatakitSwitch;
use plan9::netsim::profile::Profiles;
use plan9::netsim::uart_pair;
use plan9::ninep::procfs::OpenMode;
use plan9::streams::StreamModule;
use plan9_support::vtime;
use std::sync::Arc;
use std::time::Duration;

const SCRIPT: &str = "\
seed 4093
topology grid cities=2 hosts=4 ndb-lines=300
at 100ms flashcrowd city=1 dials=12 size=512 window=300ms
netmon 50ms
end 700ms
";

/// Echoes one connection at a time until the announce fd dies.
fn echo_service(p: plan9::core::proc::Proc, addr: &'static str) {
    let (_afd, adir) = announce(&p, addr).expect("announce");
    std::thread::spawn(move || loop {
        let Ok((lcfd, ldir)) = listen(&p, &adir) else {
            return;
        };
        let Ok(dfd) = accept(&p, lcfd, &ldir) else {
            return;
        };
        while let Ok(msg) = p.read(dfd, 8192) {
            if msg.is_empty() {
                break;
            }
            let _ = p.write(dfd, &msg);
        }
        p.close(dfd);
        p.close(lcfd);
    });
}

#[test]
fn capture_runtime_lock_order_graph() {
    if !cfg!(debug_assertions) {
        // lockdep is compiled out; nothing to capture.
        return;
    }

    // 1. The scenario fabric: gateways, flash crowd, netmon collector
    // pulling series across exportfs. This touches the netsim ether,
    // proto/IL/TCP conversation machinery, the pool, the wheel, the
    // series sampler and the 9P client in one deterministic run.
    let sc = plan9_scenario::dsl::parse(SCRIPT).expect("script parses");
    let guard = vtime::enter();
    let report = plan9_scenario::run(&sc);
    drop(guard);
    assert!(report.clean(), "scenario run dirty:\n{}", report.text);

    // 2. A two-machine segment on the real clock: IL and TCP dials
    // (conversation alloc + clunk on both protocol directories), a
    // Datakit line through the switch (dispatcher, fabric circuits,
    // stream modules), a UDP send big enough to fragment, an ether
    // clone open/close, a serial line, and a pipe — the device and
    // protocol classes the scenario's gateways don't touch. The wire
    // is slightly lossy so the loss lottery (and its lock) runs.
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(0.01));
    let switch = DatakitSwitch::new(Profiles::datakit_fast());
    let (uart_a, uart_b) = uart_pair(1_000_000);
    let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 dk=nj/astro/helix proto=il proto=tcp
sys=gnot ip=135.104.9.40 dk=nj/astro/gnot proto=il proto=tcp
";
    let helix = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .datakit(&switch, "nj/astro/helix")
        .ndb(ndb)
        .build()
        .expect("boot helix");
    let gnot = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0x40], IpConfig::local("135.104.9.40"))
        .datakit(&switch, "nj/astro/gnot")
        .uart(uart_a)
        .ndb(ndb)
        .build()
        .expect("boot gnot");
    echo_service(helix.proc(), "il!*!echo");
    echo_service(helix.proc(), "tcp!*!7");
    echo_service(helix.proc(), "dk!*!echo");
    std::thread::sleep(Duration::from_millis(100));

    let p = gnot.proc();
    for addr in ["il!helix!echo", "tcp!135.104.9.31!7", "dk!nj/astro/helix!echo"] {
        let conn = dial(&p, addr).expect(addr);
        p.write(conn.data_fd, b"ping").expect("write");
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(p.read(conn.data_fd, 64).expect("read"));
        }
        assert_eq!(got, b"ping", "{addr}");
        p.close(conn.data_fd);
        p.close(conn.ctl_fd);
    }
    // A Datakit call nobody serves: the dispatcher rejects it with a
    // reason, which is its own lock class. The rejection is
    // asynchronous, so the dial may succeed and die on first use.
    if let Ok(conn) = dial(&p, "dk!nj/astro/helix!nosuch") {
        std::thread::sleep(Duration::from_millis(50));
        let dead = p.write(conn.data_fd, b"x").is_err()
            || p.read(conn.data_fd, 16).map_or(true, |v| v.is_empty());
        assert!(dead, "rejected circuit still carries data");
        p.close(conn.data_fd);
        p.close(conn.ctl_fd);
    }

    // A UDP datagram bigger than the Ethernet MTU: the bind table on
    // this side, fragment reassembly on the far side.
    let udp = dial(&p, "udp!helix!echo").expect("udp dial");
    p.write(udp.data_fd, &vec![0x42u8; 4000]).expect("udp send");
    std::thread::sleep(Duration::from_millis(50));
    p.close(udp.data_fd);
    p.close(udp.ctl_fd);

    let eclone = p.open("/net/ether0/clone", OpenMode::RDWR).expect("ether clone");
    p.close(eclone);
    let (r, w) = p.pipe().expect("pipe");
    p.close(w);
    p.close(r);

    // The serial line: bytes both ways through /dev/eia1.
    let eia = p.open("/dev/eia1", OpenMode::RDWR).expect("open eia1");
    p.write(eia, b"at").expect("eia write");
    uart_b.send(b"ok").expect("uart send");
    let mut got = Vec::new();
    while got.len() < 2 {
        got.extend(p.read(eia, 16).expect("eia read"));
    }
    assert_eq!(got, b"ok");
    p.close(eia);

    // Stream modules with no fabric consumer yet — the snoop tap, the
    // delimiter reconstructor, the byte stuffer, the multiplexer:
    // exercise each as the library feature it is, so its lock class
    // shows up as alive rather than dead.
    let (sa, sb) = plan9::streams::spipe::stream_pipe();
    let snoop = plan9::streams::modules::Snoop::new();
    sa.push_module(Arc::clone(&snoop) as Arc<dyn StreamModule>);
    sa.write(b"tapped").expect("spipe write");
    assert_eq!(sb.read(64).expect("spipe read"), b"tapped");

    let (da, db) = plan9::streams::spipe::stream_pipe();
    da.push_module(plan9::streams::modules::DelimMod::new() as Arc<dyn StreamModule>);
    db.write(&[2, 0, 0, 0, b'h', b'i']).expect("framed write");
    assert_eq!(da.read(64).expect("delim read"), b"hi");

    let (ba, bb) = plan9::streams::spipe::stream_pipe();
    let stuff = plan9::streams::modules::ByteStuff::new();
    let flag = stuff.flag;
    ba.push_module(stuff as Arc<dyn StreamModule>);
    bb.write(&[b'h', b'i', flag]).expect("stuffed write");
    assert_eq!(ba.read(64).expect("stuffed read"), b"hi");

    let mux = plan9::streams::Mux::new("lockgraph", |b| {
        b.data.first().map(|&k| (k as i64, 1))
    });
    let port = mux.attach(4, |_| {});
    assert_eq!(mux.conversations(), 1);
    mux.detach(&port);

    // 3. Snapshot and check.
    let dump = plan9_support::lockgraph_dump();
    for must in [
        "edge core.proc.nextfd -> core.proc.fds",
        "edge core.proto.nextconn -> core.proto.conns",
        "edge core.ether.nextconn -> core.ether.convs",
        "class support.wheel acquires=",
    ] {
        assert!(dump.contains(must), "runtime graph missing `{must}`:\n{dump}");
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/lockgraph-observed.txt");
    if std::env::var_os("LOCKGRAPH_UPDATE").is_some() {
        let header = "# Runtime lock-order graph captured by `LOCKGRAPH_UPDATE=1 \
cargo test --test lockgraph`.\n# `plan9-check --flow` cross-checks its static \
lock-order edges against this dump.\n";
        std::fs::write(path, format!("{header}{dump}")).expect("write observed dump");
        return;
    }

    // The checked-in dump must stay well-formed: every non-comment
    // line is a `class` or `edge` row in the `/net/log/lockgraph`
    // format parse_observed understands.
    let text = std::fs::read_to_string(path).expect(
        "scripts/lockgraph-observed.txt missing; regenerate with \
         LOCKGRAPH_UPDATE=1 cargo test --test lockgraph",
    );
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let ok = (line.starts_with("class ") && line.contains(" acquires="))
            || (line.starts_with("edge ") && line.contains(" -> ") && line.contains(" thread="));
        assert!(ok, "malformed line in checked-in dump: {line}");
    }
}
