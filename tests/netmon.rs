//! netmon determinism: the time-series sampler is driven by the timer
//! wheel under the virtual clock, so sampling is part of the replayable
//! event sequence — two same-seed scenario runs must render every
//! gateway's `/net/log/series` byte-identically, and each snapshot must
//! land at exactly `base + k*interval`, never "close to it".

use plan9_netlog::{series, NetLog};
use plan9_support::{time, vtime};
use std::time::Duration;

/// Under the virtual clock the sampler fires at its scheduled instant
/// exactly: `fired_us == at_us == k*interval` for every sample. On a
/// real clock those drift apart; on the discrete-event clock any drift
/// is a determinism bug.
#[test]
fn snapshots_are_interval_aligned_under_vtime() {
    let guard = vtime::enter();
    let nl = NetLog::new();
    nl.series.set_interval(Duration::from_millis(10)).expect("interval");
    series::start(&nl).expect("start");
    let ticks = nl.registry.counter("test.ticks");
    for _ in 0..12 {
        ticks.inc();
        time::sleep(Duration::from_millis(10));
    }
    nl.series.stop();
    let samples = nl.series.samples();
    drop(guard);

    assert!(samples.len() >= 10, "only {} samples", samples.len());
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.k, i as u64 + 1, "sample indices must be dense");
        assert_eq!(
            s.at_us,
            s.k * 10_000,
            "sample {} scheduled off-grid",
            s.k
        );
        assert_eq!(
            s.fired_us, s.at_us,
            "sample {} fired {}us after its instant",
            s.k,
            s.fired_us - s.at_us
        );
    }
}

const SCRIPT: &str = "\
seed 41
topology grid cities=2 hosts=4 ndb-lines=300
at 100ms flashcrowd city=1 dials=12 size=512 window=300ms
netmon 50ms
end 700ms
";

/// The fabric contract: both gateways' series, fetched across the
/// fabric through exportfs by the collector, are non-empty, land on
/// the 50ms grid, and replay byte-for-byte from the same seed.
#[test]
fn same_seed_runs_render_series_byte_identical() {
    let sc = plan9_scenario::dsl::parse(SCRIPT).expect("script parses");
    let guard = vtime::enter();
    let first = plan9_scenario::run(&sc);
    let second = plan9_scenario::run(&sc);
    drop(guard);

    assert!(first.clean(), "first run dirty:\n{}", first.text);
    assert_eq!(first.series.len(), 2, "{}", first.text);
    for (sys, body) in &first.series {
        assert!(!body.is_empty(), "{sys} exported no series:\n{}", first.text);
        assert!(
            body.starts_with("series interval=50000us"),
            "{sys}: {body}"
        );
        for line in body.lines().filter(|l| l.starts_with("sample ")) {
            let mut w = line.split_whitespace();
            let k: u64 = w.nth(1).expect("index").parse().expect("index");
            let t: u64 = w
                .next()
                .and_then(|s| s.strip_prefix("t="))
                .and_then(|s| s.strip_suffix("us"))
                .expect("offset")
                .parse()
                .expect("offset");
            assert_eq!(t, k * 50_000, "{sys} sample {k} off the interval grid");
        }
    }
    assert_eq!(
        first.series, second.series,
        "same-seed fabric series diverged"
    );
    assert_eq!(first.text, second.text, "same-seed reports diverged");
}
