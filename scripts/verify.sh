#!/bin/sh
# Tier-1 verification: the build must be hermetic (offline, empty
# registry cache) and every test must pass. This is the gate every PR
# runs; a new registry dependency anywhere in the workspace fails the
# --offline build immediately.
set -eu

cd "$(dirname "$0")/.."

# No crate manifest may name a registry dependency.
if grep -rn 'crossbeam\|parking_lot\|proptest\|criterion\|^rand\|^bytes' \
    crates/*/Cargo.toml Cargo.toml; then
    echo "verify: registry dependency found in a manifest" >&2
    exit 1
fi

cargo build --release --offline --workspace
cargo test -q --offline

# The paper's flagship listings must run end to end, still offline.
for ex in quickstart csquery netstat; do
    cargo run --release --offline --example "$ex" >/dev/null
done

# §3 size claim: IL must stay smaller than TCP (the binary asserts
# il.rs non-test LoC < tcp.rs non-test LoC and exits nonzero if not).
cargo run --release --offline -p plan9-bench --bin loc >/dev/null

echo "verify: OK (hermetic build + tests + examples + LoC gate)"
