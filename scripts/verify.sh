#!/bin/sh
# Tier-1 verification: the build must be hermetic (offline, empty
# registry cache), the netcheck lint gate must hold at its baseline,
# and every test must pass. This is the gate every PR runs; a new
# registry dependency anywhere in the workspace fails both plan9-check
# and the --offline build immediately.
set -eu

cd "$(dirname "$0")/.."

# checkflow: the interprocedural pass (blocking-context, panic
# reachability, static lock order cross-checked against the runtime
# lockdep dump) plus the original netcheck lint rules, gated on
# scripts/check-baseline.txt (counts may shrink, never grow). It runs
# before the build on purpose: a blocking call on a pool shard should
# fail the gate before any compile time is spent. Whole-workspace
# analysis must stay interactive — 10s or it has regressed.
flow_start=$(date +%s)
cargo run --release --offline -q -p plan9-check -- --flow
flow_wall=$(( $(date +%s) - flow_start ))
if [ "$flow_wall" -gt 10 ]; then
    echo "verify: plan9-check --flow took ${flow_wall}s (> 10s budget)" >&2
    exit 1
fi

# The machine-readable report must keep the checkflow-v1 shape: every
# consumer field present, zero kernel-wide blocking/panic findings,
# zero lock-order cycles, and every static lock edge either confirmed
# by the runtime dump or explicitly listed as untested.
python3 - <<'EOF'
import json, sys
r = json.load(open("REPORT_checkflow.json"))
if r.get("schema") != "checkflow-v1":
    sys.exit(f"verify: REPORT_checkflow.json schema is {r.get('schema')!r}")
g = r["graph"]
for field in ("functions", "call_sites", "resolved_calls", "roots", "lock_classes"):
    if not isinstance(g.get(field), int):
        sys.exit(f"verify: REPORT graph.{field} missing or non-integer")
if g["functions"] < 500 or g["roots"] < 5:
    sys.exit(f"verify: call graph implausibly small ({g['functions']} fns, {g['roots']} roots)")
for pass_ in ("blocking_context", "panic_reach"):
    p = r[pass_]
    if p["count"] != 0 or p["findings"]:
        sys.exit(f"verify: {pass_} baseline broken: {p['count']} findings")
lo = r["lock_order"]
if lo["cycles"]:
    sys.exit(f"verify: lock-order cycles: {lo['cycles']}")
if not lo["cross_checked"]:
    sys.exit("verify: static lock edges never cross-checked against a runtime dump")
confirmed = [e for e in lo["static_edges"] if e["confirmed"]]
untested = {tuple(e) for e in lo["untested"]}
for e in lo["static_edges"]:
    if not e["confirmed"] and (e["from"], e["to"]) not in untested:
        sys.exit(f"verify: static edge {e['from']} -> {e['to']} neither confirmed nor listed untested")
if not confirmed:
    sys.exit("verify: no static lock edge was runtime-confirmed")
if lo["dead_classes"]:
    sys.exit(f"verify: dead lockdep classes: {lo['dead_classes']}")
for e in lo["static_edges"]:
    for field in ("from", "to", "via", "site"):
        if not e.get(field):
            sys.exit(f"verify: static edge missing {field}: {e}")
EOF

# Clippy, when the toolchain ships it; warnings are errors so the tree
# stays warning-free.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy -q --offline --workspace --all-targets -- -D warnings
else
    echo "verify: NOTICE: cargo clippy not installed, skipping lint" >&2
fi

cargo build --release --offline --workspace
cargo test -q --offline

# The paper's flagship listings must run end to end, still offline.
for ex in quickstart csquery netstat tracerpc; do
    cargo run --release --offline --example "$ex" >/dev/null
done

# nettrace is pay-for-use: with tracing off (the default) the same RPC
# workload must add zero blocks to the span ring (the example asserts).
cargo run --release --offline --example tracerpc -- off >/dev/null

# netstat --json must emit valid JSON.
cargo run --release --offline --example netstat -- --json | python3 -m json.tool >/dev/null

# §3 size claim: IL must stay smaller than TCP (the binary asserts
# il.rs non-test LoC < tcp.rs non-test LoC and exits nonzero if not).
cargo run --release --offline -p plan9-bench --bin loc >/dev/null

# Benchmark JSON artifacts: regenerate and validate both.
cargo run --release --offline -p plan9-bench --bin table1 fast >/dev/null
cargo run --release --offline -p plan9-bench --bin ilvstcp >/dev/null
python3 -m json.tool BENCH_table1.json >/dev/null
python3 -m json.tool BENCH_ilvstcp.json >/dev/null

# Virtual-time gate: the loss sweep must have run on the virtual clock
# and finished in simulated-milliseconds territory. A >5s wall clock
# means something fell back to real sleeping.
python3 - <<'EOF'
import json, sys
b = json.load(open("BENCH_ilvstcp.json"))
if b.get("vtime") is not True:
    sys.exit("verify: BENCH_ilvstcp.json lacks \"vtime\": true")
wall = b["virtual_sweep_wall_s"]
if wall >= 5.0:
    sys.exit(f"verify: virtual loss sweep took {wall}s wall clock (>= 5s budget)")
EOF

# Connection-scale gate: the cityload fabric (dial storms, accept
# churn, pool-serviced 9P across 1k -> 10k machines) must complete its
# virtual sweep inside a wall budget, on O(cores) service threads.
cargo run --release --offline -p plan9-bench --bin cityload >/dev/null
python3 -m json.tool BENCH_cityload.json >/dev/null
python3 - <<'EOF'
import json, sys
b = json.load(open("BENCH_cityload.json"))
if b.get("vtime") is not True:
    sys.exit("verify: BENCH_cityload.json lacks \"vtime\": true")
wall = b["virtual_sweep_wall_s"]
if wall >= 120.0:
    sys.exit(f"verify: cityload virtual sweep took {wall}s wall clock (>= 120s budget)")
rows = b["sweep"]
if not rows:
    sys.exit("verify: cityload sweep is empty")
top = max(rows, key=lambda r: r["machines"])
if top["machines"] < 10_000 or top["conversations"] < 50_000:
    sys.exit(f"verify: top cityload row is {top['machines']} machines / "
             f"{top['conversations']} conversations (need 10k / 50k)")
for r in rows:
    for field in ("machines", "conversations", "rpcs", "virtual_s", "rpc_per_virtual_s"):
        if field not in r:
            sys.exit(f"verify: cityload row missing {field}")
    p99 = r.get("p99_us")
    if not p99 or any(k not in p99 or p99[k] <= 0 for k in ("64", "512", "4096")):
        sys.exit(f"verify: cityload row {r['machines']} lacks per-size p99_us")
EOF

# Scenario gate: the generated internet (4 cities x 250 pooled hosts,
# paper-scale ndb) must survive the adversarial walkthrough — flash
# crowd, trunk flap, backbone partition + heal, gateway kill — twice
# with byte-identical reports, clean conservation, and no leaked
# conversations, inside a wall budget.
cargo run --release --offline -p plan9-scenario --bin scenario -- --demo >/dev/null
cargo run --release --offline -p plan9-bench --bin scenariobench >/dev/null
python3 -m json.tool BENCH_scenario.json >/dev/null
python3 - <<'EOF'
import json, sys
b = json.load(open("BENCH_scenario.json"))
if b.get("vtime") is not True:
    sys.exit("verify: BENCH_scenario.json lacks \"vtime\": true")
if b.get("runs_byte_identical") is not True:
    sys.exit("verify: same-seed scenario runs were not byte-identical")
wall = b["virtual_sweep_wall_s"]
if wall >= 120.0:
    sys.exit(f"verify: scenario sweep took {wall}s wall clock (>= 120s budget)")
rows = b["sweep"]
if not rows:
    sys.exit("verify: scenario sweep is empty")
top = rows[0]
if top["hosts"] < 1000:
    sys.exit(f"verify: top scenario row holds {top['hosts']} hosts (need >= 1000)")
for r in rows:
    if r["conservation_violations"] != 0:
        sys.exit(f"verify: scenario row {r['name']} violated frame conservation")
    if r["residual_conns"] != 0:
        sys.exit(f"verify: scenario row {r['name']} leaked {r['residual_conns']} conversations")
    if r["dials_failed"] != 0:
        sys.exit(f"verify: scenario row {r['name']} failed {r['dials_failed']} dials")
    p99 = r.get("p99_us")
    if not p99 or any(v <= 0 for v in p99.values()):
        sys.exit(f"verify: scenario row {r['name']} lacks positive p99_us")
EOF

# netmon gate: the instrumented walkthrough (netmon 250ms on the 4x250
# fabric) must yield non-empty per-gateway series fetched across the
# fabric, byte-identical between two same-seed runs, plus a ranked
# copy-site table whose top three sites all moved bytes — inside a
# wall budget.
cargo run --release --offline -p plan9-bench --bin netdash >/dev/null
python3 -m json.tool BENCH_netmon.json >/dev/null
python3 - <<'EOF'
import json, sys
b = json.load(open("BENCH_netmon.json"))
if b.get("vtime") is not True:
    sys.exit("verify: BENCH_netmon.json lacks \"vtime\": true")
if b.get("runs_byte_identical") is not True:
    sys.exit("verify: same-seed netmon runs were not byte-identical")
if b.get("series_byte_identical") is not True:
    sys.exit("verify: same-seed fabric series were not byte-identical")
wall = b["wall_s"]
if wall >= 120.0:
    sys.exit(f"verify: netdash took {wall}s wall clock (>= 120s budget)")
series = b.get("series", [])
live = [s for s in series if s["samples"] > 0 and s["bytes"] > 0]
if len(live) < 3:
    sys.exit(f"verify: only {len(live)} gateways exported a non-empty series")
if b.get("fabric_samples", 0) <= 0 or not b.get("fabric"):
    sys.exit("verify: merged fabric series is empty")
sites = b.get("copy_sites", [])
if len(sites) < 3 or any(s["bytes"] <= 0 for s in sites[:3]):
    sys.exit(f"verify: top copy sites lack positive byte totals: {sites[:3]}")
if sites != sorted(sites, key=lambda s: -s["bytes"]):
    sys.exit("verify: copy sites are not ranked by bytes")
top3 = b.get("top_copy_sites", [])
if len(top3) != 3 or top3 != [s["site"] for s in sites[:3]]:
    sys.exit(f"verify: top_copy_sites disagrees with the ranked table: {top3}")
EOF

echo "verify: OK (checkflow + clippy + hermetic build + tests + examples + trace-off ring + LoC gate + bench JSON + vtime sweep gate + cityload scale gate + scenario adversity gate + netmon telemetry gate)"
