#!/bin/sh
# Tier-1 verification: the build must be hermetic (offline, empty
# registry cache) and every test must pass. This is the gate every PR
# runs; a new registry dependency anywhere in the workspace fails the
# --offline build immediately.
set -eu

cd "$(dirname "$0")/.."

# No crate manifest may name a registry dependency.
if grep -rn 'crossbeam\|parking_lot\|proptest\|criterion\|^rand\|^bytes' \
    crates/*/Cargo.toml Cargo.toml; then
    echo "verify: registry dependency found in a manifest" >&2
    exit 1
fi

cargo build --release --offline --workspace
cargo test -q --offline

# The paper's flagship listings must run end to end, still offline.
for ex in quickstart csquery netstat tracerpc; do
    cargo run --release --offline --example "$ex" >/dev/null
done

# nettrace is pay-for-use: with tracing off (the default) the same RPC
# workload must add zero blocks to the span ring (the example asserts).
cargo run --release --offline --example tracerpc -- off >/dev/null

# netstat --json must emit valid JSON.
cargo run --release --offline --example netstat -- --json | python3 -m json.tool >/dev/null

# §3 size claim: IL must stay smaller than TCP (the binary asserts
# il.rs non-test LoC < tcp.rs non-test LoC and exits nonzero if not).
cargo run --release --offline -p plan9-bench --bin loc >/dev/null

# Benchmark JSON artifacts: regenerate and validate both.
cargo run --release --offline -p plan9-bench --bin table1 fast >/dev/null
cargo run --release --offline -p plan9-bench --bin ilvstcp >/dev/null
python3 -m json.tool BENCH_table1.json >/dev/null
python3 -m json.tool BENCH_ilvstcp.json >/dev/null

echo "verify: OK (hermetic build + tests + examples + trace-off ring + LoC gate + bench JSON)"
