#!/bin/sh
# Tier-1 verification: the build must be hermetic (offline, empty
# registry cache) and every test must pass. This is the gate every PR
# runs; a new registry dependency anywhere in the workspace fails the
# --offline build immediately.
set -eu

cd "$(dirname "$0")/.."

# No crate manifest may name a registry dependency.
if grep -rn 'crossbeam\|parking_lot\|proptest\|criterion\|^rand\|^bytes' \
    crates/*/Cargo.toml Cargo.toml; then
    echo "verify: registry dependency found in a manifest" >&2
    exit 1
fi

cargo build --release --offline
cargo test -q --offline

echo "verify: OK (hermetic build + tests)"
