//! UDP: unreliable datagrams. "UDP, while cheap, does not provide
//! reliable sequenced delivery" (§3) — it is here as the datagram
//! baseline and as the carrier for DNS queries.

use crate::addr::IpAddr;
use crate::checksum::internet_checksum;
use crate::ip::IpStack;
use crate::ports::PortSpace;
use plan9_netlog::{Counter, Facility, NetLog};
use plan9_support::chan::{bounded, Receiver, Sender};
use plan9_support::sync::Mutex;
use plan9_ninep::NineError;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// The IP protocol number for UDP.
pub const UDP_PROTO: u8 = 17;

/// Bytes of UDP header.
pub const UDP_HDR: usize = 8;

/// Per-socket receive queue depth; datagrams beyond it are dropped, as
/// UDP is entitled to do.
const SOCK_QUEUE: usize = 512;

type Datagram = (IpAddr, u16, Vec<u8>);

/// The per-stack UDP state.
pub struct UdpModule {
    binds: Mutex<HashMap<u16, Sender<Datagram>>>,
    ports: PortSpace,
    /// Datagrams dropped because no socket was bound.
    pub unreachable: Counter,
    /// Datagrams dropped for a bad length or checksum.
    pub csum_errors: Counter,
    /// Datagrams dropped because the socket queue was full.
    pub queue_drops: Counter,
    netlog: Arc<NetLog>,
}

impl UdpModule {
    pub(crate) fn new(netlog: &Arc<NetLog>) -> UdpModule {
        let reg = &netlog.registry;
        UdpModule {
            binds: Mutex::named(HashMap::new(), "inet.udp.binds"),
            ports: PortSpace::new(),
            unreachable: reg.counter("udp.unreachable"),
            csum_errors: reg.counter("udp.csumerr"),
            queue_drops: reg.counter("udp.queuedrops"),
            netlog: Arc::clone(netlog),
        }
    }

    /// Renders the counters as `key: value` lines for a `stats` file.
    pub fn render_stats(&self) -> String {
        format!(
            "udpUnreachable: {}\nudpCsumErr: {}\nudpQueueDrops: {}\n",
            self.unreachable.get(),
            self.csum_errors.get(),
            self.queue_drops.get()
        )
    }

    /// Binds a socket on `port` (0 = ephemeral).
    pub fn bind(&self, stack: &Arc<IpStack>, port: u16) -> crate::Result<UdpSocket> {
        let port = if port == 0 {
            self.ports.alloc()?
        } else {
            self.ports.claim(port)?
        };
        let (tx, rx) = bounded(SOCK_QUEUE);
        self.binds.lock().insert(port, tx);
        Ok(UdpSocket {
            stack: Arc::downgrade(stack),
            port,
            rx,
        })
    }

    pub(crate) fn input(stack: &Arc<IpStack>, src: IpAddr, datagram: &[u8]) {
        let Some((sport, dport, payload)) = decode_udp(datagram) else {
            stack.udp.csum_errors.inc();
            stack
                .udp
                .netlog
                .events
                .log(Facility::Udp, || format!("csum error from {src}"));
            return;
        };
        let binds = stack.udp.binds.lock();
        match binds.get(&dport) {
            Some(tx) => {
                // try_send: a full queue drops the datagram, which UDP may.
                if tx.try_send((src, sport, payload.to_vec())).is_err() {
                    stack.udp.queue_drops.inc();
                }
            }
            None => {
                stack.udp.unreachable.inc();
                stack.udp.netlog.events.log(Facility::Udp, || {
                    format!("unreachable port {dport} from {src}")
                });
            }
        }
    }

    pub(crate) fn unbind(&self, port: u16) {
        self.binds.lock().remove(&port);
        self.ports.release(port);
    }
}

/// A bound UDP endpoint.
pub struct UdpSocket {
    stack: Weak<IpStack>,
    port: u16,
    rx: Receiver<Datagram>,
}

impl UdpSocket {
    /// The bound local port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Sends one datagram.
    pub fn send_to(&self, dst: IpAddr, dport: u16, payload: &[u8]) -> crate::Result<()> {
        let stack = self
            .stack
            .upgrade()
            .ok_or_else(|| NineError::new("stack is down"))?;
        let datagram = encode_udp(self.port, dport, payload);
        stack.send(dst, UDP_PROTO, &datagram)
    }

    /// Blocks for the next datagram.
    pub fn recv(&self) -> crate::Result<Datagram> {
        self.rx
            .recv()
            .map_err(|_| NineError::new("socket closed"))
    }

    /// Waits for a datagram until the timeout elapses.
    pub fn recv_timeout(&self, d: Duration) -> crate::Result<Datagram> {
        self.rx
            .recv_timeout(d)
            .map_err(|_| NineError::new("timed out"))
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        if let Some(stack) = self.stack.upgrade() {
            stack.udp.unbind(self.port);
        }
    }
}

/// Serializes a UDP datagram.
pub fn encode_udp(sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let len = (UDP_HDR + payload.len()) as u16;
    let mut b = Vec::with_capacity(len as usize);
    b.extend_from_slice(&sport.to_be_bytes());
    b.extend_from_slice(&dport.to_be_bytes());
    b.extend_from_slice(&len.to_be_bytes());
    b.extend_from_slice(&[0, 0]);
    b.extend_from_slice(payload);
    let sum = internet_checksum(&b);
    b[6..8].copy_from_slice(&sum.to_be_bytes());
    b
}

/// Parses a UDP datagram, verifying length and checksum.
pub fn decode_udp(datagram: &[u8]) -> Option<(u16, u16, &[u8])> {
    if datagram.len() < UDP_HDR {
        return None;
    }
    let len = u16::from_be_bytes([datagram[4], datagram[5]]) as usize;
    if len < UDP_HDR || len > datagram.len() {
        return None;
    }
    if internet_checksum(&datagram[..len]) != 0 {
        return None;
    }
    Some((
        u16::from_be_bytes([datagram[0], datagram[1]]),
        u16::from_be_bytes([datagram[2], datagram[3]]),
        &datagram[UDP_HDR..len],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::tests::two_hosts;

    #[test]
    fn codec_round_trip() {
        let d = encode_udp(5000, 53, b"query");
        let (s, p, data) = decode_udp(&d).unwrap();
        assert_eq!((s, p, data), (5000, 53, &b"query"[..]));
    }

    #[test]
    fn corruption_detected() {
        let mut d = encode_udp(1, 2, b"fragile");
        d[9] ^= 0x40;
        assert!(decode_udp(&d).is_none());
    }

    #[test]
    fn datagrams_flow_both_ways() {
        let (a, b) = two_hosts();
        let sa = a.udp_module().bind(&a, 1000).unwrap();
        let sb = b.udp_module().bind(&b, 2000).unwrap();
        sa.send_to(b.addr(), 2000, b"ping").unwrap();
        let (src, sport, data) = sb.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((src, sport, data.as_slice()), (a.addr(), 1000, &b"ping"[..]));
        sb.send_to(a.addr(), 1000, b"pong").unwrap();
        let (_, _, data) = sa.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(data, b"pong");
    }

    #[test]
    fn double_bind_fails_and_drop_releases() {
        let (a, _b) = two_hosts();
        let s = a.udp_module().bind(&a, 53).unwrap();
        assert!(a.udp_module().bind(&a, 53).is_err());
        drop(s);
        let _again = a.udp_module().bind(&a, 53).unwrap();
    }

    #[test]
    fn unbound_port_counts_unreachable() {
        let (a, b) = two_hosts();
        let sa = a.udp_module().bind(&a, 0).unwrap();
        sa.send_to(b.addr(), 4444, b"void").unwrap();
        // Give the receiver a moment.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.udp.unreachable.get(), 1);
    }
}
