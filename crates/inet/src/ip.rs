//! The IP layer: encapsulation, ARP resolution, routing to the gateway,
//! fragmentation and reassembly, and dispatch to the transport modules.
//!
//! One [`IpStack`] represents one host's IP interface on one Ethernet
//! segment. A receiver kernel process (thread) drains the station and a
//! loopback queue and dispatches inbound packets to UDP, TCP or IL.

use crate::addr::IpAddr;
use crate::arp::{ArpCache, ArpPacket, ARP_ETHERTYPE, ARP_REPLY, ARP_REQUEST, IP_ETHERTYPE};
use crate::checksum::internet_checksum;
use crate::{il, tcp, udp};
use plan9_netlog::{Counter, NetLog, Registry};
use plan9_support::chan::{unbounded, Receiver, Sender};
use plan9_support::copysite::Site;
use plan9_support::sync::Mutex;
use plan9_support::{pool, time, vtime};

static ENCODE_SITE: Site = Site::new("ip.encode");
static FRAGMENT_SITE: Site = Site::new("ip.fragment");
static REASSEMBLE_SITE: Site = Site::new("ip.reassemble");
static RX_SITE: Site = Site::new("ip.rxcopy");
use plan9_netsim::ether::{EtherStation, BROADCAST};
use plan9_ninep::NineError;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Bytes of IP header (no options).
pub const IP_HDR: usize = 20;

/// How long a partially reassembled datagram is kept.
const FRAG_TTL: Duration = Duration::from_secs(5);

/// Interface configuration, as it would come from the ndb entry for the
/// system (`ip=135.104.9.31 ipmask=255.255.255.0 ipgw=135.104.9.1`).
#[derive(Debug, Clone)]
pub struct IpConfig {
    /// This interface's address.
    pub addr: IpAddr,
    /// The subnet mask.
    pub mask: IpAddr,
    /// Default gateway for off-subnet destinations.
    pub gateway: Option<IpAddr>,
}

impl IpConfig {
    /// A host on a /24 with no gateway.
    pub fn local(addr: &str) -> IpConfig {
        IpConfig {
            // checked: config-time constructor over a literal, not a packet path
            addr: IpAddr::parse(addr).expect("bad address literal"),
            mask: IpAddr::new(255, 255, 255, 0),
            gateway: None,
        }
    }
}

/// Counters reported through the protocol devices' `stats` files.
/// All live in the stack's netlog [`Registry`] under `ip.*` names.
pub struct IpStats {
    /// Packets delivered up from the wire.
    pub rx_packets: Counter,
    /// Packets sent.
    pub tx_packets: Counter,
    /// Packets dropped for bad checksum or malformed headers.
    pub rx_errors: Counter,
    /// Datagrams reassembled from fragments.
    pub reassembled: Counter,
    /// Fragments emitted.
    pub fragments_out: Counter,
    /// Packets parked on the ARP hold queue awaiting resolution.
    pub arp_held: Counter,
    /// Packets dropped because the hold queue was full.
    pub arp_dropped: Counter,
}

impl IpStats {
    fn new(reg: &Registry) -> IpStats {
        IpStats {
            rx_packets: reg.counter("ip.rx"),
            tx_packets: reg.counter("ip.tx"),
            rx_errors: reg.counter("ip.rxerr"),
            reassembled: reg.counter("ip.reassembled"),
            fragments_out: reg.counter("ip.fragout"),
            arp_held: reg.counter("ip.arpheld"),
            arp_dropped: reg.counter("ip.arpdrop"),
        }
    }

    /// Renders the counters as `key: value` lines for a `stats` file.
    pub fn render(&self) -> String {
        format!(
            "ipRx: {}\nipTx: {}\nipRxErr: {}\nipReassembled: {}\nipFragOut: {}\narpHeld: {}\narpDropped: {}\n",
            self.rx_packets.get(),
            self.tx_packets.get(),
            self.rx_errors.get(),
            self.reassembled.get(),
            self.fragments_out.get(),
            self.arp_held.get(),
            self.arp_dropped.get()
        )
    }
}

struct FragBuf {
    parts: BTreeMap<u16, Vec<u8>>,
    total: Option<usize>,
    created: Instant,
}

/// A parsed IP datagram header.
#[derive(Debug, Clone, Copy)]
pub struct IpHeader {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport protocol number.
    pub proto: u8,
    /// Identification for reassembly.
    pub id: u16,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// More-fragments flag.
    pub more_frags: bool,
}

/// One host interface: IP over a simulated Ethernet station.
pub struct IpStack {
    cfg: IpConfig,
    station: EtherStation,
    /// Self-reference for requeueing work onto the pool (pooled mode).
    me: Weak<IpStack>,
    /// Thread-mode loopback queue; `None` in pooled mode, where
    /// loopback packets ride the stack's own pool shard instead.
    loop_tx: Option<Sender<Vec<u8>>>,
    /// Pool/wheel shard key when the stack runs in pooled (push) mode.
    pooled: Option<u64>,
    /// The ARP cache (public for diagnostics and tests).
    pub arp: ArpCache,
    frag: Mutex<HashMap<(u32, u16), FragBuf>>,
    ip_id: AtomicU16,
    closed: AtomicBool,
    /// Traffic counters.
    pub stats: IpStats,
    /// The machine-wide instrumentation block: metric registry plus
    /// the `/net/log` event ring. One per stack, so simulated hosts
    /// sharing a process keep separate diagnostics.
    netlog: Arc<NetLog>,
    pub(crate) udp: udp::UdpModule,
    pub(crate) tcp: tcp::TcpModule,
    pub(crate) il: il::IlModule,
}

/// Deterministic pool/wheel shard key for a station: an FNV-1a hash of
/// the MAC plus the interface address, stable across same-seed runs.
fn station_key(mac: &plan9_netsim::ether::MacAddr, addr: IpAddr) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in mac.iter().copied().chain(addr.0.to_be_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl IpStack {
    /// Brings up an interface and starts its receiver processes.
    pub fn new(station: EtherStation, cfg: IpConfig) -> Arc<IpStack> {
        let (loop_tx, loop_rx) = unbounded();
        // An IP host only consumes its own unicasts and broadcasts;
        // let the controller filter the rest off the bus.
        station.set_address_filter(true);
        let stack = Self::build(station, cfg, Some(loop_tx), None);
        // The wire receiver: the "kernel process" the paper's device
        // interfaces wake from their interrupt routines.
        let rx_stack = Arc::clone(&stack);
        vtime::kproc(&format!("ip-rx-{}", rx_stack.cfg.addr), move || {
            rx_stack.wire_loop()
        })
        // checked: spawn fails only on OS thread exhaustion at setup, not on a data path
        .expect("spawn ip-rx");
        // The loopback receiver: packets a host sends to itself.
        let lo_stack = Arc::clone(&stack);
        vtime::kproc(&format!("ip-lo-{}", lo_stack.cfg.addr), move || {
            lo_stack.loop_loop(loop_rx)
        })
        // checked: spawn fails only on OS thread exhaustion at setup, not on a data path
        .expect("spawn ip-lo");
        stack
    }

    /// Brings up an interface with *no* receiver threads: the station
    /// is switched to push mode and every inbound frame is serviced on
    /// this stack's worker-pool shard. A fabric of thousands of hosts
    /// then runs on O(cores) threads instead of two per host.
    ///
    /// Service jobs must not block on virtual time, and the transmit
    /// path never does: an ARP miss parks the packet on the cache's
    /// hold queue and the receive path flushes it once the mapping is
    /// learned, so even a first-contact transmit from an ack or a
    /// retransmission timer is safe on a shard.
    pub fn new_pooled(station: EtherStation, cfg: IpConfig) -> Arc<IpStack> {
        let key = station_key(&station.addr, cfg.addr);
        station.set_address_filter(true);
        let stack = Self::build(station, cfg, None, Some(key));
        let me = Arc::downgrade(&stack);
        stack.station.set_rx_handler(key, move |frame| {
            let Some(stack) = me.upgrade() else { return };
            if stack.is_shutdown() {
                return;
            }
            match frame.ethertype {
                ARP_ETHERTYPE => stack.handle_arp(&frame.payload),
                IP_ETHERTYPE => stack.handle_ip(Some(frame.src), &frame.payload),
                _ => {}
            }
        });
        stack
    }

    fn build(
        station: EtherStation,
        cfg: IpConfig,
        loop_tx: Option<Sender<Vec<u8>>>,
        pooled: Option<u64>,
    ) -> Arc<IpStack> {
        let netlog = NetLog::new();
        Arc::new_cyclic(|me| IpStack {
            cfg,
            station,
            me: me.clone(),
            loop_tx,
            pooled,
            arp: ArpCache::new(),
            frag: Mutex::named(HashMap::new(), "inet.ip.frag"),
            ip_id: AtomicU16::new(1),
            closed: AtomicBool::new(false),
            stats: IpStats::new(&netlog.registry),
            udp: udp::UdpModule::new(&netlog),
            tcp: tcp::TcpModule::new(&netlog),
            il: il::IlModule::new(&netlog),
            netlog,
        })
    }

    /// This interface's address.
    pub fn addr(&self) -> IpAddr {
        self.cfg.addr
    }

    /// The configuration the stack was brought up with.
    pub fn config(&self) -> &IpConfig {
        &self.cfg
    }

    /// The largest transport payload that fits in one IP packet on this
    /// medium without fragmentation.
    pub fn mtu(&self) -> usize {
        self.station.payload_mtu() - IP_HDR
    }

    /// Stops the receiver processes. Existing connections will fail.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether the stack has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Access to the UDP transport.
    pub fn udp_module(&self) -> &udp::UdpModule {
        &self.udp
    }

    /// Access to the TCP transport.
    pub fn tcp_module(&self) -> &tcp::TcpModule {
        &self.tcp
    }

    /// Access to the IL transport.
    pub fn il_module(&self) -> &il::IlModule {
        &self.il
    }

    /// The stack's instrumentation block (metrics + event log).
    pub fn netlog(&self) -> &Arc<NetLog> {
        &self.netlog
    }

    fn wire_loop(self: Arc<Self>) {
        while !self.is_shutdown() {
            let Some(frame) = self.station.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            match frame.ethertype {
                ARP_ETHERTYPE => self.handle_arp(&frame.payload),
                IP_ETHERTYPE => self.handle_ip(Some(frame.src), &frame.payload),
                _ => {}
            }
        }
    }

    fn loop_loop(self: Arc<Self>, rx: Receiver<Vec<u8>>) {
        while !self.is_shutdown() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(pkt) => self.handle_ip(None, &pkt),
                Err(_) => continue,
            }
        }
    }

    fn handle_arp(&self, payload: &[u8]) {
        let Some(pkt) = ArpPacket::decode(payload) else {
            return;
        };
        // Learn the sender unconditionally; hosts that talk to us are
        // hosts we will talk back to.
        self.arp.learn(pkt.sender_ip, pkt.sender_mac);
        self.flush_held(pkt.sender_ip, pkt.sender_mac);
        if pkt.op == ARP_REQUEST && pkt.target_ip == self.cfg.addr {
            let reply = ArpPacket {
                op: ARP_REPLY,
                sender_mac: self.station.addr,
                sender_ip: self.cfg.addr,
                target_mac: pkt.sender_mac,
                target_ip: pkt.sender_ip,
            };
            let _ = self
                .station
                .send(pkt.sender_mac, ARP_ETHERTYPE, &reply.encode());
        }
    }

    fn handle_ip(self: &Arc<Self>, src_mac: Option<plan9_netsim::ether::MacAddr>, packet: &[u8]) {
        let Some((hdr, payload)) = decode_ip(packet) else {
            self.stats.rx_errors.inc();
            return;
        };
        if hdr.dst != self.cfg.addr && hdr.dst != IpAddr::BROADCAST {
            return; // not ours; the bus shows us everything
        }
        // In-band ARP: a frame from a peer *is* its address mapping.
        // Without this, a host that learned our address passively (from
        // a broadcast it overheard) dials us without ever ARPing, and
        // our replies would sit on the hold queue until it did.
        // Transparent bridges preserve the original source address, so
        // the mapping is correct across segments too.
        if let Some(mac) = src_mac {
            if self.arp.lookup(hdr.src).is_none() {
                self.arp.learn(hdr.src, mac);
            }
            self.flush_held(hdr.src, mac);
        }
        let assembled = if hdr.frag_offset == 0 && !hdr.more_frags {
            RX_SITE.record(payload.len());
            Some(payload.to_vec())
        } else {
            self.reassemble(&hdr, payload)
        };
        let Some(data) = assembled else {
            return;
        };
        self.stats.rx_packets.inc();
        match hdr.proto {
            udp::UDP_PROTO => udp::UdpModule::input(self, hdr.src, &data),
            tcp::TCP_PROTO => tcp::TcpModule::input(self, hdr.src, &data),
            il::IL_PROTO => il::IlModule::input(self, hdr.src, &data),
            _ => {}
        }
    }

    fn reassemble(&self, hdr: &IpHeader, payload: &[u8]) -> Option<Vec<u8>> {
        let mut frags = self.frag.lock();
        // Purge stale entries while we are here.
        let now = time::now();
        frags.retain(|_, f| now.saturating_duration_since(f.created) < FRAG_TTL);
        let key = (hdr.src.0, hdr.id);
        let buf = frags.entry(key).or_insert_with(|| FragBuf {
            parts: BTreeMap::new(),
            total: None,
            created: time::now(),
        });
        REASSEMBLE_SITE.record(payload.len());
        buf.parts.insert(hdr.frag_offset, payload.to_vec());
        if !hdr.more_frags {
            buf.total = Some(hdr.frag_offset as usize * 8 + payload.len());
        }
        let total = buf.total?;
        // Check contiguity from offset zero.
        let mut have = 0usize;
        for (off, part) in &buf.parts {
            if *off as usize * 8 != have {
                return None;
            }
            have += part.len();
        }
        if have != total {
            return None;
        }
        REASSEMBLE_SITE.record(total);
        let mut out = Vec::with_capacity(total);
        for part in buf.parts.values() {
            out.extend_from_slice(part);
        }
        frags.remove(&key);
        self.stats.reassembled.inc();
        Some(out)
    }

    /// Sends a transport payload to `dst`, fragmenting as needed.
    pub fn send(&self, dst: IpAddr, proto: u8, payload: &[u8]) -> crate::Result<()> {
        let cur = plan9_netlog::trace::current();
        let t0 = cur.as_ref().map(|_| time::now());
        let r = self.send_inner(dst, proto, payload);
        if let (Some(h), Some(t0)) = (cur, t0) {
            h.span(
                plan9_netlog::Facility::Ip,
                &format!("ip tx {}B", payload.len()),
                t0,
                time::now(),
            );
        }
        r
    }

    fn send_inner(&self, dst: IpAddr, proto: u8, payload: &[u8]) -> crate::Result<()> {
        let id = self.ip_id.fetch_add(1, Ordering::Relaxed);
        let mtu_payload = self.mtu();
        if payload.len() <= mtu_payload {
            return self.send_one(dst, proto, id, 0, false, payload);
        }
        // Fragment on 8-byte boundaries.
        let chunk = mtu_payload & !7;
        let mut off = 0usize;
        while off < payload.len() {
            let end = (off + chunk).min(payload.len());
            let more = end < payload.len();
            FRAGMENT_SITE.record(end - off);
            self.send_one(dst, proto, id, (off / 8) as u16, more, &payload[off..end])?;
            self.stats.fragments_out.inc();
            off = end;
        }
        Ok(())
    }

    fn send_one(
        &self,
        dst: IpAddr,
        proto: u8,
        id: u16,
        frag_offset: u16,
        more_frags: bool,
        payload: &[u8],
    ) -> crate::Result<()> {
        let hdr = IpHeader {
            src: self.cfg.addr,
            dst,
            proto,
            id,
            frag_offset,
            more_frags,
        };
        let packet = encode_ip(&hdr, payload);
        self.stats.tx_packets.inc();
        if dst == self.cfg.addr {
            // Loopback: delivered by the loopback kernel process, or —
            // in pooled mode — serviced on this stack's own shard.
            if let Some(tx) = &self.loop_tx {
                // blocking-ok: unbounded channel send never waits
                return tx.send(packet).map_err(|_| NineError::new("stack is down"));
            }
            let me = self.me.clone();
            pool::submit_or_run(self.pooled.unwrap_or_default(), move || {
                if let Some(stack) = me.upgrade() {
                    if !stack.is_shutdown() {
                        stack.handle_ip(None, &packet);
                    }
                }
            });
            return Ok(());
        }
        if dst == IpAddr::BROADCAST {
            return self
                .station
                .send(BROADCAST, IP_ETHERTYPE, &packet)
                .map_err(NineError::new);
        }
        let next_hop = self.next_hop(dst)?;
        if let Some(mac) = self.arp.lookup(next_hop) {
            return self
                .station
                .send(mac, IP_ETHERTYPE, &packet)
                .map_err(NineError::new);
        }
        // ARP miss. The transmit path runs on pool shards and wheel
        // callbacks where sleeping on virtual time deadlocks the
        // kernel, so there is no waiting here at all: park the packet
        // on the cache's hold queue, solicit, and let the receive path
        // flush it when the reply (or any frame from the peer) teaches
        // us the mapping. An unreachable host costs a bounded hold
        // queue, not a stalled shard.
        if self.arp.hold(next_hop, packet) {
            self.stats.arp_held.inc();
        } else {
            self.stats.arp_dropped.inc();
        }
        let req = ArpPacket {
            op: ARP_REQUEST,
            sender_mac: self.station.addr,
            sender_ip: self.cfg.addr,
            target_mac: [0; 6],
            target_ip: next_hop,
        };
        self.station
            .send(BROADCAST, ARP_ETHERTYPE, &req.encode())
            .map_err(NineError::new)?;
        // The reply may have raced the hold: flush immediately if the
        // mapping is already in.
        if let Some(mac) = self.arp.lookup(next_hop) {
            self.flush_held(next_hop, mac);
        }
        Ok(())
    }

    /// Routes `dst` to the on-link next hop.
    fn next_hop(&self, dst: IpAddr) -> crate::Result<IpAddr> {
        if self.cfg.addr.same_net(dst, self.cfg.mask) {
            Ok(dst)
        } else {
            self.cfg
                .gateway
                .ok_or_else(|| NineError::new(format!("no route to {dst}")))
        }
    }

    /// Sends every packet parked for `ip` now that its MAC is known.
    fn flush_held(&self, ip: IpAddr, mac: plan9_netsim::ether::MacAddr) {
        for pkt in self.arp.take_held(ip) {
            let _ = self.station.send(mac, IP_ETHERTYPE, &pkt);
        }
    }
}

/// Serializes an IP header + payload.
pub fn encode_ip(hdr: &IpHeader, payload: &[u8]) -> Vec<u8> {
    let total = (IP_HDR + payload.len()) as u16;
    ENCODE_SITE.record(total as usize);
    let mut b = Vec::with_capacity(total as usize);
    b.push(0x45); // version 4, ihl 5
    b.push(0); // tos
    b.extend_from_slice(&total.to_be_bytes());
    b.extend_from_slice(&hdr.id.to_be_bytes());
    let frag_word = (hdr.frag_offset & 0x1fff) | if hdr.more_frags { 0x2000 } else { 0 };
    b.extend_from_slice(&frag_word.to_be_bytes());
    b.push(64); // ttl
    b.push(hdr.proto);
    b.extend_from_slice(&[0, 0]); // checksum placeholder
    b.extend_from_slice(&hdr.src.octets());
    b.extend_from_slice(&hdr.dst.octets());
    let sum = internet_checksum(&b[..IP_HDR]);
    b[10..12].copy_from_slice(&sum.to_be_bytes());
    b.extend_from_slice(payload);
    b
}

/// Parses an IP packet, verifying the header checksum and length.
pub fn decode_ip(packet: &[u8]) -> Option<(IpHeader, &[u8])> {
    if packet.len() < IP_HDR || packet[0] != 0x45 {
        return None;
    }
    if internet_checksum(&packet[..IP_HDR]) != 0 {
        return None;
    }
    let total = u16::from_be_bytes([packet[2], packet[3]]) as usize;
    if total < IP_HDR || total > packet.len() {
        return None;
    }
    let frag_word = u16::from_be_bytes([packet[6], packet[7]]);
    Some((
        IpHeader {
            src: IpAddr(u32::from_be_bytes(packet.get(12..16)?.try_into().ok()?)),
            dst: IpAddr(u32::from_be_bytes(packet.get(16..20)?.try_into().ok()?)),
            proto: packet[9],
            id: u16::from_be_bytes([packet[4], packet[5]]),
            frag_offset: frag_word & 0x1fff,
            more_frags: frag_word & 0x2000 != 0,
        },
        &packet[IP_HDR..total],
    ))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use plan9_netsim::ether::EtherSegment;
    use plan9_netsim::profile::Profiles;

    fn mac(n: u8) -> plan9_netsim::ether::MacAddr {
        [0x08, 0x00, 0x69, 0, 0, n]
    }

    pub(crate) fn two_hosts() -> (Arc<IpStack>, Arc<IpStack>) {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = IpStack::new(seg.attach(mac(1)), IpConfig::local("10.0.0.1"));
        let b = IpStack::new(seg.attach(mac(2)), IpConfig::local("10.0.0.2"));
        (a, b)
    }

    #[test]
    fn header_codec_round_trip() {
        let hdr = IpHeader {
            src: IpAddr::new(10, 0, 0, 1),
            dst: IpAddr::new(10, 0, 0, 2),
            proto: 40,
            id: 7,
            frag_offset: 0,
            more_frags: false,
        };
        let pkt = encode_ip(&hdr, b"data");
        let (h2, p2) = decode_ip(&pkt).unwrap();
        assert_eq!(h2.src, hdr.src);
        assert_eq!(h2.dst, hdr.dst);
        assert_eq!(h2.proto, 40);
        assert_eq!(p2, b"data");
    }

    #[test]
    fn corrupted_header_rejected() {
        let hdr = IpHeader {
            src: IpAddr::new(1, 2, 3, 4),
            dst: IpAddr::new(5, 6, 7, 8),
            proto: 6,
            id: 1,
            frag_offset: 0,
            more_frags: false,
        };
        let mut pkt = encode_ip(&hdr, b"x");
        pkt[12] ^= 0xff;
        assert!(decode_ip(&pkt).is_none());
    }

    #[test]
    fn arp_resolution_happens_automatically() {
        let (a, b) = two_hosts();
        // UDP send triggers ARP under the hood.
        let sock_b = b.udp_module().bind(&b, 9999).unwrap();
        let sock_a = a.udp_module().bind(&a, 0).unwrap();
        sock_a
            .send_to(IpAddr::parse("10.0.0.2").unwrap(), 9999, b"hello")
            .unwrap();
        let (src, _sport, data) = sock_b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(data, b"hello");
        assert_eq!(src, IpAddr::parse("10.0.0.1").unwrap());
        assert!(!a.arp.is_empty());
    }

    #[test]
    fn off_subnet_without_gateway_fails() {
        let (a, _b) = two_hosts();
        let err = a.send(IpAddr::new(192, 168, 1, 1), 17, b"x").unwrap_err();
        assert!(err.0.contains("no route"), "{err}");
    }

    #[test]
    fn unreachable_host_parks_without_blocking() {
        // A send to a silent host must return immediately — the tx
        // path runs on shards and wheel callbacks where sleeping in
        // ARP resolution (the old behavior) stalls the kernel. The
        // packet parks on the hold queue instead, bounded per host.
        let (a, _b) = two_hosts();
        let ghost = IpAddr::new(10, 0, 0, 99);
        let t0 = std::time::Instant::now();
        for _ in 0..(crate::arp::HOLD_PER_HOST + 3) {
            a.send(ghost, 17, b"x").unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "send blocked: {:?}",
            t0.elapsed()
        );
        assert_eq!(a.arp.held_len(), crate::arp::HOLD_PER_HOST);
        assert_eq!(a.stats.arp_dropped.get(), 3);
    }

    #[test]
    fn held_packet_flushes_when_peer_resolves() {
        // The first datagram to a cold peer rides the hold queue: the
        // send returns at once, the ARP exchange happens in the
        // background, and the parked packet goes out when the reply
        // lands — nothing is lost and nothing blocks. This is the
        // checkflow blocking-context finding (wheel/pool transmit
        // reaching the old blocking `resolve`) fixed for real.
        let (a, b) = two_hosts();
        let sock_b = b.udp_module().bind(&b, 4242).unwrap();
        let sock_a = a.udp_module().bind(&a, 0).unwrap();
        assert!(a.arp.lookup(IpAddr::new(10, 0, 0, 2)).is_none());
        sock_a
            .send_to(IpAddr::parse("10.0.0.2").unwrap(), 4242, b"first-contact")
            .unwrap();
        let (_src, _sport, data) = sock_b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(data, b"first-contact");
        // Resolution completed behind the send.
        assert!(a.arp.lookup(IpAddr::new(10, 0, 0, 2)).is_some());
    }

    #[test]
    fn loopback_delivery() {
        let (a, _b) = two_hosts();
        let sock = a.udp_module().bind(&a, 777).unwrap();
        let me = a.addr();
        sock.send_to(me, 777, b"self").unwrap();
        let (_src, _sport, data) = sock.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(data, b"self");
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let (a, b) = two_hosts();
        let sock_b = b.udp_module().bind(&b, 5001).unwrap();
        let sock_a = a.udp_module().bind(&a, 0).unwrap();
        // Larger than the 1500-byte MTU: must fragment and reassemble.
        let big: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        sock_a
            .send_to(IpAddr::parse("10.0.0.2").unwrap(), 5001, &big)
            .unwrap();
        let (_s, _p, data) = sock_b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(data, big);
        assert!(a.stats.fragments_out.get() >= 3);
        assert_eq!(b.stats.reassembled.get(), 1);
    }
}
