//! The Internet protocol suite of the Plan 9 reproduction: IP (with ARP
//! and fragmentation) over simulated Ethernet, and the three transport
//! protocols the paper's protocol devices expose — **UDP**, **TCP** and
//! **IL** (§2.3, §3).
//!
//! IL is the paper's contribution: "a lightweight protocol designed to be
//! encapsulated by IP ... a connection-based protocol providing reliable
//! transmission of sequenced messages between machines." The design
//! points reproduced here:
//!
//! * reliable **datagram** service with sequenced delivery (delimiters
//!   are preserved — unlike TCP, which is why 9P prefers IL);
//! * runs over IP (protocol number 40);
//! * a small outstanding-message window instead of flow control;
//! * **no blind retransmission**: a timeout sends a small *query*
//!   message, the peer answers with its *state*, and only the messages
//!   the peer is actually missing are retransmitted — well-behaved in
//!   congested networks;
//! * **adaptive timeouts** from a round-trip timer, so the protocol
//!   performs well on both the Internet and local Ethernets.
//!
//! TCP here is the deliberately heavier baseline: three-way handshake,
//! byte-stream (no delimiters), sliding window, and go-back-N *blind*
//! retransmission on timeout. The benches in `plan9-bench` compare the
//! two under loss, reproducing the paper's §3 argument.

pub mod addr;
pub mod arp;
pub mod checksum;
pub mod il;
pub mod ip;
pub mod ports;
pub mod tcp;
pub mod udp;

pub use addr::IpAddr;
pub use il::{IlConn, IlListener, IL_PROTO};
pub use ip::{IpConfig, IpStack};
pub use tcp::{TcpConn, TcpListener, TCP_PROTO};
pub use udp::{UdpSocket, UDP_PROTO};

/// Errors from the protocol suite; string-based like the rest of the
/// system so they can travel through 9P error replies unchanged.
pub type NetError = plan9_ninep::NineError;

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, NetError>;
