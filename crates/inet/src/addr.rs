//! IPv4 addresses and the dotted-decimal strings the ASCII interfaces
//! carry.

use plan9_ninep::NineError;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// The all-zero address.
    pub const ANY: IpAddr = IpAddr(0);

    /// The broadcast address 255.255.255.255.
    pub const BROADCAST: IpAddr = IpAddr(u32::MAX);

    /// Builds an address from four octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Parses dotted-decimal notation (`135.104.9.31`).
    pub fn parse(s: &str) -> crate::Result<IpAddr> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| NineError::new(format!("bad ip address: {s}")))?;
            *o = part
                .parse::<u8>()
                .map_err(|_| NineError::new(format!("bad ip address: {s}")))?;
        }
        if parts.next().is_some() {
            return Err(NineError::new(format!("bad ip address: {s}")));
        }
        Ok(IpAddr(u32::from_be_bytes(octets)))
    }

    /// The four octets, most significant first.
    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Whether `other` is on the same subnet under `mask`.
    pub fn same_net(&self, other: IpAddr, mask: IpAddr) -> bool {
        (self.0 & mask.0) == (other.0 & mask.0)
    }

    /// The network address under `mask`.
    pub fn net(&self, mask: IpAddr) -> IpAddr {
        IpAddr(self.0 & mask.0)
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl std::str::FromStr for IpAddr {
    type Err = NineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IpAddr::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let a = IpAddr::parse("135.104.9.31").unwrap();
        assert_eq!(a.to_string(), "135.104.9.31");
        assert_eq!(a, IpAddr::new(135, 104, 9, 31));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"] {
            assert!(IpAddr::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn subnet_math() {
        let a = IpAddr::parse("135.104.9.31").unwrap();
        let b = IpAddr::parse("135.104.9.6").unwrap();
        let c = IpAddr::parse("135.104.52.2").unwrap();
        let mask = IpAddr::parse("255.255.255.0").unwrap();
        assert!(a.same_net(b, mask));
        assert!(!a.same_net(c, mask));
        assert_eq!(a.net(mask).to_string(), "135.104.9.0");
    }
}
