//! The Internet checksum (RFC 1071), used by the IP, TCP, UDP and IL
//! headers.

/// Computes the one's-complement sum of the buffer, folded to 16 bits.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies a buffer whose checksum field is already in place.
///
/// For an even-length buffer the checksum field sits on a 16-bit
/// boundary, so the one's-complement sum over the whole buffer is zero
/// (after complement, `internet_checksum` returns 0).
///
/// An odd-length buffer can only mean the two checksum bytes were
/// appended directly after odd-length data, leaving them *unaligned*:
/// summing the whole buffer would pad at the wrong spot and shift the
/// checksum into the wrong byte lanes, which is exactly the bug the
/// old fold rule had. Re-align instead: the data part is everything
/// but the trailing two bytes (padded with a zero byte by
/// `internet_checksum`'s own remainder rule), and the stored checksum
/// is read as one big-endian word and compared against the recomputed
/// value.
pub fn verify(data: &[u8]) -> bool {
    if data.len().is_multiple_of(2) {
        return internet_checksum(data) == 0;
    }
    if data.len() < 2 {
        return false;
    }
    let (body, trailer) = data.split_at(data.len() - 2);
    let stored = u16::from_be_bytes([trailer[0], trailer[1]]);
    internet_checksum(body) == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
        // before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn check_then_verify() {
        let mut pkt = vec![0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let sum = internet_checksum(&pkt);
        pkt[10..12].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&pkt));
        pkt[0] ^= 1;
        assert!(!verify(&pkt));
    }

    #[test]
    fn odd_length_handled() {
        // Round trip: compute over odd-length data, append, verify.
        for data in [&[1u8, 2, 3][..], &[0xff, 0xff, 0xff, 0xff, 0xff], &[7]] {
            let mut with_sum = data.to_vec();
            let sum = internet_checksum(data);
            with_sum.extend_from_slice(&sum.to_be_bytes());
            assert!(verify(&with_sum), "odd round trip failed for {data:?}");
            // Any single corrupted byte must break verification.
            for i in 0..with_sum.len() {
                let mut bad = with_sum.clone();
                bad[i] ^= 0x5a;
                assert!(!verify(&bad), "corruption at {i} went undetected");
            }
        }
    }

    #[test]
    fn even_length_round_trip_with_appended_sum() {
        let data = [1u8, 2, 3, 4];
        let mut with_sum = data.to_vec();
        let sum = internet_checksum(&data);
        with_sum.extend_from_slice(&sum.to_be_bytes());
        assert!(verify(&with_sum));
        with_sum[1] ^= 0x80;
        assert!(!verify(&with_sum));
    }
}
