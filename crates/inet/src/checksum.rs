//! The Internet checksum (RFC 1071), used by the IP, TCP, UDP and IL
//! headers.

/// Computes the one's-complement sum of the buffer, folded to 16 bits.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies a buffer whose checksum field is already in place: the sum
/// over the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
        // before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn check_then_verify() {
        let mut pkt = vec![0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let sum = internet_checksum(&pkt);
        pkt[10..12].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&pkt));
        pkt[0] ^= 1;
        assert!(!verify(&pkt));
    }

    #[test]
    fn odd_length_handled() {
        let data = [1u8, 2, 3];
        let _ = internet_checksum(&data);
        let mut with_sum = data.to_vec();
        let sum = internet_checksum(&data);
        with_sum.extend_from_slice(&sum.to_be_bytes());
        // Appending the checksum after odd data does not verify with the
        // simple rule (padding shifts), so just check determinism.
        assert_eq!(internet_checksum(&data), internet_checksum(&[1, 2, 3]));
    }
}
