//! ARP: resolving IP addresses to Ethernet station addresses.
//!
//! The paper's LANCE driver exposes "user-level protocols like ARP" as
//! connections on the Ethernet device; here ARP is the kernel-side user
//! of that facility, with a cache and request/reply handling.

use crate::addr::IpAddr;
use plan9_support::sync::{Condvar, Mutex};
use plan9_support::time;
use plan9_netsim::ether::MacAddr;
use std::collections::HashMap;
use std::time::Duration;

/// The Ethernet packet type for ARP.
pub const ARP_ETHERTYPE: u16 = 0x0806;

/// The Ethernet packet type for IP.
pub const IP_ETHERTYPE: u16 = 0x0800;

/// ARP request opcode.
pub const ARP_REQUEST: u16 = 1;

/// ARP reply opcode.
pub const ARP_REPLY: u16 = 2;

/// A parsed ARP packet (Ethernet/IPv4 flavor only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// [`ARP_REQUEST`] or [`ARP_REPLY`].
    pub op: u16,
    /// Sender's station address.
    pub sender_mac: MacAddr,
    /// Sender's IP address.
    pub sender_ip: IpAddr,
    /// Target's station address (zeros in a request).
    pub target_mac: MacAddr,
    /// Target's IP address.
    pub target_ip: IpAddr,
}

impl ArpPacket {
    /// Serializes to the 28-byte wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(28);
        b.extend_from_slice(&1u16.to_be_bytes()); // htype: ethernet
        b.extend_from_slice(&IP_ETHERTYPE.to_be_bytes()); // ptype: ip
        b.push(6); // hlen
        b.push(4); // plen
        b.extend_from_slice(&self.op.to_be_bytes());
        b.extend_from_slice(&self.sender_mac);
        b.extend_from_slice(&self.sender_ip.octets());
        b.extend_from_slice(&self.target_mac);
        b.extend_from_slice(&self.target_ip.octets());
        b
    }

    /// Parses the wire format; `None` for anything but Ethernet/IPv4.
    pub fn decode(b: &[u8]) -> Option<ArpPacket> {
        if b.len() < 28 {
            return None;
        }
        if u16::from_be_bytes([b[0], b[1]]) != 1
            || u16::from_be_bytes([b[2], b[3]]) != IP_ETHERTYPE
            || b[4] != 6
            || b[5] != 4
        {
            return None;
        }
        Some(ArpPacket {
            op: u16::from_be_bytes([b[6], b[7]]),
            sender_mac: b.get(8..14)?.try_into().ok()?,
            sender_ip: IpAddr(u32::from_be_bytes(b.get(14..18)?.try_into().ok()?)),
            target_mac: b.get(18..24)?.try_into().ok()?,
            target_ip: IpAddr(u32::from_be_bytes(b.get(24..28)?.try_into().ok()?)),
        })
    }
}

/// Most packets a single unresolved next-hop may have parked on the
/// cache; older packets are dropped first, like a real ARP hold queue.
pub const HOLD_PER_HOST: usize = 8;

/// Most distinct unresolved next-hops with parked packets.
pub const HOLD_HOSTS: usize = 32;

/// The ARP cache, shared between the sender path (lookups) and the
/// receiver kernel process (learning).
///
/// The cache also carries the *hold queue*: the transmit path runs on
/// pool shards and wheel callbacks where sleeping is forbidden, so an
/// unresolved send parks its packet here ([`ArpCache::hold`]) and the
/// receive path flushes it when the mapping is learned
/// ([`ArpCache::take_held`]).
pub struct ArpCache {
    entries: Mutex<HashMap<IpAddr, MacAddr>>,
    pending: Mutex<HashMap<IpAddr, Vec<Vec<u8>>>>,
    learned: Condvar,
}

impl Default for ArpCache {
    fn default() -> Self {
        ArpCache::new()
    }
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> ArpCache {
        ArpCache {
            entries: Mutex::named(HashMap::new(), "inet.arp"),
            pending: Mutex::named(HashMap::new(), "inet.arp.pending"),
            learned: Condvar::new(),
        }
    }

    /// Parks an encoded IP packet until `ip` resolves. Returns `false`
    /// when a packet was lost to make room: either the host table is
    /// full (the new packet is dropped) or the per-host queue is full
    /// (the oldest parked packet is evicted — the newest is the live
    /// one). Senders count that, they don't retry here. Bounded in
    /// both dimensions ([`HOLD_PER_HOST`], [`HOLD_HOSTS`]) so a flood
    /// of sends to a silent host cannot grow memory.
    pub fn hold(&self, ip: IpAddr, packet: Vec<u8>) -> bool {
        let mut pending = self.pending.lock();
        if !pending.contains_key(&ip) && pending.len() >= HOLD_HOSTS {
            return false;
        }
        let q = pending.entry(ip).or_default();
        let evicted = q.len() >= HOLD_PER_HOST;
        if evicted {
            q.remove(0);
        }
        q.push(packet);
        !evicted
    }

    /// Takes every packet parked for `ip`, in arrival order.
    pub fn take_held(&self, ip: IpAddr) -> Vec<Vec<u8>> {
        self.pending.lock().remove(&ip).unwrap_or_default()
    }

    /// Packets currently parked across all hosts.
    pub fn held_len(&self) -> usize {
        self.pending.lock().values().map(Vec::len).sum()
    }

    /// Inserts or refreshes a mapping and wakes any waiting senders.
    pub fn learn(&self, ip: IpAddr, mac: MacAddr) {
        self.entries.lock().insert(ip, mac);
        self.learned.notify_all();
    }

    /// Non-blocking lookup.
    pub fn lookup(&self, ip: IpAddr) -> Option<MacAddr> {
        self.entries.lock().get(&ip).copied()
    }

    /// Waits until a mapping for `ip` appears or the deadline passes.
    pub fn wait_for(&self, ip: IpAddr, timeout: Duration) -> Option<MacAddr> {
        let deadline = time::now() + timeout;
        let mut entries = self.entries.lock();
        loop {
            if let Some(mac) = entries.get(&ip) {
                return Some(*mac);
            }
            if self.learned.wait_until(&mut entries, deadline).timed_out() {
                return entries.get(&ip).copied();
            }
        }
    }

    /// A snapshot of the cache for the `/net/arp` diagnostic file.
    pub fn entries(&self) -> Vec<(IpAddr, MacAddr)> {
        let mut out: Vec<(IpAddr, MacAddr)> =
            self.entries.lock().iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(ip, _)| ip.0);
        out
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let p = ArpPacket {
            op: ARP_REQUEST,
            sender_mac: [1, 2, 3, 4, 5, 6],
            sender_ip: IpAddr::new(135, 104, 9, 31),
            target_mac: [0; 6],
            target_ip: IpAddr::new(135, 104, 9, 6),
        };
        assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(ArpPacket::decode(&[0u8; 10]).is_none());
        let mut ok = ArpPacket {
            op: ARP_REPLY,
            sender_mac: [0; 6],
            sender_ip: IpAddr::ANY,
            target_mac: [0; 6],
            target_ip: IpAddr::ANY,
        }
        .encode();
        ok[4] = 8; // wrong hlen
        assert!(ArpPacket::decode(&ok).is_none());
    }

    #[test]
    fn cache_learn_and_wait() {
        let cache = std::sync::Arc::new(ArpCache::new());
        let ip = IpAddr::new(10, 0, 0, 1);
        assert!(cache.lookup(ip).is_none());
        let c2 = std::sync::Arc::clone(&cache);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.learn(ip, [9; 6]);
        });
        assert_eq!(cache.wait_for(ip, Duration::from_secs(1)).unwrap(), [9; 6]);
    }

    #[test]
    fn wait_times_out() {
        let cache = ArpCache::new();
        let t = std::time::Instant::now();
        assert!(cache
            .wait_for(IpAddr::new(1, 1, 1, 1), Duration::from_millis(30))
            .is_none());
        assert!(t.elapsed() >= Duration::from_millis(25));
    }
}
