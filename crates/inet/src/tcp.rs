//! TCP: the heavyweight baseline transport.
//!
//! The paper (§3): "TCP has a high overhead and does not preserve
//! delimiters." This implementation is deliberately faithful to both
//! complaints: it delivers an undelimited byte stream (so 9P needs the
//! marshaling layer), and it recovers from loss by *blind* go-back-N
//! retransmission from the last acknowledged byte — the behavior IL's
//! query/state scheme was designed to avoid. Everything else is a
//! real, if compact, TCP: three-way handshake, sequence and cumulative
//! acknowledgment numbers, sliding window with peer-advertised window,
//! adaptive RTO from an RTT estimator, FIN/RST teardown, TIME-WAIT.

use crate::addr::IpAddr;
use crate::checksum::internet_checksum;
use crate::ip::IpStack;
use crate::ports::PortSpace;
use plan9_netlog::trace;
use plan9_netlog::{Counter, Facility, NetLog};
use plan9_support::chan::{bounded, Receiver, Sender};
use plan9_support::copysite::Site;
use plan9_support::sync::{Condvar, Mutex};
use plan9_support::{time, wheel};
use plan9_ninep::NineError;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// The IP protocol number for TCP.
pub const TCP_PROTO: u8 = 6;

/// Bytes of TCP header (no options).
pub const TCP_HDR: usize = 20;

/// FIN flag.
pub const FIN: u16 = 0x01;
/// SYN flag.
pub const SYN: u16 = 0x02;
/// RST flag.
pub const RST: u16 = 0x04;
/// PSH flag.
pub const PSH: u16 = 0x08;
/// ACK flag.
pub const ACK: u16 = 0x10;

/// Send buffer bound: writers block beyond this.
const SND_BUF_MAX: usize = 64 * 1024;

/// Receive buffer bound, also the advertised window ceiling.
const RCV_BUF_MAX: usize = 48 * 1024;

/// Initial retransmission timeout before any RTT sample.
const RTO_INITIAL: Duration = Duration::from_millis(200);

/// Bounds on the adaptive RTO.
const RTO_MIN: Duration = Duration::from_millis(20);
const RTO_MAX: Duration = Duration::from_secs(3);

/// How long a closed connection lingers in TIME-WAIT.
const TIME_WAIT: Duration = Duration::from_millis(200);

/// Handshake / teardown attempt bound.
const MAX_RETRIES: u32 = 8;

/// Connection states, readable in `/net/tcp/n/status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, waiting for SYN+ACK.
    SynSent,
    /// SYN received, SYN+ACK sent.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We closed first; FIN sent.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's.
    FinWait2,
    /// Peer closed first.
    CloseWait,
    /// Peer closed, then we closed; FIN sent.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Both sides done; draining duplicates.
    TimeWait,
    /// Gone.
    Closed,
}

impl TcpState {
    /// The name shown in the `status` file.
    pub fn name(&self) -> &'static str {
        match self {
            TcpState::SynSent => "Syn_sent",
            TcpState::SynRcvd => "Syn_received",
            TcpState::Established => "Established",
            TcpState::FinWait1 => "Finwait1",
            TcpState::FinWait2 => "Finwait2",
            TcpState::CloseWait => "Close_wait",
            TcpState::LastAck => "Last_ack",
            TcpState::Closing => "Closing",
            TcpState::TimeWait => "Time_wait",
            TcpState::Closed => "Closed",
        }
    }
}

/// A parsed TCP segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgment.
    pub ack: u32,
    /// Flag bits.
    pub flags: u16,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

static ENCODE_SITE: Site = Site::new("tcp.encode");
static SEGMENT_SITE: Site = Site::new("tcp.segment");
static RX_SITE: Site = Site::new("tcp.rxcopy");

/// Serializes a segment with checksum.
pub fn encode_segment(s: &Segment) -> Vec<u8> {
    ENCODE_SITE.record(TCP_HDR + s.payload.len());
    let mut b = Vec::with_capacity(TCP_HDR + s.payload.len());
    b.extend_from_slice(&s.sport.to_be_bytes());
    b.extend_from_slice(&s.dport.to_be_bytes());
    b.extend_from_slice(&s.seq.to_be_bytes());
    b.extend_from_slice(&s.ack.to_be_bytes());
    let offset_flags = ((5u16) << 12) | (s.flags & 0x3f);
    b.extend_from_slice(&offset_flags.to_be_bytes());
    b.extend_from_slice(&s.window.to_be_bytes());
    b.extend_from_slice(&[0, 0]); // checksum
    b.extend_from_slice(&[0, 0]); // urgent
    b.extend_from_slice(&s.payload);
    let sum = internet_checksum(&b);
    b[16..18].copy_from_slice(&sum.to_be_bytes());
    b
}

/// Parses and checksum-verifies a segment.
pub fn decode_segment(b: &[u8]) -> Option<Segment> {
    if b.len() < TCP_HDR {
        return None;
    }
    if internet_checksum(b) != 0 {
        return None;
    }
    let offset_flags = u16::from_be_bytes([b[12], b[13]]);
    let data_off = ((offset_flags >> 12) & 0xf) as usize * 4;
    if data_off < TCP_HDR || data_off > b.len() {
        return None;
    }
    Some(Segment {
        sport: u16::from_be_bytes([b[0], b[1]]),
        dport: u16::from_be_bytes([b[2], b[3]]),
        seq: u32::from_be_bytes(b.get(4..8)?.try_into().ok()?),
        ack: u32::from_be_bytes(b.get(8..12)?.try_into().ok()?),
        flags: offset_flags & 0x3f,
        window: u16::from_be_bytes([b[14], b[15]]),
        payload: b[data_off..].to_vec(),
    })
}

/// Wrapping sequence comparison: is `a` strictly before `b`?
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ConnKey {
    pub(crate) lport: u16,
    pub(crate) raddr: IpAddr,
    pub(crate) rport: u16,
}

/// Conversation id for the shared timer wheel / worker pool: an FNV-1a
/// hash of the connection key (salted with the protocol number so a
/// TCP and an IL conversation on the same ports land on different
/// shards). A hash — not a global counter — so the id is identical
/// across same-seed replay runs and the shard assignment stays
/// deterministic.
fn conv_of(key: &ConnKey) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in std::iter::once(TCP_PROTO)
        .chain(key.raddr.0.to_be_bytes())
        .chain(key.lport.to_be_bytes())
        .chain(key.rport.to_be_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Aggregate TCP counters; the blind-retransmission numbers feed the
/// IL-vs-TCP experiment. All live in the stack's netlog registry under
/// `tcp.*` names.
pub struct TcpStats {
    /// Segments sent (first transmissions).
    pub tx_segments: Counter,
    /// Segments received and accepted.
    pub rx_segments: Counter,
    /// Segments retransmitted blindly after a timeout.
    pub retransmit_segments: Counter,
    /// Payload bytes retransmitted.
    pub retransmit_bytes: Counter,
    /// Fast retransmits triggered by triple duplicate acks.
    pub fast_retransmits: Counter,
}

impl TcpStats {
    fn new(netlog: &NetLog) -> TcpStats {
        let reg = &netlog.registry;
        TcpStats {
            tx_segments: reg.counter("tcp.tx"),
            rx_segments: reg.counter("tcp.rx"),
            retransmit_segments: reg.counter("tcp.rexmit"),
            retransmit_bytes: reg.counter("tcp.rexmitbytes"),
            fast_retransmits: reg.counter("tcp.fastrexmit"),
        }
    }

    /// Renders the counters as `key: value` lines for a `stats` file.
    pub fn render(&self) -> String {
        format!(
            "tcpTx: {}\ntcpRx: {}\ntcpRexmit: {}\ntcpRexmitBytes: {}\ntcpFastRexmit: {}\n",
            self.tx_segments.get(),
            self.rx_segments.get(),
            self.retransmit_segments.get(),
            self.retransmit_bytes.get(),
            self.fast_retransmits.get()
        )
    }
}

/// The per-stack TCP state.
pub struct TcpModule {
    conns: Mutex<HashMap<ConnKey, Arc<TcpConn>>>,
    listeners: Mutex<HashMap<u16, Arc<ListenerShared>>>,
    ports: PortSpace,
    /// Aggregate counters.
    pub stats: TcpStats,
    /// The stack's instrumentation block, for retransmission events.
    netlog: Arc<NetLog>,
}

struct ListenerShared {
    backlog_tx: Sender<Arc<TcpConn>>,
    backlog_rx: Receiver<Arc<TcpConn>>,
}

struct Inner {
    state: TcpState,
    // Send side.
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    /// Bytes from `snd_una` onward: unacknowledged plus unsent.
    send_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_seq: Option<u32>,
    // Receive side.
    rcv_nxt: u32,
    recv_buf: VecDeque<u8>,
    ooo: BTreeMap<u32, Vec<u8>>,
    peer_fin: Option<u32>,
    fin_taken: bool,
    // Timing.
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    rtt_probe: Option<(u32, Instant)>,
    rtx_deadline: Option<Instant>,
    retries: u32,
    time_wait_until: Option<Instant>,
    /// The wheel timer armed at the earliest pending deadline
    /// (retransmission or TIME-WAIT expiry), if any.
    timer: Option<wheel::TimerId>,
    err: Option<String>,
    // Congestion control (Tahoe/Reno-style; §3's "TCP has a high
    // overhead" includes all of this machinery).
    mss: usize,
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    /// The last writer's nettrace root: byte streams have no message
    /// identity, so a retransmission is attributed to the most recent
    /// traced writer.
    trace: Option<trace::TraceHandle>,
}

impl Inner {
    fn inflight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Congestion events halve the pipe estimate.
    fn enter_recovery(&mut self) {
        self.ssthresh = (self.inflight() / 2).max(2 * self.mss as u32);
    }

    /// Opens the congestion window for `acked` newly acknowledged bytes:
    /// exponentially in slow start, linearly in congestion avoidance.
    fn grow_cwnd(&mut self, acked: u32) {
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(acked).min(self.ssthresh.max(self.cwnd + acked));
        } else {
            let mss = self.mss as u32;
            self.cwnd = self
                .cwnd
                .saturating_add((mss.saturating_mul(mss) / self.cwnd.max(1)).max(1));
        }
        self.cwnd = self.cwnd.min(SND_BUF_MAX as u32);
    }

    fn window_avail(&self) -> u16 {
        (RCV_BUF_MAX.saturating_sub(self.recv_buf.len())).min(u16::MAX as usize) as u16
    }

    fn record_rtt(&mut self, sample: Duration) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = sample / 2;
                sample
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample);
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                (srtt * 7 + sample) / 8
            }
        };
        self.srtt = Some(srtt);
        self.rto = (srtt + 4 * self.rttvar).clamp(RTO_MIN, RTO_MAX);
    }
}

/// One TCP connection.
pub struct TcpConn {
    stack: Weak<IpStack>,
    key: ConnKey,
    /// Shard key for the timer wheel and worker pool.
    conv: u64,
    inner: Mutex<Inner>,
    /// Signaled on state changes and arriving data.
    readable: Condvar,
    /// Signaled when send-buffer space opens.
    writable: Condvar,
    /// Set on passively opened connections until the handshake
    /// completes, then used to hand the connection to `accept`.
    pending_listener: Mutex<Option<Arc<ListenerShared>>>,
}

impl TcpModule {
    pub(crate) fn new(netlog: &Arc<NetLog>) -> TcpModule {
        TcpModule {
            conns: Mutex::named(HashMap::new(), "inet.tcp.conns"),
            listeners: Mutex::named(HashMap::new(), "inet.tcp.listeners"),
            ports: PortSpace::new(),
            stats: TcpStats::new(netlog),
            netlog: Arc::clone(netlog),
        }
    }

    /// Actively opens a connection; blocks until established or failed.
    pub fn connect(
        &self,
        stack: &Arc<IpStack>,
        dst: IpAddr,
        dport: u16,
    ) -> crate::Result<Arc<TcpConn>> {
        self.connect_from(stack, 0, dst, dport)
    }

    /// Actively opens a connection from a specific local port.
    pub fn connect_from(
        &self,
        stack: &Arc<IpStack>,
        lport: u16,
        dst: IpAddr,
        dport: u16,
    ) -> crate::Result<Arc<TcpConn>> {
        let lport = if lport == 0 {
            self.ports.alloc()?
        } else {
            self.ports.claim(lport)?
        };
        let key = ConnKey {
            lport,
            raddr: dst,
            rport: dport,
        };
        let iss = initial_seq();
        let conn = TcpConn::fresh(stack, key, TcpState::SynSent, iss, 0);
        {
            let mut conns = self.conns.lock();
            if conns.contains_key(&key) {
                self.ports.release(lport);
                return Err(NineError::new("connection already exists"));
            }
            conns.insert(key, Arc::clone(&conn));
        }
        // A failed transmit or timer arm must not leak the conn in the
        // conns table: tear it down and surface the error to the
        // dialer.
        let setup = conn.transmit_flags(SYN, iss, 0, &[]).and_then(|()| {
            let mut inner = conn.inner.lock();
            inner.snd_nxt = iss.wrapping_add(1);
            inner.rtx_deadline = Some(time::now() + inner.rto);
            conn.rearm(&mut inner)
                .map_err(|e| NineError::new(format!("tcp timer: {e}")))
        });
        if let Err(e) = setup {
            conn.teardown();
            return Err(e);
        }
        // Wait for the handshake to finish.
        let mut inner = conn.inner.lock();
        let deadline = time::now() + Duration::from_secs(10);
        while inner.state == TcpState::SynSent || inner.state == TcpState::SynRcvd {
            if conn.readable.wait_until(&mut inner, deadline).timed_out() {
                inner.err = Some("connection timed out".to_string());
                inner.state = TcpState::Closed;
                break;
            }
        }
        match &inner.err {
            Some(e) => {
                let e = e.clone();
                drop(inner);
                conn.teardown();
                Err(NineError::new(e))
            }
            None => {
                drop(inner);
                Ok(conn)
            }
        }
    }

    /// Passively opens a listening port.
    pub fn listen(&self, stack: &Arc<IpStack>, port: u16) -> crate::Result<TcpListener> {
        let port = if port == 0 {
            self.ports.alloc()?
        } else {
            self.ports.claim(port)?
        };
        let (tx, rx) = bounded(64);
        let shared = Arc::new(ListenerShared {
            backlog_tx: tx,
            backlog_rx: rx,
        });
        self.listeners.lock().insert(port, Arc::clone(&shared));
        Ok(TcpListener {
            stack: Arc::downgrade(stack),
            port,
            shared,
        })
    }

    pub(crate) fn input(stack: &Arc<IpStack>, src: IpAddr, data: &[u8]) {
        let Some(seg) = decode_segment(data) else {
            return;
        };
        stack.tcp.stats.rx_segments.inc();
        let key = ConnKey {
            lport: seg.dport,
            raddr: src,
            rport: seg.sport,
        };
        let conn = stack.tcp.conns.lock().get(&key).cloned();
        if let Some(conn) = conn {
            conn.handle(&seg);
            return;
        }
        // No connection: maybe a listener?
        if seg.flags & SYN != 0 && seg.flags & ACK == 0 {
            let listener = stack.tcp.listeners.lock().get(&seg.dport).cloned();
            if let Some(listener) = listener {
                let iss = initial_seq();
                let conn = TcpConn::fresh(
                    stack,
                    key,
                    TcpState::SynRcvd,
                    iss,
                    seg.seq.wrapping_add(1),
                );
                {
                    let mut inner = conn.inner.lock();
                    inner.snd_wnd = seg.window as u32;
                    inner.snd_nxt = iss.wrapping_add(1);
                    inner.rtx_deadline = Some(time::now() + inner.rto);
                }
                stack.tcp.conns.lock().insert(key, Arc::clone(&conn));
                let ack = seg.seq.wrapping_add(1);
                let _ = conn.transmit_flags(SYN | ACK, iss, ack, &[]);
                let armed = {
                    let mut inner = conn.inner.lock();
                    conn.rearm(&mut inner)
                };
                if armed.is_err() {
                    // No timer means the handshake can never be
                    // retried; drop the embryonic conn rather than
                    // leak it. The peer will retransmit its SYN.
                    conn.teardown();
                    return;
                }
                // Queued for accept() once the handshake completes; the
                // pending listener reference rides in the conn.
                *conn.pending_listener.lock() = Some(listener);
                return;
            }
        }
        // Neither connection nor listener: refuse.
        if seg.flags & RST == 0 {
            let rst = Segment {
                sport: seg.dport,
                dport: seg.sport,
                seq: seg.ack,
                ack: seg.seq.wrapping_add(seg.payload.len() as u32),
                flags: RST | ACK,
                window: 0,
                payload: Vec::new(),
            };
            let _ = stack.send(src, TCP_PROTO, &encode_segment(&rst));
        }
    }

    pub(crate) fn remove_conn(&self, key: &ConnKey) {
        if self.conns.lock().remove(key).is_some() {
            self.ports.release(key.lport);
        }
    }

    /// Number of live connections (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.conns.lock().len()
    }
}

/// A passive listener.
pub struct TcpListener {
    stack: Weak<IpStack>,
    port: u16,
    shared: Arc<ListenerShared>,
}

impl TcpListener {
    /// The listening port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks for the next established connection.
    pub fn accept(&self) -> crate::Result<Arc<TcpConn>> {
        self.shared
            .backlog_rx
            .recv()
            .map_err(|_| NineError::new("listener closed"))
    }

    /// Waits for a connection until the timeout elapses.
    pub fn accept_timeout(&self, d: Duration) -> crate::Result<Arc<TcpConn>> {
        self.shared
            .backlog_rx
            .recv_timeout(d)
            .map_err(|_| NineError::new("timed out"))
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        if let Some(stack) = self.stack.upgrade() {
            stack.tcp.listeners.lock().remove(&self.port);
            stack.tcp.ports.release(self.port);
        }
    }
}

fn initial_seq() -> u32 {
    // Clock-derived ISS, like 4.4BSD; fine for a simulator. The wall
    // clock is a support-layer privilege (see `plan9_support::time`).
    plan9_support::time::unix_subsec_nanos().wrapping_mul(2654435761)
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpConn({} -> {})", self.local_string(), self.remote_string())
    }
}

impl TcpConn {
    fn fresh(
        stack: &Arc<IpStack>,
        key: ConnKey,
        state: TcpState,
        iss: u32,
        rcv_nxt: u32,
    ) -> Arc<TcpConn> {
        let mss = stack.mtu() - TCP_HDR;
        Arc::new(TcpConn {
            stack: Arc::downgrade(stack),
            key,
            conv: conv_of(&key),
            inner: Mutex::named(Inner {
                state,
                snd_una: iss,
                snd_nxt: iss,
                snd_wnd: RCV_BUF_MAX as u32,
                send_buf: VecDeque::new(),
                fin_queued: false,
                fin_seq: None,
                rcv_nxt,
                recv_buf: VecDeque::new(),
                ooo: BTreeMap::new(),
                peer_fin: None,
                fin_taken: false,
                srtt: None,
                rttvar: Duration::ZERO,
                rto: RTO_INITIAL,
                rtt_probe: None,
                rtx_deadline: None,
                retries: 0,
                time_wait_until: None,
                timer: None,
                err: None,
                mss,
                // Classic initial window: a couple of segments.
                cwnd: 2 * mss as u32,
                ssthresh: RCV_BUF_MAX as u32,
                dup_acks: 0,
                trace: None,
            }, "inet.tcp.conn"),
            readable: Condvar::new(),
            writable: Condvar::new(),
            pending_listener: Mutex::named(None, "inet.tcp.accept"),
        })
    }

    /// The local address string for the `local` file: `ip port`.
    pub fn local_string(&self) -> String {
        match self.stack.upgrade() {
            Some(s) => format!("{} {}", s.addr(), self.key.lport),
            None => format!("? {}", self.key.lport),
        }
    }

    /// The remote address string for the `remote` file.
    pub fn remote_string(&self) -> String {
        format!("{} {}", self.key.raddr, self.key.rport)
    }

    /// The connection state.
    pub fn state(&self) -> TcpState {
        self.inner.lock().state
    }

    /// The status line for the `status` file.
    pub fn status_string(&self) -> String {
        let inner = self.inner.lock();
        format!(
            "{} srtt {} unacked {} cwnd {} ssthresh {}",
            inner.state.name(),
            inner
                .srtt
                .map(|d| format!("{}us", d.as_micros()))
                .unwrap_or_else(|| "-".to_string()),
            inner.snd_nxt.wrapping_sub(inner.snd_una),
            inner.cwnd,
            inner.ssthresh,
        )
    }

    fn mss(&self) -> usize {
        self.stack
            .upgrade()
            .map(|s| s.mtu() - TCP_HDR)
            .unwrap_or(512)
    }

    fn transmit_flags(&self, flags: u16, seq: u32, ack: u32, payload: &[u8]) -> crate::Result<()> {
        let stack = self
            .stack
            .upgrade()
            .ok_or_else(|| NineError::new("stack is down"))?;
        let window = self.inner.lock().window_avail();
        let seg = Segment {
            sport: self.key.lport,
            dport: self.key.rport,
            seq,
            ack,
            flags,
            window,
            payload: {
                SEGMENT_SITE.record(payload.len());
                payload.to_vec()
            },
        };
        stack.tcp.stats.tx_segments.inc();
        stack.send(self.key.raddr, TCP_PROTO, &encode_segment(&seg))
    }

    /// Writes bytes into the stream; blocks while the send buffer is
    /// full. Boundaries are NOT preserved — this is TCP.
    pub fn write(self: &Arc<Self>, data: &[u8]) -> crate::Result<usize> {
        let cur = trace::current();
        let w0 = cur.as_ref().map(|_| time::now());
        let mut offered = 0usize;
        while offered < data.len() {
            {
                let mut inner = self.inner.lock();
                if cur.is_some() && offered == 0 {
                    inner.trace = cur.clone();
                }
                loop {
                    match inner.state {
                        TcpState::Established | TcpState::CloseWait => {}
                        _ => {
                            return Err(NineError::new(
                                inner.err.clone().unwrap_or_else(|| "hungup".to_string()),
                            ))
                        }
                    }
                    if inner.send_buf.len() < SND_BUF_MAX {
                        break;
                    }
                    self.writable.wait(&mut inner);
                }
                let room = SND_BUF_MAX - inner.send_buf.len();
                let take = room.min(data.len() - offered);
                inner
                    .send_buf
                    .extend(data[offered..offered + take].iter().copied());
                offered += take;
            }
            self.pump();
        }
        if let (Some(h), Some(t0)) = (&cur, w0) {
            h.span(Facility::Tcp, "tcp write", t0, time::now());
        }
        Ok(data.len())
    }

    /// Pushes out as many segments as the windows allow.
    fn pump(self: &Arc<Self>) {
        loop {
            let (seq, ack, chunk, set_probe) = {
                let mut inner = self.inner.lock();
                if !matches!(
                    inner.state,
                    TcpState::Established
                        | TcpState::CloseWait
                        | TcpState::FinWait1
                        | TcpState::LastAck
                ) {
                    return;
                }
                let in_flight = inner.snd_nxt.wrapping_sub(inner.snd_una) as usize;
                let unsent_off = in_flight;
                if unsent_off >= inner.send_buf.len() {
                    // Data is fully in flight; maybe a FIN is pending.
                    if inner.fin_queued && inner.fin_seq.is_none() {
                        let seq = inner.snd_nxt;
                        inner.fin_seq = Some(seq);
                        inner.snd_nxt = seq.wrapping_add(1);
                        let ack = inner.rcv_nxt;
                        if inner.rtx_deadline.is_none() {
                            inner.rtx_deadline = Some(time::now() + inner.rto);
                        }
                        let _ = self.rearm(&mut inner);
                        drop(inner);
                        let _ = self.transmit_flags(FIN | ACK, seq, ack, &[]);
                        continue;
                    }
                    return;
                }
                // Effective window: the receiver's advertisement capped
                // by the congestion window.
                let wnd = inner.snd_wnd.min(inner.cwnd).max(1) as usize;
                if in_flight >= wnd {
                    return;
                }
                let mss = self.mss();
                let n = (inner.send_buf.len() - unsent_off)
                    .min(mss)
                    .min(wnd - in_flight);
                let chunk: Vec<u8> = inner
                    .send_buf
                    .iter()
                    .skip(unsent_off)
                    .take(n)
                    .copied()
                    .collect();
                let seq = inner.snd_nxt;
                inner.snd_nxt = seq.wrapping_add(n as u32);
                if inner.rtx_deadline.is_none() {
                    inner.rtx_deadline = Some(time::now() + inner.rto);
                }
                let _ = self.rearm(&mut inner);
                let set_probe = inner.rtt_probe.is_none();
                if set_probe {
                    inner.rtt_probe = Some((seq.wrapping_add(n as u32), time::now()));
                }
                (seq, inner.rcv_nxt, chunk, set_probe)
            };
            let _ = set_probe;
            let _ = self.transmit_flags(ACK | PSH, seq, ack, &chunk);
        }
    }

    /// Reads up to `max` bytes; blocks until data, EOF (`Ok(empty)`) or
    /// error.
    pub fn read(&self, max: usize) -> crate::Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        loop {
            if !inner.recv_buf.is_empty() {
                let n = inner.recv_buf.len().min(max);
                let out: Vec<u8> = inner.recv_buf.drain(..n).collect();
                // The window may have been closed; let the peer know it
                // reopened by acking from the timer thread eventually.
                return Ok(out);
            }
            if inner.peer_fin.is_some() && inner.fin_taken {
                return Ok(Vec::new()); // orderly EOF
            }
            if let Some(e) = &inner.err {
                return Err(NineError::new(e.clone()));
            }
            if inner.state == TcpState::Closed {
                return Ok(Vec::new());
            }
            self.readable.wait(&mut inner);
        }
    }

    /// Half-closes the connection: no more writes, reads drain.
    pub fn close(self: &Arc<Self>) {
        let transition = {
            let mut inner = self.inner.lock();
            match inner.state {
                TcpState::Established => {
                    inner.state = TcpState::FinWait1;
                    inner.fin_queued = true;
                    true
                }
                TcpState::CloseWait => {
                    inner.state = TcpState::LastAck;
                    inner.fin_queued = true;
                    true
                }
                TcpState::SynSent | TcpState::SynRcvd => {
                    inner.state = TcpState::Closed;
                    false
                }
                _ => false,
            }
        };
        if transition {
            self.pump();
        }
        // A close from SynSent/SynRcvd goes straight to Closed with
        // nothing in flight; reap it (and its timer) immediately.
        if self.inner.lock().state == TcpState::Closed {
            self.teardown();
        }
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Aborts the connection with a RST.
    pub fn abort(&self) {
        let (seq, ack) = {
            let mut inner = self.inner.lock();
            inner.state = TcpState::Closed;
            inner.err = Some("connection aborted".to_string());
            (inner.snd_nxt, inner.rcv_nxt)
        };
        let _ = self.transmit_flags(RST | ACK, seq, ack, &[]);
        self.teardown();
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn teardown(&self) {
        let timer = self.inner.lock().timer.take();
        if let Some(id) = timer {
            wheel::cancel(id);
        }
        if let Some(stack) = self.stack.upgrade() {
            stack.tcp.remove_conn(&self.key);
        }
    }

    /// (Re-)arms the wheel timer at the earliest pending deadline:
    /// the retransmission deadline, or TIME-WAIT expiry. Must be
    /// called whenever either deadline changes. Never *extends* an
    /// armed timer — an early fire just re-evaluates and re-arms —
    /// because the armed [`wheel::TimerId`] may already be in flight.
    fn rearm(self: &Arc<Self>, inner: &mut Inner) -> std::io::Result<()> {
        let want = match inner.state {
            TcpState::Closed => None,
            TcpState::TimeWait => inner.time_wait_until,
            _ => inner.rtx_deadline,
        };
        let Some(want) = want else {
            if let Some(id) = inner.timer.take() {
                wheel::cancel(id);
            }
            return Ok(());
        };
        if let Some(id) = inner.timer {
            if id.deadline() <= want {
                return Ok(());
            }
            wheel::cancel(id);
            inner.timer = None;
        }
        let conn = Arc::clone(self);
        let id = wheel::schedule(self.conv, want, move || conn.timer_fire())?;
        inner.timer = Some(id);
        Ok(())
    }

    /// The wheel callback: one timer expiry, run on this
    /// conversation's pool shard. Handles TIME-WAIT expiry and the
    /// retransmission timeout (blind go-back-N from `snd_una`), then
    /// re-arms for the next deadline.
    fn timer_fire(self: Arc<Self>) {
        let mut actions: Vec<(u16, u32, u32, Vec<u8>)> = Vec::new();
        let mut rexmit_trace: Option<trace::TraceHandle> = None;
        let mut dead = false;
        {
            let mut inner = self.inner.lock();
            inner.timer = None;
            match inner.state {
                TcpState::Closed => dead = true,
                TcpState::TimeWait => {
                    if inner.time_wait_until.is_some_and(|until| time::now() >= until) {
                        inner.state = TcpState::Closed;
                        dead = true;
                    } else {
                        let _ = self.rearm(&mut inner);
                    }
                }
                _ => {
                    let due = inner.rtx_deadline.is_some_and(|d| time::now() >= d);
                    if !due {
                        // A deadline moved later since this timer was
                        // armed; aim again.
                        let _ = self.rearm(&mut inner);
                    } else {
                        // Timeout: retransmit blindly from snd_una
                        // (go-back-N).
                        inner.retries += 1;
                        if inner.retries > MAX_RETRIES {
                            inner.err = Some("connection timed out".to_string());
                            inner.state = TcpState::Closed;
                            self.readable.notify_all();
                            self.writable.notify_all();
                            dead = true;
                        } else {
                            inner.rto = (inner.rto * 2).min(RTO_MAX);
                            inner.rtx_deadline = Some(time::now() + inner.rto);
                            inner.rtt_probe = None; // Karn's rule
                            // A timeout collapses the congestion window
                            // (Tahoe).
                            inner.enter_recovery();
                            inner.cwnd = inner.mss as u32;
                            inner.dup_acks = 0;
                            rexmit_trace = inner.trace.clone();
                            match inner.state {
                                TcpState::SynSent => {
                                    actions.push((SYN, inner.snd_una, 0, Vec::new()));
                                }
                                TcpState::SynRcvd => {
                                    actions.push((
                                        SYN | ACK,
                                        inner.snd_una,
                                        inner.rcv_nxt,
                                        Vec::new(),
                                    ));
                                }
                                _ => {
                                    let mss = self.mss();
                                    let unacked =
                                        inner.snd_nxt.wrapping_sub(inner.snd_una) as usize;
                                    let fin_in_flight =
                                        inner.fin_seq.is_some() && unacked > 0;
                                    let data_len =
                                        if fin_in_flight { unacked - 1 } else { unacked }
                                            .min(inner.send_buf.len());
                                    let mut off = 0usize;
                                    while off < data_len {
                                        let n = (data_len - off).min(mss);
                                        let chunk: Vec<u8> = inner
                                            .send_buf
                                            .iter()
                                            .skip(off)
                                            .take(n)
                                            .copied()
                                            .collect();
                                        actions.push((
                                            ACK | PSH,
                                            inner.snd_una.wrapping_add(off as u32),
                                            inner.rcv_nxt,
                                            chunk,
                                        ));
                                        off += n;
                                    }
                                    if let Some(fin_seq) = inner.fin_seq {
                                        if seq_le(inner.snd_una, fin_seq) {
                                            actions.push((
                                                FIN | ACK,
                                                fin_seq,
                                                inner.rcv_nxt,
                                                Vec::new(),
                                            ));
                                        }
                                    }
                                    if actions.is_empty() {
                                        // Nothing outstanding after all.
                                        inner.rtx_deadline = None;
                                        inner.retries = 0;
                                    }
                                }
                            }
                            let _ = self.rearm(&mut inner);
                        }
                    }
                }
            }
        }
        if !actions.is_empty() {
            if let Some(stack) = self.stack.upgrade() {
                let bytes: usize = actions.iter().map(|a| a.3.len()).sum();
                stack.tcp.stats.retransmit_segments.add(actions.len() as u64);
                stack.tcp.stats.retransmit_bytes.add(bytes as u64);
                let n = actions.len();
                stack.tcp.netlog.events.log(Facility::Tcp, || {
                    format!("timeout rexmit {n} segments {bytes} bytes")
                });
                if let Some(h) = &rexmit_trace {
                    h.event(Facility::Tcp, || {
                        format!("timeout rexmit {n} segments {bytes} bytes")
                    });
                }
                for (flags, seq, ack, payload) in actions {
                    let _ = self.transmit_flags(flags, seq, ack, &payload);
                }
            } else {
                dead = true;
            }
        }
        if dead {
            self.teardown();
        }
    }

    fn handle(self: &Arc<Self>, seg: &Segment) {
        let mut ack_now = false;
        let mut notify_read = false;
        let mut notify_write = false;
        let mut deliver_to_listener = false;
        {
            let mut inner = self.inner.lock();
            if seg.flags & RST != 0 {
                inner.err = Some("connection refused".to_string());
                inner.state = TcpState::Closed;
                drop(inner);
                self.readable.notify_all();
                self.writable.notify_all();
                self.teardown();
                return;
            }
            inner.snd_wnd = seg.window as u32;
            match inner.state {
                TcpState::SynSent => {
                    if seg.flags & (SYN | ACK) == (SYN | ACK)
                        && seg.ack == inner.snd_nxt
                    {
                        inner.rcv_nxt = seg.seq.wrapping_add(1);
                        inner.snd_una = seg.ack;
                        inner.state = TcpState::Established;
                        inner.rtx_deadline = None;
                        inner.retries = 0;
                        ack_now = true;
                        notify_read = true;
                    }
                }
                TcpState::SynRcvd => {
                    if seg.flags & ACK != 0 && seg.ack == inner.snd_nxt {
                        inner.snd_una = seg.ack;
                        inner.state = TcpState::Established;
                        inner.rtx_deadline = None;
                        inner.retries = 0;
                        deliver_to_listener = true;
                        notify_read = true;
                        // Fall through to process any piggybacked data.
                        self.process_data(&mut inner, seg, &mut ack_now, &mut notify_read);
                    }
                }
                _ => {
                    // ACK processing.
                    if seg.flags & ACK != 0
                        && seg.ack == inner.snd_una
                        && inner.snd_una != inner.snd_nxt
                        && seg.payload.is_empty()
                        && seg.flags & (SYN | FIN) == 0
                    {
                        // A duplicate ack: the peer is missing the segment
                        // at snd_una. Three of them trigger fast
                        // retransmit (Reno).
                        inner.dup_acks += 1;
                        if inner.dup_acks == 3 {
                            inner.enter_recovery();
                            inner.cwnd = inner.ssthresh + 3 * inner.mss as u32;
                            let n = (inner.snd_nxt.wrapping_sub(inner.snd_una) as usize)
                                .min(inner.mss)
                                .min(inner.send_buf.len());
                            let chunk: Vec<u8> =
                                inner.send_buf.iter().take(n).copied().collect();
                            let (seq, ack) = (inner.snd_una, inner.rcv_nxt);
                            inner.rtt_probe = None;
                            drop(inner);
                            if let Some(stack) = self.stack.upgrade() {
                                stack.tcp.stats.fast_retransmits.inc();
                                stack.tcp.stats.retransmit_segments.inc();
                                stack.tcp.stats.retransmit_bytes.add(chunk.len() as u64);
                                let len = chunk.len();
                                stack.tcp.netlog.events.log(Facility::Tcp, || {
                                    format!("fast rexmit seq {seq} len {len}")
                                });
                            }
                            if !chunk.is_empty() {
                                let _ = self.transmit_flags(ACK | PSH, seq, ack, &chunk);
                            }
                            return;
                        }
                    }
                    if seg.flags & ACK != 0 && seq_lt(inner.snd_una, seg.ack)
                        && seq_le(seg.ack, inner.snd_nxt)
                    {
                        let acked = seg.ack.wrapping_sub(inner.snd_una) as usize;
                        inner.dup_acks = 0;
                        inner.grow_cwnd(acked as u32);
                        // Remove acked payload bytes (the FIN octet is not
                        // in the buffer).
                        let fin_acked = inner
                            .fin_seq
                            .map(|f| seq_lt(f, seg.ack))
                            .unwrap_or(false);
                        let data_acked = if fin_acked { acked - 1 } else { acked };
                        let drain = data_acked.min(inner.send_buf.len());
                        inner.send_buf.drain(..drain);
                        inner.snd_una = seg.ack;
                        inner.retries = 0;
                        if let Some((probe_seq, at)) = inner.rtt_probe {
                            if seq_le(probe_seq, seg.ack) {
                                let sample = time::now().saturating_duration_since(at);
                                inner.record_rtt(sample);
                                inner.rtt_probe = None;
                            }
                        }
                        if inner.snd_una == inner.snd_nxt {
                            inner.rtx_deadline = None;
                        } else {
                            inner.rtx_deadline = Some(time::now() + inner.rto);
                        }
                        notify_write = true;
                        // FIN-related transitions on our side.
                        if fin_acked {
                            match inner.state {
                                TcpState::FinWait1 => inner.state = TcpState::FinWait2,
                                TcpState::Closing => {
                                    inner.state = TcpState::TimeWait;
                                    inner.time_wait_until =
                                        Some(time::now() + TIME_WAIT);
                                }
                                TcpState::LastAck => {
                                    inner.state = TcpState::Closed;
                                }
                                _ => {}
                            }
                            notify_read = true;
                        }
                    }
                    self.process_data(&mut inner, seg, &mut ack_now, &mut notify_read);
                }
            }
        }
        if ack_now {
            let (seq, ack) = {
                let inner = self.inner.lock();
                (inner.snd_nxt, inner.rcv_nxt)
            };
            let _ = self.transmit_flags(ACK, seq, ack, &[]);
        }
        if deliver_to_listener {
            if let Some(listener) = self.pending_listener.lock().take() {
                let _ = listener.backlog_tx.try_send(Arc::clone(self));
            }
        }
        if notify_read {
            self.readable.notify_all();
        }
        if notify_write {
            self.writable.notify_all();
            self.pump();
        }
        // Deadlines may have moved (acks clear or reset the rtx
        // deadline; FIN transitions start TIME-WAIT): re-aim the
        // wheel timer, and remove fully closed connections.
        let closed = {
            let mut inner = self.inner.lock();
            let _ = self.rearm(&mut inner);
            inner.state == TcpState::Closed
        };
        if closed {
            self.teardown();
        }
    }

    fn process_data(
        &self,
        inner: &mut Inner,
        seg: &Segment,
        ack_now: &mut bool,
        notify_read: &mut bool,
    ) {
        let has_fin = seg.flags & FIN != 0;
        if !seg.payload.is_empty() || has_fin {
            *ack_now = true;
        }
        if !seg.payload.is_empty() {
            if seg.seq == inner.rcv_nxt {
                RX_SITE.record(seg.payload.len());
                inner.recv_buf.extend(seg.payload.iter().copied());
                inner.rcv_nxt = inner.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                // Drain any out-of-order segments that now fit.
                while let Some((&s, _)) = inner.ooo.iter().next() {
                    if s != inner.rcv_nxt {
                        if seq_lt(s, inner.rcv_nxt) {
                            inner.ooo.remove(&s);
                            continue;
                        }
                        break;
                    }
                    let Some(data) = inner.ooo.remove(&s) else {
                        break; // key observed under this same lock
                    };
                    inner.rcv_nxt = inner.rcv_nxt.wrapping_add(data.len() as u32);
                    inner.recv_buf.extend(data);
                }
                *notify_read = true;
            } else if seq_lt(inner.rcv_nxt, seg.seq) {
                // Out of order: hold it (bounded) and let the ack we are
                // about to send act as a duplicate ack, cueing the
                // sender's fast retransmit.
                if inner.ooo.len() < 256 {
                    RX_SITE.record(seg.payload.len());
                    inner.ooo.insert(seg.seq, seg.payload.clone());
                }
            }
            // Old duplicate: just re-ack.
        }
        if has_fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == inner.rcv_nxt {
                inner.peer_fin = Some(fin_seq);
                inner.fin_taken = true;
                inner.rcv_nxt = inner.rcv_nxt.wrapping_add(1);
                match inner.state {
                    TcpState::Established => inner.state = TcpState::CloseWait,
                    TcpState::FinWait1 => inner.state = TcpState::Closing,
                    TcpState::FinWait2 => {
                        inner.state = TcpState::TimeWait;
                        inner.time_wait_until = Some(time::now() + TIME_WAIT);
                    }
                    _ => {}
                }
                *notify_read = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::tests::two_hosts;

    #[test]
    fn segment_codec_round_trip() {
        let s = Segment {
            sport: 5012,
            dport: 564,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: ACK | PSH,
            window: 8192,
            payload: b"Tattach".to_vec(),
        };
        let d = decode_segment(&encode_segment(&s)).unwrap();
        assert_eq!(d.sport, s.sport);
        assert_eq!(d.seq, s.seq);
        assert_eq!(d.flags, s.flags);
        assert_eq!(d.payload, s.payload);
    }

    #[test]
    fn corrupted_segment_rejected() {
        let s = Segment {
            sport: 1,
            dport: 2,
            seq: 3,
            ack: 4,
            flags: ACK,
            window: 100,
            payload: b"x".to_vec(),
        };
        let mut b = encode_segment(&s);
        b[4] ^= 1;
        assert!(decode_segment(&b).is_none());
    }

    #[test]
    fn connect_and_echo() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 564).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            loop {
                let data = conn.read(4096).unwrap();
                if data.is_empty() {
                    break;
                }
                conn.write(&data).unwrap();
            }
            conn.close();
        });
        let conn = a.tcp_module().connect(&a, b.addr(), 564).unwrap();
        assert_eq!(conn.state(), TcpState::Established);
        conn.write(b"hello tcp").unwrap();
        let mut got = Vec::new();
        while got.len() < 9 {
            got.extend(conn.read(4096).unwrap());
        }
        assert_eq!(got, b"hello tcp");
        conn.close();
        server.join().unwrap();
    }

    #[test]
    fn connection_refused() {
        let (a, b) = two_hosts();
        let err = a.tcp_module().connect(&a, b.addr(), 9).unwrap_err();
        assert!(err.0.contains("refused"), "{err}");
    }

    #[test]
    fn bulk_transfer_intact() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 7001).unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i * 7 + i / 251) as u8).collect();
        let expect = payload.clone();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut got = Vec::new();
            loop {
                let data = conn.read(65536).unwrap();
                if data.is_empty() {
                    break;
                }
                got.extend(data);
            }
            got
        });
        let conn = a.tcp_module().connect(&a, b.addr(), 7001).unwrap();
        conn.write(&payload).unwrap();
        conn.close();
        let got = server.join().unwrap();
        assert_eq!(got.len(), expect.len());
        assert_eq!(got, expect);
    }

    #[test]
    fn no_delimiters_preserved() {
        // TCP merges writes: two small writes may be read as one chunk.
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 7002).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(100));
            let mut got = Vec::new();
            while got.len() < 8 {
                let d = conn.read(4096).unwrap();
                if d.is_empty() {
                    break;
                }
                got.extend(d);
            }
            got
        });
        let conn = a.tcp_module().connect(&a, b.addr(), 7002).unwrap();
        conn.write(b"one").unwrap();
        conn.write(b"two38").unwrap();
        let got = server.join().unwrap();
        assert_eq!(got, b"onetwo38"); // stream, not messages
        conn.close();
    }

    #[test]
    fn survives_loss_by_blind_retransmission() {
        use plan9_netsim::ether::EtherSegment;
        use plan9_netsim::profile::Profiles;
        let seg = EtherSegment::new(Profiles::ether_fast().with_loss(0.15));
        let a = IpStack::new(
            seg.attach([8, 0, 0, 0, 0, 1]),
            crate::ip::IpConfig::local("10.1.0.1"),
        );
        let b = IpStack::new(
            seg.attach([8, 0, 0, 0, 0, 2]),
            crate::ip::IpConfig::local("10.1.0.2"),
        );
        let listener = b.tcp_module().listen(&b, 9000).unwrap();
        let payload: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut got = Vec::new();
            loop {
                let d = conn.read(65536).unwrap();
                if d.is_empty() {
                    break;
                }
                got.extend(d);
            }
            got
        });
        let conn = a.tcp_module().connect(&a, b.addr(), 9000).unwrap();
        conn.write(&payload).unwrap();
        conn.close();
        let got = server.join().unwrap();
        assert_eq!(got, expect);
        // Loss must have forced blind retransmissions.
        assert!(
            a.tcp_module().stats.retransmit_segments.get() > 0,
            "expected retransmissions under 15% loss"
        );
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 7010).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut got = 0usize;
            while got < 100_000 {
                let d = conn.read(65536).unwrap();
                if d.is_empty() {
                    break;
                }
                got += d.len();
            }
        });
        let conn = a.tcp_module().connect(&a, b.addr(), 7010).unwrap();
        let initial = conn.inner.lock().cwnd;
        conn.write(&vec![0u8; 100_000]).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let after = conn.inner.lock().cwnd;
        assert!(
            after > initial,
            "cwnd should grow during a clean transfer: {initial} -> {after}"
        );
        conn.close();
        server.join().unwrap();
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 7011).unwrap();
        let conn = a.tcp_module().connect(&a, b.addr(), 7011).unwrap();
        let _srv = listener.accept().unwrap();
        // Put unacked data in flight.
        conn.write(b"0123456789").unwrap();
        let (una, rcv) = {
            let inner = conn.inner.lock();
            (inner.snd_una, inner.rcv_nxt)
        };
        // Forge three duplicate acks for the in-flight data.
        for _ in 0..3 {
            conn.handle(&Segment {
                sport: 7011,
                dport: conn.key.lport,
                seq: rcv,
                ack: una,
                flags: ACK,
                window: 65000,
                payload: Vec::new(),
            });
        }
        assert_eq!(
            a.tcp_module().stats.fast_retransmits.get(),
            1
        );
        // The congestion window collapsed to ssthresh + 3 MSS.
        let inner = conn.inner.lock();
        assert!(inner.cwnd <= inner.ssthresh + 3 * inner.mss as u32 + 1);
        drop(inner);
        conn.close();
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 7012).unwrap();
        let conn = a.tcp_module().connect(&a, b.addr(), 7012).unwrap();
        let _srv = listener.accept().unwrap();
        // Silence the peer entirely (its receiver processes stop), then
        // write: the timer must fire and collapse the window.
        b.shutdown();
        std::thread::sleep(Duration::from_millis(100));
        conn.write(b"into the void").unwrap();
        std::thread::sleep(Duration::from_millis(600));
        let inner = conn.inner.lock();
        assert_eq!(inner.cwnd, inner.mss as u32, "timeout resets to 1 MSS");
        assert!(a.tcp_module().stats.retransmit_segments.get() > 0);
    }

    #[test]
    fn status_strings() {
        let (a, b) = two_hosts();
        let listener = b.tcp_module().listen(&b, 564).unwrap();
        let conn = a.tcp_module().connect(&a, b.addr(), 564).unwrap();
        let _srv = listener.accept().unwrap();
        assert!(conn.status_string().starts_with("Established"));
        assert!(conn.status_string().contains("cwnd"));
        assert!(conn.local_string().starts_with("10.0.0.1 "));
        assert_eq!(conn.remote_string(), format!("{} 564", b.addr()));
        conn.close();
    }
}
