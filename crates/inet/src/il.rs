//! IL: the Internet Link protocol (§3 of the paper).
//!
//! "IL is a lightweight protocol designed to be encapsulated by IP. It is
//! a connection-based protocol providing reliable transmission of
//! sequenced messages between machines."
//!
//! Faithful design points:
//!
//! * **Message-oriented**: one `send` is one message; delimiters are
//!   preserved end to end, so 9P RPCs need no marshaling.
//! * **No flow control**: "a small outstanding message window prevents
//!   too many incoming messages from being buffered; messages outside
//!   the window are discarded and must be retransmitted."
//! * **Two-way handshake** generating an initial sequence number at each
//!   end; data messages increment them so the receiver can resequence.
//! * **No blind retransmission**: "If a message is lost and a timeout
//!   occurs, a query message is sent"; the peer answers with its state
//!   and only genuinely missing messages are retransmitted — "this
//!   allows the protocol to behave well in congested networks, where
//!   blind retransmission would cause further congestion."
//! * **Adaptive timeouts** from a round-trip timer, so acknowledge and
//!   retransmission times track the network speed.

use crate::addr::IpAddr;
use crate::checksum::internet_checksum;
use crate::ip::IpStack;
use crate::ports::PortSpace;
use plan9_netlog::trace;
use plan9_netlog::{Counter, Facility, Histogram, NetLog};
use plan9_support::chan::{bounded, Receiver, Sender};
use plan9_support::copysite::Site;
use plan9_support::sync::{Condvar, Mutex};
use plan9_support::{time, wheel};
use plan9_ninep::NineError;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// The IP protocol number for IL.
pub const IL_PROTO: u8 = 40;

/// Bytes of IL header: sum(2) len(2) type(1) spec(1) src(2) dst(2)
/// id(4) ack(4).
pub const IL_HDR: usize = 18;

/// The outstanding-message window.
pub const IL_WINDOW: u32 = 20;

/// Largest single IL message (IP reassembly bounds the datagram).
pub const IL_MAX_MSG: usize = 60_000;

const RTO_INITIAL: Duration = Duration::from_millis(50);
const RTO_MIN: Duration = Duration::from_millis(20);
const RTO_MAX: Duration = Duration::from_millis(1000);
const ACK_DELAY: Duration = Duration::from_millis(5);
/// Send an immediate ack after this many unacknowledged data messages,
/// so bulk transfers are not throttled by the delayed-ack timer.
const ACK_BATCH: u32 = 8;
/// How many missing messages one State reply repairs; deeper holes take
/// another query round (keeps repair traffic proportional to real loss).
const REPAIR_BURST: usize = 3;
const MAX_RETRIES: u32 = 10;

/// IL message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IlType {
    /// Connection setup; carries the initial sequence number.
    Sync = 0,
    /// A sequenced data message.
    Data = 1,
    /// A standalone acknowledgment.
    Ack = 3,
    /// "A small control message containing the current sequence numbers
    /// as seen by the sender", sent on timeout.
    Query = 4,
    /// The answer to a query.
    State = 5,
    /// Connection teardown.
    Close = 6,
}

impl IlType {
    fn from_u8(b: u8) -> Option<IlType> {
        Some(match b {
            0 => IlType::Sync,
            1 => IlType::Data,
            3 => IlType::Ack,
            4 => IlType::Query,
            5 => IlType::State,
            6 => IlType::Close,
            _ => return None,
        })
    }
}

/// A parsed IL packet.
#[derive(Debug, Clone)]
pub struct IlPacket {
    /// Message type.
    pub typ: IlType,
    /// Source port.
    pub src: u16,
    /// Destination port.
    pub dst: u16,
    /// Sequence id of this message.
    pub id: u32,
    /// Latest in-sequence id seen from the peer.
    pub ack: u32,
    /// Payload (only for `Data`).
    pub payload: Vec<u8>,
}

static ENCODE_SITE: Site = Site::new("il.encode");
static DECODE_SITE: Site = Site::new("il.decode");
static SEGMENT_SITE: Site = Site::new("il.segment");
static RX_SITE: Site = Site::new("il.rxcopy");

/// Serializes an IL packet with checksum.
pub fn encode_il(p: &IlPacket) -> Vec<u8> {
    let len = (IL_HDR + p.payload.len()) as u16;
    ENCODE_SITE.record(len as usize);
    let mut b = Vec::with_capacity(len as usize);
    b.extend_from_slice(&[0, 0]); // sum
    b.extend_from_slice(&len.to_be_bytes());
    b.push(p.typ as u8);
    b.push(0); // spec
    b.extend_from_slice(&p.src.to_be_bytes());
    b.extend_from_slice(&p.dst.to_be_bytes());
    b.extend_from_slice(&p.id.to_be_bytes());
    b.extend_from_slice(&p.ack.to_be_bytes());
    b.extend_from_slice(&p.payload);
    let sum = internet_checksum(&b);
    b[0..2].copy_from_slice(&sum.to_be_bytes());
    b
}

/// Parses and checksum-verifies an IL packet.
pub fn decode_il(b: &[u8]) -> Option<IlPacket> {
    if b.len() < IL_HDR {
        return None;
    }
    let len = u16::from_be_bytes([b[2], b[3]]) as usize;
    if len < IL_HDR || len > b.len() {
        return None;
    }
    if internet_checksum(&b[..len]) != 0 {
        return None;
    }
    Some(IlPacket {
        typ: IlType::from_u8(b[4])?,
        src: u16::from_be_bytes([b[6], b[7]]),
        dst: u16::from_be_bytes([b[8], b[9]]),
        id: u32::from_be_bytes(b.get(10..14)?.try_into().ok()?),
        ack: u32::from_be_bytes(b.get(14..18)?.try_into().ok()?),
        payload: {
            DECODE_SITE.record(len - IL_HDR);
            b[IL_HDR..len].to_vec()
        },
    })
}

fn initial_seq() -> u32 {
    // Clock-derived initial id, like the TCP side. The wall clock is a
    // support-layer privilege (see `plan9_support::time`).
    plan9_support::time::unix_subsec_nanos().wrapping_mul(2246822519)
}

fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlState {
    /// Actively syncing (we sent the first Sync).
    Syncer,
    /// Passively syncing (we answered a Sync).
    Syncee,
    /// Messages may flow.
    Established,
    /// Close exchanged or in progress.
    Closing,
    /// Gone.
    Closed,
}

impl IlState {
    /// The name shown in the `status` file.
    pub fn name(&self) -> &'static str {
        match self {
            IlState::Syncer => "Syncer",
            IlState::Syncee => "Syncee",
            IlState::Established => "Established",
            IlState::Closing => "Closing",
            IlState::Closed => "Closed",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ConnKey {
    pub(crate) lport: u16,
    pub(crate) raddr: IpAddr,
    pub(crate) rport: u16,
}

/// The conversation id that keys this connection's timer-wheel fires
/// onto a worker-pool shard. An FNV-style mix of the 4-tuple rather
/// than a global counter so a seeded vtime replay shards identically
/// run after run.
fn conv_of(key: &ConnKey) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in key
        .raddr
        .0
        .to_be_bytes()
        .into_iter()
        .chain(key.lport.to_be_bytes())
        .chain(key.rport.to_be_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Aggregate IL counters, compared against TCP's in the §3 experiment.
/// All live in the stack's netlog registry under `il.*` names.
pub struct IlStats {
    /// Data messages sent (first transmissions).
    pub tx_msgs: Counter,
    /// Data messages received in sequence.
    pub rx_msgs: Counter,
    /// Query messages sent on timeout.
    pub queries: Counter,
    /// Acknowledgment messages sent.
    pub acks: Counter,
    /// Data messages retransmitted after a State reply showed them lost.
    pub retransmit_msgs: Counter,
    /// Payload bytes retransmitted.
    pub retransmit_bytes: Counter,
    /// Round-trip samples feeding the adaptive timeout (§3).
    pub rtt: Histogram,
}

impl IlStats {
    fn new(netlog: &NetLog) -> IlStats {
        let reg = &netlog.registry;
        IlStats {
            tx_msgs: reg.counter("il.tx"),
            rx_msgs: reg.counter("il.rx"),
            queries: reg.counter("il.queries"),
            acks: reg.counter("il.acks"),
            retransmit_msgs: reg.counter("il.rexmit"),
            retransmit_bytes: reg.counter("il.rexmitbytes"),
            rtt: reg.histogram("il.rtt"),
        }
    }

    /// Renders the counters plus the RTT histogram for a `stats` file.
    pub fn render(&self) -> String {
        format!(
            "ilTx: {}\nilRx: {}\nilQueries: {}\nilAcks: {}\nilRexmit: {}\nilRexmitBytes: {}\n{}",
            self.tx_msgs.get(),
            self.rx_msgs.get(),
            self.queries.get(),
            self.acks.get(),
            self.retransmit_msgs.get(),
            self.retransmit_bytes.get(),
            self.rtt.render()
        )
    }
}

/// The per-stack IL state.
pub struct IlModule {
    conns: Mutex<HashMap<ConnKey, Arc<IlConn>>>,
    listeners: Mutex<HashMap<u16, Arc<ListenerShared>>>,
    ports: PortSpace,
    /// Aggregate counters.
    pub stats: IlStats,
    /// The stack's instrumentation block, for query/repair events.
    netlog: Arc<NetLog>,
}

struct ListenerShared {
    /// `None` once [`IlModule::unlisten`] poisons the listener: the
    /// sender drop disconnects the channel, so a blocked `accept()`
    /// (and the protocol-device open parked inside it) errors out
    /// instead of waiting forever.
    backlog_tx: Mutex<Option<Sender<Arc<IlConn>>>>,
    backlog_rx: Receiver<Arc<IlConn>>,
}

struct Sent {
    payload: Vec<u8>,
    at: Instant,
    /// Set once the message has been retransmitted (Karn's rule: no RTT
    /// sample from it).
    rexmit: bool,
    /// The sender's nettrace root, captured at `send`: the ack (on the
    /// input thread), a repair (input thread) and a query (timer
    /// thread) all attribute back to the RPC that sent the message.
    trace: Option<trace::TraceHandle>,
}

struct Inner {
    state: IlState,
    /// Id of the last message we sent.
    snd_id: u32,
    /// Unacked messages, kept until the peer's ack covers them.
    unacked: BTreeMap<u32, Sent>,
    /// Last in-sequence id received from the peer.
    rcv_id: u32,
    /// Out-of-window... within-window out-of-order messages.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// In-sequence messages awaiting the reader.
    rcv_q: VecDeque<Vec<u8>>,
    peer_closed: bool,
    ack_due: Option<Instant>,
    /// Data messages received since our last ack left.
    rx_since_ack: u32,
    /// When we last retransmitted anything (Karn window).
    last_rexmit: Option<Instant>,
    rtx_deadline: Option<Instant>,
    retries: u32,
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    err: Option<String>,
    /// The armed timer-wheel entry covering the earliest of `ack_due`
    /// and `rtx_deadline`, if any.
    timer: Option<wheel::TimerId>,
}

impl Inner {
    fn record_rtt(&mut self, sample: Duration) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = sample / 2;
                sample
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample);
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                (srtt * 7 + sample) / 8
            }
        };
        self.srtt = Some(srtt);
        self.rto = (srtt + 4 * self.rttvar).clamp(RTO_MIN, RTO_MAX);
    }
}

/// One IL connection.
pub struct IlConn {
    stack: Weak<IpStack>,
    key: ConnKey,
    /// Conversation id: the shard key for timer fires and readiness
    /// service, so all of this conversation's work serializes.
    conv: u64,
    inner: Mutex<Inner>,
    readable: Condvar,
    window_open: Condvar,
    pending_listener: Mutex<Option<Arc<ListenerShared>>>,
    /// Readable-readiness hook for pool-serviced conversations.
    rx_notify: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

/// What [`IlConn::try_recv`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryRecv {
    /// A complete message.
    Msg(Vec<u8>),
    /// Nothing queued yet; the connection is still live.
    Empty,
    /// Orderly end of the conversation.
    Eof,
}

impl IlModule {
    pub(crate) fn new(netlog: &Arc<NetLog>) -> IlModule {
        IlModule {
            conns: Mutex::named(HashMap::new(), "inet.il.conns"),
            listeners: Mutex::named(HashMap::new(), "inet.il.listeners"),
            ports: PortSpace::new(),
            stats: IlStats::new(netlog),
            netlog: Arc::clone(netlog),
        }
    }

    /// Actively opens a connection; blocks until established or failed.
    pub fn connect(&self, stack: &Arc<IpStack>, dst: IpAddr, dport: u16) -> crate::Result<Arc<IlConn>> {
        self.connect_from(stack, 0, dst, dport)
    }

    /// Actively opens a connection from a specific local port.
    pub fn connect_from(
        &self,
        stack: &Arc<IpStack>,
        lport: u16,
        dst: IpAddr,
        dport: u16,
    ) -> crate::Result<Arc<IlConn>> {
        let lport = if lport == 0 {
            self.ports.alloc()?
        } else {
            self.ports.claim(lport)?
        };
        let key = ConnKey {
            lport,
            raddr: dst,
            rport: dport,
        };
        let iss = initial_seq();
        let conn = IlConn::fresh(stack, key, IlState::Syncer, iss);
        self.conns.lock().insert(key, Arc::clone(&conn));
        self.netlog.events.log(Facility::Il, || {
            format!("sync id {iss} to {dst}!{dport}")
        });
        // Any setup failure — the Sync transmit or arming the shared
        // timer (whose wheel/pool threads spawn lazily and can fail
        // under thread exhaustion) — must undo the conns entry and
        // release the port, not leak the table slot or panic.
        let setup = conn.transmit(IlType::Sync, iss, 0, &[]).and_then(|()| {
            let mut inner = conn.inner.lock();
            inner.rtx_deadline = Some(time::now() + inner.rto);
            conn.rearm(&mut inner)
                .map_err(|e| NineError::new(format!("il timer: {e}")))
        });
        if let Err(e) = setup {
            conn.teardown();
            return Err(e);
        }
        let mut inner = conn.inner.lock();
        let deadline = time::now() + Duration::from_secs(10);
        while inner.state == IlState::Syncer {
            if conn.readable.wait_until(&mut inner, deadline).timed_out() {
                inner.err = Some("connection timed out".to_string());
                inner.state = IlState::Closed;
                break;
            }
        }
        let verdict = match (&inner.err, inner.state) {
            (Some(e), _) => Err(e.clone()),
            (None, IlState::Established) => Ok(()),
            (None, _) => Err("connection refused".to_string()),
        };
        drop(inner);
        match verdict {
            Ok(()) => Ok(conn),
            Err(e) => {
                conn.teardown();
                Err(NineError::new(e))
            }
        }
    }

    /// Live conversations in the conns table (diagnostics and tests).
    pub fn conn_count(&self) -> usize {
        self.conns.lock().len()
    }

    /// Passively opens a listening port (17008 is the 9fs convention).
    pub fn listen(&self, stack: &Arc<IpStack>, port: u16) -> crate::Result<IlListener> {
        let port = if port == 0 {
            self.ports.alloc()?
        } else {
            self.ports.claim(port)?
        };
        let (tx, rx) = bounded(64);
        let shared = Arc::new(ListenerShared {
            backlog_tx: Mutex::named(Some(tx), "inet.il.backlog"),
            backlog_rx: rx,
        });
        self.listeners.lock().insert(port, Arc::clone(&shared));
        Ok(IlListener {
            stack: Arc::downgrade(stack),
            port,
            shared,
        })
    }

    pub(crate) fn input(stack: &Arc<IpStack>, src: IpAddr, data: &[u8]) {
        let Some(pkt) = decode_il(data) else {
            return;
        };
        let key = ConnKey {
            lport: pkt.dst,
            raddr: src,
            rport: pkt.src,
        };
        let conn = stack.il.conns.lock().get(&key).cloned();
        if let Some(conn) = conn {
            conn.handle(&pkt);
            return;
        }
        if pkt.typ == IlType::Sync {
            let listener = stack.il.listeners.lock().get(&pkt.dst).cloned();
            if let Some(listener) = listener {
                let iss = initial_seq();
                let conn = IlConn::fresh(stack, key, IlState::Syncee, iss);
                {
                    let mut inner = conn.inner.lock();
                    inner.rcv_id = pkt.id; // Sync consumes one id
                    inner.rtx_deadline = Some(time::now() + inner.rto);
                }
                stack.il.conns.lock().insert(key, Arc::clone(&conn));
                *conn.pending_listener.lock() = Some(listener);
                stack.il.netlog.events.log(Facility::Il, || {
                    format!("sync id {iss} from {src} port {}", pkt.src)
                });
                let _ = conn.transmit(IlType::Sync, iss, pkt.id, &[]);
                let armed = {
                    let mut inner = conn.inner.lock();
                    conn.rearm(&mut inner)
                };
                if armed.is_err() {
                    // No timer means a wedged half-open conversation:
                    // drop it (freeing the table slot and port) and
                    // let the peer's re-Sync try again.
                    conn.teardown();
                }
                return;
            }
        }
        // No home for this packet: a Close is polite, silence is fine for
        // anything else.
        if pkt.typ != IlType::Close {
            let reply = IlPacket {
                typ: IlType::Close,
                src: pkt.dst,
                dst: pkt.src,
                id: 0,
                ack: pkt.id,
                payload: Vec::new(),
            };
            let _ = stack.send(src, IL_PROTO, &encode_il(&reply));
        }
    }

    pub(crate) fn remove_conn(&self, key: &ConnKey) {
        if self.conns.lock().remove(key).is_some() {
            self.ports.release(key.lport);
        }
    }

    /// Closes the listener on `port` out from under its owner (a
    /// gateway being killed). The map entry goes, so new Syncs get
    /// Reset; the backlog sender is dropped, so a blocked `accept()` —
    /// and the protocol-device listen open parked inside it — errors
    /// with "listener closed" instead of waiting forever. The port
    /// itself is released by the [`IlListener`]'s own drop, as usual.
    /// Returns false if no listener was on `port`.
    pub fn unlisten(&self, port: u16) -> bool {
        let shared = self.listeners.lock().remove(&port);
        match shared {
            Some(s) => {
                s.backlog_tx.lock().take();
                true
            }
            None => false,
        }
    }

    /// Starts a close on every live conversation. The close handshake
    /// (or, against a dead peer, the retransmit death timer) then
    /// drives each one out of the conns table; under vtime the whole
    /// drain happens in virtual milliseconds. Returns how many closes
    /// were initiated.
    pub fn hangup_all(&self) -> usize {
        let conns: Vec<Arc<IlConn>> = self.conns.lock().values().cloned().collect();
        let n = conns.len();
        for c in &conns {
            c.close();
        }
        n
    }
}

/// A passive IL listener.
pub struct IlListener {
    stack: Weak<IpStack>,
    port: u16,
    shared: Arc<ListenerShared>,
}

impl IlListener {
    /// The listening port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks for the next established connection.
    pub fn accept(&self) -> crate::Result<Arc<IlConn>> {
        self.shared
            .backlog_rx
            .recv()
            .map_err(|_| NineError::new("listener closed"))
    }

    /// Waits for a connection until the timeout elapses.
    pub fn accept_timeout(&self, d: Duration) -> crate::Result<Arc<IlConn>> {
        self.shared
            .backlog_rx
            .recv_timeout(d)
            .map_err(|_| NineError::new("timed out"))
    }
}

impl Drop for IlListener {
    fn drop(&mut self) {
        if let Some(stack) = self.stack.upgrade() {
            stack.il.listeners.lock().remove(&self.port);
            stack.il.ports.release(self.port);
        }
    }
}

impl std::fmt::Debug for IlConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IlConn({} -> {})", self.local_string(), self.remote_string())
    }
}

impl IlConn {
    fn fresh(stack: &Arc<IpStack>, key: ConnKey, state: IlState, iss: u32) -> Arc<IlConn> {
        Arc::new(IlConn {
            stack: Arc::downgrade(stack),
            key,
            conv: conv_of(&key),
            inner: Mutex::named(Inner {
                state,
                snd_id: iss,
                unacked: BTreeMap::new(),
                rcv_id: 0,
                ooo: BTreeMap::new(),
                rcv_q: VecDeque::new(),
                peer_closed: false,
                ack_due: None,
                rx_since_ack: 0,
                last_rexmit: None,
                rtx_deadline: None,
                retries: 0,
                srtt: None,
                rttvar: Duration::ZERO,
                rto: RTO_INITIAL,
                err: None,
                timer: None,
            }, "inet.il.conn"),
            readable: Condvar::new(),
            window_open: Condvar::new(),
            pending_listener: Mutex::named(None, "inet.il.accept"),
            rx_notify: Mutex::named(None, "inet.il.rxnotify"),
        })
    }

    /// The `local` file string.
    pub fn local_string(&self) -> String {
        match self.stack.upgrade() {
            Some(s) => format!("{} {}", s.addr(), self.key.lport),
            None => format!("? {}", self.key.lport),
        }
    }

    /// The `remote` file string.
    pub fn remote_string(&self) -> String {
        format!("{} {}", self.key.raddr, self.key.rport)
    }

    /// The connection state.
    pub fn state(&self) -> IlState {
        self.inner.lock().state
    }

    /// The `status` file line.
    pub fn status_string(&self) -> String {
        let inner = self.inner.lock();
        format!(
            "{} rtt {} unacked {} window {}",
            inner.state.name(),
            inner
                .srtt
                .map(|d| format!("{}us", d.as_micros()))
                .unwrap_or_else(|| "-".to_string()),
            inner.unacked.len(),
            IL_WINDOW,
        )
    }

    fn transmit(&self, typ: IlType, id: u32, ack: u32, payload: &[u8]) -> crate::Result<()> {
        let stack = self
            .stack
            .upgrade()
            .ok_or_else(|| NineError::new("stack is down"))?;
        let pkt = IlPacket {
            typ,
            src: self.key.lport,
            dst: self.key.rport,
            id,
            ack,
            payload: {
                SEGMENT_SITE.record(payload.len());
                payload.to_vec()
            },
        };
        stack.send(self.key.raddr, IL_PROTO, &encode_il(&pkt))
    }

    /// Sends one message, blocking while the outstanding window is full.
    pub fn send(self: &Arc<Self>, msg: &[u8]) -> crate::Result<()> {
        if msg.len() > IL_MAX_MSG {
            return Err(NineError::new("message too large for il"));
        }
        let (id, ack) = {
            let mut inner = self.inner.lock();
            loop {
                match inner.state {
                    IlState::Established => {}
                    _ => {
                        return Err(NineError::new(
                            inner.err.clone().unwrap_or_else(|| "hungup".to_string()),
                        ))
                    }
                }
                if (inner.unacked.len() as u32) < IL_WINDOW {
                    break;
                }
                self.window_open.wait(&mut inner);
            }
            inner.snd_id = inner.snd_id.wrapping_add(1);
            let id = inner.snd_id;
            SEGMENT_SITE.record(msg.len());
            inner.unacked.insert(
                id,
                Sent {
                    payload: msg.to_vec(),
                    at: time::now(),
                    rexmit: false,
                    trace: trace::current(),
                },
            );
            if inner.rtx_deadline.is_none() {
                inner.rtx_deadline = Some(time::now() + inner.rto);
            }
            inner.ack_due = None; // the data message carries our ack
            inner.rx_since_ack = 0;
            self.rearm(&mut inner)
                .map_err(|e| NineError::new(format!("il timer: {e}")))?;
            (id, inner.rcv_id)
        };
        if let Some(stack) = self.stack.upgrade() {
            stack.il.stats.tx_msgs.inc();
        }
        self.transmit(IlType::Data, id, ack, msg)
    }

    /// Blocks for the next message; `None` is orderly EOF.
    pub fn recv(&self) -> crate::Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(msg) = inner.rcv_q.pop_front() {
                return Ok(Some(msg));
            }
            if inner.peer_closed || inner.state == IlState::Closed {
                return Ok(None);
            }
            if let Some(e) = &inner.err {
                return Err(NineError::new(e.clone()));
            }
            self.readable.wait(&mut inner);
        }
    }

    /// Waits for a message until the timeout elapses; `Err("timed out")`.
    pub fn recv_timeout(&self, d: Duration) -> crate::Result<Option<Vec<u8>>> {
        let deadline = time::now() + d;
        let mut inner = self.inner.lock();
        loop {
            if let Some(msg) = inner.rcv_q.pop_front() {
                return Ok(Some(msg));
            }
            if inner.peer_closed || inner.state == IlState::Closed {
                return Ok(None);
            }
            if let Some(e) = &inner.err {
                return Err(NineError::new(e.clone()));
            }
            if self.readable.wait_until(&mut inner, deadline).timed_out() {
                return Err(NineError::new("timed out"));
            }
        }
    }

    /// Closes the connection.
    pub fn close(self: &Arc<Self>) {
        let (id, ack, send_close) = {
            let mut inner = self.inner.lock();
            match inner.state {
                IlState::Established | IlState::Syncee | IlState::Syncer => {
                    inner.state = IlState::Closing;
                    inner.rtx_deadline = Some(time::now() + inner.rto);
                    let _ = self.rearm(&mut inner);
                    (inner.snd_id, inner.rcv_id, true)
                }
                _ => (0, 0, false),
            }
        };
        if send_close {
            let _ = self.transmit(IlType::Close, id, ack, &[]);
        }
        self.readable.notify_all();
        self.window_open.notify_all();
    }

    fn teardown(&self) {
        if let Some(id) = self.inner.lock().timer.take() {
            wheel::cancel(id);
        }
        if let Some(stack) = self.stack.upgrade() {
            stack.il.remove_conn(&self.key);
        }
    }

    /// Wakes blocked readers *and* fires the registered readiness
    /// hook: a pool-serviced conversation has no parked thread to
    /// notify, only a closure to call back.
    fn rx_wake(&self) {
        self.readable.notify_all();
        let hook = self.rx_notify.lock().clone();
        if let Some(h) = hook {
            h();
        }
    }

    /// Registers a readable-readiness hook, called whenever a message,
    /// EOF, or error becomes available. With [`IlConn::try_recv`] this
    /// lets a server drain thousands of conversations from the worker
    /// pool instead of parking a thread per conversation in
    /// [`IlConn::recv`]. The hook must be cheap and non-blocking (the
    /// usual move is `pool::submit` of a drain job).
    pub fn set_rx_notify(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.rx_notify.lock() = Some(Arc::new(f));
    }

    /// The conversation id used to shard this connection's service
    /// work on the worker pool.
    pub fn conv_id(&self) -> u64 {
        self.conv
    }

    /// Non-blocking receive, for pool-serviced conversations.
    pub fn try_recv(&self) -> crate::Result<TryRecv> {
        let mut inner = self.inner.lock();
        if let Some(msg) = inner.rcv_q.pop_front() {
            return Ok(TryRecv::Msg(msg));
        }
        if inner.peer_closed || inner.state == IlState::Closed {
            return Ok(TryRecv::Eof);
        }
        if let Some(e) = &inner.err {
            return Err(NineError::new(e.clone()));
        }
        Ok(TryRecv::Empty)
    }

    /// Re-arms the conversation's entry on the shared timer wheel to
    /// the earliest of the delayed-ack and retransmit deadlines ("a
    /// helper kernel process awakens periodically to perform any
    /// necessary retransmissions" — §2.4, now one wheel for every
    /// conversation instead of a thread each). Never extends an armed
    /// timer: an early fire just re-evaluates and re-arms, while a
    /// missing one would wedge the conversation. The spawn error (the
    /// wheel or pool thread could not start) propagates so dial and
    /// announce fail loudly instead of panicking the kernel.
    fn rearm(self: &Arc<Self>, inner: &mut Inner) -> std::io::Result<()> {
        let want = if inner.state == IlState::Closed {
            None
        } else {
            match (inner.ack_due, inner.rtx_deadline) {
                (Some(a), Some(r)) => Some(a.min(r)),
                (a, r) => a.or(r),
            }
        };
        let Some(want) = want else {
            if let Some(id) = inner.timer.take() {
                wheel::cancel(id);
            }
            return Ok(());
        };
        if let Some(id) = inner.timer {
            if id.deadline() <= want {
                return Ok(());
            }
            wheel::cancel(id);
            inner.timer = None;
        }
        let conn = Arc::clone(self);
        let id = wheel::schedule(self.conv, want, move || conn.timer_fire())?;
        inner.timer = Some(id);
        Ok(())
    }

    /// One timer expiry, dispatched from the wheel onto this
    /// conversation's pool shard.
    fn timer_fire(self: Arc<Self>) {
        enum Action {
            None,
            SendAck(u32, u32),
            SendQuery(u32, u32, Option<trace::TraceHandle>),
            Resync(u32, u32, bool),
            ReClose(u32, u32),
            Die,
        }
        let action = {
            let mut inner = self.inner.lock();
            inner.timer = None;
            if inner.state == IlState::Closed {
                Action::Die
            } else if inner
                .ack_due
                .map(|t| time::now() >= t)
                .unwrap_or(false)
            {
                inner.ack_due = None;
                Action::SendAck(inner.snd_id, inner.rcv_id)
            } else if inner
                .rtx_deadline
                .map(|t| time::now() >= t)
                .unwrap_or(false)
            {
                inner.retries += 1;
                if inner.retries > MAX_RETRIES {
                    inner.err = Some("connection timed out".to_string());
                    inner.state = IlState::Closed;
                    self.rx_wake();
                    self.window_open.notify_all();
                    Action::Die
                } else {
                    inner.rto = (inner.rto * 3 / 2).min(RTO_MAX);
                    inner.rtx_deadline = Some(time::now() + inner.rto);
                    match inner.state {
                        IlState::Syncer => Action::Resync(inner.snd_id, 0, true),
                        IlState::Syncee => {
                            Action::Resync(inner.snd_id, inner.rcv_id, false)
                        }
                        IlState::Closing => Action::ReClose(inner.snd_id, inner.rcv_id),
                        _ => {
                            if inner.unacked.is_empty() {
                                inner.rtx_deadline = None;
                                inner.retries = 0;
                                Action::None
                            } else {
                                // The IL way: ask, don't blast. The
                                // query is about the oldest unacked
                                // message; its trace owns the event.
                                let tr = inner
                                    .unacked
                                    .values()
                                    .next()
                                    .and_then(|s| s.trace.clone());
                                Action::SendQuery(inner.snd_id, inner.rcv_id, tr)
                            }
                        }
                    }
                }
            } else {
                Action::None
            }
        };
        match action {
            Action::Die => {
                self.teardown();
                return;
            }
            Action::None => {}
            Action::SendAck(id, ack) => {
                if let Some(stack) = self.stack.upgrade() {
                    stack.il.stats.acks.inc();
                }
                let _ = self.transmit(IlType::Ack, id, ack, &[]);
            }
            Action::SendQuery(id, ack, tr) => {
                if let Some(stack) = self.stack.upgrade() {
                    stack.il.stats.queries.inc();
                    stack.il.netlog.events.log(Facility::Il, || {
                        format!("query id {id} ack {ack}")
                    });
                }
                if let Some(h) = tr {
                    h.event(Facility::Il, || format!("query id {id} ack {ack}"));
                }
                let _ = self.transmit(IlType::Query, id, ack, &[]);
            }
            Action::Resync(id, ack, syncer) => {
                let _ = self.transmit(IlType::Sync, id, if syncer { 0 } else { ack }, &[]);
            }
            Action::ReClose(id, ack) => {
                let _ = self.transmit(IlType::Close, id, ack, &[]);
            }
        }
        let mut inner = self.inner.lock();
        let _ = self.rearm(&mut inner);
    }

    fn handle(self: &Arc<Self>, pkt: &IlPacket) {
        let mut send_ack = false;
        let mut send_state = false;
        let mut retransmit: Vec<(u32, Vec<u8>, Option<trace::TraceHandle>)> = Vec::new();
        let mut deliver_to_listener = false;
        let mut reply_close = false;
        {
            let mut inner = self.inner.lock();
            match (inner.state, pkt.typ) {
                (IlState::Syncer, IlType::Sync) if pkt.ack == inner.snd_id => {
                    inner.rcv_id = pkt.id;
                    inner.state = IlState::Established;
                    inner.rtx_deadline = None;
                    inner.retries = 0;
                    send_ack = true;
                    self.readable.notify_all();
                }
                (IlState::Syncee, IlType::Ack)
                | (IlState::Syncee, IlType::Data)
                | (IlState::Syncee, IlType::Query)
                | (IlState::Syncee, IlType::State)
                    if pkt.ack == inner.snd_id =>
                {
                    // Any packet acking our Sync proves the peer got it,
                    // so it completes the handshake. Queries must count:
                    // if the completing Ack and the first Data are both
                    // lost, the peer's recovery probe is the only
                    // traffic we will ever see.
                    inner.state = IlState::Established;
                    inner.rtx_deadline = None;
                    inner.retries = 0;
                    deliver_to_listener = true;
                    match pkt.typ {
                        IlType::Data => self.accept_data(&mut inner, pkt, &mut send_ack),
                        IlType::Query => send_state = true,
                        _ => {}
                    }
                }
                (IlState::Syncee, IlType::Sync) => {
                    // Duplicate Sync: repeat our reply.
                    let (id, ack) = (inner.snd_id, inner.rcv_id);
                    drop(inner);
                    let _ = self.transmit(IlType::Sync, id, ack, &[]);
                    return;
                }
                (_, IlType::Close) => {
                    inner.peer_closed = true;
                    match inner.state {
                        IlState::Closing | IlState::Closed => {
                            inner.state = IlState::Closed;
                        }
                        _ => {
                            inner.state = IlState::Closing;
                            reply_close = true;
                        }
                    }
                    self.rx_wake();
                    self.window_open.notify_all();
                }
                (IlState::Established, typ) | (IlState::Closing, typ) => {
                    // Any packet carries a cumulative ack.
                    self.accept_ack(&mut inner, pkt.ack);
                    match typ {
                        IlType::Data => {
                            self.accept_data(&mut inner, pkt, &mut send_ack);
                        }
                        IlType::Query => {
                            // "The receiver responds to a query" with its
                            // state; the sender then repairs.
                            send_state = true;
                        }
                        IlType::State => {
                            // Everything the peer has not seen beyond its
                            // cumulative ack *may* be lost; repair the
                            // oldest few and let the next round handle
                            // deeper holes, so repair traffic stays
                            // proportional to actual loss.
                            self.accept_ack(&mut inner, pkt.ack);
                            for (&id, sent) in inner.unacked.iter_mut() {
                                if seq_lt(pkt.ack, id) && retransmit.len() < REPAIR_BURST {
                                    sent.rexmit = true;
                                    retransmit.push((
                                        id,
                                        sent.payload.clone(),
                                        sent.trace.clone(),
                                    ));
                                }
                            }
                            if !retransmit.is_empty() {
                                inner.last_rexmit = Some(time::now());
                                // A State reply proves the path is alive:
                                // the exponential backoff applies to
                                // silence, not to repair rounds.
                                inner.retries = 0;
                                if let Some(srtt) = inner.srtt {
                                    inner.rto =
                                        (srtt + 4 * inner.rttvar).clamp(RTO_MIN, RTO_MAX);
                                }
                                inner.rtx_deadline = Some(time::now() + inner.rto);
                            }
                        }
                        IlType::Sync => {
                            // The peer is still resyncing: our
                            // handshake-completing ack was lost. Answer
                            // with our state so it can establish and
                            // solicit repair, instead of querying into
                            // a peer that will never hear us.
                            send_state = true;
                        }
                        IlType::Ack => {}
                        // checked: Close is diverted before this match
                        IlType::Close => unreachable!("handled above"),
                    }
                    if inner.state == IlState::Closing
                        && inner.peer_closed
                        && inner.unacked.is_empty()
                    {
                        inner.state = IlState::Closed;
                    }
                }
                _ => {}
            }
        }
        if send_ack {
            // Delay slightly so an RPC reply can piggyback its ack, but
            // ack a bulk burst immediately so the sender's window keeps
            // moving.
            let immediate = {
                let mut inner = self.inner.lock();
                inner.rx_since_ack += 1;
                if inner.rx_since_ack >= ACK_BATCH {
                    inner.rx_since_ack = 0;
                    inner.ack_due = None;
                    true
                } else {
                    if inner.ack_due.is_none() {
                        inner.ack_due = Some(time::now() + ACK_DELAY);
                    }
                    false
                }
            };
            if immediate {
                let (id, ack) = {
                    let inner = self.inner.lock();
                    (inner.snd_id, inner.rcv_id)
                };
                if let Some(stack) = self.stack.upgrade() {
                    stack.il.stats.acks.inc();
                }
                let _ = self.transmit(IlType::Ack, id, ack, &[]);
            }
        }
        if send_state {
            let (id, ack) = {
                let inner = self.inner.lock();
                (inner.snd_id, inner.rcv_id)
            };
            let _ = self.transmit(IlType::State, id, ack, &[]);
        }
        if !retransmit.is_empty() {
            if let Some(stack) = self.stack.upgrade() {
                let bytes: usize = retransmit.iter().map(|(_, p, _)| p.len()).sum();
                stack.il.stats.retransmit_msgs.add(retransmit.len() as u64);
                stack.il.stats.retransmit_bytes.add(bytes as u64);
                // One event per repaired message, so the event log is a
                // ground truth the retransmit counter can be checked
                // against.
                for (id, payload, _) in &retransmit {
                    let len = payload.len();
                    stack
                        .il
                        .netlog
                        .events
                        .log(Facility::Il, || format!("rexmit id {id} len {len}"));
                }
            }
            // The same event, on the root span of the RPC whose message
            // was repaired — the netlog line and the span event pair up
            // one to one.
            for (id, payload, tr) in &retransmit {
                if let Some(h) = tr {
                    let len = payload.len();
                    h.event(Facility::Il, || format!("rexmit id {id} len {len}"));
                }
            }
            let ack = self.inner.lock().rcv_id;
            for (id, payload, _) in retransmit {
                let _ = self.transmit(IlType::Data, id, ack, &payload);
            }
        }
        if reply_close {
            let (id, ack) = {
                let inner = self.inner.lock();
                (inner.snd_id, inner.rcv_id)
            };
            let _ = self.transmit(IlType::Close, id, ack, &[]);
            // Both directions are done.
            let mut inner = self.inner.lock();
            inner.state = IlState::Closed;
            drop(inner);
            self.teardown();
        }
        if deliver_to_listener {
            if let Some(listener) = self.pending_listener.lock().take() {
                if let Some(tx) = listener.backlog_tx.lock().as_ref() {
                    let _ = tx.try_send(Arc::clone(self));
                }
            }
        }
        // Every branch above may have moved ack_due/rtx_deadline; one
        // re-arm covers them all (and cancels if the conn closed).
        let closed = {
            let mut inner = self.inner.lock();
            let _ = self.rearm(&mut inner);
            inner.state == IlState::Closed
        };
        if closed {
            self.teardown();
        }
    }

    fn accept_ack(&self, inner: &mut Inner, ack: u32) {
        let acked: Vec<u32> = inner
            .unacked
            .keys()
            .copied()
            .filter(|&id| seq_le(id, ack))
            .collect();
        if acked.is_empty() {
            return;
        }
        for id in &acked {
            if let Some(sent) = inner.unacked.remove(id) {
                // The send→ack interval, on the root span of the RPC
                // that sent the message. A retransmitted message's span
                // stretches accordingly: the retransmit-inflated tail.
                if let Some(h) = &sent.trace {
                    h.span(
                        Facility::Il,
                        &format!("il send id {id}"),
                        sent.at,
                        time::now(),
                    );
                }
                // Round-trip sample from the newest acked message —
                // unless it was retransmitted or sent before a repair
                // round, whose queuing delay would inflate the estimate
                // (Karn's rule).
                let karn_clean = !sent.rexmit
                    && inner.last_rexmit.map(|t| sent.at > t).unwrap_or(true);
                if *id == ack && karn_clean {
                    let sample = time::now().saturating_duration_since(sent.at);
                    inner.record_rtt(sample);
                    // The same sample feeds the adaptive-RTT histogram
                    // shown in the protocol's stats file.
                    if let Some(stack) = self.stack.upgrade() {
                        stack.il.stats.rtt.record(sample);
                    }
                }
            }
        }
        inner.retries = 0;
        inner.rtx_deadline = if inner.unacked.is_empty() {
            None
        } else {
            Some(time::now() + inner.rto)
        };
        self.window_open.notify_all();
    }

    fn accept_data(&self, inner: &mut Inner, pkt: &IlPacket, send_ack: &mut bool) {
        *send_ack = true;
        let expected = inner.rcv_id.wrapping_add(1);
        if pkt.id == expected {
            inner.rcv_id = pkt.id;
            RX_SITE.record(pkt.payload.len());
            inner.rcv_q.push_back(pkt.payload.clone());
            // Resequence: drain consecutive out-of-order messages.
            loop {
                let next = inner.rcv_id.wrapping_add(1);
                match inner.ooo.remove(&next) {
                    Some(msg) => {
                        inner.rcv_id = next;
                        inner.rcv_q.push_back(msg);
                    }
                    None => break,
                }
            }
            if let Some(stack) = self.stack.upgrade() {
                stack.il.stats.rx_msgs.inc();
            }
            self.rx_wake();
        } else if seq_lt(inner.rcv_id, pkt.id) {
            // Ahead of us: keep it only if within the window; "messages
            // outside the window are discarded and must be retransmitted."
            if pkt.id.wrapping_sub(inner.rcv_id) <= IL_WINDOW {
                RX_SITE.record(pkt.payload.len());
                inner.ooo.insert(pkt.id, pkt.payload.clone());
            }
        }
        // Behind us: duplicate; the ack we send repairs the peer.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::tests::two_hosts;
    use crate::ip::{IpConfig, IpStack};
    use plan9_netsim::ether::EtherSegment;
    use plan9_netsim::profile::Profiles;

    #[test]
    fn packet_codec_round_trip() {
        let p = IlPacket {
            typ: IlType::Data,
            src: 17008,
            dst: 5012,
            id: 99,
            ack: 42,
            payload: b"Rattach".to_vec(),
        };
        let d = decode_il(&encode_il(&p)).unwrap();
        assert_eq!(d.typ, IlType::Data);
        assert_eq!((d.src, d.dst, d.id, d.ack), (17008, 5012, 99, 42));
        assert_eq!(d.payload, b"Rattach");
    }

    #[test]
    fn corrupted_packet_rejected() {
        let p = IlPacket {
            typ: IlType::Ack,
            src: 1,
            dst: 2,
            id: 3,
            ack: 4,
            payload: Vec::new(),
        };
        let mut b = encode_il(&p);
        b[10] ^= 0x80;
        assert!(decode_il(&b).is_none());
    }

    #[test]
    fn connect_and_exchange_messages() {
        let (a, b) = two_hosts();
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            while let Some(msg) = conn.recv().unwrap() {
                conn.send(&msg).unwrap();
            }
        });
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        assert_eq!(conn.state(), IlState::Established);
        conn.send(b"first").unwrap();
        conn.send(b"second").unwrap();
        assert_eq!(conn.recv().unwrap().unwrap(), b"first");
        assert_eq!(conn.recv().unwrap().unwrap(), b"second");
        conn.close();
        server.join().unwrap();
    }

    #[test]
    fn delimiters_preserved_exactly() {
        let (a, b) = two_hosts();
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut sizes = Vec::new();
            while let Some(msg) = conn.recv().unwrap() {
                sizes.push(msg.len());
            }
            sizes
        });
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        for n in [1usize, 0, 700, 3, 9000] {
            conn.send(&vec![7u8; n]).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        conn.close();
        let sizes = server.join().unwrap();
        // Message boundaries are exactly the write boundaries.
        assert_eq!(sizes, vec![1, 0, 700, 3, 9000]);
    }

    #[test]
    fn no_listener_means_refused() {
        let (a, b) = two_hosts();
        let err = a.il_module().connect(&a, b.addr(), 1).unwrap_err();
        assert!(
            err.0.contains("refused") || err.0.contains("timed out"),
            "{err}"
        );
    }

    fn lossy_hosts(loss: f64) -> (std::sync::Arc<IpStack>, std::sync::Arc<IpStack>) {
        let seg = EtherSegment::new(Profiles::ether_fast().with_loss(loss));
        let a = IpStack::new(seg.attach([8, 0, 0, 0, 1, 1]), IpConfig::local("10.2.0.1"));
        let b = IpStack::new(seg.attach([8, 0, 0, 0, 1, 2]), IpConfig::local("10.2.0.2"));
        (a, b)
    }

    #[test]
    fn recovers_from_loss_via_query() {
        let (a, b) = lossy_hosts(0.15);
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let n_msgs = 200;
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut got = Vec::new();
            for _ in 0..n_msgs {
                got.push(conn.recv().unwrap().unwrap());
            }
            got
        });
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        for i in 0..n_msgs {
            conn.send(format!("msg {i}").as_bytes()).unwrap();
        }
        let got = server.join().unwrap();
        // Sequenced delivery despite loss.
        for (i, msg) in got.iter().enumerate() {
            assert_eq!(msg, format!("msg {i}").as_bytes());
        }
        // Recovery must have used queries, not blasted everything.
        assert!(
            a.il_module().stats.queries.get() > 0,
            "expected queries under loss"
        );
        conn.close();
    }

    #[test]
    fn survives_duplication_and_reordering() {
        let seg = EtherSegment::new(
            Profiles::ether_fast().with_dup(0.1).with_reorder(0.1),
        );
        let a = IpStack::new(seg.attach([8, 0, 0, 0, 2, 1]), IpConfig::local("10.3.0.1"));
        let b = IpStack::new(seg.attach([8, 0, 0, 0, 2, 2]), IpConfig::local("10.3.0.2"));
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(conn.recv().unwrap().unwrap());
            }
            got
        });
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        for i in 0..100u32 {
            conn.send(&i.to_be_bytes()).unwrap();
        }
        let got = server.join().unwrap();
        for (i, msg) in got.iter().enumerate() {
            assert_eq!(msg.as_slice(), (i as u32).to_be_bytes());
        }
        conn.close();
    }

    #[test]
    fn window_limits_outstanding_messages() {
        // With the peer not reading/acking... actually the peer acks from
        // its input process, so instead verify the sender never has more
        // than IL_WINDOW unacked by sending a burst and checking status.
        let (a, b) = two_hosts();
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut n = 0;
            while conn.recv().unwrap().is_some() {
                n += 1;
            }
            n
        });
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        for _ in 0..100 {
            conn.send(b"burst").unwrap();
            let unacked = conn.inner.lock().unacked.len() as u32;
            assert!(unacked <= IL_WINDOW, "window exceeded: {unacked}");
        }
        std::thread::sleep(Duration::from_millis(100));
        conn.close();
        assert_eq!(server.join().unwrap(), 100);
    }

    #[test]
    fn status_strings() {
        let (a, b) = two_hosts();
        let listener = b.il_module().listen(&b, 17008).unwrap();
        let conn = a.il_module().connect(&a, b.addr(), 17008).unwrap();
        let _srv = listener.accept().unwrap();
        assert!(conn.status_string().starts_with("Established"));
        assert_eq!(conn.remote_string(), format!("{} 17008", b.addr()));
        conn.close();
    }
}
