//! Port allocation shared by the transport protocols.

use plan9_support::sync::Mutex;
use plan9_ninep::NineError;
use std::collections::HashSet;

/// First ephemeral port handed out to unbound local ends.
pub const EPHEMERAL_BASE: u16 = 5000;

/// Tracks which local ports of one protocol are in use and hands out
/// ephemeral ones.
pub struct PortSpace {
    used: Mutex<(HashSet<u16>, u16)>,
}

impl Default for PortSpace {
    fn default() -> Self {
        PortSpace::new()
    }
}

impl PortSpace {
    /// Creates an empty port space.
    pub fn new() -> PortSpace {
        PortSpace {
            used: Mutex::named((HashSet::new(), EPHEMERAL_BASE), "inet.ports"),
        }
    }

    /// Claims a specific port; fails if it is taken.
    pub fn claim(&self, port: u16) -> crate::Result<u16> {
        let mut used = self.used.lock();
        if !used.0.insert(port) {
            return Err(NineError::new(format!("port {port} in use")));
        }
        Ok(port)
    }

    /// Allocates a free ephemeral port.
    pub fn alloc(&self) -> crate::Result<u16> {
        let mut used = self.used.lock();
        for _ in 0..=u16::MAX {
            let candidate = used.1;
            used.1 = if used.1 == u16::MAX {
                EPHEMERAL_BASE
            } else {
                used.1 + 1
            };
            if candidate >= EPHEMERAL_BASE && used.0.insert(candidate) {
                return Ok(candidate);
            }
        }
        Err(NineError::new("out of ports"))
    }

    /// Releases a port for reuse.
    pub fn release(&self, port: u16) {
        self.used.lock().0.remove(&port);
    }

    /// Whether the port is currently claimed.
    pub fn in_use(&self, port: u16) -> bool {
        self.used.lock().0.contains(&port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_conflict_detected() {
        let p = PortSpace::new();
        p.claim(564).unwrap();
        assert!(p.claim(564).is_err());
        p.release(564);
        p.claim(564).unwrap();
    }

    #[test]
    fn ephemeral_ports_unique() {
        let p = PortSpace::new();
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert!(a >= EPHEMERAL_BASE && b >= EPHEMERAL_BASE);
    }

    #[test]
    fn ephemeral_skips_claimed() {
        let p = PortSpace::new();
        p.claim(EPHEMERAL_BASE).unwrap();
        assert_ne!(p.alloc().unwrap(), EPHEMERAL_BASE);
    }
}
