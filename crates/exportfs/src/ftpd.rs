//! A small FTP server for the `ftpfs` demonstration (§6.2).
//!
//! The paper's `ftpfs` dialed real TOPS-20, VMS and Unix FTP servers;
//! none are reachable from the simulator, so this module provides the
//! closest synthetic equivalent: an FTP-shaped text protocol served over
//! a simulated TCP connection. The dialect is simplified to a single
//! connection (control and data multiplexed with byte-counted transfers)
//! but keeps the command/response shape: `USER`/`PASS` login, `TYPE I`
//! image mode, `LIST`, `RETR`, `STOR`, `DELE`, `QUIT`.

use plan9_core::dial::{accept, announce, listen};
use plan9_core::proc::Proc;
use plan9_ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9_ninep::{NineError, Result};
use std::sync::Arc;

/// A line-buffered text channel over a byte-stream descriptor.
pub struct LineChan<'p> {
    p: &'p Proc,
    fd: i32,
    buf: Vec<u8>,
}

impl<'p> LineChan<'p> {
    /// Wraps an open descriptor.
    pub fn new(p: &'p Proc, fd: i32) -> LineChan<'p> {
        LineChan {
            p,
            fd,
            buf: Vec::new(),
        }
    }

    /// Seeds the line buffer with bytes already read from the stream.
    pub fn preload(&mut self, bytes: Vec<u8>) {
        let mut bytes = bytes;
        bytes.extend_from_slice(&self.buf);
        self.buf = bytes;
    }

    /// Takes back any unconsumed buffered bytes.
    pub fn take_buffer(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Reads one `\n`-terminated line (without the newline).
    pub fn read_line(&mut self) -> Result<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return String::from_utf8(line[..line.len() - 1].to_vec())
                    .map_err(|_| NineError::new("ftp: not text"));
            }
            let chunk = self.p.read(self.fd, 4096)?;
            if chunk.is_empty() {
                return Err(NineError::new("ftp: hungup"));
            }
            self.buf.extend_from_slice(&chunk);
        }
    }

    /// Reads exactly `n` raw bytes (a counted transfer).
    pub fn read_exact(&mut self, n: usize) -> Result<Vec<u8>> {
        while self.buf.len() < n {
            let chunk = self.p.read(self.fd, 8192)?;
            if chunk.is_empty() {
                return Err(NineError::new("ftp: hungup mid-transfer"));
            }
            self.buf.extend_from_slice(&chunk);
        }
        Ok(self.buf.drain(..n).collect())
    }

    /// Writes a line.
    pub fn write_line(&mut self, s: &str) -> Result<()> {
        self.p.write(self.fd, format!("{s}\n").as_bytes()).map(|_| ())
    }

    /// Writes raw bytes.
    pub fn write_raw(&mut self, data: &[u8]) -> Result<()> {
        self.p.write(self.fd, data).map(|_| ())
    }
}

/// The FTP server: serves a [`MemFs`] tree over FTP.
pub struct FtpServer {
    /// The tree served to clients.
    pub tree: Arc<MemFs>,
    /// Password expected for any user ("anonymous" always works).
    pub password: String,
}

impl FtpServer {
    /// Creates a server over a fresh tree.
    pub fn new(password: &str) -> FtpServer {
        FtpServer {
            tree: MemFs::new("ftp", "ftp"),
            password: password.to_string(),
        }
    }

    /// Announces `tcp!*!ftp` on the machine's process and serves
    /// `max_sessions` logins.
    pub fn serve(
        self: Arc<Self>,
        p: Proc,
        max_sessions: usize,
    ) -> Result<plan9_support::vtime::KprocHandle<()>> {
        let (afd, adir) = announce(&p, "tcp!*!ftp")?;
        let handle = plan9_support::vtime::kproc("ftpd", move || {
            let _keep = afd;
            for _ in 0..max_sessions {
                let Ok((lcfd, ldir)) = listen(&p, &adir) else { return };
                let Ok(dfd) = accept(&p, lcfd, &ldir) else { continue };
                let (worker, wfd) = p.fork_with_fd(dfd);
                let srv = Arc::clone(&self);
                plan9_support::vtime::kproc("ftpd-session", move || {
                    let _ = srv.session(&worker, wfd);
                })
                // checked: spawn fails only on OS thread exhaustion
                .expect("spawn ftp session");
            }
        })
        .map_err(|e| NineError::new(format!("spawn ftpd: {e}")))?;
        Ok(handle)
    }

    fn session(&self, p: &Proc, fd: i32) -> Result<()> {
        let mut chan = LineChan::new(p, fd);
        chan.write_line("220 plan9 ftpd ready")?;
        let mut logged_in = false;
        let mut cwd = String::from("/");
        loop {
            let line = chan.read_line()?;
            let (cmd, arg) = match line.split_once(' ') {
                Some((c, a)) => (c.to_uppercase(), a.trim().to_string()),
                None => (line.to_uppercase(), String::new()),
            };
            match cmd.as_str() {
                "USER" => chan.write_line("331 password required")?,
                "PASS" => {
                    if arg == self.password || arg.is_empty() {
                        logged_in = true;
                        chan.write_line("230 logged in")?;
                    } else {
                        chan.write_line("530 wrong password")?;
                    }
                }
                "TYPE" => chan.write_line("200 type set")?,
                "QUIT" => {
                    chan.write_line("221 bye")?;
                    return Ok(());
                }
                _ if !logged_in => chan.write_line("530 log in first")?,
                "CWD" => {
                    cwd = absolutize(&cwd, &arg);
                    chan.write_line("250 ok")?;
                }
                "PWD" => chan.write_line(&format!("257 \"{cwd}\""))?,
                "LIST" => {
                    let path = absolutize(&cwd, &arg);
                    match self.list(&path) {
                        Ok(text) => {
                            chan.write_line(&format!("150 {}", text.len()))?;
                            chan.write_raw(text.as_bytes())?;
                            chan.write_line("226 done")?;
                        }
                        Err(e) => chan.write_line(&format!("550 {e}"))?,
                    }
                }
                "RETR" => {
                    let path = absolutize(&cwd, &arg);
                    match self.retr(&path) {
                        Ok(data) => {
                            chan.write_line(&format!("150 {}", data.len()))?;
                            chan.write_raw(&data)?;
                            chan.write_line("226 done")?;
                        }
                        Err(e) => chan.write_line(&format!("550 {e}"))?,
                    }
                }
                "STOR" => {
                    // `STOR <len> <path>` — counted, single-connection.
                    let (len, path) = match arg.split_once(' ') {
                        Some((l, p)) => (l.parse::<usize>().ok(), absolutize(&cwd, p)),
                        None => (None, String::new()),
                    };
                    let Some(len) = len else {
                        chan.write_line("501 bad STOR")?;
                        continue;
                    };
                    let data = chan.read_exact(len)?;
                    match self.tree.put_file(&path, &data) {
                        Ok(()) => chan.write_line("226 stored")?,
                        Err(e) => chan.write_line(&format!("550 {e}"))?,
                    }
                }
                "DELE" => {
                    let path = absolutize(&cwd, &arg);
                    match self.dele(&path) {
                        Ok(()) => chan.write_line("250 deleted")?,
                        Err(e) => chan.write_line(&format!("550 {e}"))?,
                    }
                }
                _ => chan.write_line("502 not implemented")?,
            }
        }
    }

    fn list(&self, path: &str) -> Result<String> {
        let fs: &dyn ProcFs = &*self.tree;
        let root = fs.attach("ftp", "")?;
        let node = plan9_ninep::procfs::walk_path(fs, &root, path)?;
        if !node.qid.is_dir() {
            return Err(NineError::new("not a directory"));
        }
        let node = fs.open(&node, OpenMode::READ)?;
        let mut text = String::new();
        let mut offset = 0u64;
        loop {
            let data = fs.read(&node, offset, 16 * plan9_ninep::dir::DIR_LEN)?;
            if data.is_empty() {
                break;
            }
            offset += data.len() as u64;
            for chunk in data.chunks(plan9_ninep::dir::DIR_LEN) {
                let d = plan9_ninep::Dir::decode(chunk)?;
                text.push_str(&format!(
                    "{} {} {}\n",
                    if d.is_dir() { "d" } else { "-" },
                    d.length,
                    d.name
                ));
            }
        }
        fs.clunk(&node);
        Ok(text)
    }

    fn retr(&self, path: &str) -> Result<Vec<u8>> {
        let fs: &dyn ProcFs = &*self.tree;
        let root = fs.attach("ftp", "")?;
        let node = plan9_ninep::procfs::walk_path(fs, &root, path)?;
        let node = fs.open(&node, OpenMode::READ)?;
        let mut out = Vec::new();
        loop {
            let data = fs.read(&node, out.len() as u64, 8192)?;
            if data.is_empty() {
                break;
            }
            out.extend_from_slice(&data);
        }
        fs.clunk(&node);
        Ok(out)
    }

    fn dele(&self, path: &str) -> Result<()> {
        let fs: &dyn ProcFs = &*self.tree;
        let root = fs.attach("ftp", "")?;
        let node = plan9_ninep::procfs::walk_path(fs, &root, path)?;
        fs.remove(&node)
    }
}

fn absolutize(cwd: &str, arg: &str) -> String {
    if arg.is_empty() {
        cwd.to_string()
    } else if arg.starts_with('/') {
        arg.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), arg)
    }
}
