//! `exportfs` and `import` (§6.1), plus `ftpfs` (§6.2).
//!
//! "Exportfs is a user level file server which allows a piece of name
//! space to be exported from machine to machine across a network. ...
//! The import command calls exportfs on a remote machine, mounts the
//! result in the local name space, and exits."
//!
//! These two commands are the building blocks of gatewaying: `import -a
//! helix /net` makes every network connected to helix available on a
//! terminal that only has a Datakit line.

pub mod cpu;
pub mod exportfs;
pub mod ftpd;
pub mod ftpfs;
pub mod import;

pub use cpu::{cpu, cpu_listener, CpuJob};
pub use exportfs::{exportfs_listener, exportfs_service, serve_export, ExportService, NsFs};
pub use ftpd::FtpServer;
pub use ftpfs::FtpFs;
pub use import::import;

/// Result alias matching the rest of the system.
pub type Result<T> = plan9_ninep::Result<T>;
