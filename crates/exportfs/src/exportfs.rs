//! The exportfs file server.
//!
//! "After an initial protocol establishes the root of the file tree
//! being exported, the remote process mounts the connection, allowing
//! exportfs to act as a relay file server. Operations in the imported
//! file tree are executed on the remote server and the results
//! returned."
//!
//! [`NsFs`] serves a *name space* subtree — crossing mount points as it
//! walks, so exporting `/net` really exports the union of devices and
//! servers mounted there. It is multithreaded by construction: the 9P
//! server layer runs each request in its own worker, because `open`,
//! `read` and `write` may block (§6.1).

use plan9_support::sync::Mutex;
use plan9_core::namespace::{clean_path, Namespace, Source};
use plan9_core::proc::Proc;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, Perm, ProcFs, ServeNode};
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A channel into the exported name space: the path (for mount-point
/// crossing) and the resolved source.
struct NsChan {
    path: String,
    src: Source,
    opened: bool,
}

/// A file server over a name-space subtree.
pub struct NsFs {
    ns: Arc<Namespace>,
    base: String,
    #[allow(dead_code)]
    user: String,
    chans: Mutex<HashMap<u64, NsChan>>,
    handles: AtomicU64,
}

impl NsFs {
    /// Exports the subtree at `base` of `ns`.
    pub fn new(ns: Arc<Namespace>, base: &str, user: &str) -> Arc<NsFs> {
        Arc::new(NsFs {
            ns,
            base: clean_path(base),
            user: user.to_string(),
            chans: Mutex::new(HashMap::new()),
            handles: AtomicU64::new(1),
        })
    }

    fn install(&self, path: String, src: Source, opened: bool) -> ServeNode {
        let handle = self.handles.fetch_add(1, Ordering::Relaxed);
        let qid = src.node.qid;
        self.chans.lock().insert(
            handle,
            NsChan {
                path,
                src,
                opened,
            },
        );
        ServeNode::new(qid, handle)
    }

    fn with_chan<T>(&self, n: &ServeNode, f: impl FnOnce(&NsChan) -> T) -> Result<T> {
        let chans = self.chans.lock();
        chans
            .get(&n.handle)
            .map(f)
            .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))
    }

    /// Union-aware directory listing at a path.
    fn union_entries(&self, path: &str) -> Vec<Dir> {
        let sources = self.ns.resolve_all(path);
        let mut out: Vec<Dir> = Vec::new();
        for src in sources {
            if !src.node.qid.is_dir() {
                src.clunk();
                continue;
            }
            if let Ok(node) = src.fs.open(&src.node, OpenMode::READ) {
                let mut offset = 0u64;
                while let Ok(data) = src.fs.read(&node, offset, 16 * plan9_ninep::dir::DIR_LEN) {
                    if data.is_empty() {
                        break;
                    }
                    offset += data.len() as u64;
                    for chunk in data.chunks(plan9_ninep::dir::DIR_LEN) {
                        if let Ok(d) = Dir::decode(chunk) {
                            if !out.iter().any(|e| e.name == d.name) {
                                out.push(d);
                            }
                        }
                    }
                }
                src.fs.clunk(&node);
            } else {
                src.clunk();
            }
        }
        out
    }
}

impl ProcFs for NsFs {
    fn fsname(&self) -> String {
        format!("exportfs:{}", self.base)
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        let src = self.ns.resolve(&self.base)?;
        Ok(self.install(self.base.clone(), src, false))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        let (path, src) = self.with_chan(n, |c| (c.path.clone(), c.src.clone()))?;
        let src = Source {
            fs: src.fs.clone(),
            node: src.fs.clone_node(&src.node)?,
        };
        Ok(self.install(path, src, false))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let path = self.with_chan(n, |c| c.path.clone())?;
        let new_path = if name == ".." {
            let p = clean_path(&format!("{path}/.."));
            // Do not escape the exported subtree.
            let inside = p == self.base
                || self.base == "/"
                || p.starts_with(&format!("{}/", self.base));
            if inside {
                p
            } else {
                self.base.clone()
            }
        } else {
            clean_path(&format!("{path}/{name}"))
        };
        // Resolve through the name space so mounts below the export
        // root are crossed.
        let src = self.ns.resolve(&new_path)?;
        let qid = src.node.qid;
        // Replace the channel in place (walk moves the channel).
        let mut chans = self.chans.lock();
        let chan = chans
            .get_mut(&n.handle)
            .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))?;
        chan.src.clunk();
        chan.src = src;
        chan.path = new_path;
        Ok(ServeNode::new(qid, n.handle))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        let (src, _path) = self.with_chan(n, |c| (c.src.clone(), c.path.clone()))?;
        let node = src.fs.open(&src.node, mode)?;
        let mut chans = self.chans.lock();
        let chan = chans
            .get_mut(&n.handle)
            .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))?;
        chan.src.node = node;
        chan.opened = true;
        Ok(ServeNode::new(node.qid, n.handle))
    }

    fn create(&self, n: &ServeNode, name: &str, perm: Perm, mode: OpenMode) -> Result<ServeNode> {
        let (src, path) = self.with_chan(n, |c| (c.src.clone(), c.path.clone()))?;
        let node = src.fs.create(&src.node, name, perm, mode)?;
        let mut chans = self.chans.lock();
        let chan = chans
            .get_mut(&n.handle)
            .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))?;
        chan.src.node = node;
        chan.path = clean_path(&format!("{path}/{name}"));
        chan.opened = true;
        Ok(ServeNode::new(node.qid, n.handle))
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        let (src, path) = self.with_chan(n, |c| (c.src.clone(), c.path.clone()))?;
        if src.node.qid.is_dir() {
            // Union semantics for exported directories.
            let entries = self.union_entries(&path);
            return read_dir_slice(&entries, offset, count);
        }
        src.fs.read(&src.node, offset, count)
    }

    fn write(&self, n: &ServeNode, offset: u64, data: &[u8]) -> Result<usize> {
        let src = self.with_chan(n, |c| c.src.clone())?;
        src.fs.write(&src.node, offset, data)
    }

    fn clunk(&self, n: &ServeNode) {
        if let Some(chan) = self.chans.lock().remove(&n.handle) {
            chan.src.clunk();
        }
    }

    fn remove(&self, n: &ServeNode) -> Result<()> {
        let src = self.with_chan(n, |c| c.src.clone())?;
        let r = src.fs.remove(&src.node);
        self.chans.lock().remove(&n.handle);
        r
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        let src = self.with_chan(n, |c| c.src.clone())?;
        src.fs.stat(&src.node)
    }

    fn wstat(&self, n: &ServeNode, d: &Dir) -> Result<()> {
        let src = self.with_chan(n, |c| c.src.clone())?;
        src.fs.wstat(&src.node, d)
    }
}

/// Serves one export conversation on an already-open data descriptor:
/// reads the initial protocol (the requested root), then relays 9P.
///
/// Blocks until the peer hangs up.
pub fn serve_export(p: &Proc, data_fd: i32, framed: bool) -> Result<()> {
    // Initial protocol: the peer names the root of the tree it wants.
    let want = p.read(data_fd, 1024)?;
    let want = String::from_utf8(want).map_err(|_| NineError::new("bad export request"))?;
    let base = want.trim();
    // Check it exists before acknowledging.
    match p.ns.resolve(base) {
        Ok(src) => {
            src.clunk();
            p.write(data_fd, b"OK")?;
        }
        Err(e) => {
            let _ = p.write(data_fd, format!("NO {e}").as_bytes());
            return Err(e);
        }
    }
    let fs: Arc<dyn ProcFs> = NsFs::new(p.ns.fork(), base, &p.user);
    let io = p.io(data_fd)?;
    if framed {
        let source = plan9_ninep::marshal::FramedSource::new(io.clone());
        let sink = plan9_ninep::marshal::FramedSink::new(io);
        plan9_ninep::server::serve(fs, Box::new(source), Box::new(sink))
    } else {
        plan9_ninep::server::serve(fs, Box::new(io.clone()), Box::new(io))
    }
}

/// The listener side (the Plan 9 equivalent of `inetd` running
/// `exportfs` for each incoming call): announces `addr` and serves each
/// call in its own thread.
///
/// Returns after `max_calls` conversations have been *accepted* (so
/// tests can bound it); pass `usize::MAX` to serve forever.
pub fn exportfs_listener(
    p: Proc,
    addr: &str,
    max_calls: usize,
) -> Result<plan9_support::vtime::KprocHandle<()>> {
    let (afd, adir) = plan9_core::dial::announce(&p, addr)?;
    let framed = adir.contains("/tcp/");
    let handle = plan9_support::vtime::kproc("exportfs-listener", move || {
        let _keep_announce = afd;
        for _ in 0..max_calls {
            let Ok((lcfd, ldir)) = plan9_core::dial::listen(&p, &adir) else {
                return;
            };
            let Ok(dfd) = plan9_core::dial::accept(&p, lcfd, &ldir) else {
                p.close(lcfd);
                continue;
            };
            // "The listener runs the profile of the user requesting
            // the service to construct a name space before starting
            // exportfs": each conversation gets a forked process.
            let worker = p.fork_with_fd(dfd);
            plan9_support::vtime::kproc("exportfs", move || {
                let (wp, wfd) = worker;
                let _ = serve_export(&wp, wfd, framed);
            })
            // checked: spawn fails only on OS thread exhaustion
            .expect("spawn exportfs worker");
        }
    })
    .map_err(|e| NineError::new(format!("spawn listener: {e}")))?;
    Ok(handle)
}

/// A running exportfs listener that can be torn down from outside —
/// the `kill gateway` path. The accept loop is parked deep inside a
/// protocol-device listen open; `unlisten` is the caller-supplied hook
/// that poisons the transport listener underneath it (e.g.
/// `IlModule::unlisten`), which errors the open, which returns the
/// loop. exportfs itself stays transport-agnostic.
pub struct ExportService {
    handle: plan9_support::vtime::KprocHandle<()>,
    unlisten: Box<dyn FnOnce() + Send>,
}

impl ExportService {
    /// Stops accepting new calls and joins the listener thread. Does
    /// not touch conversations already being served; hang those up at
    /// the transport layer and their workers exit on read error.
    pub fn shutdown(self) {
        (self.unlisten)();
        let _ = self.handle.join();
    }
}

/// Like [`exportfs_listener`] serving forever, but returns a
/// shutdown-capable [`ExportService`]. `unlisten` must make the
/// blocked listen open fail when called (see [`ExportService`]).
pub fn exportfs_service(
    p: Proc,
    addr: &str,
    unlisten: impl FnOnce() + Send + 'static,
) -> Result<ExportService> {
    let handle = exportfs_listener(p, addr, usize::MAX)?;
    Ok(ExportService {
        handle,
        unlisten: Box::new(unlisten),
    })
}
