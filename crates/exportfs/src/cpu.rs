//! The `cpu` service (§6).
//!
//! "The cpu service is analogous to rlogin. However, rather than
//! emulating a terminal session across the network, cpu creates a
//! process on the remote machine whose name space is an analogue of the
//! window in which it was invoked. Exportfs ... is used by the cpu
//! command to serve the files in the terminal's name space when they are
//! accessed from the cpu server."
//!
//! The protocol here:
//!
//! 1. The terminal dials `net!server!cpu`.
//! 2. The terminal sends the subtree it offers (conventionally `/`).
//! 3. The CPU server creates a process, mounts the *terminal's* name
//!    space at `/mnt/term` through the same connection (the terminal
//!    runs exportfs over it), and runs the submitted job.
//! 4. The job does its terminal I/O through `/mnt/term/...`, exactly as
//!    Plan 9's cpu does with `/mnt/term/dev/cons`.

use crate::exportfs::NsFs;
use plan9_core::dial::{accept, announce, dial, listen};
use plan9_core::namespace::MREPL;
use plan9_core::proc::Proc;
use plan9_ninep::procfs::ProcFs;
use plan9_ninep::{NineError, Result};
use std::sync::Arc;

/// The job a CPU server runs for each incoming session. The process's
/// name space has the caller's tree at `/mnt/term`.
pub type CpuJob = Arc<dyn Fn(&Proc) + Send + Sync>;

/// Announces the `cpu` service and serves `max_sessions` sessions, each
/// in its own process running `job`.
pub fn cpu_listener(
    p: Proc,
    addr: &str,
    job: CpuJob,
    max_sessions: usize,
) -> Result<plan9_support::vtime::KprocHandle<()>> {
    let (afd, adir) = announce(&p, addr)?;
    let framed = adir.contains("/tcp/");
    plan9_support::vtime::kproc("cpu-listener", move || {
        let _keep = afd;
        for _ in 0..max_sessions {
            let Ok((lcfd, ldir)) = listen(&p, &adir) else { return };
            let Ok(dfd) = accept(&p, lcfd, &ldir) else {
                p.close(lcfd);
                continue;
            };
            let (worker, wdfd) = p.fork_with_fd(dfd);
            let job = Arc::clone(&job);
            plan9_support::vtime::kproc("cpu-session", move || {
                let _ = cpu_session(&worker, wdfd, framed, job);
            })
            // checked: spawn fails only on OS thread exhaustion
            .expect("spawn cpu session");
        }
    })
    .map_err(|e| NineError::new(format!("spawn cpu listener: {e}")))
}

/// One CPU-server session on an accepted descriptor.
fn cpu_session(p: &Proc, dfd: i32, framed: bool, job: CpuJob) -> Result<()> {
    // Step 2 of the protocol: the terminal names the tree it serves.
    let offered = p.read(dfd, 256)?;
    let offered =
        String::from_utf8(offered).map_err(|_| NineError::new("cpu: bad offer"))?;
    p.write(dfd, b"OK")?;
    // Step 3: mount the terminal's tree — 9P flows back down the same
    // wire to the exportfs the terminal is running.
    p.mount_fd(dfd, "", "/mnt/term", MREPL, framed)?;
    let _ = offered;
    // Step 4: run the job in this process.
    job(p);
    Ok(())
}

/// The terminal side: dials the CPU server, offers `served_base` of its
/// own name space, and serves it until the remote session ends.
///
/// Blocks for the life of the session, like running `cpu` in a window.
pub fn cpu(p: &Proc, dest: &str, served_base: &str) -> Result<()> {
    let conn = dial(p, dest)?;
    let framed = conn.dir.contains("/tcp/");
    p.write(conn.data_fd, served_base.as_bytes())?;
    let reply = p.read(conn.data_fd, 256)?;
    if reply != b"OK" {
        p.close(conn.data_fd);
        p.close(conn.ctl_fd);
        return Err(NineError::new("cpu: refused"));
    }
    // Serve our name space over the connection (the exportfs role).
    let fs: Arc<dyn ProcFs> = NsFs::new(p.ns.fork(), served_base, &p.user);
    let io = p.io(conn.data_fd)?;
    let r = if framed {
        let source = plan9_ninep::marshal::FramedSource::new(io.clone());
        let sink = plan9_ninep::marshal::FramedSink::new(io);
        plan9_ninep::server::serve(fs, Box::new(source), Box::new(sink))
    } else {
        plan9_ninep::server::serve(fs, Box::new(io.clone()), Box::new(io))
    };
    p.close(conn.data_fd);
    p.close(conn.ctl_fd);
    r
}
