//! ftpfs: FTP as a file system (§6.2).
//!
//! "We decided to make our interface to FTP a file system rather than
//! the traditional command. Our command, ftpfs, dials the FTP port of a
//! remote system, prompts for login and password, sets image mode, and
//! mounts the remote file system onto /n/ftp. Files and directories are
//! cached to reduce traffic. The cache is updated whenever a file is
//! created."

use crate::ftpd::LineChan;
use plan9_support::sync::Mutex;
use plan9_core::dial::dial;
use plan9_core::namespace::clean_path;
use plan9_core::proc::Proc;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, Perm, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::HashMap;
use plan9_netlog::Counter;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One FTP control conversation, shared by all file operations.
struct FtpClient {
    p: Proc,
    fd: i32,
    buf: Vec<u8>,
}

#[derive(Clone)]
enum CacheEntry {
    Dir(Vec<(String, bool, u64)>),
    File(Vec<u8>),
}

/// FTP presented as a file tree with caching.
pub struct FtpFs {
    client: Mutex<FtpClient>,
    cache: Mutex<HashMap<String, CacheEntry>>,
    /// Local modifications awaiting flush, path → contents.
    dirty: Mutex<HashMap<String, Vec<u8>>>,
    qids: Mutex<HashMap<String, u32>>,
    next_qid: AtomicU32,
    handles: AtomicU64,
    nodes: Mutex<HashMap<u64, String>>,
    /// Control round trips performed (cache effectiveness metric).
    pub round_trips: Counter,
}

impl FtpFs {
    /// Dials the FTP port of `dest` (e.g. `tcp!fileserver!ftp`), logs in
    /// and sets image mode, returning the mountable file system.
    pub fn dial_and_login(p: Proc, dest: &str, user: &str, pass: &str) -> Result<Arc<FtpFs>> {
        let conn = dial(&p, dest)?;
        let fd = conn.data_fd;
        let fs = Arc::new(FtpFs {
            client: Mutex::new(FtpClient {
                p,
                fd,
                buf: Vec::new(),
            }),
            cache: Mutex::new(HashMap::new()),
            dirty: Mutex::new(HashMap::new()),
            qids: Mutex::new(HashMap::new()),
            next_qid: AtomicU32::new(1),
            handles: AtomicU64::new(1),
            nodes: Mutex::new(HashMap::new()),
            round_trips: Counter::new("ftp.roundtrips"),
        });
        {
            let mut client = fs.client.lock();
            let mut chan = client.chan_raw();
            expect_code(&mut chan, "220")?;
            chan.write_line(&format!("USER {user}"))?;
            expect_code(&mut chan, "331")?;
            chan.write_line(&format!("PASS {pass}"))?;
            expect_code(&mut chan, "230")?;
            chan.write_line("TYPE I")?;
            expect_code(&mut chan, "200")?;
            let leftover = chan.take_buffer();
            client.buf = leftover;
        }
        Ok(fs)
    }

    fn qid_for(&self, path: &str, dir: bool) -> Qid {
        let mut qids = self.qids.lock();
        let id = *qids.entry(path.to_string()).or_insert_with(|| {
            self.next_qid.fetch_add(1, Ordering::Relaxed)
        });
        if dir {
            Qid::dir(id, 0)
        } else {
            Qid::file(id, 0)
        }
    }

    fn node_path(&self, n: &ServeNode) -> Result<String> {
        self.nodes
            .lock()
            .get(&n.handle)
            .cloned()
            .ok_or_else(|| NineError::new(errstr::EUNKNOWNFID))
    }

    fn install(&self, path: String, dir: bool) -> ServeNode {
        let handle = self.handles.fetch_add(1, Ordering::Relaxed);
        let qid = self.qid_for(&path, dir);
        self.nodes.lock().insert(handle, path);
        ServeNode::new(qid, handle)
    }

    /// Fetches (or serves from cache) the listing of a directory.
    fn list_dir(&self, path: &str) -> Result<Vec<(String, bool, u64)>> {
        if let Some(CacheEntry::Dir(entries)) = self.cache.lock().get(path).cloned() {
            return Ok(entries);
        }
        self.round_trips.inc();
        let mut client = self.client.lock();
        let mut chan = client.chan_raw();
        chan.write_line(&format!("LIST {path}"))?;
        let line = chan.read_line()?;
        if !line.starts_with("150") {
            return Err(NineError::new(line));
        }
        let len: usize = line[4..]
            .trim()
            .parse()
            .map_err(|_| NineError::new("ftp: bad 150"))?;
        let text = chan.read_exact(len)?;
        expect_code(&mut chan, "226")?;
        client.buf = chan.take_buffer();
        drop(client);
        let mut entries = Vec::new();
        for l in String::from_utf8_lossy(&text).lines() {
            let mut parts = l.split_whitespace();
            let (Some(kind), Some(size), Some(name)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            entries.push((
                name.to_string(),
                kind == "d",
                size.parse().unwrap_or(0),
            ));
        }
        self.cache
            .lock()
            .insert(path.to_string(), CacheEntry::Dir(entries.clone()));
        Ok(entries)
    }

    /// Fetches (or serves from cache) a file's contents.
    fn fetch_file(&self, path: &str) -> Result<Vec<u8>> {
        if let Some(data) = self.dirty.lock().get(path) {
            return Ok(data.clone());
        }
        if let Some(CacheEntry::File(data)) = self.cache.lock().get(path).cloned() {
            return Ok(data);
        }
        self.round_trips.inc();
        let mut client = self.client.lock();
        let mut chan = client.chan_raw();
        chan.write_line(&format!("RETR {path}"))?;
        let line = chan.read_line()?;
        if !line.starts_with("150") {
            return Err(NineError::new(line));
        }
        let len: usize = line[4..]
            .trim()
            .parse()
            .map_err(|_| NineError::new("ftp: bad 150"))?;
        let data = chan.read_exact(len)?;
        expect_code(&mut chan, "226")?;
        client.buf = chan.take_buffer();
        drop(client);
        self.cache
            .lock()
            .insert(path.to_string(), CacheEntry::File(data.clone()));
        Ok(data)
    }

    /// Pushes a locally written file to the server and refreshes caches
    /// ("the cache is updated whenever a file is created").
    fn store(&self, path: &str, data: &[u8]) -> Result<()> {
        self.round_trips.inc();
        let mut client = self.client.lock();
        let mut chan = client.chan_raw();
        chan.write_line(&format!("STOR {} {}", data.len(), path))?;
        chan.write_raw(data)?;
        expect_code(&mut chan, "226")?;
        client.buf = chan.take_buffer();
        drop(client);
        self.cache
            .lock()
            .insert(path.to_string(), CacheEntry::File(data.to_vec()));
        // Parent listing is stale now.
        if let Some((parent, _)) = path.rsplit_once('/') {
            let parent = if parent.is_empty() { "/" } else { parent };
            self.cache.lock().remove(parent);
        }
        Ok(())
    }
}

impl std::fmt::Debug for FtpFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FtpFs(cached {}, round trips {})",
            self.cache.lock().len(),
            self.round_trips.get()
        )
    }
}

impl FtpClient {
    fn chan_raw(&mut self) -> LineChan<'_> {
        let buffered = std::mem::take(&mut self.buf);
        let mut chan = LineChan::new(&self.p, self.fd);
        chan.preload(buffered);
        chan
    }
}

fn expect_code(chan: &mut LineChan<'_>, code: &str) -> Result<String> {
    let line = chan.read_line()?;
    if line.starts_with(code) {
        Ok(line)
    } else {
        Err(NineError::new(format!("ftp: unexpected reply: {line}")))
    }
}

impl ProcFs for FtpFs {
    fn fsname(&self) -> String {
        "ftp".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(self.install("/".to_string(), true))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        let path = self.node_path(n)?;
        let dir = n.qid.is_dir();
        Ok(self.install(path, dir))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let path = self.node_path(n)?;
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        let new_path = clean_path(&format!("{path}/{name}"));
        if name == ".." {
            let qid = self.qid_for(&new_path, true);
            self.nodes.lock().insert(n.handle, new_path);
            return Ok(ServeNode::new(qid, n.handle));
        }
        let entries = self.list_dir(&path)?;
        let entry = entries
            .iter()
            .find(|(en, _, _)| en == name)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))?;
        let qid = self.qid_for(&new_path, entry.1);
        self.nodes.lock().insert(n.handle, new_path);
        Ok(ServeNode::new(qid, n.handle))
    }

    fn open(&self, n: &ServeNode, _mode: OpenMode) -> Result<ServeNode> {
        Ok(*n)
    }

    fn create(&self, n: &ServeNode, name: &str, _perm: Perm, _mode: OpenMode) -> Result<ServeNode> {
        let path = self.node_path(n)?;
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        let new_path = clean_path(&format!("{path}/{name}"));
        // Created files exist immediately on the remote (empty).
        self.store(&new_path, b"")?;
        self.dirty.lock().insert(new_path.clone(), Vec::new());
        let qid = self.qid_for(&new_path, false);
        self.nodes.lock().insert(n.handle, new_path);
        Ok(ServeNode::new(qid, n.handle))
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        let path = self.node_path(n)?;
        if n.qid.is_dir() {
            let entries = self.list_dir(&path)?;
            let dirs: Vec<Dir> = entries
                .iter()
                .map(|(name, is_dir, size)| {
                    let child = clean_path(&format!("{path}/{name}"));
                    let qid = self.qid_for(&child, *is_dir);
                    if *is_dir {
                        Dir::directory(name, qid, 0o555, "ftp")
                    } else {
                        Dir::file(name, qid, 0o666, "ftp", *size)
                    }
                })
                .collect();
            return read_dir_slice(&dirs, offset, count);
        }
        let data = self.fetch_file(&path)?;
        let off = (offset as usize).min(data.len());
        let end = (off + count).min(data.len());
        Ok(data[off..end].to_vec())
    }

    fn write(&self, n: &ServeNode, offset: u64, data: &[u8]) -> Result<usize> {
        let path = self.node_path(n)?;
        if n.qid.is_dir() {
            return Err(NineError::new(errstr::EISDIR));
        }
        let mut dirty = self.dirty.lock();
        let buf = dirty.entry(path.clone()).or_insert_with(|| {
            match self.cache.lock().get(&path) {
                Some(CacheEntry::File(d)) => d.clone(),
                _ => Vec::new(),
            }
        });
        let off = offset as usize;
        if buf.len() < off + data.len() {
            buf.resize(off + data.len(), 0);
        }
        buf[off..off + data.len()].copy_from_slice(data);
        Ok(data.len())
    }

    fn clunk(&self, n: &ServeNode) {
        // Flush dirty contents on clunk (close writes back).
        if let Ok(path) = self.node_path(n) {
            let data = self.dirty.lock().remove(&path);
            if let Some(data) = data {
                let _ = self.store(&path, &data);
            }
        }
        self.nodes.lock().remove(&n.handle);
    }

    fn remove(&self, n: &ServeNode) -> Result<()> {
        let path = self.node_path(n)?;
        self.round_trips.inc();
        {
            let mut client = self.client.lock();
            let mut chan = client.chan_raw();
            chan.write_line(&format!("DELE {path}"))?;
            expect_code(&mut chan, "250")?;
            client.buf = chan.take_buffer();
        }
        self.cache.lock().remove(&path);
        if let Some((parent, _)) = path.rsplit_once('/') {
            let parent = if parent.is_empty() { "/" } else { parent };
            self.cache.lock().remove(parent);
        }
        self.nodes.lock().remove(&n.handle);
        Ok(())
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        let path = self.node_path(n)?;
        if n.qid.is_dir() {
            let name = path.rsplit('/').next().unwrap_or("/");
            return Ok(Dir::directory(
                if name.is_empty() { "/" } else { name },
                n.qid,
                0o555,
                "ftp",
            ));
        }
        let data = self.fetch_file(&path)?;
        let name = path.rsplit('/').next().unwrap_or("?");
        Ok(Dir::file(name, n.qid, 0o666, "ftp", data.len() as u64))
    }
}
