//! Generated topologies: N cities of M pooled machines on per-city
//! Ethernets, Cyclone trunks between cities, gateways at the borders.
//!
//! The layout reproduces the paper's geography in miniature. Each city
//! is one shared Ethernet segment carrying a border gateway (a full
//! [`Machine`] with ndb, CS, DNS and an exportable `/net`) and M pooled
//! host stacks (no threads — frame delivery and protocol timers ride
//! the worker pool). Cities form a line; trunk *t* is a full-duplex
//! Cyclone link between city *t* and city *t+1*, spliced into both
//! segments by transparent bridges.
//!
//! Bridging exploits the addressing plan from
//! [`plan9_ndb::gen::topo_addr`]: byte 3 of every station address *is*
//! the city number, so a bridge needs no learning table. On a line of
//! cities the loop-free rule is positional: the bridge facing higher
//! cities forwards unicast frames addressed above it (and broadcasts
//! travelling up), its mirror forwards the rest. Every segment sees
//! exactly one copy of every frame that must cross it, and since the
//! bus never echoes a sender's own frame back, there are no loops.
//!
//! All interfaces get a zero subnet mask, so IP considers the whole
//! 10.x internet on-link and resolves any destination with ARP — the
//! broadcasts cross the bridges like any other frame. That keeps the
//! simulated internet a flat layer-2 world; what makes the gateways
//! *gateways* is the application layer: each one exports `/net` at the
//! city border (§6.1), which the scenario engine wires into standing
//! import flows.

use plan9_core::machine::{Machine, MachineBuilder};
use plan9_cs::SimInternet;
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_inet::IpAddr;
use plan9_ndb::gen::{generate_topology, TopoNdb};
use plan9_netsim::cyclone::{cyclone_link, CycloneEnd};
use plan9_netsim::ether::{
    mac_from_string, EtherFrame, EtherSegment, EtherStation, MacAddr, BROADCAST,
};
use plan9_netsim::profile::{LinkProfile, Profiles};
use plan9_netsim::wire::{Medium, RecvOutcome};
use plan9_support::chan::{unbounded, RecvTimeoutError};
use plan9_support::{time, vtime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The paper's global-file scale: "Our global file ... has 43,000
/// lines" (§4.1). [`Topology::grid`] pads its generated ndb to this.
pub const PAPER_NDB_LINES: usize = 43_000;

/// The IL port every city server listens on (`il=9fs` in the service
/// map).
pub const SERVE_PORT: u16 = 17008;

/// The IL port the gateways' exportfs listeners announce
/// (`il=exportfs`).
pub const EXPORT_PORT: u16 = 17009;

/// One city: a shared segment, its border gateway, and the pooled
/// host stacks. `hosts[0]` doubles as the city's file server in the
/// scenario engine.
pub struct City {
    /// Position on the trunk line.
    pub index: usize,
    /// The city's shared Ethernet.
    pub segment: Arc<EtherSegment>,
    /// The border gateway machine (thread-mode stack, full `/net`).
    pub gateway: Arc<Machine>,
    /// Pooled machine stacks, `hosts[h]` at the address
    /// `topo_addr(index, h + 2)`.
    pub hosts: Vec<Arc<IpStack>>,
}

/// A full-duplex Cyclone trunk between adjacent cities: two
/// independent fibers whose media can be downed and re-upped for
/// flaps and partitions.
pub struct Trunk {
    /// Lower city.
    pub a: usize,
    /// Higher city (`a + 1`).
    pub b: usize,
    media: [Arc<Medium>; 2],
}

impl Trunk {
    /// Downs or restores both fibers.
    pub fn set_up(&self, up: bool) {
        for m in &self.media {
            m.set_up(up);
        }
    }

    /// Whether the trunk currently carries frames.
    pub fn is_up(&self) -> bool {
        self.media.iter().all(|m| m.is_up())
    }

    /// True when this trunk crosses the cut that puts `left` on one
    /// side and everything else on the other.
    pub fn crosses(&self, left: &[usize]) -> bool {
        left.contains(&self.a) != left.contains(&self.b)
    }
}

/// Which way a bridge faces on the trunk line.
#[derive(Clone, Copy)]
enum Facing {
    /// On city `c`, forwarding toward cities above it.
    Higher(usize),
    /// On city `c`, forwarding toward cities below it.
    Lower(usize),
}

fn forwards(facing: Facing, f: &EtherFrame) -> bool {
    let bcast = f.dst == BROADCAST;
    let dst_city = f.dst[3] as usize;
    let src_city = f.src[3] as usize;
    match facing {
        // Broadcasts ride outward from their source city; unicasts
        // follow the city byte. Both rules deliver exactly one copy
        // per segment on a line.
        Facing::Higher(c) => {
            if bcast {
                src_city <= c
            } else {
                dst_city > c
            }
        }
        Facing::Lower(c) => {
            if bcast {
                src_city >= c
            } else {
                dst_city < c
            }
        }
    }
}

/// An N-city internet, alive until [`shutdown`](Topology::shutdown).
pub struct Topology {
    /// The cities, in line order.
    pub cities: Vec<City>,
    /// Trunk `t` joins cities `t` and `t+1`.
    pub trunks: Vec<Arc<Trunk>>,
    /// The generated database: text plus structured host records.
    pub ndb: TopoNdb,
    /// The DNS world every gateway resolves against.
    pub internet: Arc<SimInternet>,
    stop: Arc<AtomicBool>,
    bridge_procs: Vec<vtime::KprocHandle<()>>,
}

/// Fabric-wide frame accounting for one medium.
pub struct MediumReport {
    /// Stable medium name (`city0.ether`, `trunk1-2.up`, ...).
    pub name: String,
    /// Frames offered.
    pub sent: u64,
    /// Copies delivered.
    pub delivered: u64,
    /// Frames dropped (loss or downed link).
    pub dropped: u64,
    /// Extra copies from duplication.
    pub duplicated: u64,
}

impl MediumReport {
    /// The conservation identity every medium must satisfy.
    pub fn holds(&self) -> bool {
        self.delivered == self.sent - self.dropped + self.duplicated
    }
}

/// The fabric-wide conservation check: per-medium reports plus totals.
pub struct Conservation {
    /// One report per medium, in fixed order (cities, then trunks).
    pub media: Vec<MediumReport>,
}

impl Conservation {
    /// Media violating `delivered == sent - dropped + duplicated`.
    pub fn violations(&self) -> usize {
        self.media.iter().filter(|m| !m.holds()).count()
    }

    /// Canonical render: one sorted-order line per medium plus a
    /// total line, byte-stable across identical runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let (mut s, mut d, mut dr, mut du) = (0u64, 0u64, 0u64, 0u64);
        for m in &self.media {
            out.push_str(&format!(
                "conservation {} sent={} delivered={} dropped={} duplicated={} ok={}\n",
                m.name, m.sent, m.delivered, m.dropped, m.duplicated, m.holds()
            ));
            s += m.sent;
            d += m.delivered;
            dr += m.dropped;
            du += m.duplicated;
        }
        out.push_str(&format!(
            "conservation total media={} sent={s} delivered={d} dropped={dr} \
             duplicated={du} violations={}\n",
            self.media.len(),
            self.violations()
        ));
        out
    }
}

/// A modern-ish city Ethernet: gigabit-class pacing with a whisper of
/// propagation, so scenario latencies are physical quantities (a flash
/// crowd queues on the bus and the p99 shows it) without being slow
/// enough for a crowd to starve the handshake timers.
fn city_ether() -> LinkProfile {
    LinkProfile {
        bandwidth_bps: 1_000_000_000,
        propagation: Duration::from_micros(5),
        per_frame: Duration::from_micros(1),
        ..Profiles::ether_fast()
    }
}

/// An inter-city Cyclone trunk: fast fiber, but the cities are far
/// apart — the 300us one-way delay dominates cross-city RTTs the way
/// the paper's long-haul links did.
fn trunk_cyclone() -> LinkProfile {
    LinkProfile {
        bandwidth_bps: 622_000_000,
        propagation: Duration::from_micros(300),
        per_frame: Duration::from_micros(2),
        ..Profiles::cyclone_fast()
    }
}

/// Everything on the flat internet is on-link; ARP does the rest.
fn flat_cfg(ip: &str) -> IpConfig {
    IpConfig {
        addr: IpAddr::parse(ip).expect("generated ip literal"),
        mask: IpAddr::new(0, 0, 0, 0),
        gateway: None,
    }
}

fn parse_mac(ether: &str) -> MacAddr {
    mac_from_string(ether).expect("generated ether literal")
}

impl Topology {
    /// Builds an N-city line at the paper's 43,000-line database scale.
    pub fn grid(n_cities: usize, hosts_per_city: usize, seed: u64) -> Topology {
        Self::grid_with(n_cities, hosts_per_city, PAPER_NDB_LINES, seed)
    }

    /// Like [`grid`](Topology::grid) with an explicit database size,
    /// for tests that don't want to parse 43k lines per machine.
    pub fn grid_with(
        n_cities: usize,
        hosts_per_city: usize,
        ndb_lines: usize,
        seed: u64,
    ) -> Topology {
        assert!(n_cities >= 1, "at least one city");
        assert!(hosts_per_city >= 1, "at least one host per city");
        assert!(n_cities < 0xff, "city fits the MAC city byte");
        let ndb = generate_topology(n_cities, hosts_per_city, ndb_lines, seed);

        // The DNS world: a zone per city under `sim`, every generated
        // host and gateway registered, the filler population left out
        // (NXDOMAIN fodder).
        let internet = SimInternet::new();
        internet.add_zone("sim");
        for c in 0..n_cities {
            internet.add_zone(&format!("city{c}.sim"));
        }
        for h in ndb.hosts.iter().chain(ndb.gateways.iter()) {
            internet.register(&h.dom, "ip", &h.ip);
        }

        let segments: Vec<Arc<EtherSegment>> = (0..n_cities)
            .map(|c| {
                EtherSegment::new(city_ether().with_seed(seed.wrapping_add(c as u64)))
            })
            .collect();

        // Trunks and their bridges.
        let stop = Arc::new(AtomicBool::new(false));
        let mut bridge_procs = Vec::new();
        let mut trunks = Vec::new();
        for t in 0..n_cities.saturating_sub(1) {
            let (near, far) =
                cyclone_link(trunk_cyclone().with_seed(seed ^ (0x7071 + t as u64)));
            let media = [Arc::clone(near.medium()), Arc::clone(far.medium())];
            trunks.push(Arc::new(Trunk { a: t, b: t + 1, media }));
            // 0x0a in the OUI keeps bridge addresses clear of host
            // space; byte 3 is the bridge's own city so positional
            // filtering stays consistent if anyone ever unicasts one.
            let hi_mac: MacAddr = [0x08, 0x00, 0x0a, t as u8, 0x01, t as u8];
            let lo_mac: MacAddr = [0x08, 0x00, 0x0a, (t + 1) as u8, 0x00, t as u8];
            bridge_procs.extend(bridge(
                &segments[t],
                hi_mac,
                near,
                Facing::Higher(t),
                0xb21d_6e00 + 2 * t as u64,
                &stop,
            ));
            bridge_procs.extend(bridge(
                &segments[t + 1],
                lo_mac,
                far,
                Facing::Lower(t + 1),
                0xb21d_6e01 + 2 * t as u64,
                &stop,
            ));
        }

        // Cities: one gateway machine plus M pooled stacks each.
        let mut cities = Vec::new();
        for (c, segment) in segments.into_iter().enumerate() {
            let gw = &ndb.gateways[c];
            let gateway = MachineBuilder::new(&gw.sys)
                .ether(&segment, parse_mac(&gw.ether), flat_cfg(&gw.ip))
                .ndb(&ndb.text)
                .internet(&internet)
                .build()
                .expect("build gateway machine");
            let hosts: Vec<Arc<IpStack>> = (0..hosts_per_city)
                .map(|h| {
                    let th = &ndb.hosts[c * hosts_per_city + h];
                    IpStack::new_pooled(
                        segment.attach(parse_mac(&th.ether)),
                        flat_cfg(&th.ip),
                    )
                })
                .collect();
            cities.push(City {
                index: c,
                segment,
                gateway,
                hosts,
            });
        }

        Topology {
            cities,
            trunks,
            ndb,
            internet,
            stop,
            bridge_procs,
        }
    }

    /// The trunk joining cities `a` and `b`, if adjacent.
    pub fn trunk_between(&self, a: usize, b: usize) -> Option<&Arc<Trunk>> {
        let (lo, hi) = (a.min(b), a.max(b));
        self.trunks.iter().find(|t| t.a == lo && t.b == hi)
    }

    /// Every live stack: pooled hosts first (city-major), then the
    /// gateways, in a fixed order reports can rely on.
    pub fn stacks(&self) -> Vec<Arc<IpStack>> {
        let mut out = Vec::new();
        for c in &self.cities {
            out.extend(c.hosts.iter().cloned());
        }
        for c in &self.cities {
            out.extend(c.gateway.ip.iter().cloned());
        }
        out
    }

    /// Open IL conversations across the whole fabric.
    pub fn conn_count(&self) -> usize {
        self.stacks()
            .iter()
            .map(|s| s.il_module().conn_count())
            .sum()
    }

    /// The fabric-wide frame-conservation check.
    pub fn conservation(&self) -> Conservation {
        let mut media = Vec::new();
        let mut push = |name: String, m: &Arc<Medium>| {
            let st = m.stats();
            media.push(MediumReport {
                name,
                sent: st.sent.get(),
                delivered: st.delivered.get(),
                dropped: st.dropped.get(),
                duplicated: st.duplicated.get(),
            });
        };
        for c in &self.cities {
            push(format!("city{}.ether", c.index), c.segment.medium());
        }
        for t in &self.trunks {
            push(format!("trunk{}-{}.up", t.a, t.b), &t.media[0]);
            push(format!("trunk{}-{}.down", t.a, t.b), &t.media[1]);
        }
        Conservation { media }
    }

    /// Tears the fabric down: stops the bridges, shuts every stack
    /// down, and gives thread-mode receive loops a beat to notice.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for c in &self.cities {
            for h in &c.hosts {
                h.shutdown();
            }
            if let Some(ip) = &c.gateway.ip {
                ip.shutdown();
            }
        }
        for p in self.bridge_procs.drain(..) {
            let _ = p.join();
        }
        time::sleep(Duration::from_millis(120));
    }
}

/// Splices one end of a trunk into a segment. Two kprocs per bridge:
/// the forwarder drains a channel fed by the station's push-mode rx
/// hook (the hook itself must not block on virtual time, and a trunk
/// send paces on the fiber), and the pump relays trunk arrivals back
/// onto the bus. Frames are forwarded raw, source address intact —
/// the bridge is transparent.
fn bridge(
    segment: &Arc<EtherSegment>,
    mac: MacAddr,
    end: CycloneEnd,
    facing: Facing,
    shard_key: u64,
    stop: &Arc<AtomicBool>,
) -> Vec<vtime::KprocHandle<()>> {
    let station: EtherStation = segment.attach(mac);
    let end = Arc::new(end);
    let (ftx, frx) = unbounded::<Vec<u8>>();
    station.set_rx_handler(shard_key, move |frame| {
        if forwards(facing, &frame) {
            // blocking-ok: unbounded channel send never waits
            let _ = ftx.send(frame.encode());
        }
    });
    let fwd = {
        let end = Arc::clone(&end);
        let stop = Arc::clone(stop);
        vtime::kproc("bridge-fwd", move || loop {
            match frx.recv_timeout(Duration::from_millis(50)) {
                Ok(bytes) => {
                    // A downed trunk drops this on the floor inside
                    // the medium — exactly what a flap should do.
                    let _ = end.send(&bytes);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        })
        .expect("spawn bridge forwarder")
    };
    let pump = {
        let stop = Arc::clone(stop);
        vtime::kproc("bridge-pump", move || loop {
            match end.recv_timeout(Duration::from_millis(50)) {
                RecvOutcome::Frame(bytes) => {
                    let _ = station.send_raw(&bytes);
                }
                RecvOutcome::TimedOut => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                RecvOutcome::Hangup => return,
            }
        })
        .expect("spawn bridge pump")
    };
    vec![fwd, pump]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_filter_is_loop_free_on_a_line() {
        // Every (src, dst) unicast pair crosses each segment once.
        let frame = |src_city: u8, dst_city: u8| EtherFrame {
            dst: [0x08, 0x00, 0x09, dst_city, 0, 2],
            src: [0x08, 0x00, 0x09, src_city, 0, 2],
            ethertype: 0x0800,
            payload: vec![],
        };
        // A frame from 0 to 3 is forwarded up by every Higher bridge
        // it meets and by no Lower bridge.
        for c in 0..3 {
            assert!(forwards(Facing::Higher(c), &frame(0, 3)));
            assert!(!forwards(Facing::Lower(c + 1), &frame(0, 3)));
        }
        // Same-city traffic never leaves the segment.
        assert!(!forwards(Facing::Higher(1), &frame(1, 1)));
        assert!(!forwards(Facing::Lower(1), &frame(1, 1)));
        // Broadcasts travel outward only.
        let mut b = frame(2, 0);
        b.dst = BROADCAST;
        assert!(forwards(Facing::Higher(2), &b));
        assert!(forwards(Facing::Lower(2), &b));
        assert!(forwards(Facing::Lower(1), &b)); // keeps going down
        assert!(!forwards(Facing::Higher(1), &b)); // never reflects
    }

    #[test]
    fn two_city_dial_crosses_the_trunk() {
        let mut topo = Topology::grid_with(2, 2, 100, 7);
        let server = Arc::clone(&topo.cities[1].hosts[0]);
        let listener = server
            .il_module()
            .listen(&server, SERVE_PORT)
            .expect("listen");
        let client = Arc::clone(&topo.cities[0].hosts[1]);
        let conn = client
            .il_module()
            .connect(&client, server.addr(), SERVE_PORT)
            .expect("dial across the trunk");
        let srv = listener
            .accept_timeout(Duration::from_secs(10))
            .expect("accept");
        conn.send(b"hello from city 0").expect("send");
        let got = srv.recv().expect("recv").expect("message");
        assert_eq!(got, b"hello from city 0");
        conn.close();
        srv.close();
        drop(listener);
        let cons = topo.conservation();
        assert_eq!(cons.violations(), 0, "{}", cons.render());
        let trunk = Arc::clone(topo.trunk_between(0, 1).expect("trunk"));
        assert!(trunk.is_up());
        // Traffic crossed both fibers.
        let crossed: u64 = cons
            .media
            .iter()
            .filter(|m| m.name.starts_with("trunk"))
            .map(|m| m.delivered)
            .sum();
        assert!(crossed > 0, "no frames crossed the trunk:\n{}", cons.render());
        topo.shutdown();
    }

    #[test]
    fn downed_trunk_partitions_and_heals() {
        let mut topo = Topology::grid_with(2, 1, 100, 3);
        let trunk = Arc::clone(topo.trunk_between(0, 1).expect("trunk"));
        trunk.set_up(false);
        let a = Arc::clone(&topo.cities[0].hosts[0]);
        let b = Arc::clone(&topo.cities[1].hosts[0]);
        // ARP can't cross: the dial fails.
        assert!(a.il_module().connect(&a, b.addr(), SERVE_PORT).is_err());
        trunk.set_up(true);
        let listener = b.il_module().listen(&b, SERVE_PORT).expect("listen");
        let conn = a
            .il_module()
            .connect(&a, b.addr(), SERVE_PORT)
            .expect("dial after heal");
        let srv = listener.accept_timeout(Duration::from_secs(10)).expect("accept");
        conn.close();
        srv.close();
        drop(listener);
        let cons = topo.conservation();
        assert_eq!(cons.violations(), 0, "{}", cons.render());
        topo.shutdown();
    }
}
