//! The scenario runner: parse a script, inflict it on a generated
//! internet, print the canonical report.
//!
//! Usage:
//!   scenario <script-file>    run a script under the virtual clock
//!   scenario --demo           run the built-in walkthrough (small)
//!   scenario --real <file>    run under the real clock (smoke)
//!
//! Exits nonzero if the script fails to parse or the run violates the
//! fabric invariants (frame conservation, no leaked conversations).

use plan9_support::vtime;

/// A scaled-down copy of the EXPERIMENTS walkthrough, small enough to
/// smoke-run anywhere in a few seconds of wall clock.
const DEMO: &str = "\
# a flash crowd hits city 1 while the backbone misbehaves (demo scale)
seed 42
topology grid cities=3 hosts=8 ndb-lines=500
at 100ms flashcrowd city=1 dials=40 size=512 window=300ms
at 500ms flap trunk=0-1 for 100ms
at 800ms partition {0}|{1,2} heal 200ms
at 1200ms kill gateway city=2
end 2s
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (real, source) = match args.first().map(String::as_str) {
        Some("--demo") => (false, ("demo".to_string(), DEMO.to_string())),
        Some("--real") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            (true, (path.clone(), read_script(path)))
        }
        Some(path) => (false, (path.to_string(), read_script(path))),
        None => usage(),
    };
    let (name, text) = source;
    let sc = match plan9_scenario::dsl::parse(&text) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("scenario: {name}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "scenario {name}: {} cities x {} hosts, {} events, seed {} ({})",
        sc.cities,
        sc.hosts_per_city,
        sc.events.len(),
        sc.seed,
        if real { "real clock" } else { "virtual clock" },
    );
    let report = if real {
        plan9_scenario::run(&sc)
    } else {
        let guard = vtime::enter();
        let r = plan9_scenario::run(&sc);
        drop(guard);
        r
    };
    print!("{}", report.text);
    if report.clean() {
        println!("scenario {name}: OK");
    } else {
        println!(
            "scenario {name}: FAILED ({} conservation violations, {} leaked conversations)",
            report.conservation_violations, report.residual_conns
        );
        std::process::exit(1);
    }
}

fn read_script(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: scenario <script-file> | --demo | --real <script-file>");
    std::process::exit(2);
}
