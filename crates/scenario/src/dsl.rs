//! The scenario language: a deterministic, seeded script of
//! adversities to inflict on a generated topology.
//!
//! ```text
//! # flash crowd hits city 3 while the backbone misbehaves
//! seed 42
//! topology grid cities=4 hosts=250
//! at 2s flashcrowd city=3 dials=2000 size=512 window=1s
//! at 5s flap trunk=1-2 for 300ms
//! at 8s partition {0,1}|{2,3} heal 2s
//! at 12s kill gateway city=2
//! end 14s
//! ```
//!
//! The grammar is line-oriented: `#` starts a comment, blank lines are
//! skipped, and every event is pinned to a virtual instant with `at`.
//! Durations take `us`, `ms` or `s` suffixes. Cities are 0-based.
//! Everything random downstream (arrival offsets, client choice) draws
//! from `seed`, so a script names one exact execution.

use std::time::Duration;

/// One adversity, to be applied at its scheduled instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `dials` clients (drawn from the whole internet) storm the
    /// file server of `city` within `window`, each reading `size`
    /// bytes over a fresh IL conversation.
    FlashCrowd {
        /// Target city.
        city: usize,
        /// Conversations to launch.
        dials: usize,
        /// Bytes read per conversation (64, 512 or 4096).
        size: usize,
        /// Arrival window the dials are spread over.
        window: Duration,
    },
    /// The trunk between cities `a` and `b` goes dark for `down_for`,
    /// then comes back.
    Flap {
        /// Lower city.
        a: usize,
        /// Higher city.
        b: usize,
        /// Outage length.
        down_for: Duration,
    },
    /// Every trunk crossing the cut between `left` and `right` goes
    /// down; all heal together after `heal`.
    Partition {
        /// Cities on one side.
        left: Vec<usize>,
        /// Cities on the other.
        right: Vec<usize>,
        /// Time until the cut heals.
        heal: Duration,
    },
    /// The border gateway of `city` is killed: its exportfs listener
    /// is torn down and every conversation it carries is hung up.
    KillGateway {
        /// The city losing its gateway.
        city: usize,
    },
}

/// A timed event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual offset from scenario start.
    pub at: Duration,
    /// What happens.
    pub ev: Event,
}

/// A parsed, validated scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for every random draw the scenario makes.
    pub seed: u64,
    /// Cities on the trunk line.
    pub cities: usize,
    /// Pooled hosts per city.
    pub hosts_per_city: usize,
    /// Lines the generated ndb is padded to.
    pub ndb_lines: usize,
    /// The script, in arming order.
    pub events: Vec<TimedEvent>,
    /// When the scenario ends (events must come first).
    pub end: Duration,
    /// When set, every gateway samples its `/net/log/series` at this
    /// interval and the report carries the fabric's merged series
    /// (`netmon 250ms`).
    pub netmon: Option<Duration>,
}

/// Parses a script. Errors name the offending line.
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut seed = 1u64;
    let mut topo: Option<(usize, usize, usize)> = None;
    let mut events = Vec::new();
    let mut end = None;
    let mut netmon = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m} ({raw:?})", ln + 1);
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "seed" => {
                seed = words
                    .get(1)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("seed wants an integer".into()))?;
            }
            "topology" => {
                if words.get(1) != Some(&"grid") {
                    return Err(err("only `topology grid` is known".into()));
                }
                let cities = field(&words, "cities").ok_or_else(|| err("need cities=N".into()))?;
                let hosts = field(&words, "hosts").ok_or_else(|| err("need hosts=M".into()))?;
                let ndb_lines =
                    field(&words, "ndb-lines").unwrap_or(crate::topology::PAPER_NDB_LINES);
                topo = Some((cities, hosts, ndb_lines));
            }
            "at" => {
                let at = words
                    .get(1)
                    .and_then(|w| duration(w))
                    .ok_or_else(|| err("at wants a duration".into()))?;
                let ev = parse_event(&words[2..]).map_err(&err)?;
                events.push(TimedEvent { at, ev });
            }
            "end" => {
                end = Some(
                    words
                        .get(1)
                        .and_then(|w| duration(w))
                        .ok_or_else(|| err("end wants a duration".into()))?,
                );
            }
            "netmon" => {
                netmon = Some(
                    words
                        .get(1)
                        .and_then(|w| duration(w))
                        .filter(|d| !d.is_zero())
                        .ok_or_else(|| err("netmon wants a sampling interval".into()))?,
                );
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    let (cities, hosts_per_city, ndb_lines) =
        topo.ok_or("script never declared a topology".to_string())?;
    let end = end.ok_or("script never declared an end".to_string())?;
    let sc = Scenario {
        seed,
        cities,
        hosts_per_city,
        ndb_lines,
        events,
        end,
        netmon,
    };
    validate(&sc)?;
    Ok(sc)
}

fn parse_event(words: &[&str]) -> Result<Event, String> {
    match words.first() {
        Some(&"flashcrowd") => {
            let city = field(words, "city").ok_or("flashcrowd wants city=C")?;
            let dials = field(words, "dials").ok_or("flashcrowd wants dials=K")?;
            let size = field(words, "size").unwrap_or(512);
            let window = field_str(words, "window")
                .map(|w| duration(w).ok_or("bad window duration"))
                .transpose()?
                .unwrap_or(Duration::from_secs(1));
            Ok(Event::FlashCrowd {
                city,
                dials,
                size,
                window,
            })
        }
        Some(&"flap") => {
            let spec = field_str(words, "trunk").ok_or("flap wants trunk=A-B")?;
            let (a, b) = spec
                .split_once('-')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .ok_or("bad trunk spec, want A-B")?;
            let down_for = match words.iter().position(|w| *w == "for") {
                Some(i) => words
                    .get(i + 1)
                    .and_then(|w| duration(w))
                    .ok_or("flap wants `for <duration>`")?,
                None => return Err("flap wants `for <duration>`".into()),
            };
            Ok(Event::Flap { a, b, down_for })
        }
        Some(&"partition") => {
            let cut = words.get(1).ok_or("partition wants {..}|{..}")?;
            let (l, r) = cut.split_once('|').ok_or("partition wants {..}|{..}")?;
            let left = group(l).ok_or("bad city group")?;
            let right = group(r).ok_or("bad city group")?;
            let heal = match words.iter().position(|w| *w == "heal") {
                Some(i) => words
                    .get(i + 1)
                    .and_then(|w| duration(w))
                    .ok_or("partition wants `heal <duration>`")?,
                None => return Err("partition wants `heal <duration>`".into()),
            };
            Ok(Event::Partition { left, right, heal })
        }
        Some(&"kill") => {
            if words.get(1) != Some(&"gateway") {
                return Err("only `kill gateway city=C` is known".into());
            }
            let city = field(words, "city").ok_or("kill gateway wants city=C")?;
            Ok(Event::KillGateway { city })
        }
        other => Err(format!("unknown event {other:?}")),
    }
}

fn validate(sc: &Scenario) -> Result<(), String> {
    let n = sc.cities;
    let check_city = |c: usize, what: &str| {
        if c >= n {
            Err(format!("{what} city {c} out of range (cities={n})"))
        } else {
            Ok(())
        }
    };
    for te in &sc.events {
        if te.at >= sc.end {
            return Err(format!("event at {:?} is not before end {:?}", te.at, sc.end));
        }
        match &te.ev {
            Event::FlashCrowd { city, dials, size, .. } => {
                check_city(*city, "flashcrowd")?;
                if *dials == 0 {
                    return Err("flashcrowd wants dials >= 1".into());
                }
                if ![64usize, 512, 4096].contains(size) {
                    return Err(format!("flashcrowd size {size} not in {{64,512,4096}}"));
                }
            }
            Event::Flap { a, b, .. } => {
                check_city(*a, "flap")?;
                check_city(*b, "flap")?;
                if b.checked_sub(*a) != Some(1) {
                    return Err(format!("trunk {a}-{b} is not an adjacent pair"));
                }
            }
            Event::Partition { left, right, .. } => {
                for &c in left.iter().chain(right.iter()) {
                    check_city(c, "partition")?;
                }
                let mut all: Vec<usize> = left.iter().chain(right.iter()).copied().collect();
                all.sort_unstable();
                all.dedup();
                if all.len() != left.len() + right.len() || all.len() != n {
                    return Err("partition groups must split every city exactly once".into());
                }
            }
            Event::KillGateway { city } => check_city(*city, "kill gateway")?,
        }
    }
    Ok(())
}

/// `key=value` integer fields.
fn field(words: &[&str], key: &str) -> Option<usize> {
    field_str(words, key)?.parse().ok()
}

fn field_str<'a>(words: &[&'a str], key: &str) -> Option<&'a str> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
}

/// `2s`, `300ms`, `1500us`.
fn duration(w: &str) -> Option<Duration> {
    // Try suffixes longest-first so `ms` isn't read as `s`.
    for (suffix, scale) in [("us", 1u64), ("ms", 1_000), ("s", 1_000_000)] {
        if let Some(n) = w.strip_suffix(suffix) {
            return n.parse::<u64>().ok().map(|v| Duration::from_micros(v * scale));
        }
    }
    None
}

/// `{0,1}` or `0,1`.
fn group(s: &str) -> Option<Vec<usize>> {
    let s = s.trim().strip_prefix('{').unwrap_or(s);
    let s = s.strip_suffix('}').unwrap_or(s);
    let mut out = Vec::new();
    for part in s.split(',') {
        out.push(part.trim().parse().ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
# the walkthrough scenario
seed 42
topology grid cities=4 hosts=250
at 2s flashcrowd city=3 dials=2000 size=512 window=1s
at 5s flap trunk=1-2 for 300ms
at 8s partition {0,1}|{2,3} heal 2s
at 12s kill gateway city=2
end 14s
";

    #[test]
    fn parses_the_walkthrough() {
        let sc = parse(SCRIPT).expect("parse");
        assert_eq!(sc.seed, 42);
        assert_eq!((sc.cities, sc.hosts_per_city), (4, 250));
        assert_eq!(sc.events.len(), 4);
        assert_eq!(
            sc.events[0],
            TimedEvent {
                at: Duration::from_secs(2),
                ev: Event::FlashCrowd {
                    city: 3,
                    dials: 2000,
                    size: 512,
                    window: Duration::from_secs(1),
                },
            }
        );
        assert_eq!(
            sc.events[1].ev,
            Event::Flap {
                a: 1,
                b: 2,
                down_for: Duration::from_millis(300)
            }
        );
        assert_eq!(
            sc.events[2].ev,
            Event::Partition {
                left: vec![0, 1],
                right: vec![2, 3],
                heal: Duration::from_secs(2)
            }
        );
        assert_eq!(sc.events[3].ev, Event::KillGateway { city: 2 });
        assert_eq!(sc.end, Duration::from_secs(14));
    }

    #[test]
    fn rejects_bad_scripts() {
        // No topology.
        assert!(parse("seed 1\nend 1s\n").is_err());
        // Event after end.
        assert!(parse(
            "topology grid cities=2 hosts=1\nat 2s kill gateway city=0\nend 1s\n"
        )
        .is_err());
        // Non-adjacent trunk.
        assert!(parse(
            "topology grid cities=3 hosts=1\nat 1s flap trunk=0-2 for 10ms\nend 2s\n"
        )
        .is_err());
        // Partition that misses a city.
        assert!(parse(
            "topology grid cities=3 hosts=1\nat 1s partition {0}|{1} heal 1s\nend 2s\n"
        )
        .is_err());
        // City out of range.
        assert!(parse(
            "topology grid cities=2 hosts=1\nat 1s kill gateway city=5\nend 2s\n"
        )
        .is_err());
        // Unknown size.
        assert!(parse(
            "topology grid cities=2 hosts=1\nat 1s flashcrowd city=0 dials=5 size=100\nend 2s\n"
        )
        .is_err());
    }

    #[test]
    fn netmon_directive_sets_interval() {
        let sc = parse(
            "topology grid cities=2 hosts=1\nnetmon 250ms\nend 1s\n",
        )
        .expect("parse");
        assert_eq!(sc.netmon, Some(Duration::from_millis(250)));
        assert_eq!(parse(SCRIPT).expect("parse").netmon, None);
        assert!(parse("topology grid cities=2 hosts=1\nnetmon soon\nend 1s\n").is_err());
        assert!(parse("topology grid cities=2 hosts=1\nnetmon 0ms\nend 1s\n").is_err());
    }

    #[test]
    fn durations_and_groups() {
        assert_eq!(duration("1500us"), Some(Duration::from_micros(1500)));
        assert_eq!(duration("300ms"), Some(Duration::from_millis(300)));
        assert_eq!(duration("14s"), Some(Duration::from_secs(14)));
        assert_eq!(duration("14"), None);
        assert_eq!(group("{0,1}"), Some(vec![0, 1]));
        assert_eq!(group("2,3"), Some(vec![2, 3]));
        assert_eq!(group("{a}"), None);
    }
}
