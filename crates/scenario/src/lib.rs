//! Internet-in-a-process: generated topologies plus a deterministic
//! adversarial scenario language.
//!
//! The paper's world is "tens of thousands of machines" spread across
//! cities, knitted together by Cyclone trunks between Datakit switches
//! and Ethernets fanning out at the edges, with gateway machines
//! exporting `/net` across the boundaries (§6.1). This crate builds
//! that world inside one process:
//!
//! - [`topology`] instantiates N cities of M pooled machines, each city
//!   on its own shared Ethernet, joined by point-to-point Cyclone
//!   trunks with transparent learning-free bridges, a gateway
//!   [`Machine`](plan9_core::machine::Machine) at every border running
//!   exportfs over its `/net`, and an ndb/DNS population generated at
//!   the paper's 43,000-line scale.
//! - [`dsl`] parses the scenario script: seeded flash crowds, trunk
//!   flaps, partitions with scheduled heals, gateway kills.
//! - [`engine`] executes a parsed scenario on the timer wheel under
//!   the virtual clock, then renders a canonical report whose bytes
//!   are identical for identical seeds — the determinism contract the
//!   whole kernel is built around.

pub mod dsl;
pub mod engine;
pub mod topology;

pub use dsl::{Event, Scenario};
pub use engine::{run, Report};
pub use topology::Topology;
