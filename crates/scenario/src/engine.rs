//! The scenario engine: arms the script on the timer wheel, inflicts
//! it on a generated topology, and renders a canonical report.
//!
//! Execution is a single director kproc. Every `at` line becomes a
//! timer-wheel entry on the director's shard whose callback posts the
//! event index onto a channel; the wheel fires in deadline order and
//! one shard serializes the posts, so the director dispatches the
//! script identically on every run. Flash crowds fan out to a fixed
//! set of driver kprocs with precomputed (seeded) arrival plans; flaps
//! and partitions down trunk media now and schedule the heal; a
//! gateway kill tears down the exportfs listener and hangs up every
//! conversation the gateway carries.
//!
//! The report is the determinism contract: counters are rendered as
//! deltas from scenario start (the pool and wheel are process-global),
//! media are fresh per topology, latencies are sorted before the p99
//! is taken, and every line is emitted in a fixed order. Two runs of
//! the same script under the virtual clock must produce byte-identical
//! text.

use crate::dsl::{Event, Scenario};
use crate::topology::{Topology, EXPORT_PORT, SERVE_PORT};
use plan9_core::machine::Machine;
use plan9_core::namespace::MAFTER;
use plan9_exportfs::{exportfs_service, import, ExportService};
use plan9_inet::il::{IlConn, TryRecv};
use plan9_inet::ip::IpStack;
use plan9_inet::IpAddr;
use plan9_core::proc::Proc;
use plan9_netlog::{poolstats, series};
use plan9_ninep::client::NineClient;
use plan9_ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9_ninep::server::NineService;
use plan9_ninep::transport::{MsgSink, MsgSource};
use plan9_support::chan::unbounded;
use plan9_support::rng::SmallRng;
use plan9_support::{pool, time, vtime, wheel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Flash-crowd driver kprocs per event, cityload's storm shape.
const DRIVERS: usize = 8;

/// Wheel shard for scenario control events: one shard serializes the
/// dispatch order.
const DIRECTOR_KEY: u64 = 0xd12e_c702;

/// Sentinel the end-of-scenario timer posts.
const END_MARK: usize = usize::MAX;

/// What a finished scenario reports.
pub struct Report {
    /// The canonical render — byte-identical across same-seed runs.
    pub text: String,
    /// Flash-crowd conversations that completed their read.
    pub dials_ok: usize,
    /// Conversations that failed (partitioned, killed, refused).
    pub dials_failed: usize,
    /// Per-event p99 of the dial-to-read latency, µs (flash crowds
    /// only, event index preserved).
    pub p99_us: Vec<(usize, u64)>,
    /// Media violating the conservation identity (must be 0).
    pub conservation_violations: usize,
    /// IL conversations still open after teardown (must be 0).
    pub residual_conns: usize,
    /// Wheel timers still armed after the bounded drain (must be 0 —
    /// a leaked timer is as much a leak as a leaked conversation).
    pub residual_timers: usize,
    /// When the script had a `netmon` line: each gateway's rendered
    /// `/net/log/series`, as `(sys-name, text)` in city order, fetched
    /// across the fabric through exportfs. An unreachable gateway
    /// contributes an empty text.
    pub series: Vec<(String, String)>,
    /// Virtual seconds the script took.
    pub virtual_s: f64,
}

impl Report {
    /// The scenario's pass criteria: frames conserved everywhere and
    /// nothing leaked — neither conversations nor armed timers.
    pub fn clean(&self) -> bool {
        self.conservation_violations == 0
            && self.residual_conns == 0
            && self.residual_timers == 0
    }
}

/// An IL conversation as a delimited 9P transport.
#[derive(Clone)]
struct IlIo(Arc<IlConn>);

impl MsgSink for IlIo {
    fn sendmsg(&mut self, msg: &[u8]) -> plan9_ninep::Result<()> {
        self.0.send(msg)
    }
}

impl MsgSource for IlIo {
    fn recvmsg(&mut self) -> plan9_ninep::Result<Option<Vec<u8>>> {
        self.0.recv()
    }
}

/// Drains everything queued on a pool-serviced conversation into its
/// 9P service (cityload's readiness shape: the rx hook only enqueues,
/// this runs on the conversation's shard).
fn drain(svc: &Weak<NineService>, conn: &Weak<IlConn>) {
    let (Some(svc), Some(conn)) = (svc.upgrade(), conn.upgrade()) else {
        return;
    };
    loop {
        match conn.try_recv() {
            Ok(TryRecv::Msg(m)) => {
                // blocking-ok: this service wraps a MemFs, whose ProcFs
                // ops answer from memory; relay-backed services run on
                // dedicated kprocs, never on pool shards
                if svc.input(&m).is_err() {
                    conn.close();
                    return;
                }
            }
            Ok(TryRecv::Empty) => return,
            Ok(TryRecv::Eof) | Err(_) => {
                // blocking-ok: MemFs-backed service, as above — clunks
                // answer from memory
                svc.hangup();
                return;
            }
        }
    }
}

/// Runs a scenario to completion and reports. Call under
/// [`vtime::enter`] for the deterministic clock; the engine itself is
/// clock-agnostic (the runner's smoke mode uses real time).
pub fn run(sc: &Scenario) -> Report {
    let sc = sc.clone();
    vtime::kproc("scenario-director", move || direct(sc))
        .expect("spawn scenario director")
        .join()
        .expect("scenario director")
}

// ---------------------------------------------------------------------------
// City file servers
// ---------------------------------------------------------------------------

/// The payload files every city server offers.
const SIZES: [usize; 3] = [64, 512, 4096];

struct CityServer {
    handle: vtime::KprocHandle<usize>,
}

/// A persistent IL listener on a city's `hosts[0]` stack. Accepted
/// conversations are pool-serviced (no thread per conversation); the
/// acceptor exits, reporting how many calls it served, when the
/// listener is poisoned by `unlisten` at scenario end.
fn spawn_city_server(stack: &Arc<IpStack>) -> CityServer {
    let listener = stack
        .il_module()
        .listen(stack, SERVE_PORT)
        .expect("city server listen");
    let fs = MemFs::new("city", "bootes");
    for size in SIZES {
        fs.put_file(&format!("/b{size}"), &vec![0x5au8; size])
            .expect("seed payload file");
    }
    let handle = vtime::kproc("city-server", move || {
        let fs: Arc<dyn ProcFs> = fs;
        let mut kept: Vec<Arc<NineService>> = Vec::new();
        loop {
            let conn = match listener.accept() {
                Ok(c) => c,
                Err(_) => return kept.len(),
            };
            let svc = Arc::new(NineService::new(
                Arc::clone(&fs),
                Box::new(IlIo(Arc::clone(&conn))),
            ));
            let wsvc = Arc::downgrade(&svc);
            let wconn = Arc::downgrade(&conn);
            let key = conn.conv_id();
            conn.set_rx_notify(move || {
                let (wsvc, wconn) = (wsvc.clone(), wconn.clone());
                let _ = pool::submit(key, move || drain(&wsvc, &wconn));
            });
            drain(&Arc::downgrade(&svc), &Arc::downgrade(&conn));
            kept.push(svc);
        }
    })
    .expect("spawn city server");
    CityServer { handle }
}

// ---------------------------------------------------------------------------
// Gateway flows
// ---------------------------------------------------------------------------

/// A standing import flow: gateway `i` imports its lower neighbor's
/// `/net` through exportfs (§6.1) and polls the neighbor's `il/stats`
/// through the relay every half second. Returns (ok, err) read counts;
/// reads fail while the peer is partitioned away past its patience or
/// once either gateway is killed.
fn spawn_importer(
    m: &Arc<Machine>,
    peer_sys: &str,
    peer_ip: &str,
    stop: Arc<AtomicBool>,
) -> vtime::KprocHandle<(u64, u64)> {
    let p = m.proc();
    let local = format!("/n/{peer_sys}");
    let _ = m.rootfs.put_dir(&local);
    let dest = format!("il!{peer_ip}!exportfs");
    vtime::kproc("gw-importer", move || {
        let mut ok = 0u64;
        let mut err = 0u64;
        if import(&p, &dest, "/net", &local, MAFTER).is_err() {
            // One settle-and-retry; a gateway that can't reach its
            // neighbor at boot just reports every poll as an error.
            time::sleep(Duration::from_millis(100));
            let _ = import(&p, &dest, "/net", &local, MAFTER);
        }
        let stats = format!("{local}/il/stats");
        while !stop.load(Ordering::Relaxed) {
            match p.open(&stats, OpenMode::READ) {
                Ok(fd) => {
                    match p.read(fd, 4096) {
                        Ok(data) if !data.is_empty() => ok += 1,
                        _ => err += 1,
                    }
                    p.close(fd);
                }
                Err(_) => err += 1,
            }
            time::sleep(Duration::from_millis(500));
        }
        (ok, err)
    })
    .expect("spawn gateway importer")
}

// ---------------------------------------------------------------------------
// Flash crowds
// ---------------------------------------------------------------------------

/// What one driver brings home: (ok, failed, latencies µs).
type DriverTake = (usize, usize, Vec<u64>);

/// One client conversation: dial the city server, attach, walk, read
/// `size` bytes, hang up. The latency spans the whole exchange.
fn one_dial(client: &Arc<IpStack>, server: IpAddr, size: usize) -> Result<u64, ()> {
    let t0 = time::now();
    let conn = client
        .il_module()
        .connect(client, server, SERVE_PORT)
        .map_err(|_| ())?;
    let io = IlIo(Arc::clone(&conn));
    let nine = NineClient::new(Box::new(io.clone()), Box::new(io));
    let outcome = (|| {
        let (fid, _) = nine.attach("city", "").map_err(|_| ())?;
        nine.walk(fid, &format!("b{size}")).map_err(|_| ())?;
        nine.open(fid, OpenMode::READ).map_err(|_| ())?;
        let data = nine.read(fid, 0, size).map_err(|_| ())?;
        if data.len() != size {
            return Err(());
        }
        Ok(())
    })();
    conn.close();
    outcome.map(|_| time::now().saturating_duration_since(t0).as_micros() as u64)
}

/// Launches one flash crowd: a seeded arrival plan (offset within the
/// window, client host drawn from the whole internet) dealt round-robin
/// to the drivers. Returns the driver handles for end-of-run joining.
fn launch_flashcrowd(
    topo: &Topology,
    seed: u64,
    ev_idx: usize,
    city: usize,
    dials: usize,
    size: usize,
    window: Duration,
) -> Vec<vtime::KprocHandle<DriverTake>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (0xf1a5_0000 + ev_idx as u64));
    let n_cities = topo.cities.len();
    let server_ip = topo.cities[city].hosts[0].addr();
    let base = time::now();
    let span = window.as_micros().max(1) as u64;
    let mut plan: Vec<(Instant, Arc<IpStack>)> = (0..dials)
        .map(|_| {
            let off = Duration::from_micros(rng.gen_range(0..span));
            let cc = rng.gen_range(0..n_cities);
            let hosts = &topo.cities[cc].hosts;
            // hosts[0] of the target city is the server itself; every
            // other slot anywhere may dial.
            let lo = if cc == city && hosts.len() > 1 { 1 } else { 0 };
            let h = lo + rng.gen_range(0..hosts.len() - lo);
            (base + off, Arc::clone(&hosts[h]))
        })
        .collect();
    plan.sort_by_key(|(t, _)| *t);
    (0..DRIVERS)
        .map(|d| {
            let mine: Vec<(Instant, Arc<IpStack>)> = plan
                .iter()
                .enumerate()
                .filter(|(i, _)| i % DRIVERS == d)
                .map(|(_, x)| x.clone())
                .collect();
            vtime::kproc(&format!("crowd-{ev_idx}-{d}"), move || {
                let (mut ok, mut failed, mut lat) = (0usize, 0usize, Vec::new());
                for (when, client) in mine {
                    let now = time::now();
                    if when > now {
                        time::sleep(when - now);
                    }
                    match one_dial(&client, server_ip, size) {
                        Ok(us) => {
                            ok += 1;
                            lat.push(us);
                        }
                        Err(()) => failed += 1,
                    }
                }
                (ok, failed, lat)
            })
            .expect("spawn crowd driver")
        })
        .collect()
}

fn p99(v: &mut [u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[(v.len() - 1) * 99 / 100]
}

// ---------------------------------------------------------------------------
// The director
// ---------------------------------------------------------------------------

fn direct(sc: Scenario) -> Report {
    let pool0 = poolstats::snapshot();
    let mut topo = Topology::grid_with(sc.cities, sc.hosts_per_city, sc.ndb_lines, sc.seed);
    let stop = Arc::new(AtomicBool::new(false));

    // City file servers.
    let servers: Vec<CityServer> = topo
        .cities
        .iter()
        .map(|c| spawn_city_server(&c.hosts[0]))
        .collect();

    // Gateway exports, then the standing import flows between
    // neighbors. A short settle lets every announce land first.
    let mut exports: Vec<Option<ExportService>> = topo
        .cities
        .iter()
        .map(|c| {
            let stack = Arc::clone(c.gateway.ip.as_ref().expect("gateway has a stack"));
            Some(
                exportfs_service(c.gateway.proc(), "il!*!exportfs", move || {
                    stack.il_module().unlisten(EXPORT_PORT);
                })
                .expect("gateway exportfs"),
            )
        })
        .collect();
    time::sleep(Duration::from_millis(50));
    let importers: Vec<_> = (1..sc.cities)
        .map(|c| {
            let peer = &topo.ndb.gateways[c - 1];
            spawn_importer(
                &topo.cities[c].gateway,
                &peer.sys,
                &peer.ip,
                Arc::clone(&stop),
            )
        })
        .collect();

    // netmon: every gateway samples its registry into /net/log/series
    // on the shared interval. Started before the script is armed so
    // the sample base precedes every event; stopped at the end mark so
    // the sample count is a function of the script, not of teardown.
    if let Some(interval) = sc.netmon {
        for c in &topo.cities {
            let nl = c.gateway.ip.as_ref().expect("gateway has a stack").netlog();
            nl.series.set_interval(interval).expect("netmon interval");
            series::start(nl).expect("netmon start");
        }
    }

    // Arm the script. One shard, deadlines in script time: the wheel
    // fires them in (deadline, arming) order, so dispatch is fixed.
    let t0 = time::now();
    let (etx, erx) = unbounded::<usize>();
    for (i, te) in sc.events.iter().enumerate() {
        let tx = etx.clone();
        wheel::schedule(DIRECTOR_KEY, t0 + te.at, move || {
            // blocking-ok: unbounded channel send never waits
            let _ = tx.send(i);
        })
        .expect("arm event");
    }
    wheel::schedule(DIRECTOR_KEY, t0 + sc.end, move || {
        // blocking-ok: unbounded channel send never waits
        let _ = etx.send(END_MARK);
    })
    .expect("arm end");

    // Dispatch.
    let mut crowd_sets: Vec<(usize, Vec<vtime::KprocHandle<DriverTake>>)> = Vec::new();
    let mut notes: Vec<String> = sc.events.iter().map(|_| String::new()).collect();
    loop {
        let i = erx.recv().expect("event channel");
        if i == END_MARK {
            break;
        }
        match &sc.events[i].ev {
            Event::FlashCrowd {
                city,
                dials,
                size,
                window,
            } => {
                crowd_sets.push((
                    i,
                    launch_flashcrowd(&topo, sc.seed, i, *city, *dials, *size, *window),
                ));
                notes[i] = "launched".to_string();
            }
            Event::Flap { a, b, down_for } => {
                let trunk = Arc::clone(topo.trunk_between(*a, *b).expect("flap trunk"));
                trunk.set_up(false);
                let t = Arc::clone(&trunk);
                wheel::schedule(DIRECTOR_KEY, time::now() + *down_for, move || {
                    t.set_up(true);
                })
                .expect("arm flap heal");
                notes[i] = "down".to_string();
            }
            Event::Partition { left, heal, .. } => {
                let crossing: Vec<_> = topo
                    .trunks
                    .iter()
                    .filter(|t| t.crosses(left))
                    .cloned()
                    .collect();
                for t in &crossing {
                    t.set_up(false);
                }
                let cut = crossing.clone();
                wheel::schedule(DIRECTOR_KEY, time::now() + *heal, move || {
                    for t in &cut {
                        t.set_up(true);
                    }
                })
                .expect("arm partition heal");
                notes[i] = format!("cut {} trunks", crossing.len());
            }
            Event::KillGateway { city } => {
                if let Some(svc) = exports[*city].take() {
                    svc.shutdown();
                }
                let stack = topo.cities[*city]
                    .gateway
                    .ip
                    .as_ref()
                    .expect("gateway has a stack");
                let hung = stack.il_module().hangup_all();
                notes[i] = format!("hung up {hung} conversations");
            }
        }
    }

    // Freeze every sampler at the end mark: each gateway's sample
    // count is now pinned, and the fabric fetch below cannot perturb
    // the series it is about to read.
    if sc.netmon.is_some() {
        for c in &topo.cities {
            let nl = c.gateway.ip.as_ref().expect("gateway has a stack").netlog();
            nl.series.stop();
        }
    }

    // Collect the crowds (event order, then driver order).
    let mut dials_ok = 0usize;
    let mut dials_failed = 0usize;
    let mut p99_us: Vec<(usize, u64)> = Vec::new();
    for (i, drivers) in crowd_sets {
        let (mut ok, mut failed, mut lat) = (0usize, 0usize, Vec::<u64>::new());
        for d in drivers {
            let (o, f, mut l) = d.join().expect("crowd driver");
            ok += o;
            failed += f;
            lat.append(&mut l);
        }
        let p = p99(&mut lat);
        notes[i] = format!("ok={ok} failed={failed} p99_us={p}");
        dials_ok += ok;
        dials_failed += failed;
        p99_us.push((i, p));
    }

    // Fabric aggregation: city 0's gateway plays collector, importing
    // every peer gateway's /net over exportfs and reading log/series
    // remotely — its own series comes off its local /net. A peer that
    // cannot be imported (killed gateway, still-partitioned trunk)
    // contributes an empty series; that outcome is as deterministic as
    // a healthy read.
    let mut series_texts: Vec<(String, String)> = Vec::new();
    if sc.netmon.is_some() {
        let collector = &topo.cities[0].gateway;
        let p = collector.proc();
        for c in 0..sc.cities {
            let gw = &topo.ndb.gateways[c];
            let text = if c == 0 {
                read_text(&p, "/net/log/series")
            } else {
                let local = format!("/n/netmon-{}", gw.sys);
                let _ = collector.rootfs.put_dir(&local);
                match import(&p, &format!("il!{}!exportfs", gw.ip), "/net", &local, MAFTER) {
                    Ok(()) => read_text(&p, &format!("{local}/log/series")),
                    Err(_) => None,
                }
            };
            series_texts.push((gw.sys.clone(), text.unwrap_or_default()));
        }
    }

    // Teardown, in an order that can't deadlock: stop flag first, then
    // poison every listener, then hang up all conversations (which
    // errors any importer read still stalled), then join everything.
    stop.store(true, Ordering::Relaxed);
    for c in &topo.cities {
        c.hosts[0].il_module().unlisten(SERVE_PORT);
    }
    for e in exports.iter_mut() {
        if let Some(svc) = e.take() {
            svc.shutdown();
        }
    }
    for s in topo.stacks() {
        s.il_module().hangup_all();
    }
    let mut served = 0usize;
    for s in servers {
        served += s.handle.join().expect("city server");
    }
    let (mut import_ok, mut import_err) = (0u64, 0u64);
    for h in importers {
        let (o, e) = h.join().expect("gateway importer");
        import_ok += o;
        import_err += e;
    }

    // Quiesce: wait for close handshakes to clear the conversation
    // tables, then drain the wheel and the pool.
    let drain_deadline = time::now() + Duration::from_secs(120);
    while topo.conn_count() > 0 && time::now() < drain_deadline {
        time::sleep(Duration::from_millis(20));
    }
    let residual_conns = topo.conn_count();
    // The wheel/pool drain is bounded by the same deadline: a timer
    // that never clears must surface as a residual in the report, not
    // hang the run. (An unstopped netmon sampler would do exactly that
    // — it re-arms forever — which is why the series stop above is
    // part of the protocol and why the leak audit counts timers.)
    while (wheel::armed() > 0 || pool::backlog() > 0) && time::now() < drain_deadline {
        time::sleep(Duration::from_millis(1));
    }
    let residual_timers = wheel::armed();
    let virtual_s = time::now().saturating_duration_since(t0).as_secs_f64();

    // The canonical render.
    let cons = topo.conservation();
    let conservation_violations = cons.violations();
    let mut text = String::new();
    text.push_str(&format!(
        "scenario seed={} cities={} hosts-per-city={} events={}\n",
        sc.seed,
        sc.cities,
        sc.hosts_per_city,
        sc.events.len()
    ));
    for (i, te) in sc.events.iter().enumerate() {
        text.push_str(&format!(
            "event {i} at={:?} {}: {}\n",
            te.at,
            event_name(&te.ev),
            notes[i]
        ));
    }
    text.push_str(&format!("dials ok={dials_ok} failed={dials_failed}\n"));
    text.push_str(&format!("served conversations={served}\n"));
    text.push_str(&format!("import reads ok={import_ok} err={import_err}\n"));
    for (sys, body) in &series_texts {
        if body.is_empty() {
            text.push_str(&format!("netmon {sys} unavailable\n"));
        } else {
            let samples = body.lines().filter(|l| l.starts_with("sample ")).count();
            text.push_str(&format!(
                "netmon {sys} samples={samples} bytes={}\n",
                body.len()
            ));
        }
    }
    text.push_str(&format!("residual conns={residual_conns}\n"));
    text.push_str(&format!("residual timers={residual_timers}\n"));
    text.push_str(&cons.render());
    let (mut tx, mut rx, mut q, mut a, mut r) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for s in topo.stacks() {
        let st = &s.il_module().stats;
        tx += st.tx_msgs.get();
        rx += st.rx_msgs.get();
        q += st.queries.get();
        a += st.acks.get();
        r += st.retransmit_msgs.get();
    }
    text.push_str(&format!(
        "il tx_msgs={tx} rx_msgs={rx} queries={q} acks={a} retransmits={r}\n"
    ));
    text.push_str(&pool0.render_delta());
    text.push_str(&format!("virtual_s={virtual_s:.6}\n"));

    topo.shutdown();

    Report {
        text,
        dials_ok,
        dials_failed,
        p99_us,
        conservation_violations,
        residual_conns,
        residual_timers,
        series: series_texts,
        virtual_s,
    }
}

/// Reads a whole text file through a machine's proc; `None` on any
/// failure (the collector treats absence as an empty series).
fn read_text(p: &Proc, path: &str) -> Option<String> {
    let fd = p.open(path, OpenMode::READ).ok()?;
    let text = p.read_string(fd).ok();
    p.close(fd);
    text
}

fn event_name(ev: &Event) -> String {
    match ev {
        Event::FlashCrowd {
            city, dials, size, ..
        } => format!("flashcrowd city={city} dials={dials} size={size}"),
        Event::Flap { a, b, down_for } => format!("flap trunk={a}-{b} for={down_for:?}"),
        Event::Partition { left, right, heal } => format!(
            "partition {left:?}|{right:?} heal={heal:?}"
        ),
        Event::KillGateway { city } => format!("kill gateway city={city}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;

    /// A tiny scenario, run twice under the virtual clock: the whole
    /// determinism contract at unit scale.
    #[test]
    fn tiny_scenario_is_clean_and_deterministic() {
        let sc = dsl::parse(
            "seed 9\n\
             topology grid cities=2 hosts=3 ndb-lines=200\n\
             at 100ms flashcrowd city=1 dials=6 size=64 window=200ms\n\
             at 400ms flap trunk=0-1 for 50ms\n\
             netmon 100ms\n\
             end 800ms\n",
        )
        .expect("parse");
        let guard = vtime::enter();
        let a = run(&sc);
        let b = run(&sc);
        drop(guard);
        assert!(a.clean(), "run not clean:\n{}", a.text);
        assert_eq!(a.dials_ok + a.dials_failed, 6);
        // Both gateways' series made it across the fabric, non-empty,
        // and identical between the two same-seed runs.
        assert_eq!(a.series.len(), 2, "{}", a.text);
        for ((sys, body), (_, body_b)) in a.series.iter().zip(&b.series) {
            assert!(!body.is_empty(), "empty series for {sys}:\n{}", a.text);
            assert!(body.starts_with("series interval=100000us"), "{body}");
            assert_eq!(body, body_b, "series for {sys} diverged");
        }
        for (la, lb) in a.text.lines().zip(b.text.lines()) {
            assert_eq!(la, lb, "first divergent report line");
        }
        assert_eq!(a.text, b.text, "same-seed runs must render identically");
    }

    /// Killing a gateway mid-scenario leaves no leaked conversations.
    #[test]
    fn gateway_kill_leaves_no_conversations() {
        let sc = dsl::parse(
            "seed 5\n\
             topology grid cities=2 hosts=1 ndb-lines=150\n\
             at 600ms kill gateway city=1\n\
             end 1200ms\n",
        )
        .expect("parse");
        let guard = vtime::enter();
        let r = run(&sc);
        drop(guard);
        assert_eq!(r.residual_conns, 0, "leaked conversations:\n{}", r.text);
        assert_eq!(r.conservation_violations, 0, "{}", r.text);
        assert!(r.text.contains("kill gateway city=1"), "{}", r.text);
    }
}
