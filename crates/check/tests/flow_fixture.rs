//! End-to-end tests of the checkflow passes against the seeded flow
//! fixture (`tests/fixtures/flow`): a miniature kernel carrying one
//! deliberate bug per pass — a pool job that blocks inside `resolve`,
//! a wheel callback that panics two calls deep, and a two-lock order
//! cycle. Each test asserts the exact witness path or cycle the
//! analyzer must derive, and the binary-level test checks the same
//! facts survive into `REPORT_checkflow.json` and the exit status.

use plan9_check::{flow, graph, lockgraph};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/flow")
}

fn fixture_graph() -> graph::CallGraph {
    graph::build_graph(&fixture_root()).expect("fixture graph builds")
}

#[test]
fn pool_job_blocking_in_resolve_yields_exact_witness_path() {
    let g = fixture_graph();
    let findings = flow::blocking_findings(&g);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.root_kind, "pool-job");
    assert_eq!(f.sink_kind, "resolve");
    assert_eq!(f.sink_file, "crates/inet/src/lib.rs");
    let names: Vec<&str> = f.path.iter().map(|s| s.qualified.as_str()).collect();
    assert_eq!(names, ["inet::{closure}", "inet::deliver"]);
}

#[test]
fn wheel_callback_panic_two_deep_yields_exact_witness_path() {
    let g = fixture_graph();
    let findings = flow::panic_findings(&g);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.root_kind, "wheel-callback");
    assert_eq!(f.sink_kind, "unwrap");
    assert_eq!(f.sink_file, "crates/inet/src/lib.rs");
    let names: Vec<&str> = f.path.iter().map(|s| s.qualified.as_str()).collect();
    assert_eq!(names, ["inet::{closure}", "inet::tick", "inet::decode"]);
}

#[test]
fn opposed_lock_orders_yield_the_cycle() {
    let g = fixture_graph();
    let locks = lockgraph::analyze(&g, None);
    let mut edges: Vec<(&str, &str)> = locks
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    edges.sort_unstable();
    assert_eq!(
        edges,
        [("fix.left", "fix.right"), ("fix.right", "fix.left")],
        "static edges: {edges:?}"
    );
    assert_eq!(locks.cycles.len(), 1, "{:?}", locks.cycles);
    let mut cycle = locks.cycles[0].clone();
    cycle.sort_unstable();
    assert_eq!(cycle, ["fix.left", "fix.right"]);
    assert!(!locks.cross_checked, "no observed dump was given");
}

#[test]
fn observed_dump_confirms_edges_and_reports_dead_classes() {
    let g = fixture_graph();
    // The runtime saw left-before-right (and never touched fix.cache).
    let observed = "class fix.left acquires=2\n\
                    class fix.right acquires=2\n\
                    edge fix.left -> fix.right thread=main\n";
    let locks = lockgraph::analyze(&g, Some(observed));
    assert!(locks.cross_checked);
    for e in &locks.edges {
        let expect_confirmed = (e.from.as_str(), e.to.as_str()) == ("fix.left", "fix.right");
        assert_eq!(
            e.confirmed, expect_confirmed,
            "{} -> {} confirmation wrong",
            e.from, e.to
        );
    }
    assert_eq!(locks.dead_classes, ["fix.cache"]);
}

#[test]
fn binary_flow_run_reports_all_three_bugs_and_fails() {
    let report = std::env::temp_dir().join(format!(
        "checkflow-fixture-report-{}.json",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--flow")
        .arg("--root")
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/netcheck-baseline.txt"])
        .arg("--report")
        .arg(&report)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for rule in ["blocking-context", "panic-reach", "lock-cycle"] {
        assert!(stderr.contains(rule), "stderr lacks {rule}: {stderr}");
    }

    let text = std::fs::read_to_string(&report).expect("report written");
    let _ = std::fs::remove_file(&report);
    // The witness paths land in the report, in order.
    for fragment in [
        "\"sink_kind\": \"resolve\"",
        "\"fn\": \"inet::{closure}\"",
        "\"fn\": \"inet::deliver\"",
        "\"sink_kind\": \"unwrap\"",
        "\"fn\": \"inet::tick\"",
        "\"fn\": \"inet::decode\"",
    ] {
        assert!(text.contains(fragment), "report lacks {fragment}:\n{text}");
    }
    let deliver = text.find("\"fn\": \"inet::deliver\"").unwrap();
    let closure = text.find("\"fn\": \"inet::{closure}\"").unwrap();
    assert!(closure < deliver, "witness path is not root-first");
    assert!(
        text.contains("fix.left") && text.contains("fix.right"),
        "cycle classes missing from report"
    );
}
