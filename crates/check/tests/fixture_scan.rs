//! End-to-end tests of the netcheck scanner against fixture workspaces.
//!
//! The fixtures mark every line the scanner must report with a
//! `V:<rule>` marker comment, so the expected set is read from the
//! fixtures themselves and the two can never drift apart.

use plan9_check::scan_workspace;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Collects `(rule-code, file, line)` triples from `V:<rule>` markers in
/// every `.rs` and `Cargo.toml` file under the fixture root.
fn expected_markers(root: &Path) -> Vec<(String, String, usize)> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(&p, out);
            } else {
                out.push(p);
            }
        }
    }
    let mut files = Vec::new();
    walk(root, &mut files);
    let mut out = Vec::new();
    for path in files {
        let scannable = path.extension().is_some_and(|x| x == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml");
        if !scannable {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        for (idx, line) in std::fs::read_to_string(&path).unwrap().lines().enumerate() {
            if let Some(marker) = line.split("V:").nth(1) {
                let rule = marker.split_whitespace().next().unwrap_or("");
                // Prose like "`V:<rule>` marker" is not a seed; only the
                // four real rule codes count.
                if ["panic-path", "raw-sync", "wall-clock", "registry-dep"].contains(&rule) {
                    out.push((rule.to_string(), rel.clone(), idx + 1));
                }
            }
        }
    }
    out.sort();
    out
}

fn scanned(root: &Path) -> Vec<(String, String, usize)> {
    let mut got: Vec<_> = scan_workspace(root)
        .unwrap()
        .into_iter()
        .map(|v| (v.rule.code().to_string(), v.file, v.line))
        .collect();
    got.sort();
    got
}

#[test]
fn violating_fixture_reports_exactly_the_marked_lines() {
    let root = fixture("violating");
    let want = expected_markers(&root);
    assert!(
        want.len() >= 10,
        "fixture should seed every rule class, found only {want:?}"
    );
    // Every rule class is represented.
    for rule in ["panic-path", "raw-sync", "wall-clock", "registry-dep"] {
        assert!(
            want.iter().any(|(r, _, _)| r == rule),
            "fixture lost its {rule} seeds"
        );
    }
    assert_eq!(scanned(&root), want);
}

#[test]
fn clean_fixture_reports_nothing() {
    let root = fixture("clean");
    assert_eq!(expected_markers(&root), vec![]);
    assert_eq!(scanned(&root), vec![]);
}

#[test]
fn binary_fails_on_seeded_violations_with_empty_baseline() {
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--root")
        .arg(fixture("violating"))
        .args(["--baseline", "/nonexistent/netcheck-baseline.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Diagnostics name file and line.
    assert!(
        stderr.contains("crates/streams/src/lib.rs:7"),
        "diagnostics lost file:line: {stderr}"
    );
}

#[test]
fn binary_passes_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--root")
        .arg(fixture("clean"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn baseline_ratchet_tolerates_old_violations_but_not_new_ones() {
    let dir = std::env::temp_dir().join(format!("netcheck-ratchet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.txt");

    // Record today's violations as the baseline...
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--root")
        .arg(fixture("violating"))
        .arg("--baseline")
        .arg(&baseline)
        .arg("--update-baseline")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // ...then the same scan passes the gate...
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--root")
        .arg(fixture("violating"))
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // ...but shrinking the baseline by hand makes the gate fail again.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let shrunk: String = text
        .lines()
        .filter(|l| !l.contains("panic-path"))
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&baseline, shrunk).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_plan9-check"))
        .arg("--root")
        .arg(fixture("violating"))
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}
