//! A kernel crate with nothing to report.

/// Errors are returned, not unwrapped.
pub fn careful(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "empty".to_string())
}

pub fn annotated() -> u32 {
    let v: Option<u32> = Some(1);
    // checked: constructed Some on the previous line
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::careful(Some(2)).unwrap(), 2);
    }
}
