//! Boundary-crate fixture: the sanctioned wrappers the seeded kernel
//! builds on. Raw sync primitives are legal here, as in the real
//! plan9-support.

pub mod sync {
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn named(value: T, _class: &str) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        pub fn new() -> Condvar {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        pub fn wait<T>(&self, guard: &mut std::sync::MutexGuard<'_, T>) {
            // The real implementation parks the thread; the analyzer
            // treats the *call* as the sink, so the body is inert.
            let _ = (&self.inner, guard);
        }

        pub fn notify_all(&self) {}
    }
}

pub mod pool {
    /// Runs `job` on the shard owning `key`; jobs must never block.
    pub fn submit<F: FnOnce() + Send + 'static>(key: u64, job: F) {
        let _ = key;
        job();
    }
}

pub mod wheel {
    /// Fires `callback` after `after`; callbacks must never block.
    pub fn schedule<F: FnOnce() + Send + 'static>(after: std::time::Duration, callback: F) {
        let _ = after;
        callback();
    }
}
