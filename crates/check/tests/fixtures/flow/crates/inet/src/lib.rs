//! The seeded kernel: one deliberate bug per checkflow pass.
//!
//! 1. `service` submits a pool job that ends up blocking inside
//!    `resolve` — the blocking-context pass must trace
//!    `{closure} -> deliver` to the `resolve` sink.
//! 2. `arm` schedules a wheel callback that panics two calls deep —
//!    the panic-reach pass must trace `{closure} -> tick -> decode`
//!    to the `unwrap` sink.
//! 3. `Pair::split` and `Pair::merge` take the same two locks in
//!    opposite orders — the lock-order pass must report the
//!    `fix.left`/`fix.right` cycle.

use plan9_support::pool;
use plan9_support::sync::{Condvar, Mutex};
use plan9_support::wheel;
use std::time::Duration;

/// An address cache in the style of the ARP resolver.
pub struct Cache {
    entries: Mutex<u64>,
    learned: Condvar,
}

impl Cache {
    pub fn new() -> Cache {
        Cache {
            entries: Mutex::named(0, "fix.cache"),
            learned: Condvar::new(),
        }
    }
}

/// Seeded bug #1: the submitted job blocks in `resolve`.
pub fn service(key: u64, cache: &'static Cache) {
    pool::submit(key, move || deliver(cache));
}

fn deliver(cache: &Cache) {
    let station = resolve(cache);
    let _ = station;
}

fn resolve(cache: &Cache) -> u64 {
    let mut entries = cache.entries.lock();
    loop {
        if *entries != 0 {
            return *entries;
        }
        cache.learned.wait(&mut entries);
    }
}

/// Seeded bug #2: the timer callback panics two calls deep.
pub fn arm(cache: &'static Cache) {
    wheel::schedule(Duration::from_millis(5), move || tick(cache));
}

fn tick(cache: &Cache) {
    let v = peek(cache);
    decode(v);
}

fn peek(cache: &Cache) -> Option<u64> {
    let entries = cache.entries.lock();
    if *entries == 0 {
        None
    } else {
        Some(*entries)
    }
}

fn decode(v: Option<u64>) -> u64 {
    v.unwrap()
}

/// Seeded bug #3: `split` and `merge` disagree on lock order.
pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn new() -> Pair {
        Pair {
            left: Mutex::named(0, "fix.left"),
            right: Mutex::named(0, "fix.right"),
        }
    }

    pub fn split(&self) -> u64 {
        let left = self.left.lock();
        let right = self.right.lock();
        *left + *right
    }

    pub fn merge(&self) -> u64 {
        let right = self.right.lock();
        let left = self.left.lock();
        *left - *right
    }
}
