//! Kernel-crate fixture for the source scanner. Every line carrying a
//! `V:<rule>` marker comment must be reported; every other line must
//! not. Doc comments mentioning .unwrap() never count.

pub fn flagged() {
    let v: Option<u32> = None;
    v.unwrap(); // V:panic-path
}

pub fn blessed_same_line() {
    let v: Option<u32> = Some(1);
    v.unwrap(); // checked: constructed Some on the previous line
}

pub fn blessed_preceding_line() {
    let v: Option<u32> = Some(1);
    // checked: constructed Some on the previous line
    v.unwrap();
}

pub fn in_string() -> &'static str {
    "calling .unwrap() inside a string literal is prose, not code"
}

pub fn in_raw_string() -> &'static str {
    r#"raw string with .unwrap() and an embedded "quote""#
}

/* A block comment:
   .unwrap() inside does not count,
   and neither does std::sync::Mutex. */

pub fn expects() {
    let v: Option<u32> = None;
    v.expect("boom"); // V:panic-path
}

pub fn wall_clock() -> std::time::SystemTime { // V:wall-clock
    std::time::SystemTime::now() // V:wall-clock
}

use std::sync::Mutex; // V:raw-sync
use std::sync::{
    Arc,
    RwLock, // V:raw-sync grouped import spanning lines
};

pub static M: Mutex<u32> = Mutex::new(0);
pub type Shared = Arc<RwLock<u32>>;

pub fn lifetime_is_not_a_char_literal<'a>(x: &'a str) -> &'a str {
    let _tick = '\'';
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
