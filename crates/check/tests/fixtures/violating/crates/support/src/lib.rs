//! Boundary-crate fixture: plan9-support implements the sanctioned
//! wrappers, so raw sync primitives and the wall clock are legal here.

use std::sync::{Condvar, Mutex, RwLock};

pub static A: Mutex<u32> = Mutex::new(0);
pub static B: RwLock<u32> = RwLock::new(0);

pub fn park(_c: &Condvar) {}

pub fn now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
}
