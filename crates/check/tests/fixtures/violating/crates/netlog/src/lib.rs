//! Non-kernel-crate fixture: the panic-path rule does not apply here,
//! but raw `std::sync` locks are still off limits.

pub fn tool_code() {
    let v: Option<u32> = None;
    v.unwrap(); // not a kernel crate: tolerated
}

pub static RAW: std::sync::Mutex<u32> = std::sync::Mutex::new(0); // V:raw-sync
