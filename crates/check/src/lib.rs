//! netcheck: the repository's own static lint pass.
//!
//! The streams kernel relies on a handful of invariants that no
//! general-purpose tool checks:
//!
//! - **panic-path** — kernel-path crates (`streams`, `inet`, `core`,
//!   `ninep`, `netsim`) must not call `.unwrap()`/`.expect()` outside
//!   test code: a panic inside a `put` routine takes down the whole
//!   stream. A call that is genuinely infallible may stay if annotated
//!   `// checked: <reason>` on the same or preceding line.
//! - **raw-sync** — only `plan9-support` may touch
//!   `std::sync::{Mutex, RwLock, Condvar}`; everyone else uses the
//!   no-poison, lockdep-aware wrappers in `plan9_support::sync`.
//! - **wall-clock** — only `plan9-support` may read
//!   `SystemTime`/`UNIX_EPOCH`; kernel code uses monotonic `Instant`s
//!   or `plan9_support::time`.
//! - **mono-clock** — only `plan9-support` may call `Instant::now()`
//!   or `thread::sleep()`; everyone else reads time through
//!   `plan9_support::time::{now, sleep}`, so that a discrete-event run
//!   under `plan9_support::vtime` never stalls on the host clock.
//! - **registry-dep** — every manifest dependency must resolve inside
//!   this repository (`path = …` or `workspace = true`): the build is
//!   hermetic, and a registry dependency anywhere breaks the offline
//!   gate.
//!
//! The scanner is a line-level lexer, not a parser: it understands
//! strings (including raw strings), `//` and nested `/* */` comments,
//! char literals vs lifetimes, and `#[cfg(test)]`/`#[test]` regions —
//! enough to make the five rules precise without a syntax tree, and
//! with zero dependencies so it builds before anything else.
//!
//! Enforcement ratchets via a baseline (`scripts/check-baseline.txt`):
//! per `(rule, file)` violation counts may shrink but never grow.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod flow;
pub mod graph;
pub mod lockgraph;
pub mod report;

/// Crates whose `src` is a kernel path: a panic there is a stream-wide
/// outage, so the panic-path rule applies.
pub const KERNEL_CRATES: &[&str] = &["streams", "inet", "core", "ninep", "netsim"];

/// The one crate allowed to use raw `std::sync` locks and the wall
/// clock: it *implements* the sanctioned wrappers.
pub const BOUNDARY_CRATE: &str = "support";

/// The rule classes netcheck enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()`/`.expect(` on a kernel path without `// checked:`.
    PanicPath,
    /// `std::sync::{Mutex,RwLock,Condvar}` outside plan9-support.
    RawSync,
    /// `SystemTime`/`UNIX_EPOCH` outside plan9-support.
    WallClock,
    /// `Instant::now(`/`thread::sleep(` outside plan9-support: the
    /// monotonic clock must be read through `plan9_support::time` so
    /// discrete-event runs stay on the virtual clock.
    MonoClock,
    /// A manifest dependency that is not a path/workspace dep.
    RegistryDep,
    /// A blocking primitive (condvar wait, chan recv, sleep, join,
    /// ARP resolve) reachable from a non-blocking root (pool job,
    /// wheel callback, rx handler) without `// blocking-ok:`.
    BlockingContext,
    /// A panic site (`panic!`/`unwrap`/`expect`/…) reachable from a
    /// non-blocking root without `// checked:`.
    PanicReach,
    /// A cycle in the static acquired-while-held lock-order graph.
    LockCycle,
}

impl Rule {
    /// The stable diagnostic code, used in output and the baseline.
    pub fn code(self) -> &'static str {
        match self {
            Rule::PanicPath => "panic-path",
            Rule::RawSync => "raw-sync",
            Rule::WallClock => "wall-clock",
            Rule::MonoClock => "mono-clock",
            Rule::RegistryDep => "registry-dep",
            Rule::BlockingContext => "blocking-context",
            Rule::PanicReach => "panic-reach",
            Rule::LockCycle => "lock-cycle",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One diagnostic: a rule violated at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Path relative to the scanned root, with `/` separators.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// The offending source line, trimmed, for the diagnostic.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

// ---------------------------------------------------------------------------
// Lexing: split each source line into code and comment, blanking string
// contents, so the rules can match tokens without false hits inside
// literals or prose.

/// One source line after lexing.
pub(crate) struct LexedLine {
    /// Code with string/char contents replaced by spaces (delimiting
    /// quotes kept) and comments removed.
    pub(crate) code: String,
    /// The text of any comments on the line (both `//` and `/* */`).
    pub(crate) comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Lexes full source text into per-line code/comment views. The state
/// machine carries block comments and multi-line strings across lines.
/// Also the front door for [`graph`]'s tokenizer: string contents are
/// blanked column-preserving, so spans survive into the raw line.
pub(crate) fn lex_lines(source: &str) -> Vec<LexedLine> {
    lex(source)
}

fn lex(source: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in source.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match state {
                LexState::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(b[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if b[i] == '\\' {
                        code.push(' ');
                        if i + 1 < b.len() {
                            code.push(' ');
                        }
                        i += 2;
                    } else if b[i] == '"' {
                        code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    // Ends at `"` followed by exactly `hashes` #s.
                    if b[i] == '"'
                        && b[i + 1..].iter().take(hashes as usize).filter(|&&c| c == '#').count()
                            == hashes as usize
                        && b[i + 1..].len() >= hashes as usize
                    {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = LexState::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[raw.char_indices().nth(i).map(|(p, _)| p).unwrap_or(0)..]);
                        break;
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == 'r' || c == 'b' {
                        // Possible raw/byte string start: r", r#", br#"…
                        let mut j = i + 1;
                        if c == 'b' && b.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')))
                            && b.get(j) == Some(&'"')
                            && (c != 'b' || b.get(i + 1) == Some(&'r') || hashes == 0);
                        if is_raw && (j > i + 1 || b.get(j) == Some(&'"')) && b.get(j) == Some(&'"')
                        {
                            code.extend(&b[i..=j]);
                            i = j + 1;
                            state = LexState::RawStr(hashes);
                        } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                            code.push('b');
                            code.push('"');
                            i += 2;
                            state = LexState::Str;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        state = LexState::Str;
                    } else if c == '\'' {
                        // Char literal vs lifetime: 'x' or '\n' is a
                        // literal; 'static is a lifetime.
                        if b.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            code.push('\'');
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            for _ in i + 1..=j.min(b.len() - 1) {
                                code.push(' ');
                            }
                            i = j + 1;
                        } else if b.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(LexedLine { code, comment });
    }
    out
}

// ---------------------------------------------------------------------------
// Source scanning.

/// Tracks `#[cfg(test)]` / `#[test]` regions: from the attribute to the
/// close of the following brace-delimited item (or its terminating `;`
/// for brace-less items).
pub(crate) struct TestRegion {
    /// Attribute seen, waiting for the item's opening brace.
    pending: bool,
    /// Brace depth inside the skipped item; `None` when not skipping.
    depth: Option<i32>,
}

impl TestRegion {
    pub(crate) fn new() -> TestRegion {
        TestRegion {
            pending: false,
            depth: None,
        }
    }

    /// Feeds one code line; returns true if the line is test-only.
    pub(crate) fn feed(&mut self, code: &str) -> bool {
        let trimmed = code.trim();
        if self.depth.is_none()
            && !self.pending
            && (trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[test]"))
        {
            // Fall through: the item (and its braces) may share the line
            // with the attribute.
            self.pending = true;
        }
        if self.pending {
            let mut depth = 0i32;
            let mut opened = false;
            let mut nesting = 0i32; // () and [] around a `;` that isn't a statement end
            for c in code.chars() {
                match c {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => depth -= 1,
                    '(' | '[' => nesting += 1,
                    ')' | ']' => nesting -= 1,
                    ';' if !opened && nesting == 0 => {
                        // Brace-less item (`#[cfg(test)] use …;`): the
                        // region is just this statement.
                        self.pending = false;
                        return true;
                    }
                    _ => {}
                }
            }
            if opened {
                self.pending = false;
                if depth > 0 {
                    self.depth = Some(depth);
                }
                // depth <= 0: the item opened and closed on this line.
            }
            return true;
        }
        if let Some(depth) = self.depth.as_mut() {
            for c in code.chars() {
                match c {
                    '{' => *depth += 1,
                    '}' => *depth -= 1,
                    _ => {}
                }
            }
            if *depth <= 0 {
                self.depth = None;
            }
            return true;
        }
        false
    }
}

fn has_checked_annotation(comment: &str) -> bool {
    comment
        .split_once("checked:")
        .is_some_and(|(_, reason)| !reason.trim().is_empty())
}

/// The `std::sync` primitives that must stay behind `plan9_support`.
const RAW_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Scans one Rust source file. `crate_name` is the directory name under
/// `crates/`; `file` is the root-relative path used in diagnostics.
pub fn scan_source(crate_name: &str, file: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lexed = lex(source);
    let mut region = TestRegion::new();
    let mut prev_comment_checked = false;
    let mut in_sync_use = false;
    let kernel = KERNEL_CRATES.contains(&crate_name);
    let boundary = crate_name == BOUNDARY_CRATE;

    for (idx, line) in lexed.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = region.feed(&line.code);
        let checked = has_checked_annotation(&line.comment) || prev_comment_checked;
        // A standalone `// checked: reason` line blesses the next line.
        prev_comment_checked =
            line.code.trim().is_empty() && has_checked_annotation(&line.comment);
        if in_test {
            in_sync_use = false;
            continue;
        }
        let code = &line.code;
        let mut report = |rule: Rule| {
            out.push(Violation {
                rule,
                file: file.to_string(),
                line: lineno,
                excerpt: source.lines().nth(idx).unwrap_or("").trim().to_string(),
            });
        };

        if kernel && !checked && (code.contains(".unwrap()") || code.contains(".expect(")) {
            report(Rule::PanicPath);
        }

        if !boundary {
            // Direct paths: std::sync::Mutex etc.
            let direct = RAW_SYNC
                .iter()
                .any(|p| code.contains(&format!("std::sync::{p}")));
            // Grouped imports: `use std::sync::{Arc, Mutex};`, possibly
            // spanning lines until the closing `;`.
            let mut grouped = false;
            if code.contains("std::sync::{") {
                in_sync_use = true;
            }
            if in_sync_use {
                grouped = RAW_SYNC.iter().any(|p| {
                    code.split(|c: char| !c.is_alphanumeric() && c != '_')
                        .any(|tok| tok == *p)
                });
                if code.contains(';') {
                    in_sync_use = false;
                }
            }
            if !checked && (direct || grouped) {
                report(Rule::RawSync);
            }

            if !checked && (code.contains("SystemTime") || code.contains("UNIX_EPOCH")) {
                report(Rule::WallClock);
            }

            // The monotonic clock is a boundary too: a raw read or a
            // raw sleep stalls a virtual-time run on the host clock.
            if !checked
                && (code.contains("Instant::now(") || code.contains("thread::sleep("))
            {
                report(Rule::MonoClock);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Manifest scanning.

/// Scans a `Cargo.toml` for dependencies that leave the repository.
/// Hermeticity rule: every entry in a dependency section must carry
/// `path = …` (a relative path) or `workspace = true`.
pub fn scan_manifest(file: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]` dotted-table entries accumulate their keys
    // until the next section header.
    let mut dotted: Option<(usize, String, bool)> = None;

    let is_dep_section = |name: &str| {
        name == "dependencies"
            || name == "dev-dependencies"
            || name == "build-dependencies"
            || name == "workspace.dependencies"
            || (name.starts_with("target.") && name.ends_with("dependencies"))
    };

    let flush_dotted = |d: &mut Option<(usize, String, bool)>, out: &mut Vec<Violation>| {
        if let Some((line, name, ok)) = d.take() {
            if !ok {
                out.push(Violation {
                    rule: Rule::RegistryDep,
                    file: file.to_string(),
                    line,
                    excerpt: format!("[dependencies.{name}] has no path/workspace source"),
                });
            }
        }
    };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            flush_dotted(&mut dotted, &mut out);
            let name = line.trim_matches(['[', ']']).trim().to_string();
            if let Some(dep) = name
                .strip_prefix("dependencies.")
                .or_else(|| name.strip_prefix("dev-dependencies."))
                .or_else(|| name.strip_prefix("workspace.dependencies."))
            {
                dotted = Some((lineno, dep.to_string(), false));
                in_dep_section = false;
            } else {
                in_dep_section = is_dep_section(&name);
            }
            continue;
        }
        if let Some((_, _, ok)) = dotted.as_mut() {
            if line.starts_with("path") || line.contains("workspace = true") {
                *ok = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // An inline dependency entry: `name = spec`.
        let Some((dep, spec)) = line.split_once('=') else {
            continue;
        };
        let dep = dep.trim();
        let spec = spec.trim();
        // Hermetic forms: `{ path = "…" }`, `{ workspace = true }`, and
        // the dotted shorthand `name.workspace = true`.
        let hermetic = spec.contains("path =")
            || spec.contains("path=")
            || spec.contains("workspace = true")
            || spec.contains("workspace=true")
            || (dep.ends_with(".workspace") && spec == "true");
        let absolute = spec.contains("path = \"/") || spec.contains("path=\"/");
        if !hermetic || absolute {
            out.push(Violation {
                rule: Rule::RegistryDep,
                file: file.to_string(),
                line: lineno,
                excerpt: format!("{dep} = {spec}"),
            });
        }
    }
    flush_dotted(&mut dotted, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Workspace walking.

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans a workspace rooted at `root`: every `crates/*/src/**/*.rs`,
/// every `crates/*/Cargo.toml`, and the root `Cargo.toml`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let rel = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/")
    };

    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.extend(scan_manifest(
            &rel(&root_manifest),
            &fs::read_to_string(&root_manifest)?,
        ));
    }

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.extend(scan_manifest(&rel(&manifest), &fs::read_to_string(&manifest)?));
        }
        let src = dir.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            walk_rs(&src, &mut files)?;
            for f in files {
                out.extend(scan_source(&crate_name, &rel(&f), &fs::read_to_string(&f)?));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Baseline: the "no new violations" ratchet.

/// Violation counts keyed by `(rule code, file)`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Aggregates raw violations into baseline form.
pub fn tally(violations: &[Violation]) -> Baseline {
    let mut b = Baseline::new();
    for v in violations {
        *b.entry((v.rule.code().to_string(), v.file.clone())).or_default() += 1;
    }
    b
}

/// Parses `scripts/check-baseline.txt`: `<rule> <file> <count>` lines,
/// `#` comments.
pub fn parse_baseline(text: &str) -> Baseline {
    let mut b = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(n) = count.parse() {
                b.insert((rule.to_string(), file.to_string()), n);
            }
        }
    }
    b
}

/// Renders a baseline back to file form.
pub fn format_baseline(b: &Baseline) -> String {
    let mut s = String::from(
        "# netcheck baseline: per (rule, file) violation counts that are\n\
         # tolerated today. The gate is \"no new violations\": counts may\n\
         # shrink but never grow. Regenerate after a burn-down with:\n\
         #   cargo run -p plan9-check -- --update-baseline\n",
    );
    for ((rule, file), count) in b {
        s.push_str(&format!("{rule} {file} {count}\n"));
    }
    s
}

/// The verdict of comparing a scan against the baseline.
pub struct Comparison {
    /// `(rule, file, baseline, current)` where current > baseline.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// Entries that improved or vanished (burn-down progress).
    pub improvements: Vec<(String, String, usize, usize)>,
    pub total_current: usize,
    pub total_baseline: usize,
}

impl Comparison {
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares current violations against the baseline ratchet.
pub fn compare(current: &Baseline, baseline: &Baseline) -> Comparison {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (key, &n) in current {
        let base = baseline.get(key).copied().unwrap_or(0);
        if n > base {
            regressions.push((key.0.clone(), key.1.clone(), base, n));
        } else if n < base {
            improvements.push((key.0.clone(), key.1.clone(), base, n));
        }
    }
    for (key, &base) in baseline {
        if !current.contains_key(key) && base > 0 {
            improvements.push((key.0.clone(), key.1.clone(), base, 0));
        }
    }
    Comparison {
        regressions,
        improvements,
        total_current: current.values().sum(),
        total_baseline: baseline.values().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(violations: &[Violation]) -> Vec<(Rule, usize)> {
        violations.iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn unwrap_in_kernel_crate_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = scan_source("streams", "f.rs", src);
        assert_eq!(lines(&v), vec![(Rule::PanicPath, 2)]);
    }

    #[test]
    fn unwrap_in_non_kernel_crate_ignored() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(scan_source("bench", "f.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_string_and_comment_ignored() {
        let src = "fn f() {\n    let s = \".unwrap()\";\n    // calling .unwrap() here would be bad\n    let r = r#\"also .expect( nothing\"#;\n}\n";
        assert!(scan_source("streams", "f.rs", src).is_empty());
    }

    #[test]
    fn checked_annotation_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // checked: caller guarantees Some\n}\n";
        assert!(scan_source("streams", "f.rs", src).is_empty());
        // …but an empty reason does not.
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // checked:\n}\n";
        assert_eq!(scan_source("streams", "f.rs", src).len(), 1);
        // A standalone annotation line blesses the next line only.
        let src = "fn f(x: Option<u8>) -> u8 {\n    // checked: length verified above\n    x.unwrap()\n}\nfn g(y: Option<u8>) -> u8 { y.unwrap() }\n";
        assert_eq!(lines(&scan_source("streams", "f.rs", src)), vec![(Rule::PanicPath, 5)]);
    }

    #[test]
    fn cfg_test_region_skipped() {
        let src = "fn live(x: Option<u8>) -> u8 { x.expect(\"x\") }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n}\n\
                   fn live2(y: Option<u8>) -> u8 { y.unwrap() }\n";
        assert_eq!(
            lines(&scan_source("inet", "f.rs", src)),
            vec![(Rule::PanicPath, 1), (Rule::PanicPath, 6)]
        );
    }

    #[test]
    fn raw_sync_flagged_outside_support() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(lines(&scan_source("netlog", "f.rs", src)), vec![(Rule::RawSync, 1)]);
        assert!(scan_source("support", "f.rs", src).is_empty());
        // Grouped import, Arc alone is fine.
        let src = "use std::sync::{Arc, Weak};\n";
        assert!(scan_source("streams", "f.rs", src).is_empty());
        let src = "use std::sync::{Arc, Condvar};\n";
        assert_eq!(scan_source("streams", "f.rs", src).len(), 1);
        // Multi-line grouped import.
        let src = "use std::sync::{\n    Arc,\n    RwLock,\n};\n";
        assert_eq!(lines(&scan_source("streams", "f.rs", src)), vec![(Rule::RawSync, 3)]);
    }

    #[test]
    fn wall_clock_flagged_outside_support() {
        let src = "fn now() -> u64 {\n    std::time::SystemTime::now();\n    0\n}\n";
        assert_eq!(lines(&scan_source("inet", "f.rs", src)), vec![(Rule::WallClock, 2)]);
        assert!(scan_source("support", "f.rs", src).is_empty());
    }

    #[test]
    fn mono_clock_flagged_outside_support() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    std::thread::sleep(d);\n    let _ = t;\n}\n";
        assert_eq!(
            lines(&scan_source("inet", "f.rs", src)),
            vec![(Rule::MonoClock, 2), (Rule::MonoClock, 3)]
        );
        assert!(scan_source("support", "f.rs", src).is_empty());
        // The sanctioned reads don't trip it.
        let src = "fn f() {\n    let t = plan9_support::time::now();\n    plan9_support::time::sleep(d);\n    let _ = t;\n}\n";
        assert!(scan_source("inet", "f.rs", src).is_empty());
        // Tests may use the host clock freely.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(scan_source("inet", "f.rs", src).is_empty());
        // A checked annotation works here like everywhere else.
        let src = "fn f() {\n    std::thread::sleep(d); // checked: real sleep, compares host mtimes\n}\n";
        assert!(scan_source("bench", "f.rs", src).is_empty());
    }

    #[test]
    fn registry_dep_flagged() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\n  rand = \"0.8\"\nplan9-support = { workspace = true }\nlocal = { path = \"../local\" }\nrenamed = { package = \"bytes\", version = \"1\" }\n";
        let v = scan_manifest("Cargo.toml", toml);
        assert_eq!(
            v.iter().map(|v| v.line).collect::<Vec<_>>(),
            vec![5, 8],
            "{v:?}"
        );
        assert!(v.iter().all(|v| v.rule == Rule::RegistryDep));
    }

    #[test]
    fn dotted_dep_table_without_path_flagged() {
        let toml = "[dependencies.rand]\nversion = \"0.8\"\n\n[dependencies.support]\npath = \"../support\"\n";
        let v = scan_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].excerpt.contains("rand"));
    }

    #[test]
    fn baseline_roundtrip_and_compare() {
        let violations = vec![
            Violation { rule: Rule::PanicPath, file: "a.rs".into(), line: 1, excerpt: "x".into() },
            Violation { rule: Rule::PanicPath, file: "a.rs".into(), line: 9, excerpt: "y".into() },
            Violation { rule: Rule::RawSync, file: "b.rs".into(), line: 2, excerpt: "z".into() },
        ];
        let current = tally(&violations);
        let parsed = parse_baseline(&format_baseline(&current));
        assert_eq!(parsed, current);

        let mut baseline = current.clone();
        // Ratchet: one more panic-path in a.rs than baseline fails…
        baseline.insert(("panic-path".into(), "a.rs".into()), 1);
        let c = compare(&current, &baseline);
        assert!(!c.ok());
        assert_eq!(c.regressions, vec![("panic-path".into(), "a.rs".into(), 1, 2)]);
        // …and fewer than baseline is an improvement, still ok.
        baseline.insert(("panic-path".into(), "a.rs".into()), 5);
        let c = compare(&current, &baseline);
        assert!(c.ok());
        assert_eq!(c.improvements.len(), 1);
    }
}
