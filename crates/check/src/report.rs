//! `REPORT_checkflow.json`: the machine-readable face of checkflow.
//!
//! Everything the three passes know — graph statistics, every finding
//! with its witness path, every static lock edge with its confirmation
//! status — lands here so verify.sh (and a reviewer's `jq`) can gate on
//! shape rather than scrape terminal output. The crate is
//! dependency-free by design (it builds before everything else), so the
//! JSON is emitted by hand; [`esc`] covers the full string-escape
//! grammar the writers need.

use crate::flow::Finding;
use crate::graph::CallGraph;
use crate::lockgraph::LockReport;
use std::fmt::Write as _;

/// Escapes a string for a JSON literal (without the quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn findings_json(out: &mut String, findings: &[Finding], indent: &str) {
    if findings.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "{indent}  {{\"root_kind\": \"{}\", \"root\": \"{}:{}\", \"sink_kind\": \"{}\", \"sink\": \"{}:{}\", \"path\": [",
            esc(f.root_kind),
            esc(&f.root_file),
            f.root_line,
            esc(f.sink_kind),
            esc(&f.sink_file),
            f.sink_line,
        );
        for (j, s) in f.path.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"call_line\": {}}}",
                if j == 0 { "" } else { ", " },
                esc(&s.qualified),
                esc(&s.file),
                s.line,
                s.call_line,
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 == findings.len() { "\n" } else { ",\n" });
    }
    let _ = write!(out, "{indent}]");
}

/// Renders the full report.
pub fn render(
    graph: &CallGraph,
    blocking: &[Finding],
    panics: &[Finding],
    locks: &LockReport,
    wall_ms: u128,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"checkflow-v1\",");
    let _ = writeln!(out, "  \"wall_ms\": {wall_ms},");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"functions\": {}, \"call_sites\": {}, \"resolved_calls\": {}, \"unresolved_calls\": {}, \"roots\": {}, \"lock_classes\": {}}},",
        graph.fns.len(),
        graph.call_sites(),
        graph.resolved_calls,
        graph.unresolved_calls,
        graph.roots().count(),
        locks.static_classes,
    );

    let _ = write!(out, "  \"blocking_context\": {{\"count\": {}, \"findings\": ", blocking.len());
    findings_json(&mut out, blocking, "  ");
    out.push_str("},\n");

    let _ = write!(out, "  \"panic_reach\": {{\"count\": {}, \"findings\": ", panics.len());
    findings_json(&mut out, panics, "  ");
    out.push_str("},\n");

    out.push_str("  \"lock_order\": {\n");
    let _ = writeln!(out, "    \"cross_checked\": {},", locks.cross_checked);
    let _ = writeln!(out, "    \"observed_classes\": {},", locks.observed_classes);
    let _ = writeln!(out, "    \"ambiguous_receivers\": {},", locks.ambiguous);

    out.push_str("    \"static_edges\": [");
    for (i, e) in locks.edges.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n      {{\"from\": \"{}\", \"to\": \"{}\", \"confirmed\": {}, \"via\": \"{}\", \"site\": \"{}:{}\"}}",
            if i == 0 { "" } else { "," },
            esc(&e.from),
            esc(&e.to),
            e.confirmed,
            esc(&e.via),
            esc(&e.file),
            e.line,
        );
    }
    out.push_str(if locks.edges.is_empty() { "],\n" } else { "\n    ],\n" });

    out.push_str("    \"untested\": [");
    let untested: Vec<_> = locks.untested().collect();
    for (i, e) in untested.iter().enumerate() {
        let _ = write!(
            out,
            "{}[\"{}\", \"{}\"]",
            if i == 0 { "" } else { ", " },
            esc(&e.from),
            esc(&e.to)
        );
    }
    out.push_str("],\n");

    out.push_str("    \"dynamic_only\": [");
    for (i, (a, b)) in locks.dynamic_only.iter().enumerate() {
        let _ = write!(
            out,
            "{}[\"{}\", \"{}\"]",
            if i == 0 { "" } else { ", " },
            esc(a),
            esc(b)
        );
    }
    out.push_str("],\n");

    out.push_str("    \"cycles\": [");
    for (i, cyc) in locks.cycles.iter().enumerate() {
        let _ = write!(out, "{}[", if i == 0 { "" } else { ", " });
        for (j, c) in cyc.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if j == 0 { "" } else { ", " }, esc(c));
        }
        out.push(']');
    }
    out.push_str("],\n");

    out.push_str("    \"dead_classes\": [");
    for (i, c) in locks.dead_classes.iter().enumerate() {
        let _ = write!(out, "{}\"{}\"", if i == 0 { "" } else { ", " }, esc(c));
    }
    out.push_str("]\n");

    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{blocking_findings, panic_findings};
    use crate::graph::scan_file;
    use crate::lockgraph::analyze;

    #[test]
    fn report_renders_valid_shape() {
        let mut g = CallGraph::default();
        scan_file(
            &mut g,
            "demo",
            "demo/src/lib.rs",
            &[],
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
             fn ab(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n}\n\
             }\n\
             fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n\
             fn service(key: u64) {\n    pool::submit(key, move || nap());\n}\n\
             fn nap() { time::sleep(d); }\n",
        );
        g.index();
        let blocking = blocking_findings(&g);
        let panics = panic_findings(&g);
        let locks = analyze(&g, Some("class demo.a acquires=1\nedge demo.a -> demo.b thread=t\n"));
        let text = render(&g, &blocking, &panics, &locks, 42);
        assert!(text.contains("\"schema\": \"checkflow-v1\""), "{text}");
        assert!(text.contains("\"wall_ms\": 42"));
        assert!(text.contains("\"blocking_context\": {\"count\": 1"));
        assert!(text.contains("\"sink_kind\": \"sleep\""));
        assert!(text.contains("\"from\": \"demo.a\""));
        assert!(text.contains("\"dead_classes\": [\"demo.b\"]"));
        // Structural sanity: balanced braces/brackets outside strings.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in text.chars() {
            match c {
                '"' if prev != '\\' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            prev = c;
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("tab\there"), "tab\\there");
    }
}
