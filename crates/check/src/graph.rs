//! The checkflow front end: an approximate whole-workspace call graph.
//!
//! `netcheck`'s line lexer answers "does this line contain a forbidden
//! token"; the flow passes need a deeper question answered — "can this
//! closure, transitively, reach a blocking primitive" — which takes a
//! call graph. This module parses every `crates/*/src/**/*.rs` file
//! into function nodes and call edges with *no dependencies and no
//! type information*, accepting approximation where rustc would demand
//! a full type system:
//!
//! - **Items**: `fn` items are discovered with their crate, module path
//!   (file path + inline `mod`), enclosing `impl`/`trait` type, and
//!   whether they take `self`. `#[cfg(test)]`/`#[test]` regions are
//!   skipped entirely (test code may block and panic at will).
//! - **Calls**: `path::to::f(..)` resolves against module-path and
//!   impl-type suffixes; bare `f(..)` resolves same-module, then
//!   same-crate, then workspace-wide; `.m(..)` resolves by name to any
//!   workspace method called `m` — restricted to the caller's own crate
//!   when that crate defines one — the "conservative fan-out" that
//!   makes the analysis sound-ish without types. Macro calls are kept
//!   (for panic sinks) but never resolved.
//! - **Closures** are attributed to their enclosing item, *except* the
//!   closure argument of a non-blocking-context registration —
//!   `pool::submit`, `pool::submit_or_run`, `wheel::schedule`,
//!   `.set_rx_handler(..)` — which becomes its own synthetic root node
//!   so the flow passes can start exactly at the code that runs on a
//!   shard, wheel, or rx path.
//! - **Locks**: `Mutex::named`/`RwLock::named` construction sites yield
//!   (binding-ident, impl-type) → class-name associations, and
//!   `.lock()`/`.read()`/`.write()`/`.try_lock()` sites record the
//!   receiver ident, so `lockgraph` can rebuild the acquired-while-held
//!   graph without a type checker.
//!
//! Escape hatches ride on comments, like netcheck's: a call site on a
//! line annotated `// blocking-ok: <reason>` is exempt from the
//! blocking-context pass, and `// checked: <reason>` (netcheck's
//! existing grammar) exempts a panic sink from panic-reachability. A
//! bare annotation line blesses the following line.

use crate::{lex_lines, TestRegion};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Tokens.

/// One token of comment-free, test-free source.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// A string literal's contents (single-line literals only; a
    /// multi-line literal tokenizes with empty contents).
    Str(String),
    /// Any numeric literal.
    Num,
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// A lifetime such as `'a` (contents discarded).
    Lifetime,
    /// Any other single punctuation character.
    P(char),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize, // 1-based
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes lexed code lines. `raw_lines` supplies true string-literal
/// contents (the lexer blanks them, column-preserving), and
/// `skip_line[i]` drops test-region lines wholesale.
fn tokenize(code_lines: &[String], raw_lines: &[&str], skip_line: &[bool]) -> Vec<SpannedTok> {
    let mut out = Vec::new();
    for (idx, code) in code_lines.iter().enumerate() {
        if skip_line.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let b: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_whitespace() {
                i += 1;
            } else if is_ident_start(c) {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // A raw/byte-string prefix immediately followed by its
                // quote was kept by the lexer (`r#"…"#`): the ident is
                // the prefix, the quote handling below sees the rest.
                out.push(SpannedTok { tok: Tok::Ident(ident), line: lineno });
            } else if c.is_ascii_digit() {
                while i < b.len() && (is_ident_char(b[i]) || b[i] == '.') {
                    // Consumes `1.5e3`, `0xff`, `1_000u64`; a trailing
                    // range `1..n` is left to punctuation by the
                    // second-dot check.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(SpannedTok { tok: Tok::Num, line: lineno });
            } else if c == '"' {
                // The lexer blanked the contents but kept columns, so
                // the raw line carries the true text at the same span.
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != '"' && b[j] != '#' {
                    j += 1;
                }
                let content = raw_lines
                    .get(idx)
                    .and_then(|raw| {
                        let chars: Vec<char> = raw.chars().collect();
                        if j <= chars.len() && b.get(j) == Some(&'"') {
                            Some(chars[start..j].iter().collect::<String>())
                        } else {
                            None // multi-line or raw-hash literal
                        }
                    })
                    .unwrap_or_default();
                out.push(SpannedTok { tok: Tok::Str(content), line: lineno });
                if j < b.len() && b[j] == '"' {
                    i = j + 1;
                } else {
                    // Multi-line string: the rest of the literal is
                    // blanks on later lines; skip this line's tail.
                    i = b.len();
                }
                // Trailing raw-string hashes.
                while i < b.len() && b[i] == '#' {
                    i += 1;
                }
            } else if c == '\'' {
                // Lifetime (`'a`) or a blanked char literal (`' '`).
                if b.get(i + 1).copied().is_some_and(is_ident_start)
                    && b.get(i + 2) != Some(&'\'')
                {
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.push(SpannedTok { tok: Tok::Lifetime, line: lineno });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                    out.push(SpannedTok { tok: Tok::Num, line: lineno });
                }
            } else if c == ':' && b.get(i + 1) == Some(&':') {
                out.push(SpannedTok { tok: Tok::PathSep, line: lineno });
                i += 2;
            } else if c == '-' && b.get(i + 1) == Some(&'>') {
                out.push(SpannedTok { tok: Tok::Arrow, line: lineno });
                i += 2;
            } else if c == '=' && b.get(i + 1) == Some(&'>') {
                out.push(SpannedTok { tok: Tok::FatArrow, line: lineno });
                i += 2;
            } else {
                out.push(SpannedTok { tok: Tok::P(c), line: lineno });
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Graph data model.

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// `f(..)` — unqualified.
    Bare(String),
    /// `a::b::f(..)` — the full segment list, including the final name.
    Path(Vec<String>),
    /// `.m(..)` — a method call.
    Method(String),
    /// `m!(..)` — a macro invocation (never resolved; panic sinks only).
    Macro(String),
}

impl Callee {
    /// The called name (last path segment / method / macro name).
    pub fn name(&self) -> &str {
        match self {
            Callee::Bare(n) | Callee::Method(n) | Callee::Macro(n) => n,
            Callee::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// A lock-related operation at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqOp {
    Lock,
    Read,
    Write,
    /// `try_lock` — held for scope purposes, but never an order edge
    /// (matching runtime lockdep).
    TryLock,
}

/// Events inside one function body, in source order. The flow passes
/// read only `Call`; the lock-order pass replays the full sequence.
#[derive(Debug, Clone)]
pub enum BodyEvent {
    Call(CallSite),
    /// `recv.lock()` etc: `receiver` is the last path ident before the
    /// method (`self.state.lock()` → `state`; plain `self.lock()` falls
    /// back to the enclosing impl type).
    Acquire {
        receiver: String,
        op: AcqOp,
        line: usize,
        /// `let g = …` binding name, when the guard is named.
        guard: Option<String>,
        /// Brace depth the binding lives at (guard dies when the walk
        /// closes back below it). Statement-temporary guards die at the
        /// next `EndStmt`.
        depth: usize,
    },
    /// `drop(g)` of a named guard.
    DropGuard { name: String, line: usize },
    /// A `}` closed; `depth` is the brace depth after closing.
    CloseBlock { depth: usize },
    /// A `;` at statement level: temporaries die here.
    EndStmt,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    pub line: usize,
    /// Empty-argument call (`h.join()`), used to tell thread joins from
    /// `Path::join("…")`.
    pub zero_args: bool,
    /// Argument count when it can be read confidently off the tokens;
    /// `None` when the list contains closures, comparisons, or anything
    /// else that defeats comma counting. Used to prune method fan-out:
    /// a three-argument `station.send(mac, ethertype, payload)` can
    /// never be the one-argument `IlConn::send(&self, msg)`.
    pub args: Option<usize>,
    /// `// blocking-ok: <reason>` on this or the preceding line.
    pub blocking_ok: Option<String>,
    /// `// checked: <reason>` on this or the preceding line.
    pub checked: bool,
}

/// Which non-blocking execution context a synthetic root node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// A closure submitted to `pool::submit`/`submit_or_run`.
    PoolJob,
    /// A `wheel::schedule` deadline callback.
    WheelCallback,
    /// An ether `set_rx_handler` frame handler.
    RxHandler,
}

impl RootKind {
    pub fn label(self) -> &'static str {
        match self {
            RootKind::PoolJob => "pool-job",
            RootKind::WheelCallback => "wheel-callback",
            RootKind::RxHandler => "rx-handler",
        }
    }
}

/// A function (or synthetic root-closure) node.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub crate_name: String,
    /// Module path within the crate, file-derived plus inline `mod`s.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type, when inside one.
    pub impl_type: Option<String>,
    /// Item name; synthetic roots are named `{closure}`.
    pub name: String,
    pub file: String,
    pub line: usize,
    pub has_self: bool,
    /// Declared parameter count excluding `self`, when the signature
    /// was countable.
    pub params: Option<usize>,
    /// `Some` iff this is a synthetic root-closure node.
    pub root: Option<RootKind>,
    pub body: Vec<BodyEvent>,
}

impl FnNode {
    /// A human-readable handle: `crate::module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut parts = vec![self.crate_name.clone()];
        parts.extend(self.module.iter().cloned());
        if let Some(t) = &self.impl_type {
            parts.push(t.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }

    pub fn calls(&self) -> impl Iterator<Item = &CallSite> {
        self.body.iter().filter_map(|e| match e {
            BodyEvent::Call(c) => Some(c),
            _ => None,
        })
    }
}

/// A `Mutex::named`/`RwLock::named` construction site.
#[derive(Debug, Clone)]
pub struct NamedClassSite {
    /// The lockdep class string.
    pub class: String,
    /// The `let`/field ident the lock is bound to, when recognizable.
    pub binding: Option<String>,
    /// The enclosing impl type, if any.
    pub impl_type: Option<String>,
    pub crate_name: String,
    pub file: String,
    pub line: usize,
}

/// The workspace call graph plus the lock-class table.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    pub classes: Vec<NamedClassSite>,
    /// fn-name → node indices, for resolution.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Count of call sites that resolved to at least one node.
    pub resolved_calls: usize,
    /// Call sites naming something outside the workspace (std, field
    /// inits that look like calls, …).
    pub unresolved_calls: usize,
    /// crate → transitive workspace dependencies (not including the
    /// crate itself), from Cargo.toml. Resolution uses the build DAG to
    /// reject candidates the caller cannot link against — a method call
    /// in `support` can never land in `streams`, whatever the name says.
    /// An absent entry (unit-test graphs built via [`scan_file`])
    /// disables the filter for that crate.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// file → every identifier appearing in it. A file that never
    /// names a type cannot call its inherent methods, so cross-crate
    /// method candidates are pruned unless the caller's file mentions
    /// the impl type somewhere (import, field type, constructor, …).
    pub file_idents: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Node indices a call from `caller` may reach. The "conservative
    /// fan-out": method calls resolve by bare name (same-crate
    /// candidates preferred); bare calls resolve same-module, then
    /// same-crate, then workspace; path calls match module-path or
    /// impl-type suffixes. Macros never resolve.
    pub fn resolve(&self, caller: usize, call: &Callee) -> Vec<usize> {
        self.resolve_with_args(caller, call, None)
    }

    /// For a cross-crate method candidate, requires the caller's file
    /// to mention the candidate's impl type by name: `q.remove(0)` in
    /// `inet` cannot be ninep's `NineClient::remove` when the word
    /// `NineClient` never occurs in the file. Same-crate candidates are
    /// exempt so intra-crate trait dispatch keeps resolving, and files
    /// without an ident table (unit-test graphs) skip the filter.
    fn type_mentioned(&self, caller: usize, target: usize) -> bool {
        let (me, f) = (&self.fns[caller], &self.fns[target]);
        if f.crate_name == me.crate_name {
            return true;
        }
        let Some(ty) = &f.impl_type else { return true };
        match self.file_idents.get(&me.file) {
            Some(ids) => ids.contains(ty),
            None => true,
        }
    }

    /// [`resolve`] with the call site's argument count, when known:
    /// method candidates whose declared parameter count provably
    /// mismatches are pruned before the fan-out preference.
    pub fn resolve_with_args(
        &self,
        caller: usize,
        call: &Callee,
        args: Option<usize>,
    ) -> Vec<usize> {
        let me = &self.fns[caller];
        match call {
            Callee::Macro(_) => Vec::new(),
            Callee::Method(name) => {
                let all: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&i| {
                                let f = &self.fns[i];
                                f.has_self
                                    && self.may_call(caller, i)
                                    && self.type_mentioned(caller, i)
                                    && match (args, f.params) {
                                        (Some(a), Some(p)) => a == p,
                                        _ => true,
                                    }
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let same_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].crate_name == me.crate_name)
                    .collect();
                if same_crate.is_empty() {
                    all
                } else {
                    same_crate
                }
            }
            Callee::Bare(name) => {
                // `drop(x)` is always `std::mem::drop`: calling a
                // `Drop::drop` impl explicitly is a compile error, so
                // edges into workspace `fn drop`s cannot be real.
                if name == "drop" {
                    return Vec::new();
                }
                let all: Vec<usize> = match self.by_name.get(name) {
                    Some(v) => {
                        v.iter()
                            .copied()
                            .filter(|&i| {
                                self.may_call(caller, i)
                                    && match (args, self.fns[i].params) {
                                        (Some(a), Some(p)) => a == p,
                                        _ => true,
                                    }
                            })
                            .collect()
                    }
                    None => return Vec::new(),
                };
                let same_module: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].crate_name == me.crate_name && self.fns[i].module == me.module
                    })
                    .collect();
                if !same_module.is_empty() {
                    return same_module;
                }
                let same_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].crate_name == me.crate_name)
                    .collect();
                if same_crate.is_empty() {
                    all
                } else {
                    same_crate
                }
            }
            Callee::Path(segs) => {
                let (name, mut qual) = match segs.split_last() {
                    Some((n, q)) => (n.clone(), q.to_vec()),
                    None => return Vec::new(),
                };
                // `plan9_foo::…` names workspace crate `foo`; `crate`,
                // `self`, `super` qualifiers are softened to
                // same-crate matching.
                let mut want_crate: Option<String> = None;
                if let Some(first) = qual.first().cloned() {
                    if let Some(c) = first.strip_prefix("plan9_") {
                        want_crate = Some(c.to_string());
                        qual.remove(0);
                    } else if first == "crate" || first == "self" || first == "super" {
                        want_crate = Some(me.crate_name.clone());
                        qual.remove(0);
                    } else if first == "std" || first == "core" || first == "alloc" {
                        return Vec::new();
                    }
                }
                let all = match self.by_name.get(&name) {
                    Some(v) => v.clone(),
                    None => return Vec::new(),
                };
                all.into_iter()
                    .filter(|&i| {
                        if !self.may_call(caller, i) {
                            return false;
                        }
                        let f = &self.fns[i];
                        if let Some(c) = &want_crate {
                            if &f.crate_name != c {
                                return false;
                            }
                        }
                        if qual.is_empty() {
                            return true;
                        }
                        // Qualifier must suffix-match the node's module
                        // path, optionally ending on the impl type:
                        // `pool::submit`, `Queue::get`, `arp::Cache::wait_for`.
                        let mut full: Vec<&str> = Vec::new();
                        full.push(f.crate_name.as_str());
                        full.extend(f.module.iter().map(String::as_str));
                        if let Some(t) = &f.impl_type {
                            full.push(t.as_str());
                        }
                        if qual.len() > full.len() {
                            return false;
                        }
                        full[full.len() - qual.len()..]
                            .iter()
                            .zip(qual.iter())
                            .all(|(a, b)| *a == b)
                    })
                    .collect()
            }
        }
    }

    /// Whether the build DAG lets code in `caller`'s crate name the
    /// target node at all.
    fn may_call(&self, caller: usize, target: usize) -> bool {
        let from = &self.fns[caller].crate_name;
        let to = &self.fns[target].crate_name;
        if from == to {
            return true;
        }
        match self.deps.get(from) {
            Some(d) => d.contains(to),
            None => true,
        }
    }

    /// All synthetic root nodes.
    pub fn roots(&self) -> impl Iterator<Item = (usize, &FnNode)> {
        self.fns.iter().enumerate().filter(|(_, f)| f.root.is_some())
    }

    /// Total call sites across all nodes.
    pub fn call_sites(&self) -> usize {
        self.fns.iter().map(|f| f.calls().count()).sum()
    }

    pub(crate) fn index(&mut self) {
        self.by_name.clear();
        for (i, f) in self.fns.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut resolved = 0usize;
        let mut unresolved = 0usize;
        for i in 0..self.fns.len() {
            let calls: Vec<(Callee, Option<usize>)> =
                self.fns[i].calls().map(|c| (c.callee.clone(), c.args)).collect();
            for (c, args) in &calls {
                if matches!(c, Callee::Macro(_)) {
                    continue;
                }
                if self.resolve_with_args(i, c, *args).is_empty() {
                    unresolved += 1;
                } else {
                    resolved += 1;
                }
            }
        }
        self.resolved_calls = resolved;
        self.unresolved_calls = unresolved;
    }
}

// ---------------------------------------------------------------------------
// Per-line annotations.

/// The flow-pass escape hatches found on one line.
#[derive(Debug, Clone, Default)]
struct LineAnn {
    blocking_ok: Option<String>,
    checked: bool,
    /// The line holds only a comment — an annotation block above a
    /// call may span several such lines.
    bare_comment: bool,
}

fn annotations(code: &[String], comments: &[String]) -> Vec<LineAnn> {
    comments
        .iter()
        .zip(code)
        .map(|(c, code)| {
            let blocking_ok = c.split_once("blocking-ok:").and_then(|(_, r)| {
                let r = r.trim();
                if r.is_empty() {
                    None
                } else {
                    Some(r.to_string())
                }
            });
            let checked = c
                .split_once("checked:")
                .is_some_and(|(_, r)| !r.trim().is_empty());
            LineAnn {
                blocking_ok,
                checked,
                bare_comment: code.trim().is_empty() && !c.trim().is_empty(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The parser.

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "as", "in",
    "move", "let", "mut", "ref", "dyn", "where", "unsafe", "async", "await", "const", "static",
    "pub", "use", "mod", "struct", "enum", "union", "type", "trait", "impl", "fn", "extern",
    "crate", "super", "box", "yield", "true", "false",
];

struct ScopeFrame {
    kind: ScopeKind,
    /// Brace depth *inside* this scope; the scope pops when depth drops
    /// below this.
    inner_depth: usize,
}

enum ScopeKind {
    Module(String),
    Impl(Option<String>),
    Fn { node: usize },
    /// A root closure with a braced body.
    RootClosure { node: usize },
}

/// A root closure with an expression body, terminated by `,`/`)` at
/// `paren_depth`.
struct ExprClosure {
    node: usize,
    paren_depth: usize,
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    brace_depth: usize,
    paren_depth: usize,
    scopes: Vec<ScopeFrame>,
    expr_closures: Vec<ExprClosure>,
    /// Armed by a root-registration call until its closure argument (if
    /// any) is found: (kind, paren depth inside the call).
    pending_root: Option<(RootKind, usize)>,
    /// Tokens of the current statement, for `let` guard binding lookup.
    stmt_start: usize,
    graph: &'a mut CallGraph,
    crate_name: &'a str,
    file: &'a str,
    file_module: &'a [String],
    ann: &'a [LineAnn],
}

impl<'a> Parser<'a> {
    fn peek(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.pos + k).map(|t| &t.tok)
    }

    fn line(&self, k: usize) -> usize {
        self.toks
            .get((self.pos + k).min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn ann_at(&self, line: usize) -> LineAnn {
        // Same line, else anywhere in the contiguous comment block
        // directly above (annotations often wrap onto a second line).
        let mut here = self.ann.get(line.saturating_sub(1)).cloned().unwrap_or_default();
        let mut k = line.saturating_sub(1); // 0-based index of the line above
        while !(here.blocking_ok.is_some() && here.checked) && k > 0 {
            k -= 1;
            match self.ann.get(k) {
                Some(a) if a.bare_comment => {
                    if here.blocking_ok.is_none() {
                        here.blocking_ok = a.blocking_ok.clone();
                    }
                    here.checked |= a.checked;
                }
                _ => break,
            }
        }
        here
    }

    fn module_path(&self) -> Vec<String> {
        let mut m: Vec<String> = self.file_module.to_vec();
        for s in &self.scopes {
            if let ScopeKind::Module(name) = &s.kind {
                m.push(name.clone());
            }
        }
        m
    }

    fn impl_type(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(t) => t.clone(),
            _ => None,
        })
    }

    /// The innermost node body to attribute events to (root closure
    /// wins over enclosing fn).
    fn current_node(&self) -> Option<usize> {
        if let Some(ec) = self.expr_closures.last() {
            return Some(ec.node);
        }
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Fn { node } | ScopeKind::RootClosure { node } => Some(*node),
            _ => None,
        })
    }

    fn push_event(&mut self, ev: BodyEvent) {
        if let Some(n) = self.current_node() {
            self.graph.fns[n].body.push(ev);
        }
    }

    /// Skips a balanced `<…>` generic-argument list starting at the
    /// current `<`. Gives up (consuming nothing) if no balanced close
    /// is found nearby — then it was a comparison, not generics.
    fn try_skip_generics(&mut self) -> bool {
        let mut depth = 0i32;
        let mut k = 0usize;
        while let Some(t) = self.peek(k) {
            match t {
                Tok::P('<') => depth += 1,
                Tok::P('>') => {
                    depth -= 1;
                    if depth == 0 {
                        for _ in 0..=k {
                            self.advance_raw();
                        }
                        return true;
                    }
                }
                Tok::P(';') | Tok::P('{') => return false,
                _ => {}
            }
            k += 1;
            if k > 120 {
                return false; // not a generics list
            }
        }
        false
    }

    /// Consumes one token, maintaining depths and scope pops. The only
    /// place `{`/`}`/`(`/`)`/`;` bookkeeping happens.
    fn advance_raw(&mut self) {
        let Some(st) = self.toks.get(self.pos) else {
            return;
        };
        match &st.tok {
            Tok::P('{') => self.brace_depth += 1,
            Tok::P('}') => {
                self.brace_depth = self.brace_depth.saturating_sub(1);
                let depth = self.brace_depth;
                while let Some(top) = self.scopes.last() {
                    if depth < top.inner_depth {
                        self.scopes.pop();
                    } else {
                        break;
                    }
                }
                self.push_event(BodyEvent::CloseBlock { depth });
            }
            Tok::P('(') => self.paren_depth += 1,
            Tok::P(')') => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                let depth = self.paren_depth;
                while let Some(ec) = self.expr_closures.last() {
                    if depth < ec.paren_depth {
                        self.expr_closures.pop();
                    } else {
                        break;
                    }
                }
                if let Some((_, pd)) = self.pending_root {
                    if depth < pd {
                        self.pending_root = None;
                    }
                }
            }
            Tok::P(',') => {
                let depth = self.paren_depth;
                while let Some(ec) = self.expr_closures.last() {
                    if depth <= ec.paren_depth {
                        self.expr_closures.pop();
                    } else {
                        break;
                    }
                }
            }
            Tok::P(';') if self.paren_depth == 0 => {
                self.push_event(BodyEvent::EndStmt);
                self.stmt_start = self.pos + 1;
            }
            _ => {}
        }
        self.pos += 1;
    }

    /// Skips an attribute `#[…]` / `#![…]`.
    fn skip_attribute(&mut self) {
        self.advance_raw(); // '#'
        if self.peek(0) == Some(&Tok::P('!')) {
            self.advance_raw();
        }
        if self.peek(0) != Some(&Tok::P('[')) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            match t {
                Tok::P('[') => depth += 1,
                Tok::P(']') => {
                    depth -= 1;
                    if depth == 0 {
                        self.advance_raw();
                        return;
                    }
                }
                _ => {}
            }
            self.advance_raw();
        }
    }

    /// Skips a whole `macro_rules! name { … }` definition.
    fn skip_macro_rules(&mut self) {
        // At `macro_rules`; skip `! name` then the balanced braces.
        while let Some(t) = self.peek(0) {
            if matches!(t, Tok::P('{')) {
                break;
            }
            self.advance_raw();
        }
        let open_depth = self.brace_depth;
        if self.peek(0) == Some(&Tok::P('{')) {
            self.advance_raw();
            while self.brace_depth > open_depth && self.peek(0).is_some() {
                // Raw advance only: macro bodies are not Rust code.
                let t = self.toks[self.pos].tok.clone();
                match t {
                    Tok::P('{') => self.brace_depth += 1,
                    Tok::P('}') => self.brace_depth -= 1,
                    _ => {}
                }
                self.pos += 1;
            }
        }
    }

    /// Parses a `fn` item header at the `fn` keyword; pushes a Fn scope
    /// if the item has a body.
    fn parse_fn(&mut self) {
        let line = self.line(0);
        self.advance_raw(); // fn
        let name = match self.peek(0) {
            Some(Tok::Ident(n)) => n.clone(),
            _ => return,
        };
        self.advance_raw();
        if self.peek(0) == Some(&Tok::P('<')) {
            self.try_skip_generics();
        }
        if self.peek(0) != Some(&Tok::P('(')) {
            return;
        }
        // Scan the parameter list for a leading self.
        let mut has_self = false;
        let mut k = 1usize;
        while k < 8 {
            match self.peek(k) {
                Some(Tok::P('&')) | Some(Tok::Lifetime) | Some(Tok::Ident(_)) => {
                    if let Some(Tok::Ident(id)) = self.peek(k) {
                        if id == "self" {
                            has_self = true;
                            break;
                        }
                        if id != "mut" {
                            break;
                        }
                    }
                    k += 1;
                }
                _ => break,
            }
        }
        // Consume the parameter list, counting top-level parameters.
        // Commas inside nested brackets or generics (`HashMap<K, V>`)
        // are not separators; in signature position `<`/`>` are always
        // generics, so plain depth tracking is enough.
        let open = self.paren_depth;
        self.advance_raw(); // (
        // Rustfmt leaves trailing commas on multi-line lists, so a
        // parameter is counted when content *follows* a separator, not
        // per comma.
        let mut count = 0usize;
        let mut angle = 0i32;
        let mut open_param = false;
        let mut countable = true;
        while self.paren_depth > open && self.peek(0).is_some() {
            match self.peek(0) {
                Some(Tok::P('<')) => angle += 1,
                Some(Tok::P('>')) => {
                    if angle == 0 {
                        countable = false;
                    } else {
                        angle -= 1;
                    }
                }
                Some(Tok::P(',')) if self.paren_depth == open + 1 && angle == 0 => {
                    open_param = false;
                }
                // The list's own `)` is not parameter content (it is
                // what an empty list closes with).
                Some(Tok::P(')')) if self.paren_depth == open + 1 => {}
                Some(_) if !open_param => {
                    count += 1;
                    open_param = true;
                }
                _ => {}
            }
            self.advance_raw();
        }
        let params = if countable {
            // `self` is not a caller-supplied argument.
            Some(count.saturating_sub(usize::from(has_self)))
        } else {
            None
        };
        // Find the body `{` (or `;` for a trait declaration) at
        // statement level, skipping `-> T` and `where` clauses.
        loop {
            match self.peek(0) {
                Some(Tok::P('{')) => break,
                Some(Tok::P(';')) | None => return, // no body
                Some(Tok::P('<')) => {
                    if !self.try_skip_generics() {
                        self.advance_raw();
                    }
                }
                _ => self.advance_raw(),
            }
        }
        let node = self.graph.fns.len();
        self.graph.fns.push(FnNode {
            crate_name: self.crate_name.to_string(),
            module: self.module_path(),
            impl_type: self.impl_type(),
            name,
            file: self.file.to_string(),
            line,
            has_self,
            params,
            root: None,
            body: Vec::new(),
        });
        self.advance_raw(); // {
        self.scopes.push(ScopeFrame {
            kind: ScopeKind::Fn { node },
            inner_depth: self.brace_depth,
        });
        self.stmt_start = self.pos;
    }

    /// Parses `impl …` / `trait …` headers, pushing an Impl scope.
    fn parse_impl(&mut self, is_trait: bool) {
        self.advance_raw(); // impl | trait
        if self.peek(0) == Some(&Tok::P('<')) {
            self.try_skip_generics();
        }
        // Collect idents until `{`; the type is the first path segment
        // after `for` (trait impls) or the first segment otherwise.
        let mut first: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        loop {
            match self.peek(0) {
                Some(Tok::P('{')) | Some(Tok::P(';')) | None => break,
                Some(Tok::Ident(id)) => {
                    if id == "for" {
                        saw_for = true;
                    } else if saw_for {
                        if after_for.is_none() {
                            after_for = Some(id.clone());
                        }
                    } else if first.is_none() && id != "dyn" {
                        first = Some(id.clone());
                    }
                    self.advance_raw();
                }
                Some(Tok::P('<')) => {
                    if !self.try_skip_generics() {
                        self.advance_raw();
                    }
                }
                _ => self.advance_raw(),
            }
        }
        let ty = if is_trait { first } else { after_for.or(first) };
        if self.peek(0) == Some(&Tok::P('{')) {
            self.advance_raw();
            self.scopes.push(ScopeFrame {
                kind: ScopeKind::Impl(ty),
                inner_depth: self.brace_depth,
            });
        }
    }

    /// At an ident that may start a call: gathers a `::`-separated path
    /// and, if it ends in `(…`, records the call. Returns true if it
    /// consumed tokens.
    fn parse_path_or_call(&mut self, after_dot: bool) -> bool {
        let first = match self.peek(0) {
            Some(Tok::Ident(id)) => id.clone(),
            _ => return false,
        };
        if KEYWORDS.contains(&first.as_str()) {
            if first == "fn" {
                self.parse_fn();
            } else if first == "impl" {
                self.parse_impl(false);
            } else if first == "trait" {
                self.parse_impl(true);
            } else if first == "mod" {
                self.advance_raw();
                if let Some(Tok::Ident(name)) = self.peek(0).cloned() {
                    self.advance_raw();
                    if self.peek(0) == Some(&Tok::P('{')) {
                        self.advance_raw();
                        self.scopes.push(ScopeFrame {
                            kind: ScopeKind::Module(name),
                            inner_depth: self.brace_depth,
                        });
                    }
                }
            } else if first == "use" {
                // `use …;` — skip so grouped imports aren't parsed as
                // blocks/calls.
                while let Some(t) = self.peek(0) {
                    if matches!(t, Tok::P(';')) {
                        break;
                    }
                    self.advance_raw();
                }
            } else {
                self.advance_raw();
            }
            return true;
        }
        if first == "macro_rules" {
            self.skip_macro_rules();
            return true;
        }

        // Gather the path.
        let mut segs = vec![first.clone()];
        let mut k = 1usize;
        loop {
            if self.peek(k) == Some(&Tok::PathSep) {
                match self.peek(k + 1) {
                    Some(Tok::Ident(id)) => {
                        segs.push(id.clone());
                        k += 2;
                    }
                    Some(Tok::P('<')) => {
                        // Turbofish `::<…>`: treat as end of path; the
                        // generic list is skipped below.
                        break;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let call_line = self.line(k.saturating_sub(1));
        // Advance over the path tokens.
        for _ in 0..k {
            self.advance_raw();
        }
        // Optional turbofish.
        if self.peek(0) == Some(&Tok::PathSep) && self.peek(1) == Some(&Tok::P('<')) {
            self.advance_raw();
            self.try_skip_generics();
        }

        // Macro invocation?
        if self.peek(0) == Some(&Tok::P('!')) {
            if matches!(self.peek(1), Some(Tok::P('(')) | Some(Tok::P('[')) | Some(Tok::P('{'))) {
                let ann = self.ann_at(call_line);
                self.push_event(BodyEvent::Call(CallSite {
                    callee: Callee::Macro(segs.last().cloned().unwrap_or_default()),
                    line: call_line,
                    zero_args: false,
                    args: None,
                    blocking_ok: ann.blocking_ok,
                    checked: ann.checked,
                }));
            }
            return true;
        }

        if self.peek(0) != Some(&Tok::P('(')) {
            return true;
        }
        let zero_args = self.peek(1) == Some(&Tok::P(')'));
        let args = self.call_arity(self.pos);
        let name = segs.last().cloned().unwrap_or_default();

        // Lock-acquisition sites.
        if after_dot {
            let op = match name.as_str() {
                "lock" => Some(AcqOp::Lock),
                "read" => Some(AcqOp::Read),
                "write" => Some(AcqOp::Write),
                "try_lock" => Some(AcqOp::TryLock),
                _ => None,
            };
            if let Some(op) = op {
                self.record_acquire(op, call_line);
            }
            if name == "set_rx_handler" {
                self.advance_raw(); // (
                self.pending_root = Some((RootKind::RxHandler, self.paren_depth));
                return true;
            }
        }

        // `drop(g)` of a named guard.
        if !after_dot && segs.len() == 1 && name == "drop" {
            if let (Some(Tok::Ident(g)), Some(Tok::P(')'))) = (self.peek(1), self.peek(2)) {
                let g = g.clone();
                self.push_event(BodyEvent::DropGuard { name: g, line: call_line });
            }
        }

        // Named lock classes: `Mutex::named(value, "class")`.
        if name == "named"
            && segs.len() >= 2
            && matches!(segs[segs.len() - 2].as_str(), "Mutex" | "RwLock")
        {
            self.record_named_class(call_line);
        }

        let ann = self.ann_at(call_line);
        let callee = if after_dot {
            Callee::Method(name.clone())
        } else if segs.len() > 1 {
            Callee::Path(segs.clone())
        } else {
            Callee::Bare(name.clone())
        };
        self.push_event(BodyEvent::Call(CallSite {
            callee,
            line: call_line,
            zero_args,
            args,
            blocking_ok: ann.blocking_ok,
            checked: ann.checked,
        }));

        // Root registrations: arm closure capture inside the argument
        // list. Recognized only with their module qualifier, matching
        // real call spelling (`pool::submit(…)`, `wheel::schedule(…)`).
        let root = if segs.len() >= 2 {
            let q = segs[segs.len() - 2].as_str();
            match (q, name.as_str()) {
                ("pool", "submit") | ("pool", "submit_or_run") => Some(RootKind::PoolJob),
                ("wheel", "schedule") => Some(RootKind::WheelCallback),
                _ => None,
            }
        } else {
            None
        };
        self.advance_raw(); // (
        if let Some(kind) = root {
            self.pending_root = Some((kind, self.paren_depth));
        }
        true
    }

    /// At the opening `|` of a closure. If a root registration is
    /// armed at this paren depth, the closure becomes a synthetic root
    /// node; otherwise its body simply attributes to the enclosing fn.
    fn parse_closure_start(&mut self) {
        let line = self.line(0);
        let root = match self.pending_root {
            Some((kind, pd)) if pd == self.paren_depth => {
                self.pending_root = None;
                Some(kind)
            }
            _ => None,
        };
        // Skip the parameter list `|…|`.
        self.advance_raw(); // |
        let mut guard = 0;
        while let Some(t) = self.peek(0) {
            if matches!(t, Tok::P('|')) {
                self.advance_raw();
                break;
            }
            self.advance_raw();
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        let Some(kind) = root else {
            return;
        };
        let node = self.graph.fns.len();
        self.graph.fns.push(FnNode {
            crate_name: self.crate_name.to_string(),
            module: self.module_path(),
            impl_type: self.impl_type(),
            name: "{closure}".to_string(),
            file: self.file.to_string(),
            line,
            has_self: false,
            params: None,
            root: Some(kind),
            body: Vec::new(),
        });
        if self.peek(0) == Some(&Tok::P('{')) {
            self.advance_raw();
            self.scopes.push(ScopeFrame {
                kind: ScopeKind::RootClosure { node },
                inner_depth: self.brace_depth,
            });
        } else {
            self.expr_closures.push(ExprClosure {
                node,
                paren_depth: self.paren_depth,
            });
        }
    }

    /// Counts the arguments of a call whose `(` sits at absolute token
    /// index `open`. Returns `None` when the list contains tokens that
    /// defeat comma counting in expression position — closures (`|`)
    /// or comparison/generic angles, where `a < b` and `f::<A, B>` are
    /// indistinguishable without types.
    fn call_arity(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut count = 0usize;
        let mut open_arg = false;
        let mut j = open;
        while j < self.toks.len() {
            match &self.toks[j].tok {
                Tok::P('(') | Tok::P('[') | Tok::P('{') => {
                    if depth > 0 && !open_arg {
                        count += 1;
                        open_arg = true;
                    }
                    depth += 1;
                }
                Tok::P(')') | Tok::P(']') | Tok::P('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(count);
                    }
                }
                Tok::P(',') if depth == 1 => open_arg = false,
                Tok::P('<') | Tok::P('>') | Tok::P('|') if depth == 1 => return None,
                _ => {
                    if !open_arg {
                        count += 1;
                        open_arg = true;
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// Records a `.lock()`-family acquisition. The receiver ident is
    /// the path component before the final method (`shard.state.lock()`
    /// → `state`); a bare `self.lock()` falls back to the impl type.
    fn record_acquire(&mut self, op: AcqOp, line: usize) {
        // Walk back from the current position (we sit at the method
        // name's trailing `(` …): tokens before the method ident are
        // `.`, then the receiver.
        let mut receiver = String::new();
        // position of the method ident is pos-1 relative? The caller
        // sits after consuming the path; reconstruct from the token
        // stream: find the `.` preceding the method name.
        let mut k = self.pos as isize - 2; // method ident at pos-1, '.' expected at pos-2
        if k >= 0 && matches!(self.toks[k as usize].tok, Tok::P('.')) {
            let mut j = k - 1;
            // Skip a call's `(...)` to name `f().lock()` by `f`.
            if j >= 0 && matches!(self.toks[j as usize].tok, Tok::P(')')) {
                let mut depth = 0i32;
                while j >= 0 {
                    match self.toks[j as usize].tok {
                        Tok::P(')') => depth += 1,
                        Tok::P('(') => {
                            depth -= 1;
                            if depth == 0 {
                                j -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
            }
            if j >= 0 {
                if let Tok::Ident(id) = &self.toks[j as usize].tok {
                    receiver = id.clone();
                }
            }
        } else {
            k += 1; // no dot: bare `lock(` — not a method acquisition
            let _ = k;
            return;
        }
        if receiver == "self" || receiver.is_empty() {
            receiver = self.impl_type().unwrap_or_else(|| "self".to_string());
        }
        // `let g = recv.lock();` — find the binding name: the last
        // ident before the statement's first `=`.
        let mut guard = None;
        let mut saw_let = false;
        let mut last_ident: Option<String> = None;
        for t in &self.toks[self.stmt_start..self.pos] {
            match &t.tok {
                Tok::Ident(id) if id == "let" => saw_let = true,
                Tok::Ident(id) if id == "mut" || id == "ref" => {}
                Tok::Ident(id) if saw_let && guard.is_none() => {
                    last_ident = Some(id.clone());
                }
                Tok::P('=') if saw_let && guard.is_none() => {
                    guard = last_ident.take();
                }
                _ => {}
            }
        }
        // The binding names the guard only when the statement ends at
        // the acquire call itself (`let g = x.lock();`). A chained
        // method consumes the guard as a statement temporary —
        // `let v = x.lock().get(k).cloned();` binds `v` to the clone,
        // and the lock is gone at the `;`. Mistaking `v` for a guard
        // holds the class for the rest of the body and manufactures
        // phantom lock-order edges.
        if guard.is_some() {
            let mut j = self.pos; // at the call's `(`
            let mut depth = 0i32;
            while j < self.toks.len() {
                match self.toks[j].tok {
                    Tok::P('(') => depth += 1,
                    Tok::P(')') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if self.toks.get(j).is_some_and(|t| matches!(t.tok, Tok::P('.'))) {
                guard = None;
            }
        }
        // Bindings introduced inside `if let`/`while let`/`match` live
        // one block deeper than the current depth.
        let stmt_head = self.toks[self.stmt_start..self.pos]
            .iter()
            .find_map(|t| match &t.tok {
                Tok::Ident(id) => Some(id.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let depth = if matches!(stmt_head.as_str(), "if" | "while" | "match") {
            self.brace_depth + 1
        } else {
            self.brace_depth
        };
        self.push_event(BodyEvent::Acquire {
            receiver,
            op,
            line,
            guard,
            depth,
        });
    }

    /// Records a `Mutex::named(value, "class")` site: scans forward for
    /// the last string literal inside the argument list, and backward
    /// for the binding ident (`let x =`, `field:`).
    fn record_named_class(&mut self, line: usize) {
        // Forward: self.pos is at the `(`-to-be (the path was already
        // consumed by the caller? no — caller calls us *before*
        // consuming `(`). Scan from the `(` for a balanced close.
        let mut k = 0usize;
        if self.peek(0) != Some(&Tok::P('(')) {
            return;
        }
        let mut depth = 0i32;
        let mut class: Option<String> = None;
        while let Some(t) = self.peek(k) {
            match t {
                Tok::P('(') => depth += 1,
                Tok::P(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Str(s) if depth == 1 && !s.is_empty() => {
                    class = Some(s.clone());
                }
                _ => {}
            }
            k += 1;
            if k > 4096 {
                break;
            }
        }
        let Some(class) = class else {
            return;
        };
        // Backward from the path start: `ident :` (field init) or
        // `let ident =` (binding). The path is 3 tokens (`Mutex`, `::`,
        // `named`) plus any leading qualifier; search back a few
        // tokens for `:` or `=` preceded by an ident.
        let mut binding = None;
        let mut j = self.pos as isize - 1;
        let mut steps = 0;
        while j > 0 && steps < 10 {
            match &self.toks[j as usize].tok {
                Tok::P(':') | Tok::P('=') => {
                    if let Tok::Ident(id) = &self.toks[j as usize - 1].tok {
                        if !KEYWORDS.contains(&id.as_str()) {
                            binding = Some(id.clone());
                        }
                    }
                    break;
                }
                Tok::Ident(_) | Tok::PathSep => {
                    j -= 1;
                    steps += 1;
                }
                _ => break,
            }
        }
        self.graph.classes.push(NamedClassSite {
            class,
            binding,
            impl_type: self.impl_type(),
            crate_name: self.crate_name.to_string(),
            file: self.file.to_string(),
            line,
        });
    }

    fn run(&mut self) {
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::P('#')) => self.skip_attribute(),
                // `|` only matters when a root registration is waiting
                // for its closure argument at this argument depth —
                // everywhere else it is bitwise-or / a match-arm pipe /
                // an ordinary closure whose calls attribute to the
                // enclosing fn anyway.
                Some(Tok::P('|'))
                    if matches!(self.pending_root, Some((_, pd)) if pd == self.paren_depth) =>
                {
                    self.parse_closure_start()
                }
                Some(Tok::P('.')) => {
                    // `.ident(` → method call; the path parser needs to
                    // know it came after a dot.
                    self.advance_raw();
                    if matches!(self.peek(0), Some(Tok::Ident(_))) {
                        let is_await = matches!(self.peek(0), Some(Tok::Ident(id)) if id == "await");
                        if is_await || !self.parse_method_or_field() {
                            self.advance_raw();
                        }
                    }
                }
                Some(Tok::Ident(_)) => {
                    if !self.parse_path_or_call(false) {
                        self.advance_raw();
                    }
                }
                Some(_) => self.advance_raw(),
                None => break,
            }
        }
    }

    /// After a consumed `.`: parse `ident(`, `ident::<T>(` as a method
    /// call, otherwise treat as field access.
    fn parse_method_or_field(&mut self) -> bool {
        let name = match self.peek(0) {
            Some(Tok::Ident(id)) => id.clone(),
            _ => return false,
        };
        let mut k = 1usize;
        // Turbofish.
        if self.peek(k) == Some(&Tok::PathSep) && self.peek(k + 1) == Some(&Tok::P('<')) {
            // Conservatively scan to the closing `>` then expect `(`.
            let mut depth = 0i32;
            let mut j = k + 1;
            loop {
                match self.peek(j) {
                    Some(Tok::P('<')) => depth += 1,
                    Some(Tok::P('>')) => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Some(Tok::P(';')) | None => return false,
                    _ => {}
                }
                j += 1;
            }
            k = j;
        }
        if self.peek(k) != Some(&Tok::P('(')) {
            // Field access: consume just the ident.
            self.advance_raw();
            return true;
        }
        // It's a method call; delegate to the shared path-call logic by
        // consuming here (the path is a single segment).
        let call_line = self.line(0);
        let zero_args = self.peek(k + 1) == Some(&Tok::P(')'));
        let args = self.call_arity(self.pos + k);
        // Advance over name and any turbofish up to the `(`.
        for _ in 0..k {
            self.advance_raw();
        }
        let op = match name.as_str() {
            "lock" => Some(AcqOp::Lock),
            "read" => Some(AcqOp::Read),
            "write" => Some(AcqOp::Write),
            "try_lock" => Some(AcqOp::TryLock),
            _ => None,
        };
        if let Some(op) = op {
            self.record_acquire(op, call_line);
        }
        let ann = self.ann_at(call_line);
        self.push_event(BodyEvent::Call(CallSite {
            callee: Callee::Method(name.clone()),
            line: call_line,
            zero_args,
            args,
            blocking_ok: ann.blocking_ok,
            checked: ann.checked,
        }));
        self.advance_raw(); // (
        if name == "set_rx_handler" {
            self.pending_root = Some((RootKind::RxHandler, self.paren_depth));
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Workspace walking.

/// Module path derived from a file's location under `src/`.
fn file_module(rel_in_src: &Path) -> Vec<String> {
    let mut parts: Vec<String> = rel_in_src
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
    }
    match parts.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts
}

/// Parses one source file into graph nodes.
pub fn scan_file(graph: &mut CallGraph, crate_name: &str, file: &str, module: &[String], source: &str) {
    let lexed = lex_lines(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut region = TestRegion::new();
    let mut skip = Vec::with_capacity(lexed.len());
    let code_lines: Vec<String> = lexed.iter().map(|l| l.code.clone()).collect();
    for l in &lexed {
        skip.push(region.feed(&l.code));
    }
    let comments: Vec<String> = lexed.into_iter().map(|l| l.comment).collect();
    let ann = annotations(&code_lines, &comments);
    let toks = tokenize(&code_lines, &raw_lines, &skip);
    let idents = graph.file_idents.entry(file.to_string()).or_default();
    for t in &toks {
        if let Tok::Ident(id) = &t.tok {
            idents.insert(id.clone());
        }
    }
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        brace_depth: 0,
        paren_depth: 0,
        scopes: Vec::new(),
        expr_closures: Vec::new(),
        pending_root: None,
        stmt_start: 0,
        graph,
        crate_name,
        file,
        file_module: module,
        ann: &ann,
    };
    p.run();
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Reads the workspace-internal dependencies (`plan9-foo = …`) out of
/// one crate's Cargo.toml. Line-oriented on purpose: the manifests here
/// are flat, and the check crate parses nothing it doesn't have to.
fn direct_deps(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in manifest.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("plan9-") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            // `plan9-foo.workspace = true` leaves `foo.workspace` —
            // keep only the crate segment.
            let name = name.split('.').next().unwrap_or("").replace('-', "_");
            if !name.is_empty() {
                out.insert(name);
            }
        }
    }
    out
}

/// Transitive closure of [`direct_deps`] across the workspace.
fn close_deps(direct: &BTreeMap<String, BTreeSet<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closed = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for name in direct.keys() {
            let reach: Vec<String> = closed[name]
                .iter()
                .flat_map(|d| closed.get(d).into_iter().flatten().cloned())
                .collect();
            let set = closed.get_mut(name).unwrap();
            for r in reach {
                changed |= set.insert(r);
            }
        }
    }
    closed
}

/// Builds the call graph for a workspace rooted at `root`: every
/// `crates/*/src/**/*.rs`.
pub fn build_graph(root: &Path) -> io::Result<CallGraph> {
    let mut graph = CallGraph::default();
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let manifest = fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        direct.insert(crate_name.clone(), direct_deps(&manifest));
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let in_src = f.strip_prefix(&src).unwrap_or(&f).to_path_buf();
            let module = file_module(&in_src);
            scan_file(&mut graph, &crate_name, &rel, &module, &fs::read_to_string(&f)?);
        }
    }
    graph.deps = close_deps(&direct);
    graph.index();
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        scan_file(&mut g, "demo", "demo/src/lib.rs", &[], src);
        g.index();
        g
    }

    fn find<'a>(g: &'a CallGraph, name: &str) -> &'a FnNode {
        g.fns.iter().find(|f| f.name == name).expect(name)
    }

    #[test]
    fn fn_items_and_calls_parse() {
        let g = graph_of(
            "fn a() { b(); helper::c(); }\nfn b() {}\nmod helper { pub fn c() { super::b(); } }\n",
        );
        assert_eq!(g.fns.len(), 3);
        let a = find(&g, "a");
        let calls: Vec<&str> = a.calls().map(|c| c.callee.name()).collect();
        assert_eq!(calls, vec!["b", "c"]);
        let c = find(&g, "c");
        assert_eq!(c.module, vec!["helper"]);
    }

    #[test]
    fn method_calls_and_impl_types() {
        let g = graph_of(
            "struct Q;\nimpl Q {\n    fn get(&self) { self.inner_wait(); }\n    fn inner_wait(&self) {}\n}\nfn user(q: &Q) { q.get(); }\n",
        );
        let get = find(&g, "get");
        assert_eq!(get.impl_type.as_deref(), Some("Q"));
        assert!(get.has_self);
        let user = find(&g, "user");
        let calls: Vec<_> = user.calls().collect();
        assert_eq!(calls.len(), 1);
        assert!(matches!(&calls[0].callee, Callee::Method(m) if m == "get"));
        // Resolution: the method resolves to Q::get.
        let user_idx = g.fns.iter().position(|f| f.name == "user").unwrap();
        let targets = g.resolve(user_idx, &calls[0].callee.clone());
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].name, "get");
    }

    #[test]
    fn cfg_test_regions_are_invisible() {
        let g = graph_of(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { live(); }\n}\n",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }

    #[test]
    fn pool_submit_closure_becomes_root() {
        let g = graph_of(
            "fn service(key: u64) {\n    pool::submit(key, move || {\n        drain();\n    });\n    after();\n}\nfn drain() {}\nfn after() {}\n",
        );
        let roots: Vec<_> = g.roots().collect();
        assert_eq!(roots.len(), 1);
        let (_, root) = roots[0];
        assert_eq!(root.root, Some(RootKind::PoolJob));
        let calls: Vec<&str> = root.calls().map(|c| c.callee.name()).collect();
        assert_eq!(calls, vec!["drain"]);
        // `after()` belongs to the enclosing fn, not the closure.
        let service = find(&g, "service");
        let calls: Vec<&str> = service.calls().map(|c| c.callee.name()).collect();
        assert_eq!(calls, vec!["submit", "after"]);
    }

    #[test]
    fn expression_closure_root_ends_at_paren() {
        let g = graph_of(
            "fn f(key: u64) {\n    let _ = pool::submit(key, move || drain(key));\n    tail();\n}\nfn drain(_k: u64) {}\nfn tail() {}\n",
        );
        let roots: Vec<_> = g.roots().collect();
        assert_eq!(roots.len(), 1);
        let calls: Vec<&str> = roots[0].1.calls().map(|c| c.callee.name()).collect();
        assert_eq!(calls, vec!["drain"]);
        let f = find(&g, "f");
        let calls: Vec<&str> = f.calls().map(|c| c.callee.name()).collect();
        assert_eq!(calls, vec!["submit", "tail"]);
    }

    #[test]
    fn wheel_schedule_and_rx_handler_roots() {
        let g = graph_of(
            "fn arm(at: Instant) {\n    wheel::schedule(1, at, move || fire())?;\n    station.set_rx_handler(key, move |frame| handle(frame));\n}\nfn fire() {}\nfn handle(_f: u8) {}\n",
        );
        let kinds: Vec<RootKind> = g.roots().map(|(_, f)| f.root.unwrap()).collect();
        assert_eq!(kinds, vec![RootKind::WheelCallback, RootKind::RxHandler]);
    }

    #[test]
    fn non_root_closures_attribute_to_enclosing_fn() {
        let g = graph_of(
            "fn f(v: Vec<u8>) {\n    v.iter().map(|x| g(*x)).count();\n}\nfn g(_x: u8) {}\n",
        );
        let f = find(&g, "f");
        let names: Vec<&str> = f.calls().map(|c| c.callee.name()).collect();
        assert!(names.contains(&"g"), "{names:?}");
        assert_eq!(g.roots().count(), 0);
    }

    #[test]
    fn named_class_sites_capture_binding_and_string() {
        let g = graph_of(
            "struct S { state: Mutex<u8> }\nimpl S {\n    fn new() -> S {\n        S { state: Mutex::named(0, \"demo.state\") }\n    }\n}\nfn free() {\n    let l = RwLock::named((), \"demo.free\");\n    let _ = l;\n}\n",
        );
        assert_eq!(g.classes.len(), 2);
        assert_eq!(g.classes[0].class, "demo.state");
        assert_eq!(g.classes[0].binding.as_deref(), Some("state"));
        assert_eq!(g.classes[0].impl_type.as_deref(), Some("S"));
        assert_eq!(g.classes[1].class, "demo.free");
        assert_eq!(g.classes[1].binding.as_deref(), Some("l"));
    }

    #[test]
    fn acquisitions_record_receiver_and_guard() {
        let g = graph_of(
            "fn f(s: &S) {\n    let mut st = s.state.lock();\n    work();\n    drop(st);\n}\nfn work() {}\n",
        );
        let f = find(&g, "f");
        let acquires: Vec<(&str, Option<&str>)> = f
            .body
            .iter()
            .filter_map(|e| match e {
                BodyEvent::Acquire { receiver, guard, .. } => {
                    Some((receiver.as_str(), guard.as_deref()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(acquires, vec![("state", Some("st"))]);
        assert!(f
            .body
            .iter()
            .any(|e| matches!(e, BodyEvent::DropGuard { name, .. } if name == "st")));
    }

    #[test]
    fn blocking_ok_annotation_rides_call_site() {
        let g = graph_of(
            "fn f(cv: &Condvar) {\n    cv.wait(&mut g); // blocking-ok: drains before returning\n    // blocking-ok: next-line form\n    cv.wait(&mut g);\n    cv.wait(&mut g);\n}\n",
        );
        let f = find(&g, "f");
        let anns: Vec<bool> = f.calls().map(|c| c.blocking_ok.is_some()).collect();
        assert_eq!(anns, vec![true, true, false]);
    }

    #[test]
    fn zero_arg_calls_are_marked() {
        let g = graph_of("fn f(h: H) { h.join(); p.join(\"x\"); }\n");
        let f = find(&g, "f");
        let z: Vec<bool> = f.calls().map(|c| c.zero_args).collect();
        assert_eq!(z, vec![true, false]);
    }

    #[test]
    fn path_resolution_prefers_module_suffix() {
        let mut g = CallGraph::default();
        scan_file(&mut g, "support", "support/src/pool.rs", &[&"pool".to_string()].iter().map(|s| s.to_string()).collect::<Vec<_>>(), "pub fn submit() {}\n");
        scan_file(&mut g, "inet", "inet/src/il.rs", &["il".to_string()], "fn service() { pool::submit(); plan9_support::pool::submit(); }\n");
        g.index();
        let caller = g.fns.iter().position(|f| f.name == "service").unwrap();
        for call in g.fns[caller].calls().map(|c| c.callee.clone()).collect::<Vec<_>>() {
            let t = g.resolve(caller, &call);
            assert_eq!(t.len(), 1, "{call:?}");
            assert_eq!(g.fns[t[0]].qualified(), "support::pool::submit");
        }
    }
}
