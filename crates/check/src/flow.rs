//! The flow passes: blocking-context and panic-reachability.
//!
//! Both are the same question asked of the call graph — "is any *sink*
//! call site reachable from a non-blocking *root*?" — differing only in
//! what counts as a sink and which comment annotation waives a site:
//!
//! - **blocking-context**: sinks are the blocking primitives (condvar
//!   `wait*`, channel `recv*`, `sleep`, a zero-argument `.join()`, ARP
//!   `resolve`). Roots are `pool::submit` jobs, `wheel::schedule`
//!   callbacks, and ether `set_rx_handler` frame handlers — the
//!   contexts PR 7 documents as "must be short and must not block".
//!   `// blocking-ok: <reason>` waives a call site.
//! - **panic-reach**: sinks are `panic!`-family macros and
//!   `unwrap`/`expect` methods, from the same roots. netcheck's
//!   existing `// checked: <reason>` grammar waives a site. (The
//!   `assert!` family is deliberately *not* a sink: an assertion firing
//!   means the kernel is already in an undefined state, and making
//!   every debug assertion a finding would drown the signal.)
//!
//! Reachability runs breadth-first from the sinks over reversed call
//! edges, so every flagged root carries a *shortest* witness path
//! root → … → sink, reconstructed from the BFS parent pointers. A
//! waived call site is removed from the graph before the search: the
//! annotation suppresses both the sink itself and any traversal
//! through the annotated call.

use crate::graph::{CallGraph, CallSite, Callee};
use crate::{Rule, Violation};
use std::collections::VecDeque;

/// Pass name for blocking-context findings.
pub const BLOCKING: &str = "blocking-context";
/// Pass name for panic-reachability findings.
pub const PANIC: &str = "panic-reach";

/// One function on a witness path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// `crate::module::Type::name` of the function.
    pub qualified: String,
    pub file: String,
    /// Line the function is defined at.
    pub line: usize,
    /// Line of the call to the next step (or of the sink itself, on
    /// the terminal step).
    pub call_line: usize,
}

/// One root → sink reachability finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// [`BLOCKING`] or [`PANIC`].
    pub pass: &'static str,
    /// `pool-job` / `wheel-callback` / `rx-handler`.
    pub root_kind: &'static str,
    pub root_file: String,
    pub root_line: usize,
    /// What the sink is (`condvar-wait`, `chan-recv`, `sleep`, `join`,
    /// `resolve`, `panic-macro`, `unwrap`).
    pub sink_kind: &'static str,
    pub sink_file: String,
    pub sink_line: usize,
    /// Root-first witness path; the last step contains the sink.
    pub path: Vec<PathStep>,
}

impl Finding {
    /// The witness path as `a -> b -> c` of qualified names.
    pub fn path_line(&self) -> String {
        self.path
            .iter()
            .map(|s| s.qualified.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Classifies a call site as a blocking primitive.
fn blocking_sink(c: &CallSite) -> Option<&'static str> {
    if matches!(c.callee, Callee::Macro(_)) {
        return None;
    }
    match c.callee.name() {
        "wait" | "wait_until" | "wait_for" | "wait_timeout" | "wait_while" | "park_wait"
        | "vwait" => Some("condvar-wait"),
        "recv" | "recv_timeout" | "recv_deadline" => Some("chan-recv"),
        "sleep" => Some("sleep"),
        // Zero-argument method `.join()` is a thread/kproc join;
        // `path.join("x")` and `strings.join(sep)` take arguments.
        "join" if c.zero_args && matches!(c.callee, Callee::Method(_)) => Some("join"),
        "resolve" => Some("resolve"),
        _ => None,
    }
}

/// Classifies a call site as a panic site.
fn panic_sink(c: &CallSite) -> Option<&'static str> {
    match &c.callee {
        Callee::Macro(m) => match m.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" => Some("panic-macro"),
            _ => None,
        },
        Callee::Method(m) => match m.as_str() {
            "unwrap" | "expect" | "unwrap_err" | "expect_err" => Some("unwrap"),
            _ => None,
        },
        _ => None,
    }
}

struct PassSpec {
    name: &'static str,
    sink: fn(&CallSite) -> Option<&'static str>,
    waived: fn(&CallSite) -> bool,
}

/// Runs the blocking-context pass.
pub fn blocking_findings(g: &CallGraph) -> Vec<Finding> {
    run_pass(
        g,
        &PassSpec {
            name: BLOCKING,
            sink: blocking_sink,
            waived: |c| c.blocking_ok.is_some(),
        },
    )
}

/// Runs the panic-reachability pass.
pub fn panic_findings(g: &CallGraph) -> Vec<Finding> {
    run_pass(
        g,
        &PassSpec {
            name: PANIC,
            sink: panic_sink,
            waived: |c| c.checked,
        },
    )
}

fn run_pass(g: &CallGraph, spec: &PassSpec) -> Vec<Finding> {
    let n = g.fns.len();

    // Earliest unwaived sink per node, in body (source) order.
    let mut direct: Vec<Option<(&'static str, usize)>> = vec![None; n];
    for (i, f) in g.fns.iter().enumerate() {
        for c in f.calls() {
            if (spec.waived)(c) {
                continue;
            }
            if let Some(kind) = (spec.sink)(c) {
                direct[i] = Some((kind, c.line));
                break;
            }
        }
    }

    // Reversed call edges: callee → (caller, call line). Waived call
    // sites are dropped here, severing traversal through them.
    let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (i, f) in g.fns.iter().enumerate() {
        for c in f.calls() {
            if (spec.waived)(c) || matches!(c.callee, Callee::Macro(_)) {
                continue;
            }
            for t in g.resolve_with_args(i, &c.callee, c.args) {
                rev[t].push((i, c.line));
            }
        }
    }
    for v in &mut rev {
        v.sort_unstable();
        v.dedup();
    }

    // BFS from every sink node: `next[i]` is the parent pointer toward
    // the nearest sink, so witness paths are shortest and (given the
    // deterministic scan order) stable across runs.
    let mut next: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, d) in direct.iter().enumerate() {
        if d.is_some() {
            seen[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(t) = queue.pop_front() {
        for &(caller, line) in &rev[t] {
            if !seen[caller] {
                seen[caller] = true;
                next[caller] = Some((t, line));
                queue.push_back(caller);
            }
        }
    }

    // A finding per reachable root, with the witness path.
    let mut out = Vec::new();
    for (i, f) in g.roots() {
        if !seen[i] {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = i;
        let (sink_kind, sink_file, sink_line) = loop {
            let node = &g.fns[cur];
            match next[cur] {
                Some((t, line)) => {
                    path.push(PathStep {
                        qualified: node.qualified(),
                        file: node.file.clone(),
                        line: node.line,
                        call_line: line,
                    });
                    cur = t;
                }
                None => {
                    // BFS invariant: a terminal node was seeded from
                    // `direct`, so the sink is always present.
                    let (kind, line) = direct[cur].unwrap_or(("sink", node.line));
                    path.push(PathStep {
                        qualified: node.qualified(),
                        file: node.file.clone(),
                        line: node.line,
                        call_line: line,
                    });
                    break (kind, node.file.clone(), line);
                }
            }
        };
        out.push(Finding {
            pass: spec.name,
            root_kind: f.root.map(|r| r.label()).unwrap_or("fn"),
            root_file: f.file.clone(),
            root_line: f.line,
            sink_kind,
            sink_file,
            sink_line,
            path,
        });
    }
    out
}

/// Converts flow findings into ratchet violations, keyed by the root's
/// file (the context that must not block), carrying the witness path in
/// the excerpt.
pub fn to_violations(findings: &[Finding]) -> Vec<Violation> {
    findings
        .iter()
        .map(|f| Violation {
            rule: if f.pass == BLOCKING {
                Rule::BlockingContext
            } else {
                Rule::PanicReach
            },
            file: f.root_file.clone(),
            line: f.root_line,
            excerpt: format!(
                "{} reaches {} at {}:{} via {}",
                f.root_kind,
                f.sink_kind,
                f.sink_file,
                f.sink_line,
                f.path_line()
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{scan_file, CallGraph};

    fn graph_of(src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        scan_file(&mut g, "demo", "demo/src/lib.rs", &[], src);
        g.index();
        g
    }

    #[test]
    fn pool_job_reaching_condvar_wait_two_deep() {
        let g = graph_of(
            "fn service(key: u64, cv: &Condvar) {\n    pool::submit(key, move || step1(cv));\n}\n\
             fn step1(cv: &Condvar) { step2(cv); }\n\
             fn step2(cv: &Condvar) { cv.wait(&mut g); }\n",
        );
        let f = blocking_findings(&g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].sink_kind, "condvar-wait");
        assert_eq!(f[0].root_kind, "pool-job");
        let names: Vec<&str> = f[0].path.iter().map(|s| s.qualified.as_str()).collect();
        assert_eq!(names, vec!["demo::{closure}", "demo::step1", "demo::step2"]);
    }

    #[test]
    fn blocking_ok_severs_the_path() {
        let g = graph_of(
            "fn service(key: u64, cv: &Condvar) {\n    pool::submit(key, move || step1(cv));\n}\n\
             fn step1(cv: &Condvar) {\n    step2(cv); // blocking-ok: bounded 1ms drain, measured\n}\n\
             fn step2(cv: &Condvar) { cv.wait(&mut g); }\n",
        );
        assert!(blocking_findings(&g).is_empty());
    }

    #[test]
    fn sink_outside_a_root_is_not_a_finding() {
        let g = graph_of("fn plain(cv: &Condvar) { cv.wait(&mut g); }\n");
        assert!(blocking_findings(&g).is_empty());
    }

    #[test]
    fn panic_two_calls_deep_from_wheel_callback() {
        let g = graph_of(
            "fn arm(at: Instant) {\n    wheel::schedule(1, at, move || fire());\n}\n\
             fn fire() { decode(None); }\n\
             fn decode(v: Option<u8>) { v.expect(\"always set\"); }\n",
        );
        let f = panic_findings(&g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].sink_kind, "unwrap");
        assert_eq!(f[0].root_kind, "wheel-callback");
        assert_eq!(f[0].path.len(), 3);
    }

    #[test]
    fn checked_annotation_waives_panic_sink() {
        let g = graph_of(
            "fn arm(at: Instant) {\n    wheel::schedule(1, at, move || fire());\n}\n\
             fn fire(v: Option<u8>) {\n    v.unwrap(); // checked: set by the scheduler before arming\n}\n",
        );
        assert!(panic_findings(&g).is_empty());
        // A panic macro is still caught without the annotation.
        let g = graph_of(
            "fn arm(at: Instant) {\n    wheel::schedule(1, at, move || fire());\n}\n\
             fn fire() { panic!(\"boom\"); }\n",
        );
        let f = panic_findings(&g);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].sink_kind, "panic-macro");
    }

    #[test]
    fn join_requires_zero_args() {
        let g = graph_of(
            "fn service(key: u64) {\n    pool::submit(key, move || tidy());\n}\n\
             fn tidy(p: &Path, parts: &[String]) {\n    p.join(\"x\");\n    parts.join(\", \");\n}\n",
        );
        assert!(blocking_findings(&g).is_empty());
        let g = graph_of(
            "fn service(key: u64, h: KprocHandle) {\n    pool::submit(key, move || h.join());\n}\n",
        );
        let f = blocking_findings(&g);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].sink_kind, "join");
    }

    #[test]
    fn violations_carry_the_witness_path() {
        let g = graph_of(
            "fn service(key: u64) {\n    pool::submit(key, move || nap());\n}\n\
             fn nap() { time::sleep(ms(10)); }\n",
        );
        let v = to_violations(&blocking_findings(&g));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BlockingContext);
        assert!(v[0].excerpt.contains("sleep"), "{}", v[0].excerpt);
        assert!(v[0].excerpt.contains("demo::nap"), "{}", v[0].excerpt);
    }
}
