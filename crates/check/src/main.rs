//! `plan9-check`: run the netcheck lint pass — and, with `--flow`, the
//! checkflow interprocedural passes — against a workspace and gate on
//! the baseline ratchet.
//!
//! ```text
//! plan9-check [--root DIR] [--baseline FILE] [--list] [--update-baseline]
//!             [--flow] [--report FILE] [--observed FILE] [--budget-ms N]
//! ```
//!
//! `--flow` builds the whole-workspace call graph and adds three rule
//! classes on top of the line lints: `blocking-context` (no blocking
//! primitive reachable from a pool/wheel/rx root), `panic-reach` (no
//! panic reachable from those roots), and `lock-cycle` (the static
//! acquired-while-held graph is acyclic). It writes
//! `REPORT_checkflow.json` (graph stats, witness paths, lock-order
//! cross-check against `scripts/lockgraph-observed.txt`) and enforces
//! its own wall budget: verify.sh runs this before every build, so a
//! slow analysis is itself a regression.
//!
//! Exit status: 0 when no rule has more violations than the baseline
//! tolerates (and, under `--flow`, the budget holds), 1 on regression,
//! 2 on usage or I/O errors.

use plan9_check::{
    compare, flow, format_baseline, graph, lockgraph, parse_baseline, report, scan_workspace,
    tally,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut observed_path: Option<PathBuf> = None;
    let mut list = false;
    let mut update = false;
    let mut flow_mode = false;
    let mut budget_ms: u128 = 10_000;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a file"),
            },
            "--observed" => match args.next() {
                Some(v) => observed_path = Some(PathBuf::from(v)),
                None => return usage("--observed needs a file"),
            },
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => budget_ms = v,
                None => return usage("--budget-ms needs a number"),
            },
            "--list" => list = true,
            "--update-baseline" => update = true,
            "--flow" => flow_mode = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("scripts/check-baseline.txt"));
    // checked: lint wall budget; the host clock is the measurand here
    let started = std::time::Instant::now();

    let mut violations = match scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("plan9-check: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut flow_summary = String::new();
    if flow_mode {
        let g = match graph::build_graph(&root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("plan9-check: building call graph under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let blocking = flow::blocking_findings(&g);
        let panics = flow::panic_findings(&g);
        let observed_path =
            observed_path.unwrap_or_else(|| root.join("scripts/lockgraph-observed.txt"));
        let observed = std::fs::read_to_string(&observed_path).ok();
        let locks = lockgraph::analyze(&g, observed.as_deref());

        violations.extend(flow::to_violations(&blocking));
        violations.extend(flow::to_violations(&panics));
        violations.extend(lockgraph::to_violations(&locks));

        let wall_ms = started.elapsed().as_millis();
        let text = report::render(&g, &blocking, &panics, &locks, wall_ms);
        let report_path = report_path.unwrap_or_else(|| root.join("REPORT_checkflow.json"));
        if let Err(e) = std::fs::write(&report_path, text) {
            eprintln!("plan9-check: writing {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
        flow_summary = format!(
            "plan9-check: flow: {} fns, {} call sites ({} resolved), {} roots; \
             blocking {} / panic-reach {} / lock edges {} ({} untested, {} dynamic-only, \
             {} cycles, {} dead classes){}",
            g.fns.len(),
            g.call_sites(),
            g.resolved_calls,
            g.roots().count(),
            blocking.len(),
            panics.len(),
            locks.edges.len(),
            locks.untested().count(),
            locks.dynamic_only.len(),
            locks.cycles.len(),
            locks.dead_classes.len(),
            if locks.cross_checked {
                ""
            } else {
                " [no runtime dump: lock edges unconfirmed]"
            },
        );
    }

    let current = tally(&violations);

    if list {
        for v in &violations {
            println!("{v}");
        }
    }

    if update {
        if let Err(e) = std::fs::write(&baseline_path, format_baseline(&current)) {
            eprintln!("plan9-check: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "plan9-check: baseline updated: {} violations across {} (rule, file) entries",
            current.values().sum::<usize>(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("plan9-check: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let cmp = compare(&current, &baseline);
    if !cmp.ok() {
        eprintln!("plan9-check: NEW violations beyond the baseline:");
        for (rule, file, base, now) in &cmp.regressions {
            eprintln!("  {rule} in {file}: {now} (baseline {base})");
            for v in violations.iter().filter(|v| v.rule.code() == rule && &v.file == file) {
                eprintln!("    {v}");
            }
        }
        eprintln!(
            "plan9-check: FAIL: fix the new violations (or, for a justified \
             infallible call, annotate it `// checked: <reason>`; for a \
             bounded wait in a non-blocking context, `// blocking-ok: <reason>`)"
        );
        return ExitCode::from(1);
    }

    for (rule, file, base, now) in &cmp.improvements {
        println!("plan9-check: burn-down: {rule} in {file}: {base} -> {now}");
    }
    if !cmp.improvements.is_empty() {
        println!(
            "plan9-check: baseline is stale high; ratchet it down with \
             `cargo run -p plan9-check -- --update-baseline`"
        );
    }
    if !flow_summary.is_empty() {
        println!("{flow_summary}");
    }
    let wall_ms = started.elapsed().as_millis();
    if flow_mode && wall_ms > budget_ms {
        eprintln!(
            "plan9-check: FAIL: {wall_ms}ms exceeds the --budget-ms {budget_ms} wall budget"
        );
        return ExitCode::from(1);
    }
    println!(
        "plan9-check: OK: {} violations (baseline {}) across {} in {wall_ms}ms",
        cmp.total_current,
        cmp.total_baseline,
        if flow_mode {
            "panic-path/raw-sync/wall-clock/mono-clock/registry-dep/blocking-context/panic-reach/lock-cycle"
        } else {
            "panic-path/raw-sync/wall-clock/mono-clock/registry-dep"
        }
    );
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "plan9-check: {err}\nusage: plan9-check [--root DIR] [--baseline FILE] [--list] \
         [--update-baseline] [--flow] [--report FILE] [--observed FILE] [--budget-ms N]"
    );
    ExitCode::from(2)
}
