//! `plan9-check`: run the netcheck lint pass against a workspace and
//! gate on the baseline ratchet.
//!
//! ```text
//! plan9-check [--root DIR] [--baseline FILE] [--list] [--update-baseline]
//! ```
//!
//! Exit status: 0 when no rule has more violations than the baseline
//! tolerates, 1 on regression (diagnostics printed per offending
//! `file:line`), 2 on usage or I/O errors.

use plan9_check::{compare, format_baseline, parse_baseline, scan_workspace, tally};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut list = false;
    let mut update = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file"),
            },
            "--list" => list = true,
            "--update-baseline" => update = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("scripts/check-baseline.txt"));

    let violations = match scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("plan9-check: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let current = tally(&violations);

    if list {
        for v in &violations {
            println!("{v}");
        }
    }

    if update {
        if let Err(e) = std::fs::write(&baseline_path, format_baseline(&current)) {
            eprintln!("plan9-check: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "plan9-check: baseline updated: {} violations across {} (rule, file) entries",
            current.values().sum::<usize>(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("plan9-check: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let cmp = compare(&current, &baseline);
    if !cmp.ok() {
        eprintln!("plan9-check: NEW violations beyond the baseline:");
        for (rule, file, base, now) in &cmp.regressions {
            eprintln!("  {rule} in {file}: {now} (baseline {base})");
            for v in violations.iter().filter(|v| v.rule.code() == rule && &v.file == file) {
                eprintln!("    {v}");
            }
        }
        eprintln!(
            "plan9-check: FAIL: fix the new violations (or, for a justified \
             infallible call, annotate it `// checked: <reason>`)"
        );
        return ExitCode::from(1);
    }

    for (rule, file, base, now) in &cmp.improvements {
        println!("plan9-check: burn-down: {rule} in {file}: {base} -> {now}");
    }
    if !cmp.improvements.is_empty() {
        println!(
            "plan9-check: baseline is stale high; ratchet it down with \
             `cargo run -p plan9-check -- --update-baseline`"
        );
    }
    println!(
        "plan9-check: OK: {} violations (baseline {}) across panic-path/raw-sync/wall-clock/mono-clock/registry-dep",
        cmp.total_current, cmp.total_baseline
    );
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "plan9-check: {err}\nusage: plan9-check [--root DIR] [--baseline FILE] [--list] [--update-baseline]"
    );
    ExitCode::from(2)
}
