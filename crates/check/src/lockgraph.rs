//! Static lock-order analysis: the acquired-while-held graph, rebuilt
//! from source, cross-checked against the runtime lockdep dump.
//!
//! Runtime lockdep (PR 5) learns the order graph from whatever the
//! tests happen to execute; this pass derives it from the program text,
//! so an ordering that no test exercises is still visible. The two
//! views check each other:
//!
//! - a **static edge** also present in the runtime dump is *confirmed*;
//! - a static edge absent from the dump is *untested* — legal, but
//!   listed in `REPORT_checkflow.json` so a reviewer sees which
//!   orderings ride on inspection alone;
//! - a runtime edge the static pass missed is *dynamic-only* — a
//!   resolution gap worth knowing about, not an error;
//! - a class named in source but absent from the dump is *dead*: either
//!   the lock is never taken or no test reaches it;
//! - a **cycle** in the static graph is an error before any test runs.
//!
//! Receivers resolve to lock classes by name: `Mutex::named(v, "c")`
//! construction sites associate the binding ident (or enclosing impl
//! type) with class `c`, and `x.state.lock()` looks `state` up with
//! same-file, then same-crate preference — two crates may both bind a
//! lock to a field called `state` (pool and wheel both do) without
//! cross-contaminating each other's edges. A receiver still ambiguous
//! after narrowing contributes nothing (counted in the report): taking
//! the cross-product of candidate classes manufactures cycles between
//! unrelated locks. Held-set tracking replays each function's body
//! events: named guards die at `drop(g)` or when their block closes,
//! statement temporaries at the `;`. Calls made while holding a lock
//! contribute the callee's *transitive* acquire set, computed as a
//! fixpoint over the call graph — with method calls propagated only to
//! a unique same-file target and bare calls to a unique same-module
//! target, because name fan-out invents orderings that do not exist.
//! Orderings lost to that strictness surface as `dynamic_only` in the
//! runtime cross-check rather than vanishing.

use crate::graph::{AcqOp, BodyEvent, CallGraph, Callee};
use crate::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// One `A held while acquiring B` edge derived from source.
#[derive(Debug, Clone)]
pub struct StaticEdge {
    pub from: String,
    pub to: String,
    /// First witness site: where B is acquired (or the call that
    /// transitively acquires it).
    pub file: String,
    pub line: usize,
    /// Qualified name of the function the witness sits in.
    pub via: String,
    /// Present in the runtime-observed graph.
    pub confirmed: bool,
}

/// The lock-order analysis result.
#[derive(Debug, Default)]
pub struct LockReport {
    /// All static edges, sorted by (from, to), first witness each.
    pub edges: Vec<StaticEdge>,
    /// Cycles in the static graph: each is the class list of one
    /// strongly-connected component (or a self-loop).
    pub cycles: Vec<Vec<String>>,
    /// Runtime-observed edges the static pass did not derive.
    pub dynamic_only: Vec<(String, String)>,
    /// Classes named in source but absent from the runtime dump.
    pub dead_classes: Vec<String>,
    /// Distinct class names found in source.
    pub static_classes: usize,
    /// Acquire sites skipped because the receiver still mapped to more
    /// than one class after narrowing.
    pub ambiguous: usize,
    /// Distinct class names in the runtime dump.
    pub observed_classes: usize,
    /// Whether a runtime dump was available to cross-check against.
    pub cross_checked: bool,
}

impl LockReport {
    pub fn untested(&self) -> impl Iterator<Item = &StaticEdge> {
        self.edges.iter().filter(|e| !e.confirmed)
    }
}

/// Maps a receiver ident (or impl-type fallback) to candidate class
/// names, preferring same-file, then same-crate association sites.
struct ClassResolver<'a> {
    /// binding ident → (file, crate, class)
    by_binding: BTreeMap<&'a str, Vec<(&'a str, &'a str, &'a str)>>,
    /// impl type → (file, crate, class)
    by_type: BTreeMap<&'a str, Vec<(&'a str, &'a str, &'a str)>>,
}

impl<'a> ClassResolver<'a> {
    fn new(g: &'a CallGraph) -> ClassResolver<'a> {
        let mut by_binding: BTreeMap<&str, Vec<(&str, &str, &str)>> = BTreeMap::new();
        let mut by_type: BTreeMap<&str, Vec<(&str, &str, &str)>> = BTreeMap::new();
        for c in &g.classes {
            if let Some(b) = &c.binding {
                by_binding.entry(b.as_str()).or_default().push((
                    c.file.as_str(),
                    c.crate_name.as_str(),
                    c.class.as_str(),
                ));
            }
            if let Some(t) = &c.impl_type {
                by_type.entry(t.as_str()).or_default().push((
                    c.file.as_str(),
                    c.crate_name.as_str(),
                    c.class.as_str(),
                ));
            }
        }
        ClassResolver { by_binding, by_type }
    }

    /// The class `receiver` denotes from `file` in `crate_name`, or
    /// `None`. A receiver that still maps to several classes after the
    /// same-file/same-crate narrowing is *ambiguous*: it contributes no
    /// edges and no held entry (`ambiguous` is bumped so the report
    /// shows how much was skipped). Taking the cross-product instead
    /// manufactures cycles out of unrelated locks that merely share a
    /// binding name — two `rx` fields in different structs must not
    /// become an ordering between their classes.
    fn class(&self, receiver: &str, file: &str, crate_name: &str, ambiguous: &mut usize) -> Option<String> {
        for map in [&self.by_binding, &self.by_type] {
            let Some(cands) = map.get(receiver) else {
                continue;
            };
            let same_file: BTreeSet<&str> = cands
                .iter()
                .filter(|(f, _, _)| *f == file)
                .map(|(_, _, c)| *c)
                .collect();
            let same_crate: BTreeSet<&str> = cands
                .iter()
                .filter(|(_, cr, _)| *cr == crate_name)
                .map(|(_, _, c)| *c)
                .collect();
            let all: BTreeSet<&str> = cands.iter().map(|(_, _, c)| *c).collect();
            let narrowed = if !same_file.is_empty() {
                same_file
            } else if !same_crate.is_empty() {
                same_crate
            } else {
                all
            };
            if narrowed.len() == 1 {
                return narrowed.into_iter().next().map(String::from);
            }
            *ambiguous += 1;
            return None;
        }
        None
    }
}

/// Call resolution for lock propagation. Much stricter than the flow
/// passes: a spurious edge here doesn't just lengthen a witness path,
/// it can close a spurious cycle and fail the build. Method calls
/// propagate only when exactly one same-file candidate exists (keeps
/// `self.transmit()`-style intra-type chains); bare calls only with
/// exactly one same-module candidate; fully-qualified path calls
/// (`pool::submit`, `Queue::get`) keep the normal resolution. Edges
/// lost to this strictness show up as `dynamic_only` in the
/// cross-check — reported, not silent.
fn lock_resolve(g: &CallGraph, caller: usize, callee: &Callee, args: Option<usize>) -> Vec<usize> {
    let targets = g.resolve_with_args(caller, callee, args);
    match callee {
        Callee::Method(_) => {
            let me = &g.fns[caller];
            let same_file: Vec<usize> = targets
                .into_iter()
                .filter(|&t| g.fns[t].file == me.file)
                .collect();
            if same_file.len() == 1 { same_file } else { Vec::new() }
        }
        Callee::Bare(_) => {
            let me = &g.fns[caller];
            let same_module: Vec<usize> = targets
                .into_iter()
                .filter(|&t| {
                    g.fns[t].crate_name == me.crate_name && g.fns[t].module == me.module
                })
                .collect();
            if same_module.len() == 1 { same_module } else { Vec::new() }
        }
        _ => targets,
    }
}

/// A lock held at some point during body replay.
struct Held {
    classes: Vec<String>,
    guard: Option<String>,
    depth: usize,
}

/// Parses the runtime dump (`/net/log/lockgraph` format):
/// `class <name> acquires=<n>` and `edge <from> -> <to> thread=<t>`.
fn parse_observed(text: &str) -> (BTreeSet<String>, BTreeSet<(String, String)>) {
    let mut classes = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("class") => {
                if let Some(name) = parts.next() {
                    classes.insert(name.to_string());
                }
            }
            Some("edge") => {
                let toks: Vec<&str> = parts.collect();
                // `<from> -> <to> thread=<t>`
                if let Some(arrow) = toks.iter().position(|t| *t == "->") {
                    if arrow >= 1 && arrow + 1 < toks.len() {
                        edges.insert((toks[arrow - 1].to_string(), toks[arrow + 1].to_string()));
                    }
                }
            }
            _ => {}
        }
    }
    (classes, edges)
}

/// Runs the static lock-order pass. `observed` is the runtime lockdep
/// dump text, when available.
pub fn analyze(g: &CallGraph, observed: Option<&str>) -> LockReport {
    let resolver = ClassResolver::new(g);
    let n = g.fns.len();
    let mut ambiguous = 0usize;

    // Transitive acquire sets: classes a call to fn `i` may take,
    // directly or through callees, as a fixpoint.
    let mut acq: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (i, f) in g.fns.iter().enumerate() {
        for ev in &f.body {
            if let BodyEvent::Acquire { receiver, op, .. } = ev {
                if *op == AcqOp::TryLock {
                    continue; // edge-free, matching runtime lockdep
                }
                if let Some(c) = resolver.class(receiver, &f.file, &f.crate_name, &mut ambiguous) {
                    acq[i].insert(c);
                }
            }
        }
    }
    // Pre-resolve lock-relevant call targets once.
    let callee_targets: Vec<Vec<Vec<usize>>> = g
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            f.calls()
                .map(|c| {
                    if matches!(c.callee, Callee::Macro(_)) {
                        Vec::new()
                    } else {
                        lock_resolve(g, i, &c.callee, c.args)
                    }
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut add: Vec<String> = Vec::new();
            for targets in &callee_targets[i] {
                for &t in targets {
                    if t == i {
                        continue;
                    }
                    for c in &acq[t] {
                        if !acq[i].contains(c) {
                            add.push(c.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                acq[i].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Replay each body, collecting held-while-acquiring edges.
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        let mut held: Vec<Held> = Vec::new();
        let mut call_idx = 0usize;
        let mut record = |held: &[Held], to: &BTreeSet<String>, line: usize| {
            for h in held {
                for hc in &h.classes {
                    for tc in to {
                        if hc != tc {
                            edges
                                .entry((hc.clone(), tc.clone()))
                                .or_insert_with(|| (f.file.clone(), line, f.qualified()));
                        }
                    }
                }
            }
        };
        for ev in &f.body {
            match ev {
                BodyEvent::Acquire { receiver, op, line, guard, depth } => {
                    // Ambiguity was already tallied in the seeding pass.
                    let mut scratch = 0usize;
                    let class = resolver.class(receiver, &f.file, &f.crate_name, &mut scratch);
                    if let Some(class) = class {
                        if *op != AcqOp::TryLock {
                            let to: BTreeSet<String> = [class.clone()].into_iter().collect();
                            record(&held, &to, *line);
                        }
                        held.push(Held {
                            classes: vec![class],
                            guard: guard.clone(),
                            depth: *depth,
                        });
                    }
                }
                BodyEvent::DropGuard { name, .. } => {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.guard.as_deref() == Some(name.as_str()))
                    {
                        held.remove(pos);
                    }
                }
                BodyEvent::CloseBlock { depth } => {
                    held.retain(|h| h.depth <= *depth);
                }
                BodyEvent::EndStmt => {
                    held.retain(|h| h.guard.is_some());
                }
                BodyEvent::Call(c) => {
                    let targets = &callee_targets[i][call_idx];
                    call_idx += 1;
                    if held.is_empty() {
                        continue;
                    }
                    let mut to: BTreeSet<String> = BTreeSet::new();
                    for &t in targets {
                        if t != i {
                            to.extend(acq[t].iter().cloned());
                        }
                    }
                    if !to.is_empty() {
                        record(&held, &to, c.line);
                    }
                }
            }
        }
    }

    // Cross-check against the runtime dump.
    let (obs_classes, obs_edges) = match observed {
        Some(text) => parse_observed(text),
        None => (BTreeSet::new(), BTreeSet::new()),
    };
    let cross_checked = observed.is_some();

    let static_edges: Vec<StaticEdge> = edges
        .into_iter()
        .map(|((from, to), (file, line, via))| {
            let confirmed = obs_edges.contains(&(from.clone(), to.clone()));
            StaticEdge { from, to, file, line, via, confirmed }
        })
        .collect();

    let static_pairs: BTreeSet<(String, String)> = static_edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let dynamic_only: Vec<(String, String)> = obs_edges
        .iter()
        .filter(|p| !static_pairs.contains(*p))
        .cloned()
        .collect();

    let source_classes: BTreeSet<&str> = g.classes.iter().map(|c| c.class.as_str()).collect();
    let dead_classes: Vec<String> = if cross_checked {
        source_classes
            .iter()
            .filter(|c| !obs_classes.contains(**c))
            .map(|c| c.to_string())
            .collect()
    } else {
        Vec::new()
    };

    let cycles = find_cycles(&static_edges);

    LockReport {
        edges: static_edges,
        cycles,
        dynamic_only,
        dead_classes,
        static_classes: source_classes.len(),
        ambiguous,
        observed_classes: obs_classes.len(),
        cross_checked,
    }
}

/// Tarjan SCC over the class graph; any component with more than one
/// class — or a self-loop — is a cycle.
fn find_cycles(edges: &[StaticEdge]) -> Vec<Vec<String>> {
    fn id<'a>(ids: &mut BTreeMap<&'a str, usize>, names: &mut Vec<&'a str>, n: &'a str) -> usize {
        if let Some(&i) = ids.get(n) {
            return i;
        }
        names.push(n);
        ids.insert(n, names.len() - 1);
        names.len() - 1
    }
    let mut ids: BTreeMap<&str, usize> = BTreeMap::new();
    let mut names: Vec<&str> = Vec::new();
    let mut adj: Vec<Vec<usize>> = Vec::new();
    for e in edges {
        let a = id(&mut ids, &mut names, e.from.as_str());
        let b = id(&mut ids, &mut names, e.to.as_str());
        adj.resize(names.len(), Vec::new());
        adj[a].push(b);
    }
    adj.resize(names.len(), Vec::new());

    // Iterative Tarjan.
    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next-child position)
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, ci)) = work.last() {
            if ci == 0 && index[v] == usize::MAX {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ci) {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = comp.len() == 1 && adj[ids[comp[0].as_str()]].contains(&ids[comp[0].as_str()]);
                    if comp.len() > 1 || self_loop {
                        comp.sort();
                        out.push(comp);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Converts cycles into ratchet violations; each names the classes and
/// anchors at a member edge's first witness site.
pub fn to_violations(report: &LockReport) -> Vec<Violation> {
    report
        .cycles
        .iter()
        .map(|cycle| {
            let member = report
                .edges
                .iter()
                .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
            let (file, line) = member
                .map(|e| (e.file.clone(), e.line))
                .unwrap_or_else(|| ("<unknown>".to_string(), 0));
            Violation {
                rule: Rule::LockCycle,
                file,
                line,
                excerpt: format!("lock-order cycle: {}", cycle.join(" <-> ")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::scan_file;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (file, src) in files {
            g_scan(&mut g, file, src);
        }
        g.index();
        g
    }

    fn g_scan(g: &mut CallGraph, file: &str, src: &str) {
        let crate_name = file.split('/').next().unwrap_or("demo");
        let module: Vec<String> = Vec::new();
        scan_file(g, crate_name, file, &module, src);
    }

    const TWO_LOCKS: &str = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
        impl S {\n\
        fn ab(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n    drop(gb);\n    drop(ga);\n}\n\
        }\n\
        fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n";

    #[test]
    fn held_while_acquiring_yields_edge() {
        let g = graph_of(&[("demo/src/lib.rs", TWO_LOCKS)]);
        let r = analyze(&g, None);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "demo.a");
        assert_eq!(r.edges[0].to, "demo.b");
        assert!(r.cycles.is_empty());
        assert!(!r.edges[0].confirmed);
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl S {\n\
            fn ab(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n}\n\
            fn ba(&self) {\n    let gb = self.b.lock();\n    let ga = self.a.lock();\n}\n\
            }\n\
            fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n";
        let g = graph_of(&[("demo/src/lib.rs", src)]);
        let r = analyze(&g, None);
        assert_eq!(r.cycles, vec![vec!["demo.a".to_string(), "demo.b".to_string()]]);
        let v = to_violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::LockCycle);
        assert!(v[0].excerpt.contains("demo.a"), "{}", v[0].excerpt);
    }

    #[test]
    fn interprocedural_edge_through_a_call() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl S {\n\
            fn outer(&self) {\n    let ga = self.a.lock();\n    self.inner();\n}\n\
            fn inner(&self) {\n    let gb = self.b.lock();\n}\n\
            }\n\
            fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n";
        let g = graph_of(&[("demo/src/lib.rs", src)]);
        let r = analyze(&g, None);
        assert!(
            r.edges.iter().any(|e| e.from == "demo.a" && e.to == "demo.b"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn drop_releases_before_next_acquire() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl S {\n\
            fn seq(&self) {\n    let ga = self.a.lock();\n    drop(ga);\n    let gb = self.b.lock();\n}\n\
            }\n\
            fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n";
        let g = graph_of(&[("demo/src/lib.rs", src)]);
        let r = analyze(&g, None);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn same_binding_name_prefers_same_file() {
        // Two crates both call their lock field `state`; each crate's
        // acquisitions must map to its own class.
        let pool = "struct Shard { state: Mutex<u8> }\n\
            impl Shard {\n    fn work(&self) { let st = self.state.lock(); }\n}\n\
            fn mk() -> Shard { Shard { state: Mutex::named(0, \"support.pool.shard\") } }\n";
        let wheel = "struct Wheel { state: Mutex<u8>, aux: Mutex<u8> }\n\
            impl Wheel {\n    fn arm(&self) {\n        let st = self.state.lock();\n        let ax = self.aux.lock();\n    }\n}\n\
            fn mk() -> Wheel { Wheel { state: Mutex::named(0, \"support.wheel\"), aux: Mutex::named(0, \"support.wheel.aux\") } }\n";
        let g = graph_of(&[("support/src/pool.rs", pool), ("support/src/wheel.rs", wheel)]);
        let r = analyze(&g, None);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "support.wheel");
        assert_eq!(r.edges[0].to, "support.wheel.aux");
    }

    #[test]
    fn try_lock_is_edge_free() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl S {\n\
            fn t(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.try_lock();\n}\n\
            }\n\
            fn mk() -> S { S { a: Mutex::named(0, \"demo.a\"), b: Mutex::named(0, \"demo.b\") } }\n";
        let g = graph_of(&[("demo/src/lib.rs", src)]);
        let r = analyze(&g, None);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn cross_check_confirms_and_finds_dead() {
        let g = graph_of(&[("demo/src/lib.rs", TWO_LOCKS)]);
        let observed = "# lockdep graph\nclass demo.a acquires=12\nclass demo.b acquires=12\n\
                        class demo.other acquires=3\nedge demo.a -> demo.b thread=t0\n\
                        edge demo.other -> demo.a thread=t1\n";
        let r = analyze(&g, Some(observed));
        assert!(r.cross_checked);
        assert!(r.edges[0].confirmed);
        assert_eq!(r.untested().count(), 0);
        assert_eq!(
            r.dynamic_only,
            vec![("demo.other".to_string(), "demo.a".to_string())]
        );
        // demo.a and demo.b are observed; nothing in source is dead.
        assert!(r.dead_classes.is_empty(), "{:?}", r.dead_classes);
        // Drop demo.b from the dump: it becomes a dead class.
        let r = analyze(&g, Some("class demo.a acquires=1\n"));
        assert_eq!(r.dead_classes, vec!["demo.b".to_string()]);
    }
}
