//! Queues: the buffering half of a processing-module instance.
//!
//! "An instance of a processing module is represented by a pair of
//! queues, one for each direction. The queues point to the put procedures
//! and can be used to queue information traveling along the stream."
//!
//! A queue is a bounded FIFO of [`Block`]s. The bound is in bytes and
//! provides the stream's flow control: `put` blocks when the queue is
//! full, which exerts backpressure on the writer — the same role queue
//! limits play in the Plan 9 kernel.

use crate::block::{Block, BlockKind};
use plan9_netlog::Counter;
use plan9_support::copysite::Site;
use plan9_support::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Bytes entering stream queues. Not a memcpy itself, but every block
/// queued here was allocated to cross the queue — the figure the
/// zero-copy work wants alongside the true copy sites.
static QPUT_SITE: Site = Site::new("streams.qput");

/// Default queue limit in bytes, matching the generosity of kernel
/// stream queues.
pub const DEFAULT_LIMIT: usize = 128 * 1024;

/// A writable-readiness service: instead of parking a thread in
/// [`Queue::put`], a producer registers a closure that the queue
/// enqueues on the worker-pool shard for its conversation key whenever
/// a dequeue crosses the queue back below its limit.
struct WritableService {
    key: u64,
    f: Arc<dyn Fn() + Send + Sync>,
}

struct QueueInner {
    blocks: VecDeque<Block>,
    bytes: usize,
    closed: bool,
    hungup: bool,
    service: Option<WritableService>,
}

/// A bounded, blocking FIFO of blocks.
pub struct Queue {
    inner: Mutex<QueueInner>,
    readable: Condvar,
    writable: Condvar,
    limit: usize,
    /// Blocks ever queued through `put`.
    puts: Counter,
    /// Times a `put` had to wait on flow control.
    stalls: Counter,
    /// Times a flow-controlled putter was woken to re-check the limit.
    writer_wakes: Counter,
}

impl Default for Queue {
    fn default() -> Self {
        Queue::new(DEFAULT_LIMIT)
    }
}

impl Queue {
    /// Creates a queue bounded at `limit` bytes of buffered data.
    pub fn new(limit: usize) -> Queue {
        Queue {
            inner: Mutex::named(QueueInner {
                blocks: VecDeque::new(),
                bytes: 0,
                closed: false,
                hungup: false,
                service: None,
            }, "streams.queue"),
            readable: Condvar::new(),
            writable: Condvar::new(),
            limit,
            puts: Counter::new("queue.puts"),
            stalls: Counter::new("queue.stalls"),
            writer_wakes: Counter::new("queue.writer_wakes"),
        }
    }

    /// Blocks ever queued through [`Queue::put`].
    pub fn put_count(&self) -> u64 {
        self.puts.get()
    }

    /// Times a putter had to wait on flow control.
    pub fn stall_count(&self) -> u64 {
        self.stalls.get()
    }

    /// Times a flow-controlled putter was woken to re-check the limit.
    /// A dequeue that admits one writer should cost about one wake; a
    /// thundering herd shows up here as wakes ≫ admissions.
    pub fn writer_wake_count(&self) -> u64 {
        self.writer_wakes.get()
    }

    /// Appends a block, waiting while the queue is over its limit.
    ///
    /// Control and hangup blocks are never blocked by flow control ("the
    /// time to parse control blocks is not important, since control
    /// operations are rare" — but they must not deadlock behind data).
    pub fn put(&self, mut b: Block) -> crate::Result<()> {
        if let Some(t) = b.trace.as_mut() {
            t.note_enqueued();
        }
        let is_data = b.kind == BlockKind::Data;
        let mut inner = self.inner.lock();
        if is_data && inner.bytes >= self.limit && !inner.closed {
            self.stalls.inc();
            while inner.bytes >= self.limit && !inner.closed {
                self.writable.wait(&mut inner);
                self.writer_wakes.inc();
            }
        }
        if inner.closed {
            return Err(plan9_ninep::NineError::new(plan9_ninep::errstr::EHUNGUP));
        }
        if b.kind == BlockKind::Hangup {
            inner.hungup = true;
        }
        self.puts.inc();
        QPUT_SITE.record(b.len());
        inner.bytes += b.len();
        inner.blocks.push_back(b);
        self.readable.notify_all();
        if is_data && inner.bytes < self.limit {
            // Admission is one-at-a-time (dequeues wake a single
            // writer); if this put left room, pass the baton to the
            // next blocked writer rather than strand it.
            self.writable.notify_one();
        }
        Ok(())
    }

    /// Non-blocking [`Queue::put`]: `Ok(None)` means queued,
    /// `Ok(Some(b))` hands the block back because flow control would
    /// have parked the caller. Pair with
    /// [`Queue::set_writable_service`] to be called back (on the
    /// worker pool, not a dedicated thread) when the queue drains
    /// below its limit.
    pub fn try_put(&self, mut b: Block) -> crate::Result<Option<Block>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(plan9_ninep::NineError::new(plan9_ninep::errstr::EHUNGUP));
        }
        if b.kind == BlockKind::Data && inner.bytes >= self.limit {
            return Ok(Some(b));
        }
        if let Some(t) = b.trace.as_mut() {
            t.note_enqueued();
        }
        if b.kind == BlockKind::Hangup {
            inner.hungup = true;
        }
        self.puts.inc();
        QPUT_SITE.record(b.len());
        inner.bytes += b.len();
        inner.blocks.push_back(b);
        self.readable.notify_all();
        Ok(None)
    }

    /// Registers the queue's writable-readiness service: whenever a
    /// dequeue crosses the buffered bytes back below the limit (and on
    /// close), `f` is enqueued on the worker-pool shard for `key` —
    /// the conversation id, so one conversation's service jobs
    /// serialize. The closure should [`Queue::try_put`] until it gets
    /// the block back, then wait for the next callback.
    pub fn set_writable_service(&self, key: u64, f: impl Fn() + Send + Sync + 'static) {
        self.inner.lock().service = Some(WritableService { key, f: Arc::new(f) });
    }

    /// Unregisters the writable-readiness service.
    pub fn clear_writable_service(&self) {
        self.inner.lock().service = None;
    }

    /// Writer wake-up policy, shared by every dequeue path: only a
    /// dequeue that crosses the buffered byte count from at-or-over
    /// the limit to under it can admit a flow-controlled putter, so
    /// only that crossing notifies — and it notifies *one* writer
    /// (admission chains through `put`), not all of them. Returns the
    /// readiness service for the caller to fire after the queue lock
    /// is released (the service may re-enter the queue).
    fn admit_writers(
        &self,
        inner: &QueueInner,
        was: usize,
    ) -> Option<(u64, Arc<dyn Fn() + Send + Sync>)> {
        if was < self.limit || inner.bytes >= self.limit {
            return None;
        }
        self.writable.notify_one();
        inner.service.as_ref().map(|s| (s.key, Arc::clone(&s.f)))
    }

    /// Puts a block back at the *front* of the queue (a partially
    /// consumed read).
    pub fn put_back(&self, b: Block) {
        let mut inner = self.inner.lock();
        inner.bytes += b.len();
        inner.blocks.push_front(b);
        self.readable.notify_all();
    }

    /// Removes the next block, blocking until one is available.
    ///
    /// Returns `None` once the queue is drained *and* has been hung up or
    /// closed — the reader's end-of-file.
    pub fn get(&self) -> Option<Block> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(mut b) = inner.blocks.pop_front() {
                let was = inner.bytes;
                inner.bytes -= b.len();
                let svc = self.admit_writers(&inner, was);
                if let Some(t) = b.trace.as_mut() {
                    t.note_dequeued();
                }
                drop(inner);
                if let Some((key, f)) = svc {
                    plan9_support::pool::submit_or_run(key, move || f());
                }
                return Some(b);
            }
            if inner.closed || inner.hungup {
                return None;
            }
            self.readable.wait(&mut inner);
        }
    }

    /// Like [`Queue::get`] with a timeout; `Ok(None)` is end-of-file,
    /// `Err(())` is a timeout with the queue still live.
    #[allow(clippy::result_unit_err)] // the unit error *is* the timeout; no detail to carry
    pub fn get_timeout(&self, d: Duration) -> Result<Option<Block>, ()> {
        let deadline = plan9_support::time::now() + d;
        let mut inner = self.inner.lock();
        loop {
            if let Some(mut b) = inner.blocks.pop_front() {
                let was = inner.bytes;
                inner.bytes -= b.len();
                let svc = self.admit_writers(&inner, was);
                if let Some(t) = b.trace.as_mut() {
                    t.note_dequeued();
                }
                drop(inner);
                if let Some((key, f)) = svc {
                    plan9_support::pool::submit_or_run(key, move || f());
                }
                return Ok(Some(b));
            }
            if inner.closed || inner.hungup {
                return Ok(None);
            }
            if self
                .readable
                .wait_until(&mut inner, deadline)
                .timed_out()
            {
                return Err(());
            }
        }
    }

    /// Removes the next block without blocking.
    pub fn try_get(&self) -> Option<Block> {
        let mut inner = self.inner.lock();
        let mut b = inner.blocks.pop_front()?;
        let was = inner.bytes;
        inner.bytes -= b.len();
        let svc = self.admit_writers(&inner, was);
        if let Some(t) = b.trace.as_mut() {
            t.note_dequeued();
        }
        drop(inner);
        if let Some((key, f)) = svc {
            plan9_support::pool::submit_or_run(key, move || f());
        }
        Some(b)
    }

    /// Marks the queue closed: pending data may still be read, further
    /// puts fail, blocked getters see end-of-file when drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
        // A readiness-serviced producer has no parked thread to wake;
        // call it back one last time so it observes the close.
        let svc = inner.service.as_ref().map(|s| (s.key, Arc::clone(&s.f)));
        drop(inner);
        if let Some((key, f)) = svc {
            plan9_support::pool::submit_or_run(key, move || f());
        }
    }

    /// Marks the queue hung up (reads drain then see end-of-file) while
    /// still accepting puts — used when the device end goes away but data
    /// already queued should be deliverable.
    pub fn hangup(&self) {
        let mut inner = self.inner.lock();
        inner.hungup = true;
        self.readable.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Whether a hangup has been signaled.
    pub fn is_hungup(&self) -> bool {
        let inner = self.inner.lock();
        inner.hungup || inner.closed
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of blocks currently buffered.
    pub fn buffered_blocks(&self) -> usize {
        self.inner.lock().blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_order() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.put(Block::data(vec![2])).unwrap();
        assert_eq!(q.get().unwrap().data, vec![1]);
        assert_eq!(q.get().unwrap().data, vec![2]);
    }

    #[test]
    fn get_blocks_until_put() {
        let q = Arc::new(Queue::default());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.get());
        std::thread::sleep(Duration::from_millis(20));
        q.put(Block::data(vec![9])).unwrap();
        assert_eq!(t.join().unwrap().unwrap().data, vec![9]);
    }

    #[test]
    fn limit_applies_backpressure() {
        let q = Arc::new(Queue::new(10));
        q.put(Block::data(vec![0; 10])).unwrap();
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let t = std::thread::spawn(move || {
            q2.put(Block::data(vec![1; 5])).unwrap();
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        q.get().unwrap();
        let unblocked_at = t.join().unwrap();
        assert!(unblocked_at.duration_since(start) >= Duration::from_millis(25));
    }

    #[test]
    fn counters_track_puts_and_stalls() {
        let q = Arc::new(Queue::new(10));
        q.put(Block::data(vec![0; 10])).unwrap();
        assert_eq!((q.put_count(), q.stall_count()), (1, 0));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.put(Block::data(vec![1; 5])).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        q.get().unwrap();
        t.join().unwrap();
        assert_eq!((q.put_count(), q.stall_count()), (2, 1));
    }

    #[test]
    fn control_blocks_bypass_flow_control() {
        let q = Queue::new(1);
        q.put(Block::data(vec![0; 100])).unwrap();
        // A control block must not block even though the queue is full.
        q.put(Block::control("status")).unwrap();
    }

    #[test]
    fn close_gives_eof_after_drain() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.close();
        assert!(q.get().is_some());
        assert!(q.get().is_none());
        assert!(q.put(Block::data(vec![2])).is_err());
    }

    #[test]
    fn hangup_allows_drain() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.hangup();
        assert!(q.get().is_some());
        assert!(q.get().is_none());
    }

    #[test]
    fn put_back_is_lifo_at_front() {
        let q = Queue::default();
        q.put(Block::data(vec![2])).unwrap();
        q.put_back(Block::data(vec![1]));
        assert_eq!(q.get().unwrap().data, vec![1]);
        assert_eq!(q.get().unwrap().data, vec![2]);
    }

    #[test]
    fn dequeue_records_residency_span() {
        let t = plan9_netlog::trace::Tracer::new(4);
        t.ctl("trace on").unwrap();
        let h = t.begin("rpc").unwrap();
        let _g = h.set_current();
        let q = Queue::default();
        q.put(Block::data(vec![7]).annotate()).unwrap();
        q.get().unwrap();
        h.finish();
        let root = &t.roots()[0];
        assert_eq!(root.spans.len(), 1, "{root:?}");
        assert_eq!(root.spans[0].name, "queue");
    }

    #[test]
    fn dequeue_wakes_at_most_the_admissible_writers() {
        // Regression: every dequeue used to notify_all the writable
        // condvar even when bytes stayed at/over the limit — N blocked
        // putters woke, re-checked, and re-slept per block. Now a
        // dequeue notifies only on crossing below the limit, and only
        // one writer (admission chains through put).
        const PUTTERS: usize = 8;
        let q = Arc::new(Queue::new(10));
        q.put(Block::data(vec![0; 10])).unwrap();
        let threads: Vec<_> = (0..PUTTERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.put(Block::data(vec![1; 10])).unwrap())
            })
            .collect();
        while q.stall_count() < PUTTERS as u64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(q.writer_wake_count(), 0);
        // One dequeue frees the whole limit: exactly one putter is
        // admissible (its 10-byte block refills the queue).
        q.get().unwrap();
        while q.put_count() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Settle, then assert no herd: one admission, at most one wake.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.put_count(), 2, "exactly one putter admitted");
        assert!(
            q.writer_wake_count() <= 1,
            "a single admissible slot must wake at most one writer, woke {}",
            q.writer_wake_count()
        );
        // Drain: each dequeue admits exactly one more putter.
        for _ in 0..PUTTERS {
            q.get().unwrap();
        }
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            q.writer_wake_count() <= PUTTERS as u64,
            "wakes ({}) must not exceed admissions ({PUTTERS})",
            q.writer_wake_count()
        );
    }

    #[test]
    fn writable_service_fires_on_crossing_not_every_dequeue() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Arc::new(Queue::new(10));
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        q.set_writable_service(3, move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        // Two small blocks under the limit, then one that tops it off.
        q.put(Block::data(vec![0; 4])).unwrap();
        q.put(Block::data(vec![0; 4])).unwrap();
        q.put(Block::data(vec![0; 4])).unwrap();
        // try_put at the limit hands the block back.
        let back = q.try_put(Block::data(vec![9; 2])).unwrap();
        assert_eq!(back.map(|b| b.data), Some(vec![9; 2]));
        // First dequeue crosses 12 → 8: service fires once. The next
        // two dequeues stay under the limit: no further callbacks.
        q.get().unwrap();
        while fired.load(Ordering::SeqCst) < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        q.get().unwrap();
        q.get().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "only the crossing fires");
        // Once writable again, try_put queues.
        assert!(q.try_put(Block::data(vec![7; 2])).unwrap().is_none());
        assert_eq!(q.get().unwrap().data, vec![7; 2]);
    }

    #[test]
    fn timeout_reports_distinctly() {
        let q = Queue::default();
        assert_eq!(q.get_timeout(Duration::from_millis(10)), Err(()));
        q.close();
        assert_eq!(q.get_timeout(Duration::from_millis(10)), Ok(None));
    }
}
