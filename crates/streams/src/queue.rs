//! Queues: the buffering half of a processing-module instance.
//!
//! "An instance of a processing module is represented by a pair of
//! queues, one for each direction. The queues point to the put procedures
//! and can be used to queue information traveling along the stream."
//!
//! A queue is a bounded FIFO of [`Block`]s. The bound is in bytes and
//! provides the stream's flow control: `put` blocks when the queue is
//! full, which exerts backpressure on the writer — the same role queue
//! limits play in the Plan 9 kernel.

use crate::block::{Block, BlockKind};
use plan9_netlog::Counter;
use plan9_support::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Default queue limit in bytes, matching the generosity of kernel
/// stream queues.
pub const DEFAULT_LIMIT: usize = 128 * 1024;

struct QueueInner {
    blocks: VecDeque<Block>,
    bytes: usize,
    closed: bool,
    hungup: bool,
}

/// A bounded, blocking FIFO of blocks.
pub struct Queue {
    inner: Mutex<QueueInner>,
    readable: Condvar,
    writable: Condvar,
    limit: usize,
    /// Blocks ever queued through `put`.
    puts: Counter,
    /// Times a `put` had to wait on flow control.
    stalls: Counter,
}

impl Default for Queue {
    fn default() -> Self {
        Queue::new(DEFAULT_LIMIT)
    }
}

impl Queue {
    /// Creates a queue bounded at `limit` bytes of buffered data.
    pub fn new(limit: usize) -> Queue {
        Queue {
            inner: Mutex::named(QueueInner {
                blocks: VecDeque::new(),
                bytes: 0,
                closed: false,
                hungup: false,
            }, "streams.queue"),
            readable: Condvar::new(),
            writable: Condvar::new(),
            limit,
            puts: Counter::new("queue.puts"),
            stalls: Counter::new("queue.stalls"),
        }
    }

    /// Blocks ever queued through [`Queue::put`].
    pub fn put_count(&self) -> u64 {
        self.puts.get()
    }

    /// Times a putter had to wait on flow control.
    pub fn stall_count(&self) -> u64 {
        self.stalls.get()
    }

    /// Appends a block, waiting while the queue is over its limit.
    ///
    /// Control and hangup blocks are never blocked by flow control ("the
    /// time to parse control blocks is not important, since control
    /// operations are rare" — but they must not deadlock behind data).
    pub fn put(&self, mut b: Block) -> crate::Result<()> {
        if let Some(t) = b.trace.as_mut() {
            t.note_enqueued();
        }
        let mut inner = self.inner.lock();
        if b.kind == BlockKind::Data {
            if inner.bytes >= self.limit && !inner.closed {
                self.stalls.inc();
            }
            while inner.bytes >= self.limit && !inner.closed {
                self.writable.wait(&mut inner);
            }
        }
        if inner.closed {
            return Err(plan9_ninep::NineError::new(plan9_ninep::errstr::EHUNGUP));
        }
        if b.kind == BlockKind::Hangup {
            inner.hungup = true;
        }
        self.puts.inc();
        inner.bytes += b.len();
        inner.blocks.push_back(b);
        self.readable.notify_all();
        Ok(())
    }

    /// Puts a block back at the *front* of the queue (a partially
    /// consumed read).
    pub fn put_back(&self, b: Block) {
        let mut inner = self.inner.lock();
        inner.bytes += b.len();
        inner.blocks.push_front(b);
        self.readable.notify_all();
    }

    /// Removes the next block, blocking until one is available.
    ///
    /// Returns `None` once the queue is drained *and* has been hung up or
    /// closed — the reader's end-of-file.
    pub fn get(&self) -> Option<Block> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(mut b) = inner.blocks.pop_front() {
                inner.bytes -= b.len();
                self.writable.notify_all();
                if let Some(t) = b.trace.as_mut() {
                    t.note_dequeued();
                }
                return Some(b);
            }
            if inner.closed || inner.hungup {
                return None;
            }
            self.readable.wait(&mut inner);
        }
    }

    /// Like [`Queue::get`] with a timeout; `Ok(None)` is end-of-file,
    /// `Err(())` is a timeout with the queue still live.
    #[allow(clippy::result_unit_err)] // the unit error *is* the timeout; no detail to carry
    pub fn get_timeout(&self, d: Duration) -> Result<Option<Block>, ()> {
        let deadline = plan9_support::time::now() + d;
        let mut inner = self.inner.lock();
        loop {
            if let Some(mut b) = inner.blocks.pop_front() {
                inner.bytes -= b.len();
                self.writable.notify_all();
                if let Some(t) = b.trace.as_mut() {
                    t.note_dequeued();
                }
                return Ok(Some(b));
            }
            if inner.closed || inner.hungup {
                return Ok(None);
            }
            if self
                .readable
                .wait_until(&mut inner, deadline)
                .timed_out()
            {
                return Err(());
            }
        }
    }

    /// Removes the next block without blocking.
    pub fn try_get(&self) -> Option<Block> {
        let mut inner = self.inner.lock();
        let mut b = inner.blocks.pop_front()?;
        inner.bytes -= b.len();
        self.writable.notify_all();
        if let Some(t) = b.trace.as_mut() {
            t.note_dequeued();
        }
        Some(b)
    }

    /// Marks the queue closed: pending data may still be read, further
    /// puts fail, blocked getters see end-of-file when drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Marks the queue hung up (reads drain then see end-of-file) while
    /// still accepting puts — used when the device end goes away but data
    /// already queued should be deliverable.
    pub fn hangup(&self) {
        let mut inner = self.inner.lock();
        inner.hungup = true;
        self.readable.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Whether a hangup has been signaled.
    pub fn is_hungup(&self) -> bool {
        let inner = self.inner.lock();
        inner.hungup || inner.closed
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of blocks currently buffered.
    pub fn buffered_blocks(&self) -> usize {
        self.inner.lock().blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_order() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.put(Block::data(vec![2])).unwrap();
        assert_eq!(q.get().unwrap().data, vec![1]);
        assert_eq!(q.get().unwrap().data, vec![2]);
    }

    #[test]
    fn get_blocks_until_put() {
        let q = Arc::new(Queue::default());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.get());
        std::thread::sleep(Duration::from_millis(20));
        q.put(Block::data(vec![9])).unwrap();
        assert_eq!(t.join().unwrap().unwrap().data, vec![9]);
    }

    #[test]
    fn limit_applies_backpressure() {
        let q = Arc::new(Queue::new(10));
        q.put(Block::data(vec![0; 10])).unwrap();
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let t = std::thread::spawn(move || {
            q2.put(Block::data(vec![1; 5])).unwrap();
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        q.get().unwrap();
        let unblocked_at = t.join().unwrap();
        assert!(unblocked_at.duration_since(start) >= Duration::from_millis(25));
    }

    #[test]
    fn counters_track_puts_and_stalls() {
        let q = Arc::new(Queue::new(10));
        q.put(Block::data(vec![0; 10])).unwrap();
        assert_eq!((q.put_count(), q.stall_count()), (1, 0));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.put(Block::data(vec![1; 5])).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        q.get().unwrap();
        t.join().unwrap();
        assert_eq!((q.put_count(), q.stall_count()), (2, 1));
    }

    #[test]
    fn control_blocks_bypass_flow_control() {
        let q = Queue::new(1);
        q.put(Block::data(vec![0; 100])).unwrap();
        // A control block must not block even though the queue is full.
        q.put(Block::control("status")).unwrap();
    }

    #[test]
    fn close_gives_eof_after_drain() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.close();
        assert!(q.get().is_some());
        assert!(q.get().is_none());
        assert!(q.put(Block::data(vec![2])).is_err());
    }

    #[test]
    fn hangup_allows_drain() {
        let q = Queue::default();
        q.put(Block::data(vec![1])).unwrap();
        q.hangup();
        assert!(q.get().is_some());
        assert!(q.get().is_none());
    }

    #[test]
    fn put_back_is_lifo_at_front() {
        let q = Queue::default();
        q.put(Block::data(vec![2])).unwrap();
        q.put_back(Block::data(vec![1]));
        assert_eq!(q.get().unwrap().data, vec![1]);
        assert_eq!(q.get().unwrap().data, vec![2]);
    }

    #[test]
    fn dequeue_records_residency_span() {
        let t = plan9_netlog::trace::Tracer::new(4);
        t.ctl("trace on").unwrap();
        let h = t.begin("rpc").unwrap();
        let _g = h.set_current();
        let q = Queue::default();
        q.put(Block::data(vec![7]).annotate()).unwrap();
        q.get().unwrap();
        h.finish();
        let root = &t.roots()[0];
        assert_eq!(root.spans.len(), 1, "{root:?}");
        assert_eq!(root.spans[0].name, "queue");
    }

    #[test]
    fn timeout_reports_distinctly() {
        let q = Queue::default();
        assert_eq!(q.get_timeout(Duration::from_millis(10)), Err(()));
        q.close();
        assert_eq!(q.get_timeout(Duration::from_millis(10)), Ok(None));
    }
}
