//! The stream proper: a linear list of processing modules between a user
//! process and a device.

use crate::block::{Block, BlockKind};
use crate::module::{Direction, ModuleCtx, StreamModule};
use crate::queue::Queue;
use crate::Result;
use plan9_support::sync::{Mutex, RwLock};
use plan9_ninep::{errstr, NineError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A write of less than this many bytes is guaranteed to be contained by
/// a single block, making it atomic with respect to concurrent writers.
pub const MAX_ATOMIC_WRITE: usize = 32 * 1024;

/// A factory for modules that can be `push`ed by name, mirroring the
/// kernel's compiled-in table of stream modules.
#[derive(Default)]
pub struct ModuleRegistry {
    makers: RwLock<HashMap<String, ModuleMaker>>,
}

/// A registered module factory, invoked on each `push`.
type ModuleMaker = Box<dyn Fn() -> Arc<dyn StreamModule> + Send + Sync>;

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::default())
    }

    /// Registers a module constructor under `name`.
    pub fn register<F>(&self, name: &str, maker: F)
    where
        F: Fn() -> Arc<dyn StreamModule> + Send + Sync + 'static,
    {
        self.makers
            .write()
            .insert(name.to_string(), Box::new(maker));
    }

    /// Instantiates the module registered under `name`.
    pub fn make(&self, name: &str) -> Result<Arc<dyn StreamModule>> {
        let makers = self.makers.read();
        match makers.get(name) {
            Some(maker) => Ok(maker()),
            None => Err(NineError::new(format!("unknown stream module: {name}"))),
        }
    }
}

struct Slot {
    id: u64,
    module: Arc<dyn StreamModule>,
}

/// Shared stream state; [`Stream`] and every [`ModuleCtx`] hold an `Arc`.
pub struct StreamInner {
    /// `modules[0]` is the top (just below the user process); the last
    /// entry is the device end.
    modules: RwLock<Vec<Slot>>,
    read_q: Arc<Queue>,
    closed: AtomicBool,
    next_id: AtomicU64,
    registry: Arc<ModuleRegistry>,
}

impl StreamInner {
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn position_of(&self, id: u64) -> Option<usize> {
        self.modules.read().iter().position(|s| s.id == id)
    }

    fn slot_at(&self, idx: usize) -> Option<(u64, Arc<dyn StreamModule>)> {
        self.modules
            .read()
            .get(idx)
            .map(|s| (s.id, Arc::clone(&s.module)))
    }

    /// Routes a block from the module `from_id` one hop in `dir`.
    pub(crate) fn put_from(self: &Arc<Self>, from_id: u64, b: Block, dir: Direction) -> Result<()> {
        if self.is_closed() && b.kind == BlockKind::Data {
            return Err(NineError::new(errstr::EHUNGUP));
        }
        let pos = self
            .position_of(from_id)
            .ok_or_else(|| NineError::new("module no longer on stream"))?;
        match dir {
            Direction::Down => match self.slot_at(pos + 1) {
                Some((id, module)) => {
                    let ctx = ModuleCtx {
                        inner: Arc::clone(self),
                        my_id: id,
                    };
                    module.put_down(&ctx, b)
                }
                None => Err(NineError::new("no device on stream")),
            },
            Direction::Up => {
                if pos == 0 {
                    // Top of the stream: data lands in the read queue for
                    // the user process.
                    if b.kind == BlockKind::Hangup {
                        self.read_q.put(b)?;
                        self.read_q.hangup();
                        return Ok(());
                    }
                    return self.read_q.put(b);
                }
                // The module list can change between the caller finding
                // `pos` and this lookup (a concurrent pop), so a missing
                // slot is a real runtime condition, not a bug.
                let Some((id, module)) = self.slot_at(pos - 1) else {
                    return Err(NineError::new("stream module vanished"));
                };
                let ctx = ModuleCtx {
                    inner: Arc::clone(self),
                    my_id: id,
                };
                module.put_up(&ctx, b)
            }
        }
    }
}

/// Leftover bytes from a partially-consumed block, kept under the read
/// lock so a subsequent read continues where the last one stopped.
#[derive(Default)]
struct ReadState {
    partial: Option<Block>,
}

/// A bidirectional channel connecting a device to user processes.
pub struct Stream {
    inner: Arc<StreamInner>,
    read_state: Mutex<ReadState>,
}

impl Stream {
    /// Creates an empty stream (no modules yet) with the given registry
    /// resolving `push name` commands.
    pub fn new(registry: Arc<ModuleRegistry>) -> Arc<Stream> {
        Arc::new(Stream {
            inner: Arc::new(StreamInner {
                modules: RwLock::named(Vec::new(), "streams.stream.modules"),
                read_q: Arc::new(Queue::default()),
                closed: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                registry,
            }),
            read_state: Mutex::named(ReadState::default(), "streams.stream.read"),
        })
    }

    /// Creates a stream with no registry (pushes by name will fail).
    pub fn bare() -> Arc<Stream> {
        Stream::new(ModuleRegistry::new())
    }

    fn add_slot(&self, module: Arc<dyn StreamModule>, top: bool) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut mods = self.inner.modules.write();
        let slot = Slot { id, module };
        if top {
            mods.insert(0, slot);
        } else {
            mods.push(slot);
        }
        id
    }

    /// Installs the device-end module at the bottom of the stream and
    /// returns the context its helper processes should use.
    pub fn set_device(&self, module: Arc<dyn StreamModule>) -> ModuleCtx {
        let id = self.add_slot(module, false);
        ModuleCtx {
            inner: Arc::clone(&self.inner),
            my_id: id,
        }
    }

    /// Pushes a module instance onto the top of the stream and returns
    /// its context.
    pub fn push_module(&self, module: Arc<dyn StreamModule>) -> ModuleCtx {
        let id = self.add_slot(module, true);
        ModuleCtx {
            inner: Arc::clone(&self.inner),
            my_id: id,
        }
    }

    /// Pops the top module; fails if only the device end remains.
    pub fn pop_module(&self) -> Result<()> {
        let slot = {
            let mut mods = self.inner.modules.write();
            if mods.len() <= 1 {
                return Err(NineError::new("no module to pop"));
            }
            mods.remove(0)
        };
        let ctx = ModuleCtx {
            inner: Arc::clone(&self.inner),
            my_id: slot.id,
        };
        slot.module.close(&ctx);
        Ok(())
    }

    /// Names of the modules currently on the stream, top first.
    pub fn module_names(&self) -> Vec<String> {
        self.inner
            .modules
            .read()
            .iter()
            .map(|s| s.module.name().to_string())
            .collect()
    }

    /// Writes user data into the stream.
    ///
    /// The data is copied into blocks of at most [`MAX_ATOMIC_WRITE`]
    /// bytes; the last block is flagged with a delimiter "to alert
    /// downstream modules that care about write boundaries". Concurrent
    /// writes are not synchronized, but the 32 KiB block size assures
    /// atomic writes for most protocols.
    pub fn write(&self, data: &[u8]) -> Result<usize> {
        if data.is_empty() {
            return self.write_block(Block::delim(Vec::new())).map(|_| 0);
        }
        let mut chunks = data.chunks(MAX_ATOMIC_WRITE).peekable();
        while let Some(chunk) = chunks.next() {
            // Every fragment of the write carries the writer's trace,
            // so the annotation survives this fragmentation.
            let b = if chunks.peek().is_none() {
                Block::delim(chunk.to_vec()).annotate()
            } else {
                Block::data(chunk.to_vec()).annotate()
            };
            self.write_block(b)?;
        }
        Ok(data.len())
    }

    /// Inserts one block at the top of the stream, moving down.
    pub fn write_block(&self, b: Block) -> Result<()> {
        if self.inner.is_closed() {
            return Err(NineError::new(errstr::EHUNGUP));
        }
        let (id, module) = self
            .inner
            .slot_at(0)
            .ok_or_else(|| NineError::new("no device on stream"))?;
        let ctx = ModuleCtx {
            inner: Arc::clone(&self.inner),
            my_id: id,
        };
        module.put_down(&ctx, b)
    }

    /// Writes a control message.
    ///
    /// The stream system intercepts and interprets `push name`, `pop` and
    /// `hangup`; any other command travels down the stream as a control
    /// block for the processing modules and device to parse.
    pub fn write_ctl(&self, cmd: &str) -> Result<()> {
        let fields: Vec<&str> = cmd.split_whitespace().collect();
        match fields.as_slice() {
            ["push", name] => {
                let module = self.inner.registry.make(name)?;
                self.push_module(module);
                Ok(())
            }
            ["pop"] => self.pop_module(),
            ["hangup"] => {
                self.hangup_from_device();
                Ok(())
            }
            _ => self.write_block(Block::control(cmd)),
        }
    }

    /// Sends a hangup message up the stream from the device end.
    pub fn hangup_from_device(&self) {
        let _ = self.feed_up(Block::hangup());
    }

    /// Inserts a block as if the device produced it: it moves up through
    /// every module above the device end and lands in the read queue.
    ///
    /// Devices without helper-process contexts (simple simulated wires)
    /// use this as their "interrupt side".
    pub fn feed_up(&self, b: Block) -> Result<()> {
        let n = self.inner.modules.read().len();
        if n == 0 {
            // No modules at all: straight into the read queue.
            if b.kind == BlockKind::Hangup {
                self.inner.read_q.put(b)?;
                self.inner.read_q.hangup();
                return Ok(());
            }
            return self.inner.read_q.put(b);
        }
        // A module may have been popped since `n` was read; fall back to
        // the read queue rather than panicking mid-delivery.
        let Some((id, _)) = self.inner.slot_at(n - 1) else {
            return self.inner.read_q.put(b);
        };
        let ctx = ModuleCtx {
            inner: Arc::clone(&self.inner),
            my_id: id,
        };
        ctx.send_up(b)
    }

    /// Reads user data from the top of the stream.
    ///
    /// "The read terminates when the read count is reached or when the
    /// end of a delimited block is encountered. A per stream read lock
    /// ensures only one process can read from a stream at a time and
    /// guarantees that the bytes read were contiguous bytes from the
    /// stream." An empty return means end-of-file (hangup).
    pub fn read(&self, count: usize) -> Result<Vec<u8>> {
        let mut state = self.read_state.lock();
        let mut out = Vec::new();
        loop {
            // Continue a partially-consumed block first.
            let block = match state.partial.take() {
                Some(b) => b,
                None => {
                    if !out.is_empty() {
                        // Only block for *more* data when nothing has been
                        // collected yet; otherwise return what we have.
                        match self.inner.read_q.try_get() {
                            Some(b) => b,
                            None => return Ok(out),
                        }
                    } else {
                        match self.inner.read_q.get() {
                            Some(b) => b,
                            None => return Ok(out), // EOF
                        }
                    }
                }
            };
            match block.kind {
                BlockKind::Hangup => {
                    // Deliver what we have; subsequent reads return empty.
                    self.inner.read_q.hangup();
                    return Ok(out);
                }
                BlockKind::Control => {
                    // Control blocks reaching the top are not user data.
                    continue;
                }
                BlockKind::Data => {
                    let want = count - out.len();
                    if block.len() <= want {
                        let delim = block.delim;
                        out.extend_from_slice(&block.data);
                        if delim || out.len() == count {
                            return Ok(out);
                        }
                    } else {
                        out.extend_from_slice(&block.data[..want]);
                        let rest = Block {
                            kind: BlockKind::Data,
                            delim: block.delim,
                            data: block.data[want..].to_vec(),
                            trace: block.trace.clone(),
                        };
                        state.partial = Some(rest);
                        return Ok(out);
                    }
                }
            }
        }
    }

    /// Reads exactly one delimited message (up to `max` bytes), the way
    /// protocol code consumes datagram streams.
    pub fn read_message(&self, max: usize) -> Result<Vec<u8>> {
        self.read(max)
    }

    /// Whether the stream has seen a hangup.
    pub fn is_hungup(&self) -> bool {
        self.inner.read_q.is_hungup() || self.inner.is_closed()
    }

    /// Bytes waiting in the read queue.
    pub fn readable_bytes(&self) -> usize {
        self.inner.read_q.buffered_bytes()
    }

    /// Destroys the stream: closes every module (device end last) and the
    /// read queue. "The last close destroys it."
    pub fn destroy(&self) {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let slots: Vec<(u64, Arc<dyn StreamModule>)> = self
            .inner
            .modules
            .read()
            .iter()
            .map(|s| (s.id, Arc::clone(&s.module)))
            .collect();
        for (id, module) in slots {
            let ctx = ModuleCtx {
                inner: Arc::clone(&self.inner),
                my_id: id,
            };
            module.close(&ctx);
        }
        self.inner.read_q.close();
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        self.destroy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that forwards everything unchanged.
    struct PassThru;

    impl StreamModule for PassThru {
        fn name(&self) -> &str {
            "passthru"
        }
        fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            ctx.send_down(b)
        }
        fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            ctx.send_up(b)
        }
    }

    /// A loopback device: everything written down comes back up.
    struct Loopback;

    impl StreamModule for Loopback {
        fn name(&self) -> &str {
            "loop"
        }
        fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            if b.kind == BlockKind::Data {
                ctx.send_up(b)
            } else {
                Ok(())
            }
        }
        fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            ctx.send_up(b)
        }
    }

    fn loop_stream() -> Arc<Stream> {
        let s = Stream::bare();
        s.set_device(Arc::new(Loopback));
        s
    }

    #[test]
    fn write_then_read_round_trips() {
        let s = loop_stream();
        s.write(b"hello").unwrap();
        assert_eq!(s.read(100).unwrap(), b"hello");
    }

    #[test]
    fn read_stops_at_delimiter() {
        let s = loop_stream();
        s.write(b"one").unwrap();
        s.write(b"two").unwrap();
        // Each write was delimited, so reads see the boundaries.
        assert_eq!(s.read(100).unwrap(), b"one");
        assert_eq!(s.read(100).unwrap(), b"two");
    }

    #[test]
    fn read_count_splits_block_and_remainder_stays() {
        let s = loop_stream();
        s.write(b"abcdef").unwrap();
        assert_eq!(s.read(2).unwrap(), b"ab");
        assert_eq!(s.read(100).unwrap(), b"cdef");
    }

    #[test]
    fn large_write_split_into_blocks_single_delim() {
        let s = loop_stream();
        let data = vec![7u8; MAX_ATOMIC_WRITE * 2 + 5];
        s.write(&data).unwrap();
        let mut got = Vec::new();
        // First read drains up to the delimiter, which arrives on the
        // third block; non-delimited blocks concatenate.
        while got.len() < data.len() {
            let part = s.read(data.len()).unwrap();
            assert!(!part.is_empty());
            got.extend_from_slice(&part);
        }
        assert_eq!(got, data);
    }

    #[test]
    fn push_pop_by_ctl() {
        let registry = ModuleRegistry::new();
        registry.register("passthru", || Arc::new(PassThru));
        let s = Stream::new(Arc::clone(&registry));
        s.set_device(Arc::new(Loopback));
        s.write_ctl("push passthru").unwrap();
        assert_eq!(s.module_names(), vec!["passthru", "loop"]);
        s.write(b"via module").unwrap();
        assert_eq!(s.read(100).unwrap(), b"via module");
        s.write_ctl("pop").unwrap();
        assert_eq!(s.module_names(), vec!["loop"]);
        assert!(s.write_ctl("pop").is_err(), "cannot pop the device end");
    }

    #[test]
    fn push_unknown_module_fails() {
        let s = loop_stream();
        assert!(s.write_ctl("push nonesuch").is_err());
    }

    #[test]
    fn hangup_gives_eof() {
        let s = loop_stream();
        s.write(b"tail").unwrap();
        s.write_ctl("hangup").unwrap();
        assert_eq!(s.read(100).unwrap(), b"tail");
        assert_eq!(s.read(100).unwrap(), b"");
        assert!(s.is_hungup());
    }

    #[test]
    fn destroy_fails_writers() {
        let s = loop_stream();
        s.destroy();
        assert!(s.write(b"x").is_err());
    }

    #[test]
    fn feed_up_reaches_reader() {
        let s = loop_stream();
        s.feed_up(Block::delim(b"from device".to_vec())).unwrap();
        assert_eq!(s.read(100).unwrap(), b"from device");
    }

    #[test]
    fn control_blocks_pass_modules_not_reader() {
        let s = loop_stream();
        s.feed_up(Block::control("status good")).unwrap();
        s.feed_up(Block::delim(b"data".to_vec())).unwrap();
        assert_eq!(s.read(100).unwrap(), b"data");
    }

    #[test]
    fn concurrent_small_writes_are_atomic() {
        let s = loop_stream();
        let mut handles = Vec::new();
        for i in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let payload = vec![b'a' + i; 100];
                    s.write(&payload).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every read must return a homogeneous 100-byte message.
        for _ in 0..200 {
            let msg = s.read(1000).unwrap();
            assert_eq!(msg.len(), 100);
            assert!(msg.iter().all(|&b| b == msg[0]), "interleaved write");
        }
    }

    plan9_support::props! {
        fn prop_delimiters_preserved(g, cases = 64) {
            let sizes = g.vec(1..12, |g| g.usize_in(1..5000));
            let s = loop_stream();
            for (i, n) in sizes.iter().enumerate() {
                let byte = (i % 251) as u8;
                s.write(&vec![byte; *n]).unwrap();
            }
            for (i, n) in sizes.iter().enumerate() {
                let msg = s.read(*n + 10).unwrap();
                assert_eq!(msg.len(), *n);
                assert!(msg.iter().all(|&b| b == (i % 251) as u8));
            }
        }
    }
}
