//! Multiplexing conversations onto one physical stream (§2.4.3).
//!
//! "We push a multiplexer processing module onto the physical device
//! stream to group the conversations. ... The multiplexing module looks
//! at each message moving up its stream and puts it to the correct
//! conversation stream after stripping the header controlling the
//! demultiplexing."
//!
//! The paper is emphatic that Plan 9 has *no general structure* for
//! multiplexers — each is coded from scratch, favoring simplicity over
//! generality. [`Mux`] therefore stays small: a classifier closure maps
//! an upstream block to an integer conversation key; ports register for
//! keys. A port registered for [`Mux::ALL`] receives a copy of every
//! message (the Ethernet driver's special packet type `-1`), and several
//! ports on one key each receive a copy, matching the Ethernet driver's
//! copy semantics.

use crate::block::{Block, BlockKind};
use crate::module::{ModuleCtx, StreamModule};
use crate::Result;
use plan9_support::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a demultiplexed block is delivered: usually a closure feeding a
/// conversation stream's upstream side.
pub struct MuxPort {
    /// Registration id, used to detach.
    pub id: u64,
    key: i64,
    deliver: Box<dyn Fn(Block) + Send + Sync>,
}

/// A hand-rolled multiplexer processing module.
pub struct Mux {
    name: String,
    /// Classifies an upstream block into (conversation key, header bytes
    /// to strip). `None` means unclassifiable; the block is counted and
    /// dropped.
    classify: ClassifyFn,
    ports: Mutex<Vec<Arc<MuxPort>>>,
    next_id: AtomicU64,
    /// Unroutable upstream blocks, for the device's `stats` file.
    pub dropped: AtomicU64,
    /// Blocks delivered upstream.
    pub delivered: AtomicU64,
}

/// An upstream classifier: block -> (conversation key, header bytes).
type ClassifyFn = Box<dyn Fn(&Block) -> Option<(i64, usize)> + Send + Sync>;

impl Mux {
    /// The key that receives a copy of everything (packet type `-1`).
    pub const ALL: i64 = -1;

    /// Creates a multiplexer with the given upstream classifier.
    pub fn new<F>(name: &str, classify: F) -> Arc<Mux>
    where
        F: Fn(&Block) -> Option<(i64, usize)> + Send + Sync + 'static,
    {
        Arc::new(Mux {
            name: name.to_string(),
            classify: Box::new(classify),
            ports: Mutex::named(Vec::new(), "streams.mux.ports"),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        })
    }

    /// Registers a conversation for `key`; the closure is called with
    /// each matching block (header already stripped).
    pub fn attach<F>(&self, key: i64, deliver: F) -> Arc<MuxPort>
    where
        F: Fn(Block) + Send + Sync + 'static,
    {
        let port = Arc::new(MuxPort {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            key,
            deliver: Box::new(deliver),
        });
        self.ports.lock().push(Arc::clone(&port));
        port
    }

    /// Detaches a conversation.
    pub fn detach(&self, port: &MuxPort) {
        self.ports.lock().retain(|p| p.id != port.id);
    }

    /// Number of attached conversations.
    pub fn conversations(&self) -> usize {
        self.ports.lock().len()
    }

    fn route_up(&self, b: Block) {
        match (self.classify)(&b) {
            Some((key, strip)) => {
                let stripped = Block {
                    kind: b.kind,
                    delim: b.delim,
                    data: b.data[strip.min(b.data.len())..].to_vec(),
                    trace: b.trace.clone(),
                };
                let ports: Vec<Arc<MuxPort>> = self
                    .ports
                    .lock()
                    .iter()
                    .filter(|p| p.key == key || p.key == Mux::ALL)
                    .cloned()
                    .collect();
                if ports.is_empty() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                // Each matching conversation receives a copy.
                for p in &ports {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    (p.deliver)(stripped.clone());
                }
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl StreamModule for Mux {
    fn name(&self) -> &str {
        &self.name
    }

    /// Downstream traffic passes through untouched: conversations add
    /// their own headers before putting blocks below the multiplexer.
    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        ctx.send_down(b)
    }

    /// Upstream traffic is classified and delivered to conversations; it
    /// does not continue up the physical stream.
    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        match b.kind {
            BlockKind::Data => {
                self.route_up(b);
                Ok(())
            }
            // Hangup and control indications concern the physical stream's
            // owner, so they continue upward.
            _ => ctx.send_up(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use crate::stream::Stream;

    /// Classifier: first byte is the conversation key; strip it.
    fn first_byte_mux() -> Arc<Mux> {
        Mux::new("test-mux", |b| {
            b.data.first().map(|&k| (k as i64, 1usize))
        })
    }

    #[test]
    fn routes_by_key_and_strips_header() {
        let mux = first_byte_mux();
        let q1 = Arc::new(Queue::default());
        let q2 = Arc::new(Queue::default());
        let (a, b) = (Arc::clone(&q1), Arc::clone(&q2));
        mux.attach(1, move |blk| {
            a.put(blk).unwrap();
        });
        mux.attach(2, move |blk| {
            b.put(blk).unwrap();
        });
        mux.route_up(Block::delim(vec![1, b'x']));
        mux.route_up(Block::delim(vec![2, b'y']));
        assert_eq!(q1.try_get().unwrap().data, b"x");
        assert_eq!(q2.try_get().unwrap().data, b"y");
        assert!(q1.try_get().is_none());
    }

    #[test]
    fn all_key_sees_everything() {
        let mux = first_byte_mux();
        let snoop = Arc::new(Queue::default());
        let s = Arc::clone(&snoop);
        mux.attach(Mux::ALL, move |blk| {
            s.put(blk).unwrap();
        });
        mux.route_up(Block::delim(vec![7, b'a']));
        mux.route_up(Block::delim(vec![9, b'b']));
        assert_eq!(snoop.try_get().unwrap().data, b"a");
        assert_eq!(snoop.try_get().unwrap().data, b"b");
    }

    #[test]
    fn copies_to_multiple_ports_on_same_key() {
        let mux = first_byte_mux();
        let q1 = Arc::new(Queue::default());
        let q2 = Arc::new(Queue::default());
        let (a, b) = (Arc::clone(&q1), Arc::clone(&q2));
        mux.attach(5, move |blk| a.put(blk).unwrap());
        mux.attach(5, move |blk| b.put(blk).unwrap());
        mux.route_up(Block::delim(vec![5, b'z']));
        assert_eq!(q1.try_get().unwrap().data, b"z");
        assert_eq!(q2.try_get().unwrap().data, b"z");
    }

    #[test]
    fn unroutable_counted_dropped() {
        let mux = first_byte_mux();
        mux.route_up(Block::delim(vec![42]));
        assert_eq!(mux.dropped.load(Ordering::Relaxed), 1);
        mux.route_up(Block::delim(Vec::new())); // unclassifiable
        assert_eq!(mux.dropped.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn detach_stops_delivery() {
        let mux = first_byte_mux();
        let q = Arc::new(Queue::default());
        let qq = Arc::clone(&q);
        let port = mux.attach(3, move |blk| qq.put(blk).unwrap());
        mux.route_up(Block::delim(vec![3, b'1']));
        mux.detach(&port);
        mux.route_up(Block::delim(vec![3, b'2']));
        assert_eq!(q.try_get().unwrap().data, b"1");
        assert!(q.try_get().is_none());
        assert_eq!(mux.conversations(), 0);
    }

    #[test]
    fn on_stream_upstream_data_goes_to_conversations_not_reader() {
        // Physical stream: [mux, loop-device]; data fed up from the
        // device is routed to the conversation, not the stream reader.
        struct Dev;
        impl StreamModule for Dev {
            fn name(&self) -> &str {
                "dev"
            }
            fn put_down(&self, _ctx: &ModuleCtx, _b: Block) -> Result<()> {
                Ok(())
            }
            fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
                ctx.send_up(b)
            }
        }
        let s = Stream::bare();
        s.set_device(Arc::new(Dev));
        let mux = first_byte_mux();
        let q = Arc::new(Queue::default());
        let qq = Arc::clone(&q);
        mux.attach(4, move |blk| qq.put(blk).unwrap());
        s.push_module(mux);
        s.feed_up(Block::delim(vec![4, b'm'])).unwrap();
        assert_eq!(q.try_get().unwrap().data, b"m");
        assert_eq!(s.readable_bytes(), 0);
    }
}
