//! Pipes built from streams.
//!
//! "Asynchronous communications channels such as pipes, TCP
//! conversations, Datakit conversations, and RS232 lines are implemented
//! using streams" (§2.4). A pipe is the degenerate case: two streams
//! whose device ends are cross-connected, so what one end writes moves
//! down its stream and up the peer's.

use crate::block::{Block, BlockKind};
use crate::module::{ModuleCtx, StreamModule};
use crate::stream::Stream;
use crate::Result;
use plan9_support::sync::Mutex;
use std::sync::{Arc, Weak};

/// The device end of one side of a pipe: everything put down is fed up
/// the peer stream.
struct PipeDev {
    peer: Mutex<Weak<Stream>>,
}

impl StreamModule for PipeDev {
    fn name(&self) -> &str {
        "pipe"
    }

    fn put_down(&self, _ctx: &ModuleCtx, b: Block) -> Result<()> {
        let peer = self.peer.lock().upgrade();
        match peer {
            Some(peer) => match b.kind {
                BlockKind::Data | BlockKind::Hangup => peer.feed_up(b),
                // Control directives die at the device end, as on a real
                // pipe.
                BlockKind::Control => Ok(()),
            },
            None => Err(plan9_ninep::NineError::new(plan9_ninep::errstr::EHUNGUP)),
        }
    }

    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        ctx.send_up(b)
    }

    fn close(&self, _ctx: &ModuleCtx) {
        // The last close hangs up the peer.
        if let Some(peer) = self.peer.lock().upgrade() {
            peer.hangup_from_device();
        }
    }
}

/// Creates a connected pair of stream pipes.
///
/// Each end supports the full stream interface: delimited writes,
/// count/delimiter-bounded reads, `push`/`pop` of processing modules,
/// and hangup on destroy.
pub fn stream_pipe() -> (Arc<Stream>, Arc<Stream>) {
    let a = Stream::bare();
    let b = Stream::bare();
    let a_dev = Arc::new(PipeDev {
        peer: Mutex::named(Arc::downgrade(&b), "streams.spipe.peer"),
    });
    let b_dev = Arc::new(PipeDev {
        peer: Mutex::named(Arc::downgrade(&a), "streams.spipe.peer"),
    });
    a.set_device(a_dev);
    b.set_device(b_dev);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_one_end_read_other() {
        let (a, b) = stream_pipe();
        a.write(b"through the pipe").unwrap();
        assert_eq!(b.read(100).unwrap(), b"through the pipe");
        b.write(b"and back").unwrap();
        assert_eq!(a.read(100).unwrap(), b"and back");
    }

    #[test]
    fn delimiters_cross() {
        let (a, b) = stream_pipe();
        a.write(b"one").unwrap();
        a.write(b"two").unwrap();
        assert_eq!(b.read(100).unwrap(), b"one");
        assert_eq!(b.read(100).unwrap(), b"two");
    }

    #[test]
    fn destroy_hangs_up_peer() {
        let (a, b) = stream_pipe();
        a.write(b"last").unwrap();
        a.destroy();
        assert_eq!(b.read(100).unwrap(), b"last");
        assert_eq!(b.read(100).unwrap(), b"", "EOF after hangup");
        assert!(b.write(b"x").is_err() || b.is_hungup());
    }

    #[test]
    fn modules_apply_per_side() {
        // A snoop pushed on one side counts only that side's traffic.
        let (a, b) = stream_pipe();
        let snoop = crate::modules::Snoop::new();
        a.push_module(Arc::clone(&snoop) as Arc<dyn StreamModule>);
        a.write(b"counted").unwrap();
        let _ = b.read(100).unwrap();
        b.write(b"also counted upstream").unwrap();
        let _ = a.read(100).unwrap();
        assert_eq!(snoop.down_blocks.get(), 1);
        assert_eq!(snoop.up_blocks.get(), 1);
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (a, b) = stream_pipe();
        let t = std::thread::spawn(move || b.read(100).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(30));
        a.write(b"wake up").unwrap();
        assert_eq!(t.join().unwrap(), b"wake up");
    }
}
