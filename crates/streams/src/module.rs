//! Processing modules and their context.
//!
//! "Each module has both an upstream (toward the process) and downstream
//! (toward the device) put routine. Calling the put routine of the module
//! on either end of the stream inserts data into the stream. Each module
//! calls the succeeding one to send data up or down the stream."

use crate::block::Block;
use crate::stream::StreamInner;
use crate::Result;
use std::sync::Arc;

/// A stream processing module.
///
/// Modules are shared (`Arc`) and must synchronize their own state: the
/// paper is explicit that streams provide *no implicit synchronization*.
/// Put routines run in the calling process's thread; "in most cases the
/// first put routine calls the second, the second calls the third, and so
/// on until the data is output. As a consequence, most data is output
/// without context switching."
pub trait StreamModule: Send + Sync {
    /// The name used by `push name` control messages and diagnostics.
    fn name(&self) -> &str;

    /// Handles a block moving downstream (toward the device). Forward
    /// with [`ModuleCtx::send_down`], queue locally, transform, or drop.
    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()>;

    /// Handles a block moving upstream (toward the process). Forward with
    /// [`ModuleCtx::send_up`].
    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()>;

    /// Called once when the module is popped off the stream or the stream
    /// is destroyed; helper processes should be told to exit here.
    fn close(&self, _ctx: &ModuleCtx) {}
}

/// The context handed to a module's put routines: its position in the
/// stream and the means to call its neighbors.
#[derive(Clone)]
pub struct ModuleCtx {
    pub(crate) inner: Arc<StreamInner>,
    pub(crate) my_id: u64,
}

impl ModuleCtx {
    /// Passes a block to the next module toward the device.
    ///
    /// Fails if this module is the device end (nothing below) or the
    /// stream has been destroyed.
    pub fn send_down(&self, b: Block) -> Result<()> {
        self.inner.put_from(self.my_id, b, Direction::Down)
    }

    /// Passes a block to the next module toward the process; from the top
    /// module this lands in the stream's read queue.
    pub fn send_up(&self, b: Block) -> Result<()> {
        self.inner.put_from(self.my_id, b, Direction::Up)
    }

    /// Whether the stream has been destroyed; helper processes poll this.
    pub fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    /// Spawns a helper kernel process for asynchronous events (timers,
    /// device interrupts). The helper runs until its closure returns; it
    /// should watch [`ModuleCtx::is_closed`] or block on queues that are
    /// closed when the stream dies.
    ///
    /// A failed spawn is the caller's problem: a module push that
    /// silently loses its helper leaves the stream wedged with no
    /// diagnostic, so the error must propagate to the pusher.
    pub fn spawn_helper<F>(&self, name: &str, f: F) -> Result<()>
    where
        F: FnOnce(ModuleCtx) + Send + 'static,
    {
        let ctx = self.clone();
        plan9_support::vtime::kproc(&format!("helper-{name}"), move || f(ctx))
            .map(|_| ())
            .map_err(|e| {
                plan9_ninep::NineError::new(format!("spawn helper-{name}: {e}"))
            })
    }
}

/// Direction of travel for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Toward the device.
    Down,
    /// Toward the process.
    Up,
}
