//! A small library of reusable processing modules.
//!
//! The kernel compiled in a table of modules that could be `push`ed onto
//! any stream. These are the equivalents used by this reproduction's
//! devices and tests.

use crate::block::{Block, BlockKind};
use crate::module::{ModuleCtx, StreamModule};
use crate::Result;
use plan9_netlog::Counter;
use plan9_support::copysite::Site;
use plan9_support::sync::Mutex;
use std::sync::Arc;

static PREPEND_SITE: Site = Site::new("streams.delim.prepend");
static COALESCE_SITE: Site = Site::new("streams.delim.coalesce");
static BYTESTUFF_SITE: Site = Site::new("streams.bytestuff");

/// A snooping module: counts and optionally copies traffic in both
/// directions without altering it — the "diagnostic interfaces for
/// snooping software" of the LANCE driver (§2.2).
pub struct Snoop {
    /// Blocks seen moving downstream.
    pub down_blocks: Counter,
    /// Bytes seen moving downstream.
    pub down_bytes: Counter,
    /// Blocks seen moving upstream.
    pub up_blocks: Counter,
    /// Bytes seen moving upstream.
    pub up_bytes: Counter,
    /// When set, a copy of every data block is delivered here.
    tap: Mutex<Option<TapFn>>,
}

/// A snoop tap: called with a copy of every data block.
type TapFn = Box<dyn Fn(Block) + Send + Sync>;

impl Snoop {
    /// Creates a counting snoop with no tap.
    pub fn new() -> Arc<Snoop> {
        Arc::new(Snoop {
            down_blocks: Counter::new("snoop.downblocks"),
            down_bytes: Counter::new("snoop.downbytes"),
            up_blocks: Counter::new("snoop.upblocks"),
            up_bytes: Counter::new("snoop.upbytes"),
            tap: Mutex::named(None, "streams.tap"),
        })
    }

    /// Installs a tap receiving a copy of every data block.
    pub fn set_tap<F>(&self, f: F)
    where
        F: Fn(Block) + Send + Sync + 'static,
    {
        *self.tap.lock() = Some(Box::new(f));
    }

    fn observe(&self, b: &Block, up: bool) {
        if b.kind != BlockKind::Data {
            return;
        }
        if up {
            self.up_blocks.inc();
            self.up_bytes.add(b.len() as u64);
        } else {
            self.down_blocks.inc();
            self.down_bytes.add(b.len() as u64);
        }
        if let Some(tap) = &*self.tap.lock() {
            tap(b.clone());
        }
    }

    /// Renders the counters as an ASCII stats report.
    pub fn stats(&self) -> String {
        format!(
            "in: blocks {} bytes {}\nout: blocks {} bytes {}\n",
            self.up_blocks.get(),
            self.up_bytes.get(),
            self.down_blocks.get(),
            self.down_bytes.get(),
        )
    }
}

impl StreamModule for Snoop {
    fn name(&self) -> &str {
        "snoop"
    }

    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        self.observe(&b, false);
        ctx.send_down(b)
    }

    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        self.observe(&b, true);
        ctx.send_up(b)
    }
}

/// A delimiter-reconstruction module.
///
/// Pushed on top of a byte-stream transport it restores message
/// boundaries with a 4-byte length prefix: downstream writes gain the
/// prefix, upstream bytes are reassembled into delimited blocks. This is
/// the stream-level face of the marshaling the paper requires for 9P over
/// TCP.
pub struct DelimMod {
    reassembly: Mutex<Vec<u8>>,
}

impl DelimMod {
    /// Creates the module with an empty reassembly buffer.
    pub fn new() -> Arc<DelimMod> {
        Arc::new(DelimMod {
            reassembly: Mutex::named(Vec::new(), "streams.reasm"),
        })
    }
}

impl Default for DelimMod {
    fn default() -> Self {
        DelimMod {
            reassembly: Mutex::named(Vec::new(), "streams.reasm"),
        }
    }
}

impl StreamModule for DelimMod {
    fn name(&self) -> &str {
        "delim"
    }

    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        if b.kind != BlockKind::Data {
            return ctx.send_down(b);
        }
        PREPEND_SITE.record(4 + b.len());
        let mut framed = Vec::with_capacity(4 + b.len());
        framed.extend_from_slice(&(b.len() as u32).to_le_bytes());
        framed.extend_from_slice(&b.data);
        ctx.send_down(
            Block {
                kind: BlockKind::Data,
                delim: b.delim,
                data: framed,
                trace: None,
            }
            .with_trace_of(&b),
        )
    }

    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        if b.kind != BlockKind::Data {
            return ctx.send_up(b);
        }
        let mut buf = self.reassembly.lock();
        buf.extend_from_slice(&b.data);
        loop {
            let Some(hdr) = buf.first_chunk::<4>() else {
                return Ok(()); // incomplete length prefix; wait for more
            };
            let need = u32::from_le_bytes(*hdr) as usize;
            if buf.len() < 4 + need {
                return Ok(());
            }
            COALESCE_SITE.record(need);
            let msg: Vec<u8> = buf[4..4 + need].to_vec();
            buf.drain(..4 + need);
            // Coalescing: the reassembled message keeps the trace of
            // the block that completed it.
            ctx.send_up(Block::delim(msg).with_trace_of(&b))?;
        }
    }
}

/// A byte-stuffing module that escapes a flag byte, as serial-line
/// protocols do; used by the UART framing tests.
pub struct ByteStuff {
    /// The flag byte that terminates a frame.
    pub flag: u8,
    /// The escape byte.
    pub esc: u8,
    partial: Mutex<(Vec<u8>, bool)>,
}

impl ByteStuff {
    /// Creates a stuffer with the conventional 0x7e/0x7d pair.
    pub fn new() -> Arc<ByteStuff> {
        Arc::new(ByteStuff {
            flag: 0x7e,
            esc: 0x7d,
            partial: Mutex::named((Vec::new(), false), "streams.bytestuff.partial"),
        })
    }
}

impl StreamModule for ByteStuff {
    fn name(&self) -> &str {
        "bytestuff"
    }

    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        if b.kind != BlockKind::Data {
            return ctx.send_down(b);
        }
        let mut out = Vec::with_capacity(b.len() + 2);
        for &byte in &b.data {
            if byte == self.flag || byte == self.esc {
                out.push(self.esc);
                out.push(byte ^ 0x20);
            } else {
                out.push(byte);
            }
        }
        out.push(self.flag);
        BYTESTUFF_SITE.record(out.len());
        ctx.send_down(
            Block {
                kind: BlockKind::Data,
                delim: b.delim,
                data: out,
                trace: None,
            }
            .with_trace_of(&b),
        )
    }

    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
        if b.kind != BlockKind::Data {
            return ctx.send_up(b);
        }
        let mut state = self.partial.lock();
        for &byte in &b.data {
            if state.1 {
                state.0.push(byte ^ 0x20);
                state.1 = false;
            } else if byte == self.esc {
                state.1 = true;
            } else if byte == self.flag {
                let msg = std::mem::take(&mut state.0);
                ctx.send_up(Block::delim(msg))?;
            } else {
                state.0.push(byte);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Stream;

    struct Loopback;

    impl StreamModule for Loopback {
        fn name(&self) -> &str {
            "loop"
        }
        fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            if b.kind == BlockKind::Data {
                ctx.send_up(b)
            } else {
                Ok(())
            }
        }
        fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            ctx.send_up(b)
        }
    }

    /// A loopback that merges all data into undelimited single-byte
    /// blocks, destroying boundaries like a TCP link would.
    struct ByteLoop;

    impl StreamModule for ByteLoop {
        fn name(&self) -> &str {
            "byteloop"
        }
        fn put_down(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            if b.kind != BlockKind::Data {
                return Ok(());
            }
            for &byte in &b.data {
                ctx.send_up(Block::data(vec![byte]))?;
            }
            Ok(())
        }
        fn put_up(&self, ctx: &ModuleCtx, b: Block) -> Result<()> {
            ctx.send_up(b)
        }
    }

    #[test]
    fn snoop_counts_both_directions() {
        let s = Stream::bare();
        s.set_device(Arc::new(Loopback));
        let snoop = Snoop::new();
        s.push_module(Arc::clone(&snoop) as Arc<dyn StreamModule>);
        s.write(b"12345").unwrap();
        let _ = s.read(100).unwrap();
        assert_eq!(snoop.down_bytes.get(), 5);
        assert_eq!(snoop.up_bytes.get(), 5);
        assert!(snoop.stats().contains("in: blocks 1 bytes 5"));
    }

    #[test]
    fn delim_restores_boundaries_over_byte_link() {
        let s = Stream::bare();
        s.set_device(Arc::new(ByteLoop));
        s.push_module(DelimMod::new() as Arc<dyn StreamModule>);
        s.write(b"first message").unwrap();
        s.write(b"second").unwrap();
        assert_eq!(s.read(1000).unwrap(), b"first message");
        assert_eq!(s.read(1000).unwrap(), b"second");
    }

    #[test]
    fn bytestuff_round_trip_with_flag_bytes() {
        let s = Stream::bare();
        s.set_device(Arc::new(ByteLoop));
        s.push_module(ByteStuff::new() as Arc<dyn StreamModule>);
        let payload = vec![1, 0x7e, 2, 0x7d, 3];
        s.write(&payload).unwrap();
        assert_eq!(s.read(1000).unwrap(), payload);
    }

    #[test]
    fn snoop_tap_copies() {
        let copies = Arc::new(Mutex::new(Vec::new()));
        let c = Arc::clone(&copies);
        let snoop = Snoop::new();
        snoop.set_tap(move |b| c.lock().push(b.data));
        let s = Stream::bare();
        s.set_device(Arc::new(Loopback));
        s.push_module(Arc::clone(&snoop) as Arc<dyn StreamModule>);
        s.write(b"tapped").unwrap();
        let _ = s.read(100).unwrap();
        let seen = copies.lock();
        assert_eq!(seen.len(), 2, "one copy each direction");
    }
}
