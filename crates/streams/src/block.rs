//! Blocks: the unit of information in a stream.
//!
//! "Information is represented by linked lists of kernel structures
//! called blocks. Each block contains a type, some state flags, and
//! pointers to an optional buffer. Block buffers can hold either data or
//! control information, i.e., directives to the processing modules."

use plan9_netlog::trace::{self, TraceHandle};
use plan9_netlog::Facility;
use plan9_support::time;
use std::time::Instant;

/// The type of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Ordinary data moving along the stream.
    Data,
    /// A control directive; the buffer holds an ASCII command. Commands
    /// are ASCII strings "so byte ordering is not an issue when one
    /// system controls streams in a name space implemented on another
    /// processor".
    Control,
    /// A hangup indication sent up the stream from the device end.
    Hangup,
}

/// The nettrace annotation riding on a block: which root span the
/// block's bytes belong to, and — while the block sits in a queue —
/// when it was enqueued, so the dequeue can record the residency span.
///
/// The annotation survives fragmentation (each fragment carries a clone
/// of the handle) and coalescing (the merged block keeps the handle of
/// the block that completed it).
#[derive(Debug, Clone)]
pub struct BlockTrace {
    /// The root span these bytes belong to.
    pub handle: TraceHandle,
    queued_at: Option<Instant>,
}

impl BlockTrace {
    /// Annotates with a root span handle.
    pub fn new(handle: TraceHandle) -> BlockTrace {
        BlockTrace {
            handle,
            queued_at: None,
        }
    }

    /// Called by `Queue::put`: stamps the enqueue time.
    pub fn note_enqueued(&mut self) {
        self.queued_at = Some(time::now());
    }

    /// Called on dequeue: records the queue-residency span.
    pub fn note_dequeued(&mut self) {
        if let Some(t0) = self.queued_at.take() {
            self.handle
                .span(Facility::Streams, "queue", t0, time::now());
        }
    }
}

/// A block moving through a stream.
#[derive(Debug, Clone)]
pub struct Block {
    /// Data or control.
    pub kind: BlockKind,
    /// True on the last block of a write: downstream modules that care
    /// about write boundaries look for this flag.
    pub delim: bool,
    /// The buffer.
    pub data: Vec<u8>,
    /// The nettrace annotation, if the writer was traced. `None` costs
    /// nothing; equality and the codecs ignore it.
    pub trace: Option<BlockTrace>,
}

/// Equality is over the payload only: the trace annotation is
/// diagnostic freight, invisible to the protocol machinery and tests.
impl PartialEq for Block {
    fn eq(&self, other: &Block) -> bool {
        self.kind == other.kind && self.delim == other.delim && self.data == other.data
    }
}

impl Eq for Block {}

impl Block {
    /// A data block without a delimiter.
    pub fn data(bytes: impl Into<Vec<u8>>) -> Block {
        Block {
            kind: BlockKind::Data,
            delim: false,
            data: bytes.into(),
            trace: None,
        }
    }

    /// A data block carrying the end-of-write delimiter.
    pub fn delim(bytes: impl Into<Vec<u8>>) -> Block {
        Block {
            kind: BlockKind::Data,
            delim: true,
            data: bytes.into(),
            trace: None,
        }
    }

    /// A control block holding an ASCII command.
    pub fn control(cmd: &str) -> Block {
        Block {
            kind: BlockKind::Control,
            delim: true,
            data: cmd.as_bytes().to_vec(),
            trace: None,
        }
    }

    /// A hangup block.
    pub fn hangup() -> Block {
        Block {
            kind: BlockKind::Hangup,
            delim: true,
            data: Vec::new(),
            trace: None,
        }
    }

    /// Annotates the block with the calling thread's current trace.
    /// One thread-local read when tracing is off.
    pub fn annotate(mut self) -> Block {
        if self.trace.is_none() {
            if let Some(h) = trace::current() {
                self.trace = Some(BlockTrace::new(h));
            }
        }
        self
    }

    /// Carries `from`'s annotation onto this block, as when a module
    /// reframes or coalesces payloads.
    pub fn with_trace_of(mut self, from: &Block) -> Block {
        self.trace = from.trace.clone();
        self
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Interprets a control block's buffer as a command string.
    ///
    /// Returns the command split into whitespace-separated fields, the way
    /// processing modules parse directives.
    pub fn ctl_fields(&self) -> Vec<String> {
        String::from_utf8_lossy(&self.data)
            .split_whitespace()
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_delim() {
        assert_eq!(Block::data(vec![1]).kind, BlockKind::Data);
        assert!(!Block::data(vec![1]).delim);
        assert!(Block::delim(vec![1]).delim);
        assert_eq!(Block::control("push urp").kind, BlockKind::Control);
        assert_eq!(Block::hangup().kind, BlockKind::Hangup);
    }

    #[test]
    fn ctl_fields_splits_command() {
        let b = Block::control("connect 2048  now");
        assert_eq!(b.ctl_fields(), vec!["connect", "2048", "now"]);
    }

    #[test]
    fn empty_block() {
        let b = Block::data(Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn trace_annotation_is_invisible_to_equality() {
        let t = plan9_netlog::trace::Tracer::new(4);
        t.ctl("trace on").unwrap();
        let h = t.begin("write").unwrap();
        let _g = h.set_current();
        let annotated = Block::data(vec![1, 2]).annotate();
        assert!(annotated.trace.is_some());
        assert_eq!(annotated, Block::data(vec![1, 2]));
        // The handle survives reframing.
        let reframed = Block::delim(vec![9]).with_trace_of(&annotated);
        assert_eq!(
            reframed.trace.as_ref().unwrap().handle.id(),
            annotated.trace.as_ref().unwrap().handle.id()
        );
    }

    #[test]
    fn untraced_thread_annotates_nothing() {
        assert!(Block::data(vec![1]).annotate().trace.is_none());
    }
}
