//! Blocks: the unit of information in a stream.
//!
//! "Information is represented by linked lists of kernel structures
//! called blocks. Each block contains a type, some state flags, and
//! pointers to an optional buffer. Block buffers can hold either data or
//! control information, i.e., directives to the processing modules."

/// The type of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Ordinary data moving along the stream.
    Data,
    /// A control directive; the buffer holds an ASCII command. Commands
    /// are ASCII strings "so byte ordering is not an issue when one
    /// system controls streams in a name space implemented on another
    /// processor".
    Control,
    /// A hangup indication sent up the stream from the device end.
    Hangup,
}

/// A block moving through a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Data or control.
    pub kind: BlockKind,
    /// True on the last block of a write: downstream modules that care
    /// about write boundaries look for this flag.
    pub delim: bool,
    /// The buffer.
    pub data: Vec<u8>,
}

impl Block {
    /// A data block without a delimiter.
    pub fn data(bytes: impl Into<Vec<u8>>) -> Block {
        Block {
            kind: BlockKind::Data,
            delim: false,
            data: bytes.into(),
        }
    }

    /// A data block carrying the end-of-write delimiter.
    pub fn delim(bytes: impl Into<Vec<u8>>) -> Block {
        Block {
            kind: BlockKind::Data,
            delim: true,
            data: bytes.into(),
        }
    }

    /// A control block holding an ASCII command.
    pub fn control(cmd: &str) -> Block {
        Block {
            kind: BlockKind::Control,
            delim: true,
            data: cmd.as_bytes().to_vec(),
        }
    }

    /// A hangup block.
    pub fn hangup() -> Block {
        Block {
            kind: BlockKind::Hangup,
            delim: true,
            data: Vec::new(),
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Interprets a control block's buffer as a command string.
    ///
    /// Returns the command split into whitespace-separated fields, the way
    /// processing modules parse directives.
    pub fn ctl_fields(&self) -> Vec<String> {
        String::from_utf8_lossy(&self.data)
            .split_whitespace()
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_delim() {
        assert_eq!(Block::data(vec![1]).kind, BlockKind::Data);
        assert!(!Block::data(vec![1]).delim);
        assert!(Block::delim(vec![1]).delim);
        assert_eq!(Block::control("push urp").kind, BlockKind::Control);
        assert_eq!(Block::hangup().kind, BlockKind::Hangup);
    }

    #[test]
    fn ctl_fields_splits_command() {
        let b = Block::control("connect 2048  now");
        assert_eq!(b.ctl_fields(), vec!["connect", "2048", "now"]);
    }

    #[test]
    fn empty_block() {
        let b = Block::data(Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
