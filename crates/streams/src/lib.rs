//! Plan 9 streams (§2.4 of the paper).
//!
//! A stream is a bidirectional channel connecting a physical or
//! pseudo-device to user processes. The user processes insert and remove
//! data at one end; kernel processes acting on behalf of a device insert
//! data at the other. A stream comprises a linear list of processing
//! modules, each with an *upstream* (toward the process) and *downstream*
//! (toward the device) put routine.
//!
//! Faithful properties carried over from the paper:
//!
//! * Information is represented by [`Block`]s holding data or control
//!   directives; the last block of a write is flagged with a **delimiter**.
//! * A write of less than 32 KiB is contained in (and delivered as) a
//!   single block, which makes sub-32 KiB writes atomic.
//! * Reading terminates when the read count is reached or at the end of a
//!   delimited block; a per-stream **read lock** ensures one reader at a
//!   time sees contiguous bytes.
//! * Streams are dynamically configurable: the stream system intercepts
//!   `push name`, `pop` and `hangup` control blocks; all other control
//!   blocks are interpreted by the modules they pass through.
//! * Modules may spawn **helper kernel processes** (threads here) to field
//!   asynchronous events such as retransmission timers — the design choice
//!   the paper contrasts with Unix run-to-completion service routines.
//! * There is **no implicit synchronization**: each module synchronizes
//!   its own state, exactly as the paper warns.

pub mod block;
pub mod module;
pub mod modules;
pub mod mux;
pub mod queue;
pub mod spipe;
pub mod stream;

pub use block::{Block, BlockKind};
pub use module::{ModuleCtx, StreamModule};
pub use mux::{Mux, MuxPort};
pub use queue::Queue;
pub use spipe::stream_pipe;
pub use stream::{ModuleRegistry, Stream, MAX_ATOMIC_WRITE};

/// Errors produced by stream operations; string-based like the rest of
/// the system.
pub type StreamError = plan9_ninep::NineError;

/// Result alias for stream operations.
pub type Result<T> = std::result::Result<T, StreamError>;
