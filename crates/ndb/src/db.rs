//! The multi-file database and its query interface.
//!
//! "All programs read the database directly so consistency problems are
//! rare." A [`Db`] is a list of files — conventionally `local` then
//! `global` — searched in order. Queries try a per-attribute hash file
//! first and fall back to a linear scan when the hash is missing or its
//! recorded modification time no longer matches the master file.

use crate::hash::{hash_lookup, HASH_SUFFIX_SEP};
use crate::parse::{parse_entries, parse_entry_at, Entry};
use std::path::{Path, PathBuf};

/// One loaded database file.
pub struct DbFile {
    /// Where the file lives (None for in-memory test databases).
    pub path: Option<PathBuf>,
    /// The raw text, kept for offset-based hash lookups.
    pub text: String,
    /// Modification time (seconds) when loaded; hash files must match.
    pub mtime: u64,
    /// Parsed entries in file order.
    pub entries: Vec<Entry>,
}

impl DbFile {
    /// Loads a file from disk.
    pub fn open(path: &Path) -> crate::Result<DbFile> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("ndb: open {}: {e}", path.display()))?;
        let mtime = file_mtime(path)?;
        let entries = parse_entries(&text);
        Ok(DbFile {
            path: Some(path.to_path_buf()),
            text,
            mtime,
            entries,
        })
    }

    /// Builds an in-memory file from text (no hash support).
    pub fn from_text(text: &str) -> DbFile {
        DbFile {
            path: None,
            text: text.to_string(),
            mtime: 0,
            entries: parse_entries(text),
        }
    }
}

/// Reads a file's mtime in whole seconds.
pub fn file_mtime(path: &Path) -> crate::Result<u64> {
    let meta = std::fs::metadata(path).map_err(|e| format!("ndb: stat {}: {e}", path.display()))?;
    let mtime = meta
        .modified()
        .map_err(|e| format!("ndb: mtime {}: {e}", path.display()))?;
    Ok(plan9_support::time::to_unix_seconds(mtime))
}

/// The network database: an ordered list of files.
pub struct Db {
    /// The files, local first.
    pub files: Vec<DbFile>,
    /// Count of linear-scan queries (observability for the scale bench).
    pub scans: std::sync::atomic::AtomicU64,
    /// Count of hash-hit queries.
    pub hash_hits: std::sync::atomic::AtomicU64,
}

impl Db {
    /// Opens the database from the given file paths (missing files are
    /// an error; the paper's system always has `local`).
    pub fn open(paths: &[PathBuf]) -> crate::Result<Db> {
        let mut files = Vec::new();
        for p in paths {
            files.push(DbFile::open(p)?);
        }
        Ok(Db {
            files,
            scans: Default::default(),
            hash_hits: Default::default(),
        })
    }

    /// Builds an in-memory database from text blobs (tests, machines
    /// without a disk).
    pub fn from_texts(texts: &[&str]) -> Db {
        Db {
            files: texts.iter().map(|t| DbFile::from_text(t)).collect(),
            scans: Default::default(),
            hash_hits: Default::default(),
        }
    }

    /// Total number of entries across all files.
    pub fn len(&self) -> usize {
        self.files.iter().map(|f| f.entries.len()).sum()
    }

    /// Whether the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds every entry containing `attr=value`, using a hash file when
    /// a fresh one exists, in file order.
    pub fn query(&self, attr: &str, value: &str) -> Vec<Entry> {
        let mut out = Vec::new();
        for file in &self.files {
            match self.query_file_hashed(file, attr, value) {
                Some(mut entries) => {
                    self.hash_hits
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    out.append(&mut entries);
                }
                None => {
                    self.scans
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    out.extend(
                        file.entries
                            .iter()
                            .filter(|e| e.has(attr, value))
                            .cloned(),
                    );
                }
            }
        }
        out
    }

    /// The first entry containing `attr=value`.
    pub fn query_one(&self, attr: &str, value: &str) -> Option<Entry> {
        self.query(attr, value).into_iter().next()
    }

    /// Finds an entry for a system named by any of its names: `sys`,
    /// `dom`, `ip` or `dk`.
    pub fn find_system(&self, name: &str) -> Option<Entry> {
        for attr in ["sys", "dom", "ip", "dk"] {
            if let Some(e) = self.query_one(attr, name) {
                return Some(e);
            }
        }
        None
    }

    /// Service-name lookup: `tcp=echo port=7` → `lookup_service("tcp",
    /// "echo")` = 7. Numeric names pass through.
    pub fn lookup_service(&self, proto: &str, name: &str) -> Option<u16> {
        if let Ok(n) = name.parse::<u16>() {
            return Some(n);
        }
        self.query_one(proto, name)
            .and_then(|e| e.get("port").and_then(|p| p.parse().ok()))
    }

    fn query_file_hashed(&self, file: &DbFile, attr: &str, value: &str) -> Option<Vec<Entry>> {
        let path = file.path.as_ref()?;
        let hash_path = PathBuf::from(format!(
            "{}{}{}",
            path.display(),
            HASH_SUFFIX_SEP,
            attr
        ));
        let offsets = hash_lookup(&hash_path, file.mtime, value)?;
        let mut out = Vec::new();
        for off in offsets {
            if let Some(e) = parse_entry_at(&file.text, off) {
                if e.has(attr, value) {
                    out.push(e);
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCAL: &str = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 dk=nj/astro/helix proto=il\n\
sys=bootes dom=bootes.research.bell-labs.com ip=135.104.9.2\n\
tcp=echo port=7\ntcp=discard port=9\ntcp=login port=513\nil=9fs port=17008\n";

    const GLOBAL: &str = "\
dom=ai.mit.edu ip=128.52.32.80\n\
sys=musca ip=135.104.9.6 dk=nj/astro/musca auth=p9auth\n";

    fn db() -> Db {
        Db::from_texts(&[LOCAL, GLOBAL])
    }

    #[test]
    fn query_across_files_in_order() {
        let d = db();
        let hits = d.query("ip", "135.104.9.31");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("sys"), Some("helix"));
        let hits = d.query("dom", "ai.mit.edu");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn find_system_by_any_name() {
        let d = db();
        for name in [
            "helix",
            "helix.research.bell-labs.com",
            "135.104.9.31",
            "nj/astro/helix",
        ] {
            let e = d.find_system(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(e.get("sys"), Some("helix"));
        }
        assert!(d.find_system("nonesuch").is_none());
    }

    #[test]
    fn service_lookup_like_paper() {
        let d = db();
        assert_eq!(d.lookup_service("tcp", "echo"), Some(7));
        assert_eq!(d.lookup_service("tcp", "discard"), Some(9));
        assert_eq!(d.lookup_service("tcp", "login"), Some(513));
        assert_eq!(d.lookup_service("il", "9fs"), Some(17008));
        assert_eq!(d.lookup_service("tcp", "17010"), Some(17010));
        assert_eq!(d.lookup_service("tcp", "nonesuch"), None);
    }

    #[test]
    fn in_memory_db_always_scans() {
        let d = db();
        d.query("sys", "helix");
        assert!(d.scans.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(d.hash_hits.load(std::sync::atomic::Ordering::Relaxed), 0);
    }
}
