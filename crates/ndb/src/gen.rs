//! Synthetic database generation for the §4.1 scale experiment.
//!
//! "Our global file, containing all information about both Datakit and
//! Internet systems in AT&T, has 43,000 lines." This module produces a
//! global file of the same shape and size so the hashed-vs-linear search
//! benchmark runs against realistic data.

use plan9_support::rng::SmallRng;
use std::fmt::Write as _;

/// Deterministically generates a global ndb file with roughly
/// `target_lines` lines. Returns the text and the list of system names,
/// so benchmarks can query names that exist.
pub fn generate_global(target_lines: usize, seed: u64) -> (String, Vec<String>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut text = String::new();
    let mut names = Vec::new();
    text.push_str("# synthetic AT&T-wide database (generated)\n");
    let sites = [
        "astro", "research", "honet", "cbosgd", "ihnp4", "mtune", "allegra", "ulysses",
    ];
    // Each system entry takes ~6 lines, matching the paper's example.
    let mut lines = 1usize;
    let mut serial = 0usize;
    while lines + 6 <= target_lines {
        let site = sites[rng.gen_range(0..sites.len())];
        let name = format!("{}{:05}", pick_name(&mut rng), serial);
        serial += 1;
        let a = rng.gen_range(1..250u8);
        let b = rng.gen_range(1..250u8);
        let ip = format!("135.{}.{}.{}", rng.gen_range(1..200u8), a, b);
        let ether: String = (0..6)
            .map(|_| format!("{:02x}", rng.gen_range(0..=255u8)))
            .collect();
        writeln!(text, "sys={name}").unwrap();
        writeln!(text, "\tdom={name}.{site}.att.com").unwrap();
        writeln!(text, "\tip={ip} ether={ether}").unwrap();
        writeln!(text, "\tdk=nj/{site}/{name}").unwrap();
        writeln!(text, "\tbootf=/mips/9power").unwrap();
        writeln!(text, "\tproto=il").unwrap();
        lines += 6;
        names.push(name);
    }
    (text, names)
}

/// One generated system in a topology database.
#[derive(Clone, Debug)]
pub struct TopoHost {
    /// Short system name (`c2h17`, `gw3`).
    pub sys: String,
    /// Fully qualified domain name (`c2h17.city2.sim`).
    pub dom: String,
    /// Dotted-quad IP (`10.2.0.19`).
    pub ip: String,
    /// 12-hex-digit Ethernet address, city-coded in byte 3.
    pub ether: String,
    /// The city this system sits in.
    pub city: usize,
}

/// A generated city-scale database: the ndb text plus structured
/// records for every real host and gateway, so the caller can attach
/// stations, register DNS zones, and sample names that must resolve.
#[derive(Clone, Debug)]
pub struct TopoNdb {
    /// The full ndb file text (hosts + gateways + filler).
    pub text: String,
    /// Every pooled host, city-major order.
    pub hosts: Vec<TopoHost>,
    /// One border gateway per city.
    pub gateways: Vec<TopoHost>,
}

/// Addressing plan shared by the generator and the topology builder:
/// unit 1 in each city is the gateway, pooled host `h` is unit `h+2`.
/// IP is `10.<city>.<unit/250>.<unit%250>`, the Ethernet address is
/// `08:00:09:<city>:<unit/256>:<unit%256>` — byte 3 carries the city,
/// which is what the inter-city bridges route on.
pub fn topo_addr(city: usize, unit: usize) -> (String, String) {
    let ip = format!("10.{}.{}.{}", city, unit / 250, unit % 250);
    let ether = format!("080009{:02x}{:02x}{:02x}", city, unit / 256, unit % 256);
    (ip, ether)
}

/// Deterministically generates the ndb for an N-city topology — every
/// pooled host and gateway as a real entry, padded with synthetic
/// filler systems (seeded) to roughly `target_lines` lines, the §4.1
/// global-file scale. Real entries are pure functions of the indices;
/// only the filler consumes random draws.
pub fn generate_topology(
    n_cities: usize,
    hosts_per_city: usize,
    target_lines: usize,
    seed: u64,
) -> TopoNdb {
    let mut text = String::new();
    let mut hosts = Vec::new();
    let mut gateways = Vec::new();
    text.push_str("# synthetic internet-in-a-process database (generated)\n");
    let mut lines = 1usize;
    for city in 0..n_cities {
        let (ip, ether) = topo_addr(city, 1);
        let gw = TopoHost {
            sys: format!("gw{city}"),
            dom: format!("gw{city}.city{city}.sim"),
            ip,
            ether,
            city,
        };
        lines += write_topo_entry(&mut text, &gw);
        gateways.push(gw);
        for h in 0..hosts_per_city {
            let (ip, ether) = topo_addr(city, h + 2);
            let host = TopoHost {
                sys: format!("c{city}h{h}"),
                dom: format!("c{city}h{h}.city{city}.sim"),
                ip,
                ether,
                city,
            };
            lines += write_topo_entry(&mut text, &host);
            hosts.push(host);
        }
    }
    // Pad to the paper's global-file scale with filler systems that
    // belong to no city (and no DNS zone — they are the negative
    // lookup population).
    let mut rng = SmallRng::seed_from_u64(seed);
    let sites = [
        "astro", "research", "honet", "cbosgd", "ihnp4", "mtune", "allegra", "ulysses",
    ];
    let mut serial = 0usize;
    while lines + 6 <= target_lines {
        let site = sites[rng.gen_range(0..sites.len())];
        let name = format!("{}{:05}", pick_name(&mut rng), serial);
        serial += 1;
        let ip = format!(
            "135.{}.{}.{}",
            rng.gen_range(1..200u8),
            rng.gen_range(1..250u8),
            rng.gen_range(1..250u8)
        );
        let ether: String = (0..6)
            .map(|_| format!("{:02x}", rng.gen_range(0..=255u8)))
            .collect();
        writeln!(text, "sys={name}").unwrap();
        writeln!(text, "\tdom={name}.{site}.att.com").unwrap();
        writeln!(text, "\tip={ip} ether={ether}").unwrap();
        writeln!(text, "\tdk=nj/{site}/{name}").unwrap();
        writeln!(text, "\tbootf=/mips/9power").unwrap();
        writeln!(text, "\tproto=il").unwrap();
        lines += 6;
    }
    TopoNdb {
        text,
        hosts,
        gateways,
    }
}

fn write_topo_entry(text: &mut String, h: &TopoHost) -> usize {
    writeln!(text, "sys={}", h.sys).unwrap();
    writeln!(text, "\tdom={}", h.dom).unwrap();
    writeln!(text, "\tip={} ether={}", h.ip, h.ether).unwrap();
    writeln!(text, "\tproto=il").unwrap();
    4
}

fn pick_name(rng: &mut SmallRng) -> &'static str {
    const STEMS: [&str; 12] = [
        "helix", "spindle", "bootes", "musca", "pyxis", "fornax", "lepus", "crux", "dorado",
        "carina", "volans", "tucana",
    ];
    STEMS[rng.gen_range(0..STEMS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;

    #[test]
    fn generates_requested_size() {
        let (text, names) = generate_global(1200, 42);
        let lines = text.lines().count();
        assert!(lines > 1100 && lines <= 1200, "{lines}");
        assert!(!names.is_empty());
    }

    #[test]
    fn generated_text_parses_and_queries() {
        let (text, names) = generate_global(600, 7);
        let db = Db::from_texts(&[&text]);
        assert_eq!(db.len(), names.len());
        let e = db.query_one("sys", &names[0]).unwrap();
        assert!(e.get("dom").unwrap().ends_with(".att.com"));
        assert!(e.get("dk").unwrap().starts_with("nj/"));
    }

    #[test]
    fn topology_entries_parse_and_pad_to_scale() {
        let t = generate_topology(3, 10, 2000, 9);
        assert_eq!(t.hosts.len(), 30);
        assert_eq!(t.gateways.len(), 3);
        let lines = t.text.lines().count();
        assert!(lines > 1900 && lines <= 2000, "{lines}");
        let db = Db::from_texts(&[&t.text]);
        let e = db.query_one("sys", "c2h7").unwrap();
        assert_eq!(e.get("dom").unwrap(), "c2h7.city2.sim");
        assert_eq!(e.get("ip").unwrap(), "10.2.0.9");
        let gw = db.query_one("sys", "gw1").unwrap();
        assert_eq!(gw.get("ip").unwrap(), "10.1.0.1");
        assert_eq!(gw.get("ether").unwrap(), "080009010001");
    }

    #[test]
    fn topology_deterministic_and_addrs_unique() {
        let a = generate_topology(2, 300, 5000, 4);
        let b = generate_topology(2, 300, 5000, 4);
        assert_eq!(a.text, b.text);
        let mut ips: Vec<&str> = a
            .hosts
            .iter()
            .chain(a.gateways.iter())
            .map(|h| h.ip.as_str())
            .collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), n, "duplicate generated IPs");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, _) = generate_global(300, 1);
        let (b, _) = generate_global(300, 1);
        assert_eq!(a, b);
        let (c, _) = generate_global(300, 2);
        assert_ne!(a, c);
    }
}
