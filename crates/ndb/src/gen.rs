//! Synthetic database generation for the §4.1 scale experiment.
//!
//! "Our global file, containing all information about both Datakit and
//! Internet systems in AT&T, has 43,000 lines." This module produces a
//! global file of the same shape and size so the hashed-vs-linear search
//! benchmark runs against realistic data.

use plan9_support::rng::SmallRng;
use std::fmt::Write as _;

/// Deterministically generates a global ndb file with roughly
/// `target_lines` lines. Returns the text and the list of system names,
/// so benchmarks can query names that exist.
pub fn generate_global(target_lines: usize, seed: u64) -> (String, Vec<String>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut text = String::new();
    let mut names = Vec::new();
    text.push_str("# synthetic AT&T-wide database (generated)\n");
    let sites = [
        "astro", "research", "honet", "cbosgd", "ihnp4", "mtune", "allegra", "ulysses",
    ];
    // Each system entry takes ~6 lines, matching the paper's example.
    let mut lines = 1usize;
    let mut serial = 0usize;
    while lines + 6 <= target_lines {
        let site = sites[rng.gen_range(0..sites.len())];
        let name = format!("{}{:05}", pick_name(&mut rng), serial);
        serial += 1;
        let a = rng.gen_range(1..250u8);
        let b = rng.gen_range(1..250u8);
        let ip = format!("135.{}.{}.{}", rng.gen_range(1..200u8), a, b);
        let ether: String = (0..6)
            .map(|_| format!("{:02x}", rng.gen_range(0..=255u8)))
            .collect();
        writeln!(text, "sys={name}").unwrap();
        writeln!(text, "\tdom={name}.{site}.att.com").unwrap();
        writeln!(text, "\tip={ip} ether={ether}").unwrap();
        writeln!(text, "\tdk=nj/{site}/{name}").unwrap();
        writeln!(text, "\tbootf=/mips/9power").unwrap();
        writeln!(text, "\tproto=il").unwrap();
        lines += 6;
        names.push(name);
    }
    (text, names)
}

fn pick_name(rng: &mut SmallRng) -> &'static str {
    const STEMS: [&str; 12] = [
        "helix", "spindle", "bootes", "musca", "pyxis", "fornax", "lepus", "crux", "dorado",
        "carina", "volans", "tucana",
    ];
    STEMS[rng.gen_range(0..STEMS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;

    #[test]
    fn generates_requested_size() {
        let (text, names) = generate_global(1200, 42);
        let lines = text.lines().count();
        assert!(lines > 1100 && lines <= 1200, "{lines}");
        assert!(!names.is_empty());
    }

    #[test]
    fn generated_text_parses_and_queries() {
        let (text, names) = generate_global(600, 7);
        let db = Db::from_texts(&[&text]);
        assert_eq!(db.len(), names.len());
        let e = db.query_one("sys", &names[0]).unwrap();
        assert!(e.get("dom").unwrap().ends_with(".att.com"));
        assert!(e.get("dk").unwrap().starts_with("nj/"));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, _) = generate_global(300, 1);
        let (b, _) = generate_global(300, 1);
        assert_eq!(a, b);
        let (c, _) = generate_global(300, 2);
        assert_ne!(a, c);
    }
}
