//! Parsing ndb files.
//!
//! An entry begins with a line at the left margin and continues through
//! indented lines. Each line holds whitespace-separated `attr=value`
//! pairs; values may be double-quoted to include spaces. `#` starts a
//! comment. An attribute with no `=` is a bare flag (value empty).

/// One multi-line entry: an ordered list of attribute/value pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Entry {
    /// The pairs in file order; order matters for `$attr` searches.
    pub pairs: Vec<(String, String)>,
    /// Byte offset of the entry's first line in its file (hash files
    /// point here).
    pub offset: u64,
}

impl Entry {
    /// The first value for `attr`, if any.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v.as_str())
    }

    /// Every value for `attr`, in order.
    pub fn all(&self, attr: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(a, _)| a == attr)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether the entry contains the exact pair.
    pub fn has(&self, attr: &str, value: &str) -> bool {
        self.pairs.iter().any(|(a, v)| a == attr && v == value)
    }

    /// Renders the entry back into file syntax (header pair first, the
    /// rest indented).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (a, v)) in self.pairs.iter().enumerate() {
            let field = if v.is_empty() {
                a.clone()
            } else if v.contains(char::is_whitespace) {
                format!("{a}=\"{v}\"")
            } else {
                format!("{a}={v}")
            };
            if i == 0 {
                out.push_str(&field);
            } else {
                out.push_str("\n\t");
                out.push_str(&field);
            }
        }
        out.push('\n');
        out
    }
}

/// Splits one line into `attr=value` tokens, honoring double quotes.
fn parse_line(line: &str, pairs: &mut Vec<(String, String)>) {
    let mut chars = line.chars().peekable();
    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        if c == '#' {
            break; // comment to end of line
        }
        // Attribute name.
        let mut attr = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' || c.is_whitespace() || c == '#' {
                break;
            }
            attr.push(c);
            chars.next();
        }
        if attr.is_empty() {
            chars.next();
            continue;
        }
        // Value. ndb files (and the paper's own listings) sometimes put
        // spaces around the '='; tolerate them.
        let mut value = String::new();
        if matches!(chars.peek(), Some(c) if *c == ' ' || *c == '\t') {
            // Only a lookahead: if no '=' follows the run of spaces, the
            // pairs are separate flags.
            let mut probe = chars.clone();
            while matches!(probe.peek(), Some(c) if c.is_whitespace()) {
                probe.next();
            }
            if matches!(probe.peek(), Some('=')) {
                chars = probe;
            }
        }
        if matches!(chars.peek(), Some('=')) {
            chars.next();
            while matches!(chars.peek(), Some(c) if *c == ' ' || *c == '\t') {
                chars.next();
            }
            if matches!(chars.peek(), Some('"')) {
                chars.next();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    value.push(c);
                }
            } else {
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    value.push(c);
                    chars.next();
                }
            }
        }
        pairs.push((attr, value));
    }
}

/// Parses a whole file's text into entries, recording byte offsets.
pub fn parse_entries(text: &str) -> Vec<Entry> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut current: Option<Entry> = None;
    let mut offset = 0u64;
    for line in text.split_inclusive('\n') {
        let line_offset = offset;
        offset += line.len() as u64;
        let stripped = line.trim_end_matches('\n');
        if stripped.trim().is_empty() || stripped.trim_start().starts_with('#') {
            continue;
        }
        let indented = stripped.starts_with(' ') || stripped.starts_with('\t');
        if !indented {
            // Header line: a new entry begins.
            if let Some(e) = current.take() {
                if !e.pairs.is_empty() {
                    entries.push(e);
                }
            }
            current = Some(Entry {
                pairs: Vec::new(),
                offset: line_offset,
            });
        }
        if let Some(e) = current.as_mut() {
            parse_line(stripped, &mut e.pairs);
        }
        // Indented lines before any header are ignored, like ndb does.
    }
    if let Some(e) = current.take() {
        if !e.pairs.is_empty() {
            entries.push(e);
        }
    }
    entries
}

/// Parses the single entry that starts at `offset` in `text` (used by
/// hash-file lookups).
pub fn parse_entry_at(text: &str, offset: u64) -> Option<Entry> {
    let rest = text.get(offset as usize..)?;
    let mut entry = Entry {
        pairs: Vec::new(),
        offset,
    };
    for (i, line) in rest.split_inclusive('\n').enumerate() {
        let stripped = line.trim_end_matches('\n');
        let indented = stripped.starts_with(' ') || stripped.starts_with('\t');
        if i > 0 && !indented {
            break;
        }
        if stripped.trim().is_empty() || stripped.trim_start().starts_with('#') {
            if i == 0 {
                return None;
            }
            continue;
        }
        parse_line(stripped, &mut entry.pairs);
    }
    if entry.pairs.is_empty() {
        None
    } else {
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's CPU server entry, verbatim.
    pub(crate) const HELIX: &str = "sys = helix\n\
\tdom=helix.research.bell-labs.com\n\
\tbootf=/mips/9power\n\
\tip=135.104.9.31 ether=0800690222f0\n\
\tdk=nj/astro/helix\n\
\tproto=il flavor=9cpu\n";

    #[test]
    fn paper_entry_parses() {
        let entries = parse_entries(HELIX);
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("sys"), Some("helix"));
        assert_eq!(e.get("dom"), Some("helix.research.bell-labs.com"));
        assert_eq!(e.get("ip"), Some("135.104.9.31"));
        assert_eq!(e.get("ether"), Some("0800690222f0"));
        assert_eq!(e.get("dk"), Some("nj/astro/helix"));
        assert_eq!(e.get("proto"), Some("il"));
        assert_eq!(e.get("flavor"), Some("9cpu"));
    }

    #[test]
    fn spaces_around_equals_tolerated() {
        // "sys = helix" is how the paper writes it.
        let entries = parse_entries("sys = helix\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("sys"), Some("helix"));
        // But separate flags stay separate.
        let entries = parse_entries("sys=x trusted other\n");
        assert_eq!(entries[0].all("trusted"), vec![""]);
        assert_eq!(entries[0].all("other"), vec![""]);
    }

    #[test]
    fn multiple_entries_split_on_margin() {
        let text = "ipnet=unix-room ip=135.104.117.0\n\tipgw=135.104.117.1\n\
ipnet=third-floor ip=135.104.51.0\n\tipgw=135.104.51.1\n";
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("ipgw"), Some("135.104.117.1"));
        assert_eq!(entries[1].get("ipnet"), Some("third-floor"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# the service map\ntcp=echo port=7\n\n# more\ntcp=discard port=9\n";
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("port"), Some("7"));
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let entries = parse_entries("sys=x descr=\"a b c\"\n");
        assert_eq!(entries[0].get("descr"), Some("a b c"));
    }

    #[test]
    fn flags_have_empty_values() {
        let entries = parse_entries("sys=x trusted\n");
        assert_eq!(entries[0].get("trusted"), Some(""));
    }

    #[test]
    fn multi_value_attrs() {
        let entries = parse_entries("sys=x ip=1.2.3.4\n\tip=5.6.7.8\n");
        assert_eq!(entries[0].all("ip"), vec!["1.2.3.4", "5.6.7.8"]);
    }

    #[test]
    fn offsets_allow_random_access() {
        let text = "sys=a ip=1.1.1.1\nsys=b ip=2.2.2.2\n\tdom=b.example\n";
        let entries = parse_entries(text);
        assert_eq!(entries.len(), 2);
        let b = parse_entry_at(text, entries[1].offset).unwrap();
        assert_eq!(b.get("sys"), Some("b"));
        assert_eq!(b.get("dom"), Some("b.example"));
        // Random access to the first stops at the margin.
        let a = parse_entry_at(text, entries[0].offset).unwrap();
        assert_eq!(a.pairs.len(), 2);
    }

    #[test]
    fn render_round_trips() {
        let entries = parse_entries(HELIX);
        let rendered = entries[0].render();
        let reparsed = parse_entries(&rendered);
        assert_eq!(reparsed[0].pairs, entries[0].pairs);
    }

    plan9_support::props! {
        fn prop_render_parse_round_trip(g, cases = 256) {
            const ATTR: &str = "abcdefghijklmnopqrstuvwxyz";
            const VAL: &str = "abcdefghijklmnopqrstuvwxyz0123456789./!-";
            let entry = Entry {
                pairs: g.vec(1..10, |g| {
                    (g.string_of(ATTR, 1..9), g.string_of(VAL, 0..13))
                }),
                offset: 0,
            };
            let text = entry.render();
            let reparsed = parse_entries(&text);
            assert_eq!(reparsed.len(), 1);
            assert_eq!(&reparsed[0].pairs, &entry.pairs);
        }
    }
}
