//! On-disk per-attribute hash files.
//!
//! "To speed searches, we build hash table files for each attribute we
//! expect to search often. The hash file entries point to entries in the
//! master files. Every hash file contains the modification time of its
//! master file so we can avoid using an out-of-date hash table. Searches
//! for attributes that aren't hashed or whose hash table is out-of-date
//! still work, they just take longer."
//!
//! Layout of `<master>.<attr>`:
//!
//! ```text
//! magic    8 bytes  "NDBHASH1"
//! mtime    8 bytes  master's modification time, seconds, little-endian
//! nbucket  4 bytes
//! index    nbucket × (offset u64, count u32)   into the slot area
//! slots    concatenated u64 entry offsets, grouped by bucket
//! ```

use crate::db::file_mtime;
use crate::parse::parse_entries;
use std::path::Path;

/// Hash files live next to the master as `<master>.<attr>`.
pub const HASH_SUFFIX_SEP: &str = ".";

const MAGIC: &[u8; 8] = b"NDBHASH1";

/// The string hash (FNV-1a; stable and endian-free, like ndb's own).
pub fn ndb_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the hash file for `attr` next to `master`.
///
/// Returns the number of values indexed.
pub fn build_hash(master: &Path, attr: &str) -> crate::Result<usize> {
    let text = std::fs::read_to_string(master)
        .map_err(|e| format!("ndb: read {}: {e}", master.display()))?;
    let mtime = file_mtime(master)?;
    let entries = parse_entries(&text);
    // Collect (value, offset) pairs for the attribute.
    let mut pairs: Vec<(String, u64)> = Vec::new();
    for e in &entries {
        for v in e.all(attr) {
            pairs.push((v.to_string(), e.offset));
        }
    }
    let nbucket = (pairs.len().max(1) * 2).next_power_of_two() as u32;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); nbucket as usize];
    for (v, off) in &pairs {
        let b = (ndb_hash(v) % nbucket as u64) as usize;
        buckets[b].push(*off);
    }
    // Serialize.
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&mtime.to_le_bytes());
    out.extend_from_slice(&nbucket.to_le_bytes());
    let index_start = out.len();
    out.resize(index_start + nbucket as usize * 12, 0);
    let mut slot_off = out.len() as u64;
    for (i, bucket) in buckets.iter().enumerate() {
        let idx = index_start + i * 12;
        out[idx..idx + 8].copy_from_slice(&slot_off.to_le_bytes());
        out[idx + 8..idx + 12].copy_from_slice(&(bucket.len() as u32).to_le_bytes());
        slot_off += bucket.len() as u64 * 8;
    }
    for bucket in &buckets {
        for off in bucket {
            out.extend_from_slice(&off.to_le_bytes());
        }
    }
    let hash_path = format!("{}{}{}", master.display(), HASH_SUFFIX_SEP, attr);
    std::fs::write(&hash_path, &out).map_err(|e| format!("ndb: write {hash_path}: {e}"))?;
    Ok(pairs.len())
}

/// Consults a hash file; returns candidate entry offsets for `value`.
///
/// `None` means "no usable hash" — missing, malformed, or stale (its
/// recorded mtime differs from the master's current `master_mtime`) —
/// and the caller must fall back to a linear scan.
pub fn hash_lookup(hash_path: &Path, master_mtime: u64, value: &str) -> Option<Vec<u64>> {
    let data = std::fs::read(hash_path).ok()?;
    if data.len() < 20 || &data[..8] != MAGIC {
        return None;
    }
    let mtime = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if mtime != master_mtime {
        return None; // stale: the master changed under it
    }
    let nbucket = u32::from_le_bytes(data[16..20].try_into().unwrap());
    if nbucket == 0 {
        return Some(Vec::new());
    }
    let bucket = (ndb_hash(value) % nbucket as u64) as usize;
    let idx = 20 + bucket * 12;
    if idx + 12 > data.len() {
        return None;
    }
    let slot_off = u64::from_le_bytes(data[idx..idx + 8].try_into().unwrap()) as usize;
    let count = u32::from_le_bytes(data[idx + 8..idx + 12].try_into().unwrap()) as usize;
    if slot_off + count * 8 > data.len() {
        return None;
    }
    let mut offsets = Vec::with_capacity(count);
    for i in 0..count {
        let o = slot_off + i * 8;
        offsets.push(u64::from_le_bytes(data[o..o + 8].try_into().unwrap()));
    }
    Some(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use std::io::Write;

    fn scratch(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ndbtest-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("local");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(text.as_bytes()).unwrap();
        path
    }

    const TEXT: &str = "\
sys=helix ip=135.104.9.31\nsys=bootes ip=135.104.9.2\nsys=musca ip=135.104.9.6 auth=yes\n";

    #[test]
    fn hashed_lookup_finds_entries() {
        let path = scratch("find", TEXT);
        build_hash(&path, "sys").unwrap();
        let db = Db::open(&[path]).unwrap();
        let hits = db.query("sys", "musca");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("ip"), Some("135.104.9.6"));
        assert!(db.hash_hits.load(std::sync::atomic::Ordering::Relaxed) >= 1);
        assert_eq!(db.scans.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn unhashed_attribute_still_works() {
        let path = scratch("unhashed", TEXT);
        build_hash(&path, "sys").unwrap();
        let db = Db::open(&[path]).unwrap();
        let hits = db.query("auth", "yes");
        assert_eq!(hits.len(), 1);
        assert!(db.scans.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }

    #[test]
    fn stale_hash_falls_back_to_scan() {
        let path = scratch("stale", TEXT);
        build_hash(&path, "sys").unwrap();
        // Rewrite the master with a different mtime and content.
        std::thread::sleep(std::time::Duration::from_millis(1100));
        let mut text = TEXT.to_string();
        text.push_str("sys=new ip=135.104.9.99\n");
        std::fs::write(&path, &text).unwrap();
        let db = Db::open(&[path]).unwrap();
        // The new entry is only findable by scan; a stale hash would
        // miss it.
        let hits = db.query("sys", "new");
        assert_eq!(hits.len(), 1, "stale hash must not be used");
        assert!(db.scans.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }

    #[test]
    fn hash_agrees_with_scan_on_every_key() {
        let path = scratch("agree", TEXT);
        build_hash(&path, "ip").unwrap();
        let db = Db::open(&[path]).unwrap();
        for ip in ["135.104.9.31", "135.104.9.2", "135.104.9.6", "1.2.3.4"] {
            let hashed = db.query("ip", ip);
            let scanned: Vec<_> = db.files[0]
                .entries
                .iter()
                .filter(|e| e.has("ip", ip))
                .cloned()
                .collect();
            assert_eq!(hashed.len(), scanned.len(), "{ip}");
        }
    }

    #[test]
    fn corrupt_hash_ignored() {
        let path = scratch("corrupt", TEXT);
        build_hash(&path, "sys").unwrap();
        let hash_path = format!("{}.sys", path.display());
        std::fs::write(&hash_path, b"garbage").unwrap();
        let db = Db::open(&[path]).unwrap();
        assert_eq!(db.query("sys", "helix").len(), 1);
    }

    plan9_support::props! {
        fn prop_hash_lookup_equals_scan(g, cases = 16) {
            let names: std::collections::HashSet<String> = g
                .vec(1..30, |g| {
                    g.string_of("abcdefghijklmnopqrstuvwxyz", 3..11)
                })
                .into_iter()
                .collect();
            let text: String = names
                .iter()
                .enumerate()
                .map(|(i, n)| format!("sys={n} ip=10.0.0.{}\n", i + 1))
                .collect();
            let path = scratch(&format!("prop{}", ndb_hash(&text)), &text);
            build_hash(&path, "sys").unwrap();
            let db = Db::open(&[path]).unwrap();
            for n in &names {
                assert_eq!(db.query("sys", n).len(), 1);
            }
            assert_eq!(db.query("sys", "zzznotthere").len(), 0);
        }
    }
}
