//! The Plan 9 network database, ndb (§4.1 of the paper).
//!
//! "One database on a shared server contains all the information needed
//! for network administration. Two ASCII files comprise the main
//! database: `/lib/ndb/local` contains locally administered information
//! and `/lib/ndb/global` contains information imported from elsewhere.
//! The files contain sets of attribute/value pairs of the form
//! `attr=value` ... Systems are described by multi-line entries; a header
//! line at the left margin begins each entry followed by zero or more
//! indented attribute/value pairs."
//!
//! Faithful pieces:
//!
//! * [`parse`] — the tokenizer and entry parser, including quoted values
//!   and comments.
//! * [`db`] — the multi-file database with attribute queries.
//! * [`hash`] — on-disk per-attribute hash files that carry the master
//!   file's modification time; stale or missing hash files silently fall
//!   back to a linear scan, exactly as the paper describes.
//! * [`ipattr`] — the "most closely associated" `$attr` search: source
//!   system first, then its subnetwork, then its network.
//! * [`gen`] — a synthetic 43,000-line global database, matching the
//!   paper's description of the AT&T-wide file, for the scale benchmark.

pub mod db;
pub mod gen;
pub mod hash;
pub mod ipattr;
pub mod parse;

pub use db::{Db, DbFile};
pub use ipattr::ipattr_search;
pub use parse::{parse_entries, Entry};

/// Errors from database operations.
pub type NdbError = String;

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, NdbError>;
