//! The "$attr" closest-association search (§4.2).
//!
//! "A host name of the form `$attr` is the name of an attribute in the
//! network database. The database search returns the value of the
//! matching attribute/value pair most closely associated with the source
//! host. ... the symbolic name `tcp!$auth!rexauth` causes CS to search
//! for the `auth` attribute in the database entry for the source system,
//! then its subnetwork (if there is one) and then its network."

use crate::db::Db;
use crate::parse::Entry;

/// Parses dotted-decimal into a u32 (no dependency on plan9-inet, which
/// sits above this crate).
fn parse_ip(s: &str) -> Option<u32> {
    let mut v: u32 = 0;
    let mut n = 0;
    for part in s.split('.') {
        let octet: u8 = part.parse().ok()?;
        v = (v << 8) | octet as u32;
        n += 1;
    }
    if n == 4 {
        Some(v)
    } else {
        None
    }
}

/// Infers a network's containment mask from trailing zero octets of the
/// network number (135.104.0.0 → /16, 135.104.51.0 → /24), the class-era
/// reading. An `ipmask` attribute on a network entry describes how that
/// network is *subnetted* (the paper's Class B example carries
/// `ipmask=255.255.255.0`), not the network's own extent, so it does not
/// participate in containment.
fn net_mask(_entry: &Entry, net: u32) -> u32 {
    if net & 0x00ff_ffff == 0 {
        0xff00_0000
    } else if net & 0x0000_ffff == 0 {
        0xffff_0000
    } else {
        0xffff_ff00
    }
}

/// An `ipnet` entry that contains `ip`, with its specificity.
fn ipnet_matches(entry: &Entry, ip: u32) -> Option<u32> {
    let net = entry.get("ip").and_then(parse_ip)?;
    entry.get("ipnet")?;
    let mask = net_mask(entry, net);
    if ip & mask == net & mask {
        Some(mask)
    } else {
        None
    }
}

/// Searches for `attr` most closely associated with the source host:
/// the host's own entry first, then each containing `ipnet` entry from
/// most to least specific. Returns every value found, deduplicated, in
/// association order.
pub fn ipattr_search(db: &Db, src_name: &str, attr: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |vals: Vec<&str>| {
        for v in vals {
            if !out.iter().any(|o| o == v) {
                out.push(v.to_string());
            }
        }
    };
    // The source system's own entry.
    let host = db.find_system(src_name);
    if let Some(h) = &host {
        push(h.all(attr));
    }
    // Its subnetwork, then its network.
    let ip = host
        .as_ref()
        .and_then(|h| h.get("ip"))
        .and_then(parse_ip)
        .or_else(|| parse_ip(src_name));
    if let Some(ip) = ip {
        let mut nets: Vec<(u32, Entry)> = Vec::new();
        for file in &db.files {
            for e in &file.entries {
                if let Some(mask) = ipnet_matches(e, ip) {
                    nets.push((mask, e.clone()));
                }
            }
        }
        // Most specific (largest mask) first.
        nets.sort_by_key(|(mask, _)| std::cmp::Reverse(*mask));
        for (_, e) in nets {
            push(e.all(attr));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.1 network entries, with hosts added.
    const TEXT: &str = "\
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
\tfs=bootes.research.bell-labs.com
\tauth=1127auth
ipnet=unix-room ip=135.104.117.0
\tipgw=135.104.117.1
ipnet=third-floor ip=135.104.51.0
\tipgw=135.104.51.1
ipnet=fourth-floor ip=135.104.52.0
\tipgw=135.104.52.1
sys=helix ip=135.104.9.31
sys=spindle ip=135.104.117.5 auth=spindleauth
";

    fn db() -> Db {
        Db::from_texts(&[TEXT])
    }

    #[test]
    fn host_entry_wins() {
        let vals = ipattr_search(&db(), "spindle", "auth");
        assert_eq!(vals[0], "spindleauth");
        // The network's auth server is still offered after.
        assert!(vals.contains(&"1127auth".to_string()));
    }

    #[test]
    fn falls_to_network_when_host_lacks_attr() {
        let vals = ipattr_search(&db(), "helix", "auth");
        assert_eq!(vals, vec!["1127auth"]);
    }

    #[test]
    fn subnet_before_network() {
        let vals = ipattr_search(&db(), "spindle", "ipgw");
        // unix-room (135.104.117.0/24) is more specific than the Class B
        // mh-astro-net (135.104.0.0/16), which has no ipgw anyway.
        assert_eq!(vals, vec!["135.104.117.1"]);
    }

    #[test]
    fn fs_attribute_found_for_any_host_on_net() {
        // Every 135.104.x.x host is on the Class B mh-astro-net.
        let vals = ipattr_search(&db(), "helix", "fs");
        assert_eq!(vals, vec!["bootes.research.bell-labs.com"]);
    }

    #[test]
    fn inferred_masks_from_trailing_zeros() {
        let text = "ipnet=big ip=10.0.0.0 dns=10.0.0.53\nipnet=small ip=10.1.2.0 dns=10.1.2.53\nsys=h ip=10.1.2.9\n";
        let db = Db::from_texts(&[text]);
        let vals = ipattr_search(&db, "h", "dns");
        // /24 "small" first, /8 "big" second.
        assert_eq!(vals, vec!["10.1.2.53", "10.0.0.53"]);
    }

    #[test]
    fn unknown_host_by_ip_literal() {
        let vals = ipattr_search(&db(), "135.104.51.40", "ipgw");
        assert_eq!(vals, vec!["135.104.51.1"]);
    }

    #[test]
    fn no_match_is_empty() {
        assert!(ipattr_search(&db(), "1.2.3.4", "auth").is_empty());
        assert!(ipattr_search(&db(), "helix", "nonesuch").is_empty());
    }
}
