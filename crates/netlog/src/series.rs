//! The `/net/log/series` sampler: deterministic time-series snapshots
//! of a machine's metric registry.
//!
//! A running series re-arms itself on the timer wheel at exact
//! multiples of its interval from a base instant (`base + k*interval`,
//! never `now + interval`), so samples land at exact virtual instants
//! and never drift. Each sample stores what *changed* since the last
//! one — counter and histogram deltas, gauge values when they moved —
//! in a bounded ring, and the whole ring renders as ASCII. Under the
//! virtual clock two same-seed runs render byte-identical series,
//! which is what lets a fabric-wide dashboard diff cities instead of
//! eyeballing them.
//!
//! Before each sample the sampler refreshes the process-global
//! scheduler-pressure gauges ([`crate::poolstats::update_gauges`]), so
//! a series captures pool-shard occupancy and armed-timer counts
//! alongside the protocol counters.
//!
//! Configuration rides the `/net/log/ctl` file (see
//! [`ctl`]): `series interval 250ms`, `series retention 512`,
//! `series start`, `series stop`, `series clear`.

use crate::{NetLog, SampledValue};
use plan9_support::sync::Mutex;
use plan9_support::{time, wheel};
use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// All series samplers share one wheel shard key: sampling is cheap,
/// and a fixed key keeps callback ordering deterministic.
const SERIES_KEY: u64 = 0x5e51_e500;

/// Default sampling interval.
const DEFAULT_INTERVAL: Duration = Duration::from_millis(100);

/// Default ring retention, in samples.
const DEFAULT_RETENTION: usize = 256;

/// One snapshot instant: the rendered deltas at `base + k*interval`.
#[derive(Clone, Debug)]
pub struct Sample {
    /// 1-based sample index.
    pub k: u64,
    /// Scheduled offset from the series base, microseconds — always
    /// exactly `k * interval`.
    pub at_us: u64,
    /// Offset at which the wheel actually ran the sampler; equals
    /// `at_us` under the virtual clock (asserted by the vtime tests).
    pub fired_us: u64,
    /// Rendered delta lines (`name +delta`, `name =value`, …).
    pub lines: Vec<String>,
}

struct SeriesState {
    interval: Duration,
    retention: usize,
    running: bool,
    /// Bumped on every start; stale wheel callbacks check it and bail.
    epoch: u64,
    base: Option<Instant>,
    next_k: u64,
    timer: Option<wheel::TimerId>,
    prev: Vec<(String, SampledValue)>,
    ring: VecDeque<Sample>,
}

/// The per-machine time-series sampler; one lives in every [`NetLog`].
pub struct Series {
    state: Mutex<SeriesState>,
}

impl Default for Series {
    fn default() -> Series {
        Series {
            state: Mutex::named(
                SeriesState {
                    interval: DEFAULT_INTERVAL,
                    retention: DEFAULT_RETENTION,
                    running: false,
                    epoch: 0,
                    base: None,
                    next_k: 1,
                    timer: None,
                    prev: Vec::new(),
                    ring: VecDeque::new(),
                },
                "netlog.series",
            ),
        }
    }
}

/// Starts sampling `nl`'s registry. The base instant is now; the first
/// sample lands exactly one interval later. No-op if already running.
pub fn start(nl: &Arc<NetLog>) -> Result<(), String> {
    crate::poolstats::update_gauges(&nl.registry);
    let mut st = nl.series.state.lock();
    if st.running {
        return Ok(());
    }
    let base = time::now();
    st.running = true;
    st.epoch += 1;
    st.base = Some(base);
    st.next_k = 1;
    st.ring.clear();
    st.prev = nl.registry.sample();
    let epoch = st.epoch;
    let interval = st.interval;
    st.timer = Some(arm(nl, base + interval, epoch)?);
    Ok(())
}

fn arm(nl: &Arc<NetLog>, at: Instant, epoch: u64) -> Result<wheel::TimerId, String> {
    let w: Weak<NetLog> = Arc::downgrade(nl);
    wheel::schedule(SERIES_KEY, at, move || {
        if let Some(nl) = w.upgrade() {
            tick(&nl, epoch);
        }
    })
    .map_err(|e| format!("series: {e}"))
}

fn tick(nl: &Arc<NetLog>, epoch: u64) {
    crate::poolstats::update_gauges(&nl.registry);
    let now = time::now();
    let cur = nl.registry.sample();
    let mut st = nl.series.state.lock();
    if !st.running || st.epoch != epoch {
        return;
    }
    let Some(base) = st.base else { return };
    let k = st.next_k;
    let at_us = k * st.interval.as_micros() as u64;
    let fired_us = now.saturating_duration_since(base).as_micros() as u64;
    let lines = delta_lines(&st.prev, &cur);
    st.prev = cur;
    st.ring.push_back(Sample {
        k,
        at_us,
        fired_us,
        lines,
    });
    while st.ring.len() > st.retention {
        st.ring.pop_front();
    }
    st.next_k = k + 1;
    let next = base + Duration::from_micros(st.interval.as_micros() as u64 * (k + 1));
    match arm(nl, next, epoch) {
        Ok(id) => st.timer = Some(id),
        Err(_) => {
            // Wheel refused (shutting down): stop cleanly.
            st.running = false;
            st.timer = None;
        }
    }
}

/// Renders what changed between two registry samples, name-sorted
/// (both inputs are). Counters and histogram count/sum render as
/// `+delta`, gauges as `=value`; unchanged metrics emit nothing.
fn delta_lines(prev: &[(String, SampledValue)], cur: &[(String, SampledValue)]) -> Vec<String> {
    let mut out = Vec::new();
    for (name, v) in cur {
        let old = prev
            .binary_search_by(|p| p.0.as_str().cmp(name.as_str()))
            .ok()
            .map(|i| prev[i].1);
        match (*v, old) {
            (SampledValue::Counter(n), old) => {
                let o = match old {
                    Some(SampledValue::Counter(o)) => o,
                    _ => 0,
                };
                if n != o {
                    out.push(format!("{name} +{}", n.wrapping_sub(o)));
                }
            }
            (SampledValue::Gauge(n), old) => {
                let changed = !matches!(old, Some(SampledValue::Gauge(o)) if o == n);
                if changed {
                    out.push(format!("{name} ={n}"));
                }
            }
            (SampledValue::Histogram { count, sum_us }, old) => {
                let (oc, os) = match old {
                    Some(SampledValue::Histogram { count, sum_us }) => (count, sum_us),
                    _ => (0, 0),
                };
                if count != oc {
                    out.push(format!(
                        "{name} count +{} sum +{}us",
                        count.wrapping_sub(oc),
                        sum_us.wrapping_sub(os)
                    ));
                }
            }
        }
    }
    out
}

impl Series {
    /// Stops sampling, cancelling the armed timer. The ring is kept.
    pub fn stop(&self) {
        let mut st = self.state.lock();
        st.running = false;
        st.epoch += 1;
        if let Some(id) = st.timer.take() {
            wheel::cancel(id);
        }
    }

    /// Drops all buffered samples.
    pub fn clear(&self) {
        self.state.lock().ring.clear();
    }

    /// Sets the sampling interval. Only legal while stopped: a series
    /// mixes intervals badly and the alignment guarantee would lie.
    pub fn set_interval(&self, d: Duration) -> Result<(), String> {
        if d.is_zero() {
            return Err("series: interval must be positive".to_string());
        }
        let mut st = self.state.lock();
        if st.running {
            return Err("series: stop before changing interval".to_string());
        }
        st.interval = d;
        Ok(())
    }

    /// Sets how many samples the ring retains.
    pub fn set_retention(&self, n: usize) -> Result<(), String> {
        if n == 0 {
            return Err("series: retention must be positive".to_string());
        }
        let mut st = self.state.lock();
        st.retention = n;
        while st.ring.len() > n {
            st.ring.pop_front();
        }
        Ok(())
    }

    /// A snapshot of the buffered samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Renders the series as ASCII: a header line, then each sample as
    /// `sample <k> t=<offset>us` followed by its delta lines.
    pub fn render(&self) -> String {
        let st = self.state.lock();
        let mut out = format!(
            "series interval={}us retention={} samples={}\n",
            st.interval.as_micros(),
            st.retention,
            st.ring.len()
        );
        for s in st.ring.iter() {
            out.push_str(&format!("sample {} t={}us\n", s.k, s.at_us));
            for l in &s.lines {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    }
}

/// Handles a `series ...` ctl write against `nl`'s sampler:
///
/// ```text
/// series start            # begin sampling (base = now)
/// series stop             # stop; ring kept for reading
/// series clear            # drop buffered samples
/// series interval 250ms   # set interval (us/ms/s; while stopped)
/// series retention 512    # ring size in samples
/// ```
pub fn ctl(nl: &Arc<NetLog>, text: &str) -> Result<(), String> {
    let words: Vec<&str> = text.split_whitespace().collect();
    match words.as_slice() {
        ["series", "start"] => start(nl),
        ["series", "stop"] => {
            nl.series.stop();
            Ok(())
        }
        ["series", "clear"] => {
            nl.series.clear();
            Ok(())
        }
        ["series", "interval", d] => nl.series.set_interval(parse_duration(d)?),
        ["series", "retention", n] => nl.series.set_retention(
            n.parse()
                .map_err(|_| format!("series: bad retention {n}"))?,
        ),
        _ => Err(format!("series: unknown ctl {}", text.trim())),
    }
}

/// Parses `<n>us`, `<n>ms` or `<n>s` (the scenario DSL's suffixes).
fn parse_duration(w: &str) -> Result<Duration, String> {
    let (digits, mult) = if let Some(d) = w.strip_suffix("us") {
        (d, 1u64)
    } else if let Some(d) = w.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = w.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(format!("series: bad duration {w} (want us/ms/s)"));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("series: bad duration {w}"))?;
    Ok(Duration::from_micros(n * mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_parses_and_rejects() {
        let nl = NetLog::new();
        assert!(ctl(&nl, "series interval 50ms").is_ok());
        assert!(ctl(&nl, "series retention 8").is_ok());
        assert!(ctl(&nl, "series interval 0ms").is_err());
        assert!(ctl(&nl, "series retention 0").is_err());
        assert!(ctl(&nl, "series interval fast").is_err());
        assert!(ctl(&nl, "series frobnicate").is_err());
        assert!(ctl(&nl, "series").is_err());
    }

    #[test]
    fn interval_locked_while_running() {
        let nl = NetLog::new();
        ctl(&nl, "series start").expect("start");
        assert!(nl.series.set_interval(Duration::from_millis(10)).is_err());
        nl.series.stop();
        assert!(nl.series.set_interval(Duration::from_millis(10)).is_ok());
    }

    #[test]
    fn delta_lines_skip_unchanged() {
        let prev = vec![
            ("a.count".to_string(), SampledValue::Counter(5)),
            ("b.depth".to_string(), SampledValue::Gauge(2)),
            (
                "c.rtt".to_string(),
                SampledValue::Histogram {
                    count: 1,
                    sum_us: 10,
                },
            ),
        ];
        let cur = vec![
            ("a.count".to_string(), SampledValue::Counter(9)),
            ("b.depth".to_string(), SampledValue::Gauge(2)),
            (
                "c.rtt".to_string(),
                SampledValue::Histogram {
                    count: 3,
                    sum_us: 40,
                },
            ),
            ("d.new".to_string(), SampledValue::Counter(7)),
        ];
        let lines = delta_lines(&prev, &cur);
        assert_eq!(
            lines,
            vec![
                "a.count +4".to_string(),
                "c.rtt count +2 sum +30us".to_string(),
                "d.new +7".to_string(),
            ]
        );
    }

    #[test]
    fn render_shape_is_stable() {
        let nl = NetLog::new();
        let text = nl.series.render();
        assert!(text.starts_with("series interval=100000us retention=256 samples=0\n"));
    }
}
