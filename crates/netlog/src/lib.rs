//! `plan9-netlog` — the kernel's instrumentation subsystem.
//!
//! Plan 9 exposes network diagnostics the same way it exposes the
//! network itself: as files. The LANCE device tree has a per-connection
//! `stats` file, every protocol directory can report itself in ASCII,
//! and the `netlog` device (`/net/log`) carries a running commentary of
//! protocol events filtered by a facility mask set with ctl writes such
//! as `set il tcp` and `clear`.
//!
//! This crate is the shared machinery behind all of that:
//!
//! * [`Counter`] / [`Gauge`] — named `AtomicU64` cells, cloneable
//!   handles, zero allocation on the hot path.
//! * [`Histogram`] — fixed log2-bucket latency histograms (one atomic
//!   per bucket) for RTTs and RPC round trips.
//! * [`Registry`] — a get-or-create name → metric table that renders
//!   the whole set as the paper's `key value` ASCII lines.
//! * [`Facility`] / [`EventLog`] — a bounded ring of protocol events
//!   guarded by an atomic per-facility enable mask; disabled facilities
//!   cost one relaxed load per event site.
//!
//! Nothing here performs I/O; the file-system surface (`/net/log`,
//! `stats` files) lives in `plan9-core`, which simply renders these
//! types on demand.

pub mod poolstats;
pub mod series;
pub mod trace;

use plan9_support::sync::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named monotonically increasing counter. Clones share the cell.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

struct CounterInner {
    name: String,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new(name: &str) -> Counter {
        Counter {
            inner: Arc::new(CounterInner {
                name: name.to_string(),
                value: AtomicU64::new(0),
            }),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name(), self.get())
    }
}

/// A named gauge: a value that can move both ways.
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<CounterInner>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new(name: &str) -> Gauge {
        Gauge {
            inner: Arc::new(CounterInner {
                name: name.to_string(),
                value: AtomicU64::new(0),
            }),
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Sets the value outright.
    pub fn set(&self, v: u64) {
        self.inner.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.inner.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.inner.value.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `b` counts samples in
/// `[2^b, 2^(b+1))` microseconds (bucket 0 also takes zero).
const HIST_BUCKETS: usize = 40;

/// A fixed-bucket log2 latency histogram. Recording is one atomic add;
/// no allocation, no lock.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    name: String,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram. Samples are microseconds.
    pub fn new(name: &str) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                name: name.to_string(),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.inner.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(us, Ordering::Relaxed);
    }

    /// Records a duration sample.
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Renders the histogram as ASCII lines:
    /// a `name count <n> avg <us>us` header followed by one
    /// `name <lo>-<hi>us <count>` line per occupied bucket.
    pub fn render(&self) -> String {
        let count = self.count();
        let avg = self.sum_us().checked_div(count).unwrap_or(0);
        let mut out = format!("{} count {} avg {}us\n", self.name(), count, avg);
        for (b, cell) in self.inner.buckets.iter().enumerate() {
            let n = cell.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let lo = if b == 0 { 0 } else { 1u64 << b };
            let hi = 1u64 << (b + 1);
            out.push_str(&format!("{} {}-{}us {}\n", self.name(), lo, hi, n));
        }
        out
    }
}

/// A point-in-time, kind-tagged reading of one metric, as returned by
/// [`Registry::sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampledValue {
    /// A counter's cumulative value.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(u64),
    /// A histogram's cumulative count and sum.
    Histogram {
        /// Samples recorded so far.
        count: u64,
        /// Sum of all samples, microseconds.
        sum_us: u64,
    },
}

/// One metric slot in a [`Registry`].
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A name → metric table. `counter("il.tx")` hands every caller the
/// same cell, so independent modules can share counts by name, and
/// [`Registry::render`] reports everything as sorted `key value` lines.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter named `name`.
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind — that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new(name)))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("netlog: {name} is not a counter"),
        }
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new(name)))
        {
            Metric::Gauge(g) => g.clone(),
            // checked: metric kind is fixed at first registration; a
            // mismatch is a programming error caught in tests
            _ => panic!("netlog: {name} is not a gauge"),
        }
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(name)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("netlog: {name} is not a histogram"),
        }
    }

    /// Adopts an externally created counter under its own name, so
    /// modules that keep a field handle still appear in the table.
    pub fn register_counter(&self, c: &Counter) {
        self.metrics
            .lock()
            .insert(c.name().to_string(), Metric::Counter(c.clone()));
    }

    /// Adopts an externally created histogram under its own name.
    pub fn register_histogram(&self, h: &Histogram) {
        self.metrics
            .lock()
            .insert(h.name().to_string(), Metric::Histogram(h.clone()));
    }

    /// Reads every metric's current value, kind-tagged and sorted by
    /// name — the raw material for the time-series sampler, which
    /// diffs successive samples (see [`series`]).
    pub fn sample(&self) -> Vec<(String, SampledValue)> {
        let m = self.metrics.lock();
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => SampledValue::Counter(c.get()),
                    Metric::Gauge(g) => SampledValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampledValue::Histogram {
                        count: h.count(),
                        sum_us: h.sum_us(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Renders every metric as ASCII, sorted by name: `name value` for
    /// counters and gauges, the multi-line bucket listing for
    /// histograms.
    pub fn render(&self) -> String {
        let m = self.metrics.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{} {}\n", name, c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{} {}\n", name, g.get())),
                Metric::Histogram(h) => out.push_str(&h.render()),
            }
        }
        out
    }
}

/// The event-log facilities, mirroring Plan 9's netlog flag names.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Facility {
    Il,
    Tcp,
    Udp,
    Arp,
    Ether,
    NineP,
    Streams,
    Ip,
    /// The worker pool and timer wheel (shard saturation, inline
    /// fallbacks, wheel churn) — the soft-interrupt layer's own
    /// commentary; see [`poolstats`].
    Pool,
}

impl Facility {
    /// All facilities, in ctl-listing order.
    pub const ALL: [Facility; 9] = [
        Facility::Il,
        Facility::Tcp,
        Facility::Udp,
        Facility::Arp,
        Facility::Ether,
        Facility::NineP,
        Facility::Streams,
        Facility::Ip,
        Facility::Pool,
    ];

    /// The facility's bit in the enable mask.
    pub fn bit(self) -> u64 {
        1 << (self as u64)
    }

    /// The ctl name of the facility.
    pub fn name(self) -> &'static str {
        match self {
            Facility::Il => "il",
            Facility::Tcp => "tcp",
            Facility::Udp => "udp",
            Facility::Arp => "arp",
            Facility::Ether => "ether",
            Facility::NineP => "9p",
            Facility::Streams => "streams",
            Facility::Ip => "ip",
            Facility::Pool => "pool",
        }
    }

    /// Parses a ctl facility name.
    pub fn parse(s: &str) -> Option<Facility> {
        Facility::ALL.iter().copied().find(|f| f.name() == s)
    }
}

/// One logged event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Which facility produced the event.
    pub facility: Facility,
    /// The event text (one line, no trailing newline).
    pub msg: String,
}

/// Default ring capacity: enough to hold a burst of recovery traffic
/// without growing, small enough that a forgotten `set` is harmless.
const DEFAULT_EVENT_CAP: usize = 4096;

/// A bounded ring of protocol events behind an atomic facility mask.
///
/// The mask check is the hot path: `log` with a disabled facility is a
/// single relaxed load and the message closure is never run. Enabled
/// events take the ring lock and may evict the oldest entry.
///
/// Configuration is plain ASCII, exactly Plan 9's netlog ctl language:
///
/// ```text
/// set il tcp     # enable the il and tcp facilities
/// clear tcp      # disable tcp, leave il
/// clear          # disable everything and flush the ring
/// ```
pub struct EventLog {
    mask: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
    cap: usize,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    /// Creates an event log holding at most `cap` events.
    pub fn new(cap: usize) -> EventLog {
        EventLog {
            mask: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Is this facility currently being logged? Cheap; call before
    /// building an expensive message.
    pub fn enabled(&self, f: Facility) -> bool {
        self.mask.load(Ordering::Relaxed) & f.bit() != 0
    }

    /// Logs one event if `f` is enabled. The closure only runs when it
    /// is, so disabled facilities pay one atomic load and nothing else.
    pub fn log<F: FnOnce() -> String>(&self, f: Facility, msg: F) {
        if !self.enabled(f) {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(Event {
            facility: f,
            msg: msg(),
        });
    }

    /// Handles one ctl write (`set fac...`, `clear [fac...]`).
    pub fn ctl(&self, text: &str) -> Result<(), String> {
        let mut words = text.split_whitespace();
        let verb = words.next().ok_or_else(|| "netlog: empty ctl".to_string())?;
        let facs: Vec<&str> = words.collect();
        match verb {
            "set" => {
                if facs.is_empty() {
                    return Err("netlog: set needs a facility".to_string());
                }
                let mut bits = 0;
                for w in &facs {
                    let f = Facility::parse(w)
                        .ok_or_else(|| format!("netlog: unknown facility {w}"))?;
                    bits |= f.bit();
                }
                self.mask.fetch_or(bits, Ordering::Relaxed);
                Ok(())
            }
            "clear" => {
                if facs.is_empty() {
                    // Bare clear: stop logging everything, flush the ring.
                    self.mask.store(0, Ordering::Relaxed);
                    self.ring.lock().clear();
                    return Ok(());
                }
                let mut bits = 0;
                for w in &facs {
                    let f = Facility::parse(w)
                        .ok_or_else(|| format!("netlog: unknown facility {w}"))?;
                    bits |= f.bit();
                }
                self.mask.fetch_and(!bits, Ordering::Relaxed);
                Ok(())
            }
            other => Err(format!("netlog: unknown ctl {other}")),
        }
    }

    /// The current mask rendered as ctl words (`set il tcp` state), for
    /// reading back the ctl file.
    pub fn mask_line(&self) -> String {
        let mask = self.mask.load(Ordering::Relaxed);
        let names: Vec<&str> = Facility::ALL
            .iter()
            .filter(|f| mask & f.bit() != 0)
            .map(|f| f.name())
            .collect();
        if names.is_empty() {
            "set\n".to_string()
        } else {
            format!("set {}\n", names.join(" "))
        }
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the buffered events as `facility: message` lines, the
    /// format `/net/log/data` serves.
    pub fn render(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::new();
        for ev in ring.iter() {
            out.push_str(&format!("{}: {}\n", ev.facility.name(), ev.msg));
        }
        out
    }
}

/// Everything one simulated machine's kernel carries for
/// instrumentation: a metric registry plus the netlog event ring.
#[derive(Default)]
pub struct NetLog {
    /// The machine-wide metric table.
    pub registry: Registry,
    /// The `/net/log` event ring.
    pub events: EventLog,
    /// The `/net/log/series` time-series sampler.
    pub series: series::Series,
}

impl NetLog {
    /// Creates an empty instrumentation block.
    pub fn new() -> Arc<NetLog> {
        Arc::new(NetLog::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_shares() {
        let c = Counter::new("x");
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new("depth");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new("rtt");
        h.record_us(0);
        h.record_us(1);
        h.record_us(2);
        h.record_us(3);
        h.record_us(1000);
        assert_eq!(h.count(), 5);
        let r = h.render();
        assert!(r.contains("rtt count 5"), "{r}");
        assert!(r.contains("rtt 0-2us 2"), "{r}");
        assert!(r.contains("rtt 2-4us 2"), "{r}");
        assert!(r.contains("rtt 512-1024us 1"), "{r}");
    }

    #[test]
    fn histogram_huge_sample_clamps() {
        let h = Histogram::new("t");
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_get_or_create_shares() {
        let r = Registry::new();
        let a = r.counter("il.tx");
        let b = r.counter("il.tx");
        a.inc();
        assert_eq!(b.get(), 1);
        r.gauge("q.depth").set(3);
        r.histogram("rtt").record_us(5);
        let text = r.render();
        assert!(text.contains("il.tx 1\n"), "{text}");
        assert!(text.contains("q.depth 3\n"), "{text}");
        assert!(text.contains("rtt count 1"), "{text}");
    }

    #[test]
    fn registry_renders_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").add(2);
        let text = r.render();
        let za = text.find("zeta").unwrap();
        let al = text.find("alpha").unwrap();
        assert!(al < za, "{text}");
    }

    #[test]
    fn facility_parse_round_trips() {
        for f in Facility::ALL {
            assert_eq!(Facility::parse(f.name()), Some(f));
        }
        assert_eq!(Facility::parse("lance"), None);
    }

    #[test]
    fn eventlog_masks_facilities() {
        let log = EventLog::new(16);
        let mut built = false;
        log.log(Facility::Il, || {
            built = true;
            "dropped".to_string()
        });
        assert!(!built, "closure must not run while il is disabled");
        assert!(log.is_empty());

        log.ctl("set il tcp").unwrap();
        assert!(log.enabled(Facility::Il));
        assert!(log.enabled(Facility::Tcp));
        assert!(!log.enabled(Facility::Udp));
        log.log(Facility::Il, || "q 7".to_string());
        log.log(Facility::Udp, || "unseen".to_string());
        let text = log.render();
        assert_eq!(text, "il: q 7\n");
    }

    #[test]
    fn eventlog_clear_facility_and_flush() {
        let log = EventLog::new(16);
        log.ctl("set il tcp").unwrap();
        log.log(Facility::Tcp, || "rexmit".to_string());
        log.ctl("clear tcp").unwrap();
        assert!(!log.enabled(Facility::Tcp));
        assert!(log.enabled(Facility::Il));
        assert_eq!(log.len(), 1, "clear with args keeps the ring");
        log.ctl("clear").unwrap();
        assert!(!log.enabled(Facility::Il));
        assert!(log.is_empty(), "bare clear flushes the ring");
    }

    #[test]
    fn eventlog_ring_bounded() {
        let log = EventLog::new(4);
        log.ctl("set ether").unwrap();
        for i in 0..10 {
            log.log(Facility::Ether, || format!("frame {i}"));
        }
        assert_eq!(log.len(), 4);
        let events = log.events();
        assert_eq!(events[0].msg, "frame 6", "oldest entries evicted");
        assert_eq!(events[3].msg, "frame 9");
    }

    #[test]
    fn eventlog_ctl_errors() {
        let log = EventLog::new(4);
        assert!(log.ctl("set lance").is_err());
        assert!(log.ctl("set").is_err());
        assert!(log.ctl("frobnicate il").is_err());
        assert!(log.ctl("").is_err());
    }

    #[test]
    fn mask_line_reads_back() {
        let log = EventLog::new(4);
        log.ctl("set tcp il").unwrap();
        assert_eq!(log.mask_line(), "set il tcp\n");
        log.ctl("clear").unwrap();
        assert_eq!(log.mask_line(), "set\n");
    }
}
