//! nettrace: a span-based flight recorder for following one request
//! across layers.
//!
//! The netlog ring (`/net/log`) answers "how many, how fast on
//! average"; this module answers "where did *this* 9P RPC spend its
//! time". Each client RPC opens a *root span*; as the request crosses
//! layer boundaries — mount-driver marshal, stream queue residency,
//! protocol device handling, IL send→ack, wire delivery — the layers
//! attach *child spans* (an interval) or *span events* (a point, e.g.
//! one retransmission) to the root they belong to.
//!
//! Attribution crosses threads the way the kernel's own state does:
//! the thread driving an RPC installs its handle in a thread-local
//! ([`TraceHandle::set_current`]); code that hands work to another
//! thread (a queued [`Block`], an unacked IL message) captures
//! [`current`] and stores the handle alongside the data, so the
//! consumer can attribute its half of the work to the right root.
//!
//! Everything is pay-for-use: with tracing off (the default), the only
//! cost on any hot path is one relaxed atomic load or a thread-local
//! `Option` that stays `None` — no allocation, no locking.
//!
//! The recorder is process-global ([`global`]): simulated machines
//! share a process, and a trace must follow an RPC from one machine's
//! mount driver through the wire into another machine's server, so one
//! flight recorder spanning all of them is exactly what is wanted.
//! `/net/trace` on every machine serves the same ring, like a shared
//! analyzer plugged into the lab bus.

use crate::Facility;
use plan9_support::sync::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Root spans kept by the global recorder's ring.
pub const DEFAULT_ROOT_CAP: usize = 2048;

/// Child spans kept per root; later spans are dropped.
const MAX_SPANS: usize = 512;

/// Span events kept per root; later events are dropped.
const MAX_EVENTS: usize = 512;

/// One timed interval inside a root span: time spent in one layer.
#[derive(Debug, Clone)]
pub struct Span {
    /// The layer that recorded the interval.
    pub facility: Facility,
    /// What the interval covers, e.g. `marshal` or `il send id 7`.
    pub name: String,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's epoch.
    pub end_ns: u64,
}

/// A point event inside a root span, e.g. one retransmission.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// The layer that recorded the event.
    pub facility: Facility,
    /// The event text, matching the netlog line for the same event.
    pub msg: String,
    /// When, in nanoseconds since the tracer's epoch.
    pub at_ns: u64,
}

/// One traced request: the root interval plus its children.
#[derive(Debug, Clone)]
pub struct RootSpan {
    /// Ring-unique id.
    pub id: u64,
    /// The root label, e.g. `Twalk tag 3`.
    pub label: String,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's epoch. For a root forced
    /// out by `dump` this is the dump time.
    pub end_ns: u64,
    /// True if the root was still open when forced into the ring.
    pub open: bool,
    /// Child intervals, in the order they completed.
    pub spans: Vec<Span>,
    /// Point events, in the order they happened.
    pub events: Vec<SpanEvent>,
}

impl RootSpan {
    /// Root duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct TraceState {
    /// Roots still accumulating children. Linear scan: the set is the
    /// number of concurrently outstanding RPCs, a handful.
    active: Vec<RootSpan>,
    /// Completed roots, oldest first.
    done: VecDeque<RootSpan>,
}

/// The flight recorder. One mutex guards both the active set and the
/// completed ring so that finishing a root is atomic against a late
/// event racing to attach to it.
pub struct Tracer {
    on: AtomicBool,
    filter: AtomicU64,
    /// Trace 1-in-N root arrivals (1 = every root). Cuts the trace-on
    /// overhead enough for always-on use; see the ilvstcp bench.
    sample: AtomicU64,
    /// Root arrivals seen while on, sampled or not — the sampling
    /// counter the 1-in-N gate divides.
    arrivals: AtomicU64,
    seq: AtomicU64,
    epoch: Instant,
    state: Mutex<TraceState>,
    cap: usize,
}

impl Tracer {
    /// A recorder keeping the last `cap` completed roots, tracing off,
    /// all facilities selected.
    pub fn new(cap: usize) -> Arc<Tracer> {
        let all = Facility::ALL.iter().fold(0u64, |m, f| m | f.bit());
        Arc::new(Tracer {
            on: AtomicBool::new(false),
            filter: AtomicU64::new(all),
            sample: AtomicU64::new(1),
            arrivals: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            epoch: plan9_support::time::now(),
            state: Mutex::new(TraceState {
                active: Vec::new(),
                done: VecDeque::new(),
            }),
            cap,
        })
    }

    /// Whether tracing is on. One relaxed load: the full cost of every
    /// annotation site when tracing is off.
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Whether tracing is on and `f` passes the facility filter.
    pub fn enabled_for(&self, f: Facility) -> bool {
        self.enabled() && self.filter.load(Ordering::Relaxed) & f.bit() != 0
    }

    fn ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Opens a root span. Returns `None` when tracing is off, or when
    /// the 1-in-N sampling gate (see `sample` ctl) skips this arrival —
    /// a skipped root costs two relaxed atomics and no allocation.
    pub fn begin(self: &Arc<Self>, label: &str) -> Option<TraceHandle> {
        if !self.enabled() {
            return None;
        }
        let n = self.sample.load(Ordering::Relaxed);
        if n > 1
            && !self
                .arrivals
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n)
        {
            return None;
        }
        let id = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let label = label.to_string();
        let mut st = self.state.lock();
        // Stamp the start under the lock: the wait to get here belongs
        // to the recorder, not to the root being opened.
        let now = self.ns(plan9_support::time::now());
        st.active.push(RootSpan {
            id,
            label,
            start_ns: now,
            end_ns: now,
            open: true,
            spans: Vec::new(),
            events: Vec::new(),
        });
        drop(st);
        Some(TraceHandle {
            tracer: Arc::clone(self),
            id,
        })
    }

    /// Closes a root span and moves it into the completed ring.
    pub fn finish(&self, id: u64) {
        self.finish_at(id, plan9_support::time::now());
    }

    /// Closes a root span with a caller-supplied end time, so the last
    /// child span and the root can share one timestamp and tile exactly.
    pub fn finish_at(&self, id: u64, end: Instant) {
        let now = self.ns(end);
        let mut st = self.state.lock();
        let Some(pos) = st.active.iter().position(|r| r.id == id) else {
            return;
        };
        let mut root = st.active.swap_remove(pos);
        root.end_ns = now;
        root.open = false;
        st.done.push_back(root);
        while st.done.len() > self.cap {
            st.done.pop_front();
        }
    }

    /// Attaches a child interval to root `id`. Looks in the active set
    /// first, then in the completed ring: an IL ack (and so the
    /// send→ack span) can arrive a hair after the RPC that sent the
    /// message already returned.
    pub fn span(&self, id: u64, fac: Facility, name: &str, start: Instant, end: Instant) {
        if !self.enabled_for(fac) {
            return;
        }
        let (s, e) = (self.ns(start), self.ns(end));
        let mut st = self.state.lock();
        if let Some(root) = find_mut(&mut st, id) {
            if root.spans.len() < MAX_SPANS {
                root.spans.push(Span {
                    facility: fac,
                    name: name.to_string(),
                    start_ns: s,
                    end_ns: e,
                });
            }
        }
    }

    /// Attaches a point event to root `id`. The closure only runs when
    /// the event will actually be recorded.
    pub fn event<F: FnOnce() -> String>(&self, id: u64, fac: Facility, f: F) {
        if !self.enabled_for(fac) {
            return;
        }
        let at = self.ns(plan9_support::time::now());
        let msg = f();
        let mut st = self.state.lock();
        if let Some(root) = find_mut(&mut st, id) {
            if root.events.len() < MAX_EVENTS {
                root.events.push(SpanEvent {
                    facility: fac,
                    msg,
                    at_ns: at,
                });
            }
        }
    }

    /// Interprets a `/net/trace/ctl` request:
    ///
    /// * `trace on` / `trace off` — master switch
    /// * `filter [fac...]` — record only these facilities (none = all)
    /// * `sample <n>` — trace 1-in-`n` root spans (1 = every root)
    /// * `dump` — force still-open roots into the ring, marked open
    /// * `clear` — flush the completed ring
    pub fn ctl(&self, text: &str) -> Result<(), String> {
        let words: Vec<&str> = text.split_whitespace().collect();
        match words.as_slice() {
            ["trace", "on"] => {
                self.on.store(true, Ordering::SeqCst);
                Ok(())
            }
            ["trace", "off"] => {
                self.on.store(false, Ordering::SeqCst);
                Ok(())
            }
            ["filter", rest @ ..] => {
                // Same validation as /net/log/ctl: a bad facility name
                // is a 9P error naming the offender, not a no-op.
                let mut mask = 0u64;
                for w in rest {
                    let f = Facility::parse(w)
                        .ok_or_else(|| format!("nettrace: unknown facility {w}"))?;
                    mask |= f.bit();
                }
                if rest.is_empty() {
                    mask = Facility::ALL.iter().fold(0u64, |m, f| m | f.bit());
                }
                self.filter.store(mask, Ordering::SeqCst);
                Ok(())
            }
            ["sample", n] => {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("nettrace: bad sample rate {n}"))?;
                if n == 0 {
                    return Err("nettrace: sample rate must be positive".to_string());
                }
                self.sample.store(n, Ordering::SeqCst);
                Ok(())
            }
            ["dump"] => {
                let now = self.ns(plan9_support::time::now());
                let mut st = self.state.lock();
                let mut forced: Vec<RootSpan> = st.active.drain(..).collect();
                forced.sort_by_key(|r| r.id);
                for mut root in forced {
                    root.end_ns = now;
                    st.done.push_back(root);
                }
                while st.done.len() > self.cap {
                    st.done.pop_front();
                }
                Ok(())
            }
            ["clear"] => {
                self.state.lock().done.clear();
                Ok(())
            }
            [] => Err("nettrace: empty ctl request".to_string()),
            [verb, ..] => Err(format!("nettrace: unknown ctl request {verb}")),
        }
    }

    /// The state line served when `/net/trace/ctl` is read back.
    pub fn status_line(&self) -> String {
        let mask = self.filter.load(Ordering::Relaxed);
        let mut names: Vec<&str> = Vec::new();
        for f in Facility::ALL {
            if mask & f.bit() != 0 {
                names.push(f.name());
            }
        }
        format!(
            "trace {}\nfilter {}\nsample {}\n",
            if self.enabled() { "on" } else { "off" },
            names.join(" "),
            self.sample.load(Ordering::Relaxed)
        )
    }

    /// Completed roots, oldest first.
    pub fn roots(&self) -> Vec<RootSpan> {
        self.state.lock().done.iter().cloned().collect()
    }

    /// Number of completed roots in the ring.
    pub fn len(&self) -> usize {
        self.state.lock().done.len()
    }

    /// True when the ring holds no completed roots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of roots still open.
    pub fn active_len(&self) -> usize {
        self.state.lock().active.len()
    }

    /// Renders the ring as ASCII lines for `/net/trace/data`:
    ///
    /// ```text
    /// trace 3 Twalk tag 1 421us
    ///   span 9p marshal 0+2us
    ///   span il il send id 7 102+210us
    ///   event il rexmit id 7 len 61 @250us
    /// ```
    ///
    /// Child offsets are microseconds relative to the root's start.
    pub fn render(&self) -> String {
        let st = self.state.lock();
        let mut out = String::new();
        for root in &st.done {
            render_root(&mut out, root);
        }
        out
    }
}

fn find_mut(st: &mut TraceState, id: u64) -> Option<&mut RootSpan> {
    if let Some(r) = st.active.iter_mut().find(|r| r.id == id) {
        return Some(r);
    }
    // Late attachment: newest completed roots are the likely targets.
    st.done.iter_mut().rev().find(|r| r.id == id)
}

fn render_root(out: &mut String, root: &RootSpan) {
    let us = |ns: u64| ns / 1_000;
    out.push_str(&format!(
        "trace {} {} {}us{}\n",
        root.id,
        root.label,
        us(root.dur_ns()),
        if root.open { " open" } else { "" }
    ));
    for s in &root.spans {
        out.push_str(&format!(
            "  span {} {} {}+{}us\n",
            s.facility.name(),
            s.name,
            us(s.start_ns.saturating_sub(root.start_ns)),
            us(s.end_ns.saturating_sub(s.start_ns)),
        ));
    }
    for e in &root.events {
        out.push_str(&format!(
            "  event {} {} @{}us\n",
            e.facility.name(),
            e.msg,
            us(e.at_ns.saturating_sub(root.start_ns)),
        ));
    }
}

/// A reference to one root span: the annotation currency the layers
/// pass around (in thread-locals, `Block`s, unacked-message tables).
#[derive(Clone)]
pub struct TraceHandle {
    tracer: Arc<Tracer>,
    id: u64,
}

impl TraceHandle {
    /// The root span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a child interval to this handle's root.
    pub fn span(&self, fac: Facility, name: &str, start: Instant, end: Instant) {
        self.tracer.span(self.id, fac, name, start, end);
    }

    /// Attaches a point event to this handle's root.
    pub fn event<F: FnOnce() -> String>(&self, fac: Facility, f: F) {
        self.tracer.event(self.id, fac, f);
    }

    /// Closes this handle's root.
    pub fn finish(&self) {
        self.tracer.finish(self.id);
    }

    /// Closes this handle's root at a caller-supplied end time.
    pub fn finish_at(&self, end: Instant) {
        self.tracer.finish_at(self.id, end);
    }

    /// Installs this handle as the calling thread's current trace
    /// until the guard drops; the previous handle is restored.
    pub fn set_current(&self) -> CurrentGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        CurrentGuard { prev }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace#{}", self.id)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// The calling thread's current trace, if any. On an untraced thread
/// this is one thread-local read of a `None` — the pay-for-use cost.
pub fn current() -> Option<TraceHandle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Restores the previous thread-local handle on drop.
pub struct CurrentGuard {
    prev: Option<TraceHandle>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The process-wide flight recorder served by every `/net/trace`.
pub fn global() -> &'static Arc<Tracer> {
    static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(DEFAULT_ROOT_CAP))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn off_by_default_records_nothing() {
        let t = Tracer::new(8);
        assert!(t.begin("Tread tag 1").is_none());
        assert!(t.is_empty());
        assert_eq!(t.active_len(), 0);
    }

    #[test]
    fn begin_finish_lands_in_ring() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        let h = t.begin("Twalk tag 3").unwrap();
        std::thread::sleep(Duration::from_millis(2));
        h.finish();
        let roots = t.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].label, "Twalk tag 3");
        assert!(!roots[0].open);
        assert!(roots[0].dur_ns() >= 1_000_000, "{}", roots[0].dur_ns());
    }

    #[test]
    fn spans_and_events_attach_to_their_root() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        let a = t.begin("a").unwrap();
        let b = t.begin("b").unwrap();
        let now = Instant::now();
        a.span(Facility::NineP, "marshal", now, now);
        b.event(Facility::Il, || "rexmit id 9 len 5".to_string());
        a.finish();
        b.finish();
        let roots = t.roots();
        assert_eq!(roots[0].spans.len(), 1);
        assert_eq!(roots[0].spans[0].name, "marshal");
        assert!(roots[0].events.is_empty());
        assert_eq!(roots[1].events.len(), 1);
        assert!(roots[1].spans.is_empty());
    }

    #[test]
    fn late_event_attaches_to_completed_root() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        let h = t.begin("Tread tag 2").unwrap();
        h.finish();
        // The ack arrived after the RPC returned; the span must still
        // land on the (completed) root.
        let now = Instant::now();
        h.span(Facility::Il, "il send id 4", now, now);
        h.event(Facility::Il, || "query id 4 ack 3".to_string());
        let roots = t.roots();
        assert_eq!(roots[0].spans.len(), 1);
        assert_eq!(roots[0].events.len(), 1);
    }

    #[test]
    fn filter_drops_unselected_facilities() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        t.ctl("filter il").unwrap();
        let h = t.begin("x").unwrap();
        let now = Instant::now();
        h.span(Facility::Tcp, "tcp write", now, now);
        h.span(Facility::Il, "il send id 1", now, now);
        h.event(Facility::Ether, || "dropped".to_string());
        h.finish();
        let root = &t.roots()[0];
        assert_eq!(root.spans.len(), 1);
        assert_eq!(root.spans[0].facility, Facility::Il);
        assert!(root.events.is_empty());
        // Bare `filter` resets to everything.
        t.ctl("filter").unwrap();
        assert!(t.enabled_for(Facility::Tcp));
    }

    #[test]
    fn ring_is_bounded() {
        let t = Tracer::new(2);
        t.ctl("trace on").unwrap();
        for i in 0..5 {
            t.begin(&format!("r{i}")).unwrap().finish();
        }
        let roots = t.roots();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].label, "r3");
        assert_eq!(roots[1].label, "r4");
    }

    #[test]
    fn ctl_errors_name_the_offender() {
        let t = Tracer::new(2);
        let err = t.ctl("filter il lance").unwrap_err();
        assert!(err.contains("lance"), "{err}");
        let err = t.ctl("rewind").unwrap_err();
        assert!(err.contains("rewind"), "{err}");
        assert!(t.ctl("").is_err());
    }

    #[test]
    fn dump_forces_open_roots_out() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        let _h = t.begin("stuck").unwrap();
        assert_eq!(t.active_len(), 1);
        t.ctl("dump").unwrap();
        assert_eq!(t.active_len(), 0);
        let roots = t.roots();
        assert_eq!(roots.len(), 1);
        assert!(roots[0].open);
        assert!(t.render().contains("open"));
        t.ctl("clear").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn current_guard_nests_and_restores() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        assert!(current().is_none());
        let outer = t.begin("outer").unwrap();
        {
            let _g = outer.set_current();
            assert_eq!(current().unwrap().id(), outer.id());
            let inner = t.begin("inner").unwrap();
            {
                let _g2 = inner.set_current();
                assert_eq!(current().unwrap().id(), inner.id());
            }
            assert_eq!(current().unwrap().id(), outer.id());
        }
        assert!(current().is_none());
    }

    #[test]
    fn render_format() {
        let t = Tracer::new(8);
        t.ctl("trace on").unwrap();
        let h = t.begin("Tread tag 7").unwrap();
        let now = Instant::now();
        h.span(Facility::NineP, "marshal", now, now);
        h.event(Facility::Il, || "rexmit id 2 len 61".to_string());
        h.finish();
        let text = t.render();
        assert!(text.contains("trace 1 Tread tag 7 "), "{text}");
        assert!(text.contains("  span 9p marshal 0+0us"), "{text}");
        assert!(text.contains("  event il rexmit id 2 len 61 @"), "{text}");
    }

    #[test]
    fn status_line_reflects_ctl() {
        let t = Tracer::new(2);
        assert!(t.status_line().starts_with("trace off\nfilter il tcp"));
        t.ctl("trace on").unwrap();
        t.ctl("filter 9p streams").unwrap();
        assert_eq!(t.status_line(), "trace on\nfilter 9p streams\nsample 1\n");
        t.ctl("sample 16").unwrap();
        assert_eq!(t.status_line(), "trace on\nfilter 9p streams\nsample 16\n");
    }

    #[test]
    fn sampling_gates_one_in_n_roots() {
        let t = Tracer::new(64);
        t.ctl("trace on").unwrap();
        t.ctl("sample 4").unwrap();
        let mut opened = 0;
        for i in 0..16 {
            if let Some(h) = t.begin(&format!("rpc {i}")) {
                opened += 1;
                h.finish();
            }
        }
        assert_eq!(opened, 4, "1-in-4 sampling must open 4 of 16 roots");
        assert_eq!(t.len(), 4);
        t.ctl("sample 1").unwrap();
        assert!(t.begin("always").is_some(), "sample 1 traces every root");
    }

    #[test]
    fn sample_ctl_rejects_bad_rates() {
        let t = Tracer::new(2);
        assert!(t.ctl("sample 0").is_err());
        assert!(t.ctl("sample many").is_err());
        assert!(t.ctl("sample").is_err());
    }
}
