//! The `pool` facility: worker-pool and timer-wheel observability.
//!
//! The pool shards and the timer wheel are process-global (they *are*
//! the soft-interrupt layer, shared by every simulated machine), so
//! their counters accumulate across every run in the process. A report
//! that printed raw lifetime values would differ between the first and
//! second same-seed run of a scenario. [`PoolSnapshot`] fixes that:
//! take one at run start, and [`render_delta`](PoolSnapshot::render_delta)
//! reports only what happened since — identical across identical runs.
//!
//! Line format matches the rest of the netlog tables: sorted
//! `key value` ASCII, keys under the `pool.` prefix. Instantaneous
//! gauges (queue depth, armed timers) render the *current* value, not
//! a delta — at a quiesced scenario end both must be zero anyway.

use crate::Registry;
use plan9_support::{pool, wheel};

/// Installs (or refreshes) the scheduler-pressure gauges in `reg`:
/// one `pool.shard<i>.depth` gauge per worker shard and a
/// `pool.wheel.armed` gauge for pending timers. The series sampler
/// calls this before every snapshot, so a machine's time series
/// captures pool-shard occupancy and timer backlog alongside its
/// protocol counters.
pub fn update_gauges(reg: &Registry) {
    let p = pool::stats();
    for (i, depth) in p.depth.iter().enumerate() {
        reg.gauge(&format!("pool.shard{i}.depth")).set(*depth);
    }
    reg.gauge("pool.wheel.armed").set(wheel::stats().armed);
}

/// A point-in-time snapshot of the process-wide pool/wheel counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolSnapshot {
    pool: pool::PoolStats,
    wheel: wheel::WheelStats,
}

/// Captures the counters now; render deltas against this later.
pub fn snapshot() -> PoolSnapshot {
    PoolSnapshot {
        pool: pool::stats(),
        wheel: wheel::stats(),
    }
}

impl PoolSnapshot {
    /// Renders everything that happened since this snapshot as sorted
    /// `key value` lines. Deterministic: fixed key order, deltas for
    /// monotone counters, current values for gauges.
    pub fn render_delta(&self) -> String {
        let now = snapshot();
        let mut out = String::new();
        for i in 0..pool::NSHARDS {
            out.push_str(&format!(
                "pool.shard{i}.depth {}\n",
                now.pool.depth[i]
            ));
            out.push_str(&format!(
                "pool.shard{i}.inline {}\n",
                now.pool.inline_run[i] - self.pool.inline_run[i]
            ));
            out.push_str(&format!(
                "pool.shard{i}.submitted {}\n",
                now.pool.submitted[i] - self.pool.submitted[i]
            ));
        }
        out.push_str(&format!("pool.wheel.armed {}\n", now.wheel.armed));
        out.push_str(&format!(
            "pool.wheel.cancelled {}\n",
            now.wheel.cancelled - self.wheel.cancelled
        ));
        out.push_str(&format!(
            "pool.wheel.fired {}\n",
            now.wheel.fired - self.wheel.fired
        ));
        out.push_str(&format!(
            "pool.wheel.scheduled {}\n",
            now.wheel.scheduled - self.wheel.scheduled
        ));
        out
    }

    /// Total jobs submitted (all shards) since this snapshot.
    pub fn submitted_since(&self) -> u64 {
        let now = pool::stats();
        (0..pool::NSHARDS)
            .map(|i| now.submitted[i] - self.pool.submitted[i])
            .sum()
    }

    /// Timers fired since this snapshot.
    pub fn fired_since(&self) -> u64 {
        wheel::stats().fired - self.wheel.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_render_is_sorted_and_complete() {
        let snap = snapshot();
        let text = snap.render_delta();
        let lines: Vec<&str> = text.lines().collect();
        // 3 lines per shard + 4 wheel lines.
        assert_eq!(lines.len(), 3 * pool::NSHARDS + 4, "{text}");
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "render must be key-sorted:\n{text}");
        assert!(text.contains("pool.wheel.scheduled "), "{text}");
    }

    #[test]
    fn update_gauges_installs_scheduler_pressure() {
        let reg = Registry::new();
        update_gauges(&reg);
        let text = reg.render();
        for i in 0..pool::NSHARDS {
            assert!(text.contains(&format!("pool.shard{i}.depth ")), "{text}");
        }
        assert!(text.contains("pool.wheel.armed "), "{text}");
    }

    #[test]
    fn delta_counts_new_submissions() {
        use plan9_support::sync::{Condvar, Mutex};
        use std::sync::Arc;
        let snap = snapshot();
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool::submit(3, move || {
                let (cnt, cv) = &*done;
                *cnt.lock() += 1;
                cv.notify_all();
            })
            .expect("submit");
        }
        let (cnt, cv) = &*done;
        let mut g = cnt.lock();
        while *g < 5 {
            cv.wait(&mut g);
        }
        drop(g);
        assert!(snap.submitted_since() >= 5);
    }
}
