//! The core of the reproduction: Plan 9's network organization.
//!
//! This crate assembles the paper's machinery the way the kernel does:
//!
//! * [`namespace`] — per-process name spaces built from mount and bind
//!   operations, with union directories ("Local entries supersede remote
//!   ones of the same name", §6.1).
//! * [`proc`] — a simulated process: a name space plus a file-descriptor
//!   table, with `open`/`read`/`write`/`create`/`mount` system calls.
//! * [`mountdrv`] — the mount driver (§2.1): converts the procedural 9P
//!   used inside the kernel into RPCs carried by any transport, and
//!   demultiplexes the processes using one file server.
//! * [`dev`] — kernel-resident device file systems: the Ethernet device
//!   of Figure 1, protocol devices (`/net/tcp`, `/net/il`, `/net/udp`,
//!   `/net/dk`, §2.3), and the `eia` UARTs (§2.2).
//! * [`dial`] — the §5 library: `dial`, `announce`, `listen`, `accept`,
//!   `reject`.
//! * [`machine`] — glues it all together: a simulated Plan 9 machine
//!   with interfaces, devices, a connection server and DNS mounted at
//!   `/net`, ready to run processes.

pub mod dev;
pub mod dial;
pub mod machine;
pub mod mountdrv;
pub mod namespace;
pub mod proc;

pub use dial::{announce, dial, listen, accept, reject, DialResult};
pub use machine::{Machine, MachineBuilder};
pub use mountdrv::MountDriver;
pub use namespace::{Namespace, Source, MAFTER, MBEFORE, MREPL};
pub use proc::Proc;

/// Result alias matching the rest of the system.
pub type Result<T> = plan9_ninep::Result<T>;
