//! Assembling a simulated Plan 9 machine.
//!
//! A [`Machine`] owns the hardware-facing pieces (an Ethernet station
//! with its IP stack, a Datakit line, UARTs), the kernel devices built
//! over them, the network database, and the user-level servers (CS,
//! DNS). Its default name space is the conventional one (§6): protocol
//! devices mounted in `/net`, `cs` and `dns` union-mounted alongside,
//! `eia` lines in `/dev`, the database under `/lib/ndb`.

use crate::dev::proto::{AnnounceOps, ConnOps, ProtoDev, ProtoOps};
use crate::dev::{EiaDev, EtherDev};
use crate::namespace::{Namespace, Source, MAFTER, MREPL};
use crate::proc::Proc;
use plan9_support::sync::Mutex;
use plan9_cs::{CsConfig, CsServer, DnsServer, NetworkDecl, SimInternet};
use plan9_datakit::urp::{urp_dial, UrpConn};
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_inet::IpAddr;
use plan9_ndb::Db;
use plan9_netsim::ether::{EtherSegment, MacAddr};
use plan9_netsim::fabric::{DatakitLine, DatakitSwitch};
use plan9_netsim::uart::UartEnd;
use plan9_ninep::procfs::{MemFs, ProcFs};
use plan9_ninep::{NineError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Default ndb service map, matching the paper's §4.1 listing plus the
/// conventional Plan 9 ports.
pub const SERVICES_NDB: &str = "\
tcp=echo port=7
tcp=discard port=9
tcp=systat port=11
tcp=daytime port=13
tcp=login port=513
tcp=9fs port=564
tcp=exportfs port=565
tcp=ftp port=21
tcp=telnet port=23
il=9fs port=17008
il=rexauth port=17021
il=echo port=17007
il=exportfs port=17009
il=discard port=17013
il=daytime port=17014
udp=dns port=53
udp=echo port=7
";

/// Builder for a [`Machine`].
pub struct MachineBuilder {
    name: String,
    ether: Option<(Arc<EtherSegment>, MacAddr, IpConfig)>,
    datakit: Option<(Arc<DatakitSwitch>, String)>,
    uarts: Vec<UartEnd>,
    ndb_texts: Vec<String>,
    internet: Option<Arc<SimInternet>>,
}

impl MachineBuilder {
    /// Starts a machine named `name` (its ndb `sys=` name).
    pub fn new(name: &str) -> MachineBuilder {
        MachineBuilder {
            name: name.to_string(),
            ether: None,
            datakit: None,
            uarts: Vec::new(),
            ndb_texts: Vec::new(),
            internet: None,
        }
    }

    /// Attaches an Ethernet interface with the given station address and
    /// IP configuration.
    pub fn ether(mut self, seg: &Arc<EtherSegment>, mac: MacAddr, cfg: IpConfig) -> Self {
        self.ether = Some((Arc::clone(seg), mac, cfg));
        self
    }

    /// Attaches a Datakit line at the given address.
    pub fn datakit(mut self, switch: &Arc<DatakitSwitch>, addr: &str) -> Self {
        self.datakit = Some((Arc::clone(switch), addr.to_string()));
        self
    }

    /// Adds a serial line (`/dev/eiaN`).
    pub fn uart(mut self, end: UartEnd) -> Self {
        self.uarts.push(end);
        self
    }

    /// Adds network-database text (the machine also gets the standard
    /// service map).
    pub fn ndb(mut self, text: &str) -> Self {
        self.ndb_texts.push(text.to_string());
        self
    }

    /// Connects the machine's DNS to a simulated Internet.
    pub fn internet(mut self, net: &Arc<SimInternet>) -> Self {
        self.internet = Some(Arc::clone(net));
        self
    }

    /// Builds and boots the machine.
    pub fn build(self) -> Result<Arc<Machine>> {
        // The root skeleton.
        let rootfs = MemFs::new("root", "bootes");
        for dir in ["/net", "/dev", "/tmp", "/n", "/lib/ndb"] {
            rootfs.put_dir(dir)?;
        }
        let mut ndb_all: Vec<String> = self.ndb_texts.clone();
        ndb_all.push(SERVICES_NDB.to_string());
        rootfs.put_file("/lib/ndb/local", ndb_all.join("\n").as_bytes())?;
        let db = Arc::new(Db::from_texts(
            &ndb_all.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        let root_dyn: Arc<dyn ProcFs> = rootfs.clone();
        let ns = Namespace::new(Source::attach(&root_dyn, "bootes", "")?);
        let mut networks = Vec::new();
        // Ethernet + IP protocols.
        let mut ip = None;
        let mut ether_dev = None;
        if let Some((seg, mac, cfg)) = &self.ether {
            let stack = IpStack::new(seg.attach(*mac), cfg.clone());
            // A second station with the same address gives the ether
            // device its own view of the wire (Figure 1) without
            // stealing frames from IP.
            let dev = EtherDev::new(seg.attach(*mac));
            rootfs.put_dir("/net/ether0")?;
            let dev_dyn: Arc<dyn ProcFs> = dev.clone();
            ns.mount(Source::attach(&dev_dyn, "bootes", "")?, "/net/ether0", MREPL)?;
            for proto in ["il", "tcp", "udp"] {
                let ops: Box<dyn ProtoOps> = match proto {
                    "il" => Box::new(IlProto {
                        stack: Arc::clone(&stack),
                        db: Arc::clone(&db),
                    }),
                    "tcp" => Box::new(TcpProto {
                        stack: Arc::clone(&stack),
                        db: Arc::clone(&db),
                    }),
                    _ => Box::new(UdpProto {
                        stack: Arc::clone(&stack),
                        db: Arc::clone(&db),
                    }),
                };
                let dev = ProtoDev::new(ops);
                rootfs.put_dir(&format!("/net/{proto}"))?;
                let dev_dyn: Arc<dyn ProcFs> = dev;
                ns.mount(
                    Source::attach(&dev_dyn, "bootes", "")?,
                    &format!("/net/{proto}"),
                    MREPL,
                )?;
                networks.push(NetworkDecl::ip(proto));
            }
            ip = Some(stack);
            ether_dev = Some(dev);
        }
        // Datakit + URP.
        let mut dk = None;
        if let Some((switch, addr)) = &self.datakit {
            let line = switch.attach(addr).map_err(NineError::new)?;
            let dispatcher = DkDispatcher::start(line);
            let dev = ProtoDev::new(Box::new(DkProto {
                dispatcher: Arc::clone(&dispatcher),
            }));
            rootfs.put_dir("/net/dk")?;
            let dev_dyn: Arc<dyn ProcFs> = dev;
            ns.mount(Source::attach(&dev_dyn, "bootes", "")?, "/net/dk", MREPL)?;
            networks.push(NetworkDecl::datakit("dk"));
            dk = Some(dispatcher);
        }
        // UARTs.
        if !self.uarts.is_empty() {
            let dev = EiaDev::new(self.uarts);
            let dev_dyn: Arc<dyn ProcFs> = dev;
            ns.mount(Source::attach(&dev_dyn, "bootes", "")?, "/dev", MAFTER)?;
        }
        // Synthesized information files: /dev/sysname, and /net/arp for
        // interface diagnostics (the ARP the LANCE driver exposes, §2.2).
        {
            let sysname = self.name.clone();
            let mut dev_files: Vec<(String, crate::dev::InfoGen)> = vec![(
                "sysname".to_string(),
                Box::new(move || sysname.clone()),
            )];
            let user = "glenda".to_string();
            dev_files.push(("user".to_string(), Box::new(move || user.clone())));
            let dev_info = crate::dev::InfoFs::new("devinfo", dev_files);
            let dev_dyn: Arc<dyn ProcFs> = dev_info;
            ns.mount(Source::attach(&dev_dyn, "bootes", "")?, "/dev", MAFTER)?;
        }
        if let Some(stack) = &ip {
            let arp_stack = Arc::clone(stack);
            let net_info = crate::dev::InfoFs::new(
                "netinfo",
                vec![(
                    "arp".to_string(),
                    Box::new(move || {
                        let mut out = String::new();
                        for (ip, mac) in arp_stack.arp.entries() {
                            out.push_str(&format!(
                                "{} {}\n",
                                ip,
                                plan9_netsim::ether::mac_to_string(&mac)
                            ));
                        }
                        out
                    }) as crate::dev::InfoGen,
                )],
            );
            let net_dyn: Arc<dyn ProcFs> = net_info;
            ns.mount(Source::attach(&net_dyn, "bootes", "")?, "/net", MAFTER)?;
            // The netlog device: /net/log/{ctl,data} over this stack's
            // event ring.
            let log_fs = crate::dev::LogFs::new(Arc::clone(stack.netlog()));
            let log_dyn: Arc<dyn ProcFs> = log_fs;
            ns.mount(Source::attach(&log_dyn, "bootes", "")?, "/net", MAFTER)?;
            // The nettrace device: /net/trace/{ctl,data} over the
            // process-wide flight recorder, so a trace that crosses
            // machines reads the same from any of them.
            let trace_fs =
                crate::dev::TraceFs::new(Arc::clone(plan9_netlog::trace::global()));
            let trace_dyn: Arc<dyn ProcFs> = trace_fs;
            ns.mount(Source::attach(&trace_dyn, "bootes", "")?, "/net", MAFTER)?;
        }
        // DNS, then CS over it.
        let dns = self.internet.as_ref().map(|net| DnsServer::new(Arc::clone(net)));
        if let Some(dns) = &dns {
            let fs: Arc<dyn ProcFs> = dns.file_server();
            ns.mount(Source::attach(&fs, "bootes", "")?, "/net", MAFTER)?;
        }
        let cs = CsServer::new(
            CsConfig {
                sysname: self.name.clone(),
                networks,
                mount_prefix: "/net".to_string(),
            },
            Arc::clone(&db),
            dns.clone(),
        );
        {
            let fs: Arc<dyn ProcFs> = cs.file_server();
            ns.mount(Source::attach(&fs, "bootes", "")?, "/net", MAFTER)?;
        }
        Ok(Arc::new(Machine {
            name: self.name,
            rootfs,
            base_ns: ns,
            ip,
            ether_dev,
            dk,
            db,
            dns,
            cs,
        }))
    }
}

/// A booted machine.
pub struct Machine {
    /// The machine's name.
    pub name: String,
    /// The root file tree (also home of `/lib/ndb/local`).
    pub rootfs: Arc<MemFs>,
    base_ns: Arc<Namespace>,
    /// The IP interface, if the machine has an Ethernet.
    pub ip: Option<Arc<IpStack>>,
    /// The Ethernet device (Figure 1), if present.
    pub ether_dev: Option<Arc<EtherDev>>,
    /// The Datakit dispatcher, if the machine has a line.
    pub dk: Option<Arc<DkDispatcher>>,
    /// The network database.
    pub db: Arc<Db>,
    /// The DNS resolver, if connected to an internet.
    pub dns: Option<Arc<DnsServer>>,
    /// The connection server.
    pub cs: Arc<CsServer>,
}

impl Machine {
    /// Starts a process with a copy of the machine's default name space.
    pub fn proc(&self) -> Proc {
        Proc::new(self.base_ns.fork(), "glenda")
    }

    /// Starts a process for a specific user.
    pub fn proc_as(&self, user: &str) -> Proc {
        Proc::new(self.base_ns.fork(), user)
    }

    /// The machine's IP address, if any.
    pub fn ip_addr(&self) -> Option<IpAddr> {
        self.ip.as_ref().map(|s| s.addr())
    }
}

// ---------------------------------------------------------------------------
// Protocol implementations plugged into the generic device.
// ---------------------------------------------------------------------------

fn parse_ip_port(db: &Db, proto: &str, addr: &str) -> Result<(IpAddr, u16)> {
    let (host, port) = addr
        .split_once('!')
        .ok_or_else(|| NineError::new(format!("bad address: {addr}")))?;
    // The host part may be a name when the ctl write bypassed CS (a
    // gatewayed dial, §6.1); fall back to the machine's own database.
    let ip = match IpAddr::parse(host) {
        Ok(ip) => ip,
        Err(e) => {
            let entry = db.find_system(host).ok_or(e)?;
            let ip = entry
                .get("ip")
                .ok_or_else(|| NineError::new(format!("no ip for {host}")))?;
            IpAddr::parse(ip)?
        }
    };
    // Service names resolve through the service map (`tcp=telnet
    // port=23`); numbers pass through.
    let port = db
        .lookup_service(proto, port)
        .ok_or_else(|| NineError::new(format!("bad port: {port}")))?;
    Ok((ip, port))
}

fn parse_announce_port(db: &Db, proto: &str, addr: &str) -> Result<u16> {
    // `*!564`, `*!echo` or just `564`.
    let port = addr.rsplit_once('!').map(|(_, p)| p).unwrap_or(addr);
    db.lookup_service(proto, port)
        .ok_or_else(|| NineError::new(format!("bad port: {port}")))
}

struct TcpProto {
    stack: Arc<IpStack>,
    db: Arc<Db>,
}

struct TcpConnOps {
    conn: Arc<plan9_inet::tcp::TcpConn>,
}

impl ConnOps for TcpConnOps {
    fn send(&self, msg: &[u8]) -> Result<()> {
        self.conn.write(msg).map(|_| ())
    }
    fn recv(&self) -> Result<Option<Vec<u8>>> {
        match self.conn.read(65536) {
            Ok(data) if data.is_empty() => Ok(None),
            Ok(data) => Ok(Some(data)),
            Err(e) => Err(e),
        }
    }
    fn local(&self) -> String {
        self.conn.local_string()
    }
    fn remote(&self) -> String {
        self.conn.remote_string()
    }
    fn status(&self) -> String {
        self.conn.status_string()
    }
    fn close(&self) {
        self.conn.close();
    }
}

struct TcpAnnounceOps {
    listener: plan9_inet::tcp::TcpListener,
    stack: Arc<IpStack>,
}

impl AnnounceOps for TcpAnnounceOps {
    fn listen(&self) -> Result<Arc<dyn ConnOps>> {
        let conn = self.listener.accept()?;
        Ok(Arc::new(TcpConnOps { conn }))
    }
    fn local(&self) -> String {
        format!("{} {}", self.stack.addr(), self.listener.port())
    }
}

impl ProtoOps for TcpProto {
    fn proto(&self) -> String {
        "tcp".to_string()
    }
    fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>> {
        let (ip, port) = parse_ip_port(&self.db, "tcp", addr)?;
        let conn = self.stack.tcp_module().connect(&self.stack, ip, port)?;
        Ok(Arc::new(TcpConnOps { conn }))
    }
    fn announce(&self, addr: &str) -> Result<Box<dyn AnnounceOps>> {
        let port = parse_announce_port(&self.db, "tcp", addr)?;
        let listener = self.stack.tcp_module().listen(&self.stack, port)?;
        Ok(Box::new(TcpAnnounceOps {
            listener,
            stack: Arc::clone(&self.stack),
        }))
    }
    fn stats_text(&self) -> String {
        format!(
            "{}{}",
            self.stack.tcp_module().stats.render(),
            self.stack.stats.render()
        )
    }
}

struct IlProto {
    stack: Arc<IpStack>,
    db: Arc<Db>,
}

struct IlConnOps {
    conn: Arc<plan9_inet::il::IlConn>,
}

impl ConnOps for IlConnOps {
    fn send(&self, msg: &[u8]) -> Result<()> {
        self.conn.send(msg)
    }
    fn recv(&self) -> Result<Option<Vec<u8>>> {
        self.conn.recv()
    }
    fn local(&self) -> String {
        self.conn.local_string()
    }
    fn remote(&self) -> String {
        self.conn.remote_string()
    }
    fn status(&self) -> String {
        self.conn.status_string()
    }
    fn close(&self) {
        self.conn.close();
    }
}

struct IlAnnounceOps {
    listener: plan9_inet::il::IlListener,
    stack: Arc<IpStack>,
}

impl AnnounceOps for IlAnnounceOps {
    fn listen(&self) -> Result<Arc<dyn ConnOps>> {
        let conn = self.listener.accept()?;
        Ok(Arc::new(IlConnOps { conn }))
    }
    fn local(&self) -> String {
        format!("{} {}", self.stack.addr(), self.listener.port())
    }
}

impl ProtoOps for IlProto {
    fn proto(&self) -> String {
        "il".to_string()
    }
    fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>> {
        let (ip, port) = parse_ip_port(&self.db, "il", addr)?;
        let conn = self.stack.il_module().connect(&self.stack, ip, port)?;
        Ok(Arc::new(IlConnOps { conn }))
    }
    fn announce(&self, addr: &str) -> Result<Box<dyn AnnounceOps>> {
        let port = parse_announce_port(&self.db, "il", addr)?;
        let listener = self.stack.il_module().listen(&self.stack, port)?;
        Ok(Box::new(IlAnnounceOps {
            listener,
            stack: Arc::clone(&self.stack),
        }))
    }
    fn stats_text(&self) -> String {
        format!(
            "{}{}",
            self.stack.il_module().stats.render(),
            self.stack.stats.render()
        )
    }
}

struct UdpProto {
    stack: Arc<IpStack>,
    db: Arc<Db>,
}

struct UdpConnOps {
    sock: plan9_inet::udp::UdpSocket,
    stack: Arc<IpStack>,
    remote: (IpAddr, u16),
}

impl ConnOps for UdpConnOps {
    fn send(&self, msg: &[u8]) -> Result<()> {
        self.sock.send_to(self.remote.0, self.remote.1, msg)
    }
    fn recv(&self) -> Result<Option<Vec<u8>>> {
        let (_src, _sport, data) = self.sock.recv()?;
        Ok(Some(data))
    }
    fn local(&self) -> String {
        format!("{} {}", self.stack.addr(), self.sock.port())
    }
    fn remote(&self) -> String {
        format!("{} {}", self.remote.0, self.remote.1)
    }
    fn status(&self) -> String {
        "Datagram".to_string()
    }
    fn close(&self) {}
}

impl ProtoOps for UdpProto {
    fn proto(&self) -> String {
        "udp".to_string()
    }
    fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>> {
        let (ip, port) = parse_ip_port(&self.db, "udp", addr)?;
        let sock = self.stack.udp_module().bind(&self.stack, 0)?;
        Ok(Arc::new(UdpConnOps {
            sock,
            stack: Arc::clone(&self.stack),
            remote: (ip, port),
        }))
    }
    fn announce(&self, _addr: &str) -> Result<Box<dyn AnnounceOps>> {
        // UDP is connectionless; the paper's protocol devices announce
        // only stream-like protocols.
        Err(NineError::new("udp: announce not supported"))
    }
    fn stats_text(&self) -> String {
        format!(
            "{}{}",
            self.stack.udp_module().render_stats(),
            self.stack.stats.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Datakit: one line, many services — a dispatcher routes incoming calls
// by the service named in the dial string.
// ---------------------------------------------------------------------------

/// Routes incoming Datakit calls to per-service announcements.
pub struct DkDispatcher {
    addr: String,
    line: Arc<DatakitLine>,
    services: Mutex<HashMap<String, IncomingCallTx>>,
}

/// Hands an accepted call (its connection and calling address) to the
/// service that announced the channel.
type IncomingCallTx = plan9_support::chan::Sender<(Arc<UrpConn>, String)>;

impl DkDispatcher {
    fn start(line: DatakitLine) -> Arc<DkDispatcher> {
        let d = Arc::new(DkDispatcher {
            addr: line.addr().to_string(),
            line: Arc::new(line),
            services: Mutex::named(HashMap::new(), "core.machine.services"),
        });
        let disp = Arc::clone(&d);
        plan9_support::vtime::kproc("dk-listener", move || disp.accept_loop())
            // checked: spawn fails only on OS thread exhaustion at setup, not on a data path
            .expect("spawn dk listener");
        d
    }

    /// This line's Datakit address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn accept_loop(self: Arc<Self>) {
        loop {
            let Some(call) = self.line.listen_timeout(Duration::from_millis(100)) else {
                continue;
            };
            let service = call.service.clone();
            let tx = self.services.lock().get(&service).cloned();
            match tx {
                Some(tx) => {
                    let conn = UrpConn::new(call.circuit);
                    let _ = tx.send((conn, call.from));
                }
                None => {
                    // "Some networks such as Datakit accept a reason for
                    // a rejection."
                    call.circuit.reject(&format!("unknown service: {service}"));
                }
            }
        }
    }
}

struct DkProto {
    dispatcher: Arc<DkDispatcher>,
}

struct DkConnOps {
    conn: Arc<UrpConn>,
}

impl ConnOps for DkConnOps {
    fn send(&self, msg: &[u8]) -> Result<()> {
        self.conn.send(msg)
    }
    fn recv(&self) -> Result<Option<Vec<u8>>> {
        Ok(self.conn.recv())
    }
    fn local(&self) -> String {
        self.conn.local_addr()
    }
    fn remote(&self) -> String {
        self.conn.remote_addr()
    }
    fn status(&self) -> String {
        self.conn.status_string()
    }
    fn close(&self) {
        self.conn.close();
    }
}

struct DkAnnounceOps {
    service: String,
    local: String,
    rx: plan9_support::chan::Receiver<(Arc<UrpConn>, String)>,
}

impl AnnounceOps for DkAnnounceOps {
    fn listen(&self) -> Result<Arc<dyn ConnOps>> {
        let (conn, _from) = self
            .rx
            .recv()
            .map_err(|_| NineError::new("announce closed"))?;
        Ok(Arc::new(DkConnOps { conn }))
    }
    fn local(&self) -> String {
        format!("{}!{}", self.local, self.service)
    }
}

impl ProtoOps for DkProto {
    fn proto(&self) -> String {
        "dk".to_string()
    }
    fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>> {
        let conn = urp_dial(&self.dispatcher.line, addr)?;
        // Datakit rejections surface on the first receive; probe early
        // failures are left to the caller, as on real hardware.
        Ok(Arc::new(DkConnOps { conn }))
    }
    fn announce(&self, addr: &str) -> Result<Box<dyn AnnounceOps>> {
        // `*!9fs` or `9fs`.
        let service = addr.rsplit_once('!').map(|(_, s)| s).unwrap_or(addr);
        let (tx, rx) = plan9_support::chan::bounded(32);
        let mut services = self.dispatcher.services.lock();
        if services.contains_key(service) {
            return Err(NineError::new(format!("service in use: {service}")));
        }
        services.insert(service.to_string(), tx);
        Ok(Box::new(DkAnnounceOps {
            service: service.to_string(),
            local: self.dispatcher.addr.clone(),
            rx,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dial::{accept, announce, dial, listen};
    use plan9_netsim::profile::Profiles;

    fn mac(n: u8) -> MacAddr {
        [0x08, 0x00, 0x69, 0x02, 0x22, n]
    }

    /// Two machines on one Ethernet and one Datakit switch, with the
    /// paper's database entries.
    pub(crate) fn helix_and_gnot() -> (Arc<Machine>, Arc<Machine>) {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let switch = DatakitSwitch::new(Profiles::datakit_fast());
        let ndb = "\
sys=helix dom=helix.research.bell-labs.com ip=135.104.9.31 ether=0800690222f0 dk=nj/astro/helix proto=il proto=tcp
sys=gnot ip=135.104.9.40 dk=nj/astro/philw-gnot proto=il proto=tcp
";
        let helix = MachineBuilder::new("helix")
            .ether(&seg, mac(0xf0), IpConfig::local("135.104.9.31"))
            .datakit(&switch, "nj/astro/helix")
            .ndb(ndb)
            .build()
            .unwrap();
        let gnot = MachineBuilder::new("gnot")
            .ether(&seg, mac(0x40), IpConfig::local("135.104.9.40"))
            .datakit(&switch, "nj/astro/philw-gnot")
            .ndb(ndb)
            .build()
            .unwrap();
        (helix, gnot)
    }

    #[test]
    fn net_directory_matches_convention() {
        let (helix, _) = helix_and_gnot();
        let p = helix.proc();
        let mut names: Vec<String> = p.ls("/net").unwrap().iter().map(|d| d.name.clone()).collect();
        names.sort();
        assert_eq!(
            names,
            vec!["arp", "cs", "dk", "ether0", "il", "log", "tcp", "trace", "udp"]
        );
    }

    #[test]
    fn stats_and_netlog_through_namespace() {
        let (helix, gnot) = helix_and_gnot();
        let hp = helix.proc();
        // Trace IL on the caller, then run one echo over it.
        let gp = gnot.proc();
        let ctl = gp
            .open("/net/log/ctl", plan9_ninep::procfs::OpenMode::RDWR)
            .unwrap();
        gp.write_str(ctl, "set il").unwrap();
        let echo = std::thread::spawn(move || {
            let (_afd, adir) = announce(&hp, "il!*!echo").unwrap();
            let (lcfd, ldir) = listen(&hp, &adir).unwrap();
            let dfd = accept(&hp, lcfd, &ldir).unwrap();
            let msg = hp.read(dfd, 8192).unwrap();
            hp.write(dfd, &msg).unwrap();
        });
        std::thread::sleep(Duration::from_millis(100));
        let conn = dial(&gp, "il!135.104.9.31!echo").unwrap();
        gp.write(conn.data_fd, b"count me").unwrap();
        assert_eq!(gp.read(conn.data_fd, 8192).unwrap(), b"count me");
        echo.join().unwrap();
        // The protocol stats file shows traffic.
        let fd = gp
            .open("/net/il/stats", plan9_ninep::procfs::OpenMode::READ)
            .unwrap();
        let text = gp.read_string(fd).unwrap();
        assert!(text.contains("ilTx:"), "{text}");
        assert!(text.contains("ipRx:"), "{text}");
        // The netlog data file holds only il-facility events.
        let fd = gp
            .open("/net/log/data", plan9_ninep::procfs::OpenMode::READ)
            .unwrap();
        let log = gp.read_string(fd).unwrap();
        assert!(log.lines().all(|l| l.starts_with("il: ")), "{log}");
        assert!(log.contains("sync id"), "{log}");
    }

    #[test]
    fn dial_il_by_symbolic_name() {
        let (helix, gnot) = helix_and_gnot();
        let hp = helix.proc();
        let echo = std::thread::spawn(move || {
            let (_afd, adir) = announce(&hp, "il!*!9fs").unwrap();
            let (lcfd, ldir) = listen(&hp, &adir).unwrap();
            let dfd = accept(&hp, lcfd, &ldir).unwrap();
            let msg = hp.read(dfd, 8192).unwrap();
            hp.write(dfd, &msg).unwrap();
        });
        std::thread::sleep(Duration::from_millis(100));
        let gp = gnot.proc();
        let conn = dial(&gp, "net!helix!9fs").unwrap();
        assert!(conn.dir.starts_with("/net/il/"), "{}", conn.dir);
        gp.write(conn.data_fd, b"Tattach please").unwrap();
        assert_eq!(gp.read(conn.data_fd, 8192).unwrap(), b"Tattach please");
        echo.join().unwrap();
    }

    #[test]
    fn dial_falls_back_to_datakit() {
        let (helix, gnot) = helix_and_gnot();
        let hp = helix.proc();
        let srv = std::thread::spawn(move || {
            let (_afd, adir) = announce(&hp, "dk!*!rx").unwrap();
            let (lcfd, ldir) = listen(&hp, &adir).unwrap();
            let dfd = accept(&hp, lcfd, &ldir).unwrap();
            let msg = hp.read(dfd, 8192).unwrap();
            hp.write(dfd, &msg).unwrap();
        });
        std::thread::sleep(Duration::from_millis(100));
        let gp = gnot.proc();
        // rx is not an il/tcp service name, so only dk resolves it.
        let conn = dial(&gp, "dk!nj/astro/helix!rx").unwrap();
        assert!(conn.dir.starts_with("/net/dk/"), "{}", conn.dir);
        gp.write(conn.data_fd, b"over datakit").unwrap();
        assert_eq!(gp.read(conn.data_fd, 8192).unwrap(), b"over datakit");
        srv.join().unwrap();
    }

    #[test]
    fn status_files_through_namespace() {
        let (helix, gnot) = helix_and_gnot();
        let hp = helix.proc();
        let _echo = std::thread::spawn(move || {
            let (_afd, adir) = announce(&hp, "tcp!*!echo").unwrap();
            loop {
                let Ok((lcfd, ldir)) = listen(&hp, &adir) else { return };
                let Ok(dfd) = accept(&hp, lcfd, &ldir) else { return };
                let _ = hp.read(dfd, 10);
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        let gp = gnot.proc();
        let conn = dial(&gp, "tcp!135.104.9.31!echo").unwrap();
        // cat local remote status, like the paper's §2.3 listing.
        let st = gp
            .open(&format!("{}/status", conn.dir), plan9_ninep::procfs::OpenMode::READ)
            .unwrap();
        let text = gp.read_string(st).unwrap();
        assert!(text.contains("Established"), "{text}");
        let rf = gp
            .open(&format!("{}/remote", conn.dir), plan9_ninep::procfs::OpenMode::READ)
            .unwrap();
        let text = gp.read_string(rf).unwrap();
        assert_eq!(text, "135.104.9.31 7\n");
    }

    #[test]
    fn csquery_via_net_cs_file() {
        let (_, gnot) = helix_and_gnot();
        let p = gnot.proc();
        let fd = p
            .open("/net/cs", plan9_ninep::procfs::OpenMode::RDWR)
            .unwrap();
        p.write_str(fd, "net!helix!9fs").unwrap();
        let first = String::from_utf8(p.read(fd, 256).unwrap()).unwrap();
        assert_eq!(first, "/net/il/clone 135.104.9.31!17008");
        let second = String::from_utf8(p.read(fd, 256).unwrap()).unwrap();
        assert_eq!(second, "/net/tcp/clone 135.104.9.31!564");
        let third = String::from_utf8(p.read(fd, 256).unwrap()).unwrap();
        assert_eq!(third, "/net/dk/clone nj/astro/helix!9fs");
    }

    #[test]
    fn unknown_service_rejected_with_reason_on_datakit() {
        let (helix, gnot) = helix_and_gnot();
        let _keep = helix; // dispatcher must be alive to reject
        let gp = gnot.proc();
        let conn = dial(&gp, "dk!nj/astro/helix!nonesuch").unwrap();
        // The rejection surfaces as EOF on the data file.
        let data = gp.read(conn.data_fd, 100).unwrap();
        assert!(data.is_empty());
    }
}
