//! The §5 library routines: `dial`, `announce`, `listen`, `accept`,
//! `reject`.
//!
//! "The dance is straightforward but tedious. Library routines are
//! provided to relieve the programmer of the details." Each routine is a
//! few file operations on the protocol devices, guided by the connection
//! server.

use crate::namespace::clean_path;
use crate::proc::Proc;
use plan9_ninep::procfs::OpenMode;
use plan9_ninep::{NineError, Result};

/// The result of a successful [`dial`].
pub struct DialResult {
    /// An open descriptor for the `data` file of the connection.
    pub data_fd: i32,
    /// The path of the protocol directory representing this connection
    /// (the paper's `dir` output argument).
    pub dir: String,
    /// An open descriptor for the `ctl` file (the paper's `cfdp`).
    pub ctl_fd: i32,
}

/// Normalizes a destination like Plan 9's `netmkaddr`: a bare host
/// becomes `net!host!svc`.
pub fn netmkaddr(dest: &str, defnet: &str, defsvc: &str) -> String {
    let bangs = dest.matches('!').count();
    match bangs {
        0 => {
            if defsvc.is_empty() {
                format!("{defnet}!{dest}")
            } else {
                format!("{defnet}!{dest}!{defsvc}")
            }
        }
        1 => {
            if defsvc.is_empty() {
                dest.to_string()
            } else {
                format!("{dest}!{defsvc}")
            }
        }
        _ => dest.to_string(),
    }
}

/// Asks the connection server to translate a symbolic name; returns
/// `(clone file, dial string)` pairs.
pub fn cs_translate(p: &Proc, dest: &str) -> Result<Vec<(String, String)>> {
    let fd = p.open("/net/cs", OpenMode::RDWR)?;
    let r = (|| {
        p.write_str(fd, dest)?;
        p.seek(fd, 0)?;
        let mut out = Vec::new();
        loop {
            let line = p.read(fd, 1024)?;
            if line.is_empty() {
                break;
            }
            let line = String::from_utf8(line).map_err(|_| NineError::new("cs: not text"))?;
            match line.split_once(' ') {
                Some((clone, addr)) => out.push((clone.to_string(), addr.to_string())),
                None => out.push((line, String::new())),
            }
        }
        Ok(out)
    })();
    p.close(fd);
    r
}

/// Fallback translation when no connection server is mounted: the
/// destination must already be `net!addr!svc` with a literal address.
fn raw_translate(dest: &str) -> Result<Vec<(String, String)>> {
    let parts: Vec<&str> = dest.split('!').collect();
    match parts.as_slice() {
        [net, rest @ ..] if !rest.is_empty() => {
            Ok(vec![(format!("/net/{net}/clone"), rest.join("!"))])
        }
        _ => Err(NineError::new(format!("cannot translate address: {dest}"))),
    }
}

/// Establishes a connection to `dest` ("net!host!service").
///
/// Uses CS to translate the name "to all possible destination addresses
/// and attempts to connect to each in turn until one works."
pub fn dial(p: &Proc, dest: &str) -> Result<DialResult> {
    let translations = match cs_translate(p, dest) {
        Ok(t) => t,
        Err(_) => raw_translate(dest)?,
    };
    let mut last_err = NineError::new(format!("cannot translate address: {dest}"));
    for (clone, addr) in translations {
        match dial_one(p, &clone, &addr) {
            Ok(r) => return Ok(r),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// One §2.3 connection dance on a specific clone file.
fn dial_one(p: &Proc, clone: &str, addr: &str) -> Result<DialResult> {
    // 1) The clone device of the appropriate protocol directory is
    //    opened to reserve an unused connection.
    let ctl_fd = p.open(clone, OpenMode::RDWR)?;
    let r = (|| {
        // 2) Reading that file descriptor returns an ASCII string
        //    containing the connection number.
        let n = p.read(ctl_fd, 32)?;
        let n = String::from_utf8(n).map_err(|_| NineError::new("ctl: not text"))?;
        // 3) A protocol/network specific ASCII address string is written
        //    to the ctl file.
        p.write_str(ctl_fd, &format!("connect {addr}"))?;
        // 4) The path of the data file is constructed using the
        //    connection number; when the data file is opened the
        //    connection is established.
        let proto_dir = clean_path(clone)
            .rsplit_once('/')
            .map(|(d, _)| d.to_string())
            .unwrap_or_else(|| "/net".to_string());
        let dir = format!("{proto_dir}/{n}");
        let data_fd = p.open(&format!("{dir}/data"), OpenMode::RDWR)?;
        Ok(DialResult {
            data_fd,
            dir,
            ctl_fd,
        })
    })();
    match r {
        Ok(res) => Ok(res),
        Err(e) => {
            p.close(ctl_fd);
            Err(e)
        }
    }
}

/// Announces the service `addr` ("tcp!*!echo"). Returns the control
/// descriptor (the announcement stays in force until it is closed) and
/// fills `dir` with the protocol directory of the announcement.
pub fn announce(p: &Proc, addr: &str) -> Result<(i32, String)> {
    let translations = match cs_translate(p, addr) {
        Ok(t) => t,
        Err(_) => raw_translate(addr)?,
    };
    let mut last_err = NineError::new(format!("cannot announce: {addr}"));
    for (clone, a) in translations {
        let afd = match p.open(&clone, OpenMode::RDWR) {
            Ok(fd) => fd,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let r = (|| {
            let n = p.read(afd, 32)?;
            let n = String::from_utf8(n).map_err(|_| NineError::new("ctl: not text"))?;
            p.write_str(afd, &format!("announce {a}"))?;
            let proto_dir = clean_path(&clone)
                .rsplit_once('/')
                .map(|(d, _)| d.to_string())
                .unwrap_or_else(|| "/net".to_string());
            Ok(format!("{proto_dir}/{n}"))
        })();
        match r {
            Ok(dir) => return Ok((afd, dir)),
            Err(e) => {
                p.close(afd);
                last_err = e;
            }
        }
    }
    Err(last_err)
}

/// Listens for an incoming call on an announced directory. Blocks;
/// returns the control descriptor of the new connection and its
/// directory (`ldir`).
pub fn listen(p: &Proc, adir: &str) -> Result<(i32, String)> {
    // Opening the listen file blocks until a call arrives; the returned
    // channel points at the ctl file of the new connection.
    let lcfd = p.open(&format!("{adir}/listen"), OpenMode::RDWR)?;
    let n = match p.read(lcfd, 32) {
        Ok(n) => n,
        Err(e) => {
            p.close(lcfd);
            return Err(e);
        }
    };
    let n = String::from_utf8(n).map_err(|_| NineError::new("ctl: not text"))?;
    let proto_dir = clean_path(adir)
        .rsplit_once('/')
        .map(|(d, _)| d.to_string())
        .unwrap_or_else(|| "/net".to_string());
    Ok((lcfd, format!("{proto_dir}/{n}")))
}

/// Accepts the call: opens and returns the connection's `data` file.
pub fn accept(p: &Proc, _lcfd: i32, ldir: &str) -> Result<i32> {
    p.open(&format!("{ldir}/data"), OpenMode::RDWR)
}

/// Rejects the call with a reason. "Some networks such as Datakit accept
/// a reason for a rejection; networks such as IP ignore the third
/// argument."
pub fn reject(p: &Proc, lcfd: i32, _ldir: &str, reason: &str) -> Result<()> {
    p.write_str(lcfd, &format!("reject {reason}")).map(|_| ())
}
