//! Per-process name spaces.
//!
//! "Each process assembles a view of the system by building a name space
//! connecting its resources" (§2.1). A name space is a mount table: an
//! ordered set of mount points, each holding a *union* of sources. The
//! union semantics follow §6.1: with the `-a` (after) flag the new
//! source lands behind the existing contents, the directory shows the
//! union of all members, and earlier entries supersede later ones of the
//! same name.

use plan9_support::sync::RwLock;
use plan9_ninep::procfs::{ProcFs, ServeNode};
use plan9_ninep::{errstr, NineError, Result};
use std::sync::Arc;

/// Mount flag: replace whatever was at the mount point.
pub const MREPL: u32 = 0;

/// Mount flag: place the new source before the existing union.
pub const MBEFORE: u32 = 1;

/// Mount flag: place the new source after the existing union (`import
/// -a`).
pub const MAFTER: u32 = 2;

/// A live reference into a file tree: a server plus a channel to one of
/// its files. Sources are held by mount points and returned by path
/// resolution.
#[derive(Clone)]
pub struct Source {
    /// The file server.
    pub fs: Arc<dyn ProcFs>,
    /// A channel on the server (the mounted tree's root, or the resolved
    /// file).
    pub node: ServeNode,
}

impl Source {
    /// Builds a source by attaching to a server's root.
    pub fn attach(fs: &Arc<dyn ProcFs>, uname: &str, aname: &str) -> Result<Source> {
        let node = fs.attach(uname, aname)?;
        Ok(Source {
            fs: Arc::clone(fs),
            node,
        })
    }

    /// Clones the underlying channel (both evolve independently).
    pub fn clone_chan(&self) -> Result<Source> {
        Ok(Source {
            fs: Arc::clone(&self.fs),
            node: self.fs.clone_node(&self.node)?,
        })
    }

    /// Releases the channel.
    pub fn clunk(&self) {
        self.fs.clunk(&self.node);
    }
}

struct MountPoint {
    path: String,
    union: Vec<Source>,
}

/// A mount table: the process's view of the world.
pub struct Namespace {
    table: RwLock<Vec<MountPoint>>,
}

/// Normalizes a path lexically: leading `/`, `.` and `..` resolved.
pub fn clean_path(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            c => parts.push(c),
        }
    }
    let mut out = String::from("/");
    out.push_str(&parts.join("/"));
    out
}

/// Splits a cleaned path into components.
fn components(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty()).collect()
}

impl Namespace {
    /// Creates a name space rooted at the given source.
    pub fn new(root: Source) -> Arc<Namespace> {
        Arc::new(Namespace {
            table: RwLock::named(vec![MountPoint {
                path: "/".to_string(),
                union: vec![root],
            }], "core.namespace"),
        })
    }

    /// Forks the name space: the child gets a copy of the mount table
    /// (sharing the mounted servers), so later changes are private —
    /// Plan 9's per-process name space semantics.
    pub fn fork(&self) -> Arc<Namespace> {
        let table = self.table.read();
        Arc::new(Namespace {
            table: RwLock::named(
                table
                    .iter()
                    .map(|mp| MountPoint {
                        path: mp.path.clone(),
                        union: mp.union.clone(),
                    })
                    .collect(),
                "core.namespace",
            ),
        })
    }

    /// Mounts `src` at `path` with the given flag.
    ///
    /// With [`MBEFORE`]/[`MAFTER`] the directory previously visible at
    /// `path` stays in the union, exactly like `import -a` in §6.1.
    pub fn mount(&self, src: Source, path: &str, flags: u32) -> Result<()> {
        let path = clean_path(path);
        // What is at the path now (for union flags)?
        let existing_here = self.table.read().iter().any(|mp| mp.path == path);
        let prior = if !existing_here && flags != MREPL {
            self.resolve(&path).ok()
        } else {
            None
        };
        let mut table = self.table.write();
        if let Some(mp) = table.iter_mut().find(|mp| mp.path == path) {
            match flags {
                MBEFORE => mp.union.insert(0, src),
                MAFTER => mp.union.push(src),
                _ => {
                    for old in mp.union.drain(..) {
                        old.clunk();
                    }
                    mp.union.push(src);
                }
            }
            return Ok(());
        }
        let union = match (flags, prior) {
            (MBEFORE, Some(p)) => vec![src, p],
            (MAFTER, Some(p)) => vec![p, src],
            _ => vec![src],
        };
        table.push(MountPoint { path, union });
        // Longest paths first so prefix search finds the deepest mount.
        table.sort_by_key(|mp| std::cmp::Reverse(mp.path.len()));
        Ok(())
    }

    /// Binds the tree at `from` onto `to` (both are paths in this name
    /// space).
    pub fn bind(&self, from: &str, to: &str, flags: u32) -> Result<()> {
        let src = self.resolve(from)?;
        self.mount(src, to, flags)
    }

    /// Removes the mount point at `path` (all union members).
    pub fn unmount(&self, path: &str) -> Result<()> {
        let path = clean_path(path);
        let mut table = self.table.write();
        let before = table.len();
        table.retain(|mp| mp.path != path);
        if table.len() == before {
            return Err(NineError::new("not mounted"));
        }
        Ok(())
    }

    /// The mount table rendered like `/proc/n/ns`.
    pub fn render(&self) -> String {
        let table = self.table.read();
        let mut out = String::new();
        for mp in table.iter().rev() {
            for s in &mp.union {
                out.push_str(&format!("mount '{}' {}\n", s.fs.fsname(), mp.path));
            }
        }
        out
    }

    /// Finds the deepest mount point that prefixes `path`, returning the
    /// union and the remaining components.
    fn lookup(&self, path: &str) -> Option<(Vec<Source>, Vec<String>)> {
        let table = self.table.read();
        for mp in table.iter() {
            let rest = if mp.path == "/" {
                Some(path.trim_start_matches('/'))
            } else if path == mp.path {
                Some("")
            } else {
                path.strip_prefix(&format!("{}/", mp.path))
            };
            if let Some(rest) = rest {
                let comps = components(rest).iter().map(|s| s.to_string()).collect();
                return Some((mp.union.clone(), comps));
            }
        }
        None
    }

    /// Resolves a path to a fresh channel; the caller owns it and must
    /// [`Source::clunk`] it.
    pub fn resolve(&self, path: &str) -> Result<Source> {
        let path = clean_path(path);
        let (union, comps) = self
            .lookup(&path)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))?;
        let mut last_err = NineError::new(errstr::ENOTEXIST);
        for member in &union {
            match walk_all(member, &comps) {
                Ok(src) => return Ok(src),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Resolves a path in *every* union member it exists in — the basis
    /// of union directory reads.
    pub fn resolve_all(&self, path: &str) -> Vec<Source> {
        let path = clean_path(path);
        let Some((union, comps)) = self.lookup(&path) else {
            return Vec::new();
        };
        union
            .iter()
            .filter_map(|m| walk_all(m, &comps).ok())
            .collect()
    }
}

/// Clones a union member's channel and walks it down the components.
fn walk_all(member: &Source, comps: &[String]) -> Result<Source> {
    let mut cur = member.clone_chan()?;
    for c in comps {
        match cur.fs.walk(&cur.node, c) {
            Ok(next) => cur.node = next,
            Err(e) => {
                cur.clunk();
                return Err(e);
            }
        }
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_ninep::procfs::{MemFs, OpenMode};

    fn ns_with_root() -> (Arc<Namespace>, Arc<MemFs>) {
        let root = MemFs::new("root", "bootes");
        root.put_file("/net/KEEP", b"").unwrap();
        root.put_file("/dev/cons", b"").unwrap();
        root.put_file("/tmp/.keep", b"").unwrap();
        let fs: Arc<dyn ProcFs> = root.clone();
        let src = Source::attach(&fs, "bootes", "").unwrap();
        (Namespace::new(src), root)
    }

    fn read_file(ns: &Namespace, path: &str) -> Result<Vec<u8>> {
        let src = ns.resolve(path)?;
        let node = src.fs.open(&src.node, OpenMode::READ)?;
        let data = src.fs.read(&node, 0, 4096)?;
        src.fs.clunk(&node);
        Ok(data)
    }

    #[test]
    fn clean_path_cases() {
        assert_eq!(clean_path("/a/b/../c//./d"), "/a/c/d");
        assert_eq!(clean_path("a/b"), "/a/b");
        assert_eq!(clean_path("/"), "/");
        assert_eq!(clean_path("/../.."), "/");
    }

    #[test]
    fn resolve_through_root() {
        let (ns, _root) = ns_with_root();
        assert!(ns.resolve("/dev/cons").is_ok());
        assert!(ns.resolve("/dev/nope").is_err());
    }

    #[test]
    fn mount_replaces_path() {
        let (ns, _root) = ns_with_root();
        let other = MemFs::new("other", "u");
        other.put_file("/hello", b"from other").unwrap();
        let fs: Arc<dyn ProcFs> = other;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/mnt", MREPL)
            .unwrap();
        assert_eq!(read_file(&ns, "/mnt/hello").unwrap(), b"from other");
    }

    #[test]
    fn deepest_mount_wins() {
        let (ns, _root) = ns_with_root();
        let netfs = MemFs::new("netfs", "u");
        netfs.put_file("/clone", b"netfs clone").unwrap();
        let fs: Arc<dyn ProcFs> = netfs;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/net/tcp", MREPL)
            .unwrap();
        assert_eq!(read_file(&ns, "/net/tcp/clone").unwrap(), b"netfs clone");
        // Sibling names still come from the root.
        assert!(ns.resolve("/net/KEEP").is_ok());
    }

    #[test]
    fn union_after_keeps_local_first() {
        let (ns, _root) = ns_with_root();
        let remote = MemFs::new("remote", "u");
        remote.put_file("/KEEP", b"remote KEEP").unwrap();
        remote.put_file("/dns", b"remote dns").unwrap();
        let fs: Arc<dyn ProcFs> = remote;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/net", MAFTER)
            .unwrap();
        // Local entries supersede remote ones of the same name.
        assert_eq!(read_file(&ns, "/net/KEEP").unwrap(), b"");
        // Unique remote entries become visible.
        assert_eq!(read_file(&ns, "/net/dns").unwrap(), b"remote dns");
    }

    #[test]
    fn union_before_prefers_new() {
        let (ns, _root) = ns_with_root();
        let over = MemFs::new("over", "u");
        over.put_file("/KEEP", b"override").unwrap();
        let fs: Arc<dyn ProcFs> = over;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/net", MBEFORE)
            .unwrap();
        assert_eq!(read_file(&ns, "/net/KEEP").unwrap(), b"override");
    }

    #[test]
    fn resolve_all_returns_every_member() {
        let (ns, _root) = ns_with_root();
        let extra = MemFs::new("extra", "u");
        extra.put_file("/x", b"").unwrap();
        let fs: Arc<dyn ProcFs> = extra;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/net", MAFTER)
            .unwrap();
        assert_eq!(ns.resolve_all("/net").len(), 2);
        assert_eq!(ns.resolve_all("/net/x").len(), 1);
    }

    #[test]
    fn fork_isolates_changes() {
        let (ns, _root) = ns_with_root();
        let child = ns.fork();
        let extra = MemFs::new("extra", "u");
        extra.put_file("/only-in-child", b"").unwrap();
        let fs: Arc<dyn ProcFs> = extra;
        child
            .mount(Source::attach(&fs, "u", "").unwrap(), "/mnt", MREPL)
            .unwrap();
        assert!(child.resolve("/mnt/only-in-child").is_ok());
        assert!(ns.resolve("/mnt/only-in-child").is_err());
    }

    #[test]
    fn bind_aliases_a_tree() {
        let (ns, _root) = ns_with_root();
        ns.bind("/dev", "/tmp/devalias", MREPL).unwrap();
        assert!(ns.resolve("/tmp/devalias/cons").is_ok());
    }

    #[test]
    fn unmount_restores() {
        let (ns, _root) = ns_with_root();
        let over = MemFs::new("over", "u");
        over.put_file("/f", b"").unwrap();
        let fs: Arc<dyn ProcFs> = over;
        ns.mount(Source::attach(&fs, "u", "").unwrap(), "/mnt", MREPL)
            .unwrap();
        assert!(ns.resolve("/mnt/f").is_ok());
        ns.unmount("/mnt").unwrap();
        assert!(ns.resolve("/mnt/f").is_err());
        assert!(ns.unmount("/mnt").is_err());
    }
}
