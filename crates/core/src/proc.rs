//! A simulated Plan 9 process: a name space plus a file-descriptor
//! table.
//!
//! The system calls here are the ones the paper's user-level code uses:
//! `open`, `create`, `read`, `write`, `seek`, `close`, `stat`, `remove`,
//! `mount`, `bind` — and `mount_fd`, which turns an open connection into
//! a file tree through the mount driver (§2.1).

use crate::mountdrv::{ChanIo, MountDriver};
use crate::namespace::{Namespace, Source};
use plan9_support::sync::Mutex;
use plan9_ninep::dir::DIR_LEN;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs};
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

enum FdKind {
    /// An open file on some server.
    File(Source),
    /// An open union directory: the merged entries, snapshot at open.
    Dir(Vec<Dir>),
}

struct Fd {
    kind: FdKind,
    offset: u64,
    path: String,
}

/// A process: name space + fd table + identity.
pub struct Proc {
    /// The process's name space.
    pub ns: Arc<Namespace>,
    /// The owning user (passed to attaches).
    pub user: String,
    fds: Mutex<BTreeMap<i32, Fd>>,
    next_fd: Mutex<i32>,
}

impl Proc {
    /// Creates a process over a name space.
    pub fn new(ns: Arc<Namespace>, user: &str) -> Proc {
        Proc {
            ns,
            user: user.to_string(),
            fds: Mutex::named(BTreeMap::new(), "core.proc.fds"),
            next_fd: Mutex::named(0, "core.proc.nextfd"),
        }
    }

    /// Forks: the child shares nothing but a copy of the name space
    /// (like `rfork(RFNAMEG)` plus a fresh fd table).
    pub fn fork(&self) -> Proc {
        Proc::new(self.ns.fork(), &self.user)
    }

    /// Forks and runs `f` over the child in a named kernel process —
    /// `rfork` plus `kproc`. The thread is registered with the virtual
    /// clock's census when one is installed, so discrete-event runs
    /// account for it before deciding the system is quiescent.
    pub fn kproc<F>(&self, name: &str, f: F) -> std::io::Result<plan9_support::vtime::KprocHandle<()>>
    where
        F: FnOnce(Proc) + Send + 'static,
    {
        let child = self.fork();
        plan9_support::vtime::kproc(name, move || f(child))
    }

    fn install(&self, fd: Fd) -> i32 {
        let mut next = self.next_fd.lock();
        let n = *next;
        *next += 1;
        self.fds.lock().insert(n, fd);
        n
    }

    /// Opens a file (or directory) and returns a descriptor.
    pub fn open(&self, path: &str, mode: OpenMode) -> Result<i32> {
        let src = self.ns.resolve(path)?;
        if src.node.qid.is_dir() && mode.access() == 0 {
            src.clunk();
            let entries = self.union_entries(path)?;
            return Ok(self.install(Fd {
                kind: FdKind::Dir(entries),
                offset: 0,
                path: path.to_string(),
            }));
        }
        match src.fs.open(&src.node, mode) {
            Ok(node) => Ok(self.install(Fd {
                kind: FdKind::File(Source {
                    fs: src.fs,
                    node,
                }),
                offset: 0,
                path: path.to_string(),
            })),
            Err(e) => {
                src.clunk();
                Err(e)
            }
        }
    }

    /// Creates a file in the directory part of `path` and opens it.
    pub fn create(&self, path: &str, perm: u32, mode: OpenMode) -> Result<i32> {
        let clean = crate::namespace::clean_path(path);
        let (dir, name) = clean
            .rsplit_once('/')
            .ok_or_else(|| NineError::new("bad path"))?;
        let dir = if dir.is_empty() { "/" } else { dir };
        let src = self.ns.resolve(dir)?;
        match src.fs.create(&src.node, name, perm, mode) {
            Ok(node) => Ok(self.install(Fd {
                kind: FdKind::File(Source {
                    fs: src.fs,
                    node,
                }),
                offset: 0,
                path: clean.clone(),
            })),
            Err(e) => {
                src.clunk();
                Err(e)
            }
        }
    }

    /// Reads up to `count` bytes at the descriptor's offset.
    pub fn read(&self, fd: i32, count: usize) -> Result<Vec<u8>> {
        // Take what we need under the lock, do I/O outside it so reads
        // that block (listen, data files) don't freeze the process's
        // other descriptors.
        let (src, offset) = {
            let fds = self.fds.lock();
            let f = fds.get(&fd).ok_or_else(|| NineError::new("bad fd"))?;
            match &f.kind {
                FdKind::Dir(entries) => {
                    let data = read_dir_slice(entries, f.offset, count)?;
                    drop(fds);
                    let mut fds = self.fds.lock();
                    if let Some(f) = fds.get_mut(&fd) {
                        f.offset += data.len() as u64;
                    }
                    return Ok(data);
                }
                FdKind::File(src) => (src.clone(), f.offset),
            }
        };
        let data = src.fs.read(&src.node, offset, count)?;
        let mut fds = self.fds.lock();
        if let Some(f) = fds.get_mut(&fd) {
            f.offset += data.len() as u64;
        }
        Ok(data)
    }

    /// Reads at an explicit offset without moving the descriptor.
    pub fn pread(&self, fd: i32, offset: u64, count: usize) -> Result<Vec<u8>> {
        let src = self.fd_source(fd)?;
        src.fs.read(&src.node, offset, count)
    }

    /// Writes at the descriptor's offset.
    pub fn write(&self, fd: i32, data: &[u8]) -> Result<usize> {
        let (src, offset) = {
            let fds = self.fds.lock();
            let f = fds.get(&fd).ok_or_else(|| NineError::new("bad fd"))?;
            match &f.kind {
                FdKind::Dir(_) => return Err(NineError::new(errstr::EISDIR)),
                FdKind::File(src) => (src.clone(), f.offset),
            }
        };
        let n = src.fs.write(&src.node, offset, data)?;
        let mut fds = self.fds.lock();
        if let Some(f) = fds.get_mut(&fd) {
            f.offset += n as u64;
        }
        Ok(n)
    }

    /// Writes a string (ctl-file convenience).
    pub fn write_str(&self, fd: i32, s: &str) -> Result<usize> {
        self.write(fd, s.as_bytes())
    }

    /// Reads the whole remaining contents as a string.
    pub fn read_string(&self, fd: i32) -> Result<String> {
        let mut out = Vec::new();
        loop {
            let chunk = self.read(fd, 8192)?;
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
            if out.len() > 1 << 20 {
                break;
            }
        }
        String::from_utf8(out).map_err(|_| NineError::new("not text"))
    }

    /// Sets the descriptor's offset.
    pub fn seek(&self, fd: i32, offset: u64) -> Result<()> {
        let mut fds = self.fds.lock();
        let f = fds.get_mut(&fd).ok_or_else(|| NineError::new("bad fd"))?;
        f.offset = offset;
        Ok(())
    }

    /// Closes a descriptor.
    pub fn close(&self, fd: i32) {
        if let Some(f) = self.fds.lock().remove(&fd) {
            if let FdKind::File(src) = f.kind {
                src.clunk();
            }
        }
    }

    /// The path a descriptor was opened with.
    pub fn fd_path(&self, fd: i32) -> Result<String> {
        let fds = self.fds.lock();
        fds.get(&fd)
            .map(|f| f.path.clone())
            .ok_or_else(|| NineError::new("bad fd"))
    }

    fn fd_source(&self, fd: i32) -> Result<Source> {
        let fds = self.fds.lock();
        match fds.get(&fd) {
            Some(Fd {
                kind: FdKind::File(src),
                ..
            }) => Ok(src.clone()),
            Some(_) => Err(NineError::new(errstr::EISDIR)),
            None => Err(NineError::new("bad fd")),
        }
    }

    /// Stats a path.
    pub fn stat(&self, path: &str) -> Result<Dir> {
        let src = self.ns.resolve(path)?;
        let d = src.fs.stat(&src.node);
        src.clunk();
        d
    }

    /// Stats an open descriptor.
    pub fn fstat(&self, fd: i32) -> Result<Dir> {
        let src = self.fd_source(fd)?;
        src.fs.stat(&src.node)
    }

    /// Removes the file at `path`.
    pub fn remove(&self, path: &str) -> Result<()> {
        let src = self.ns.resolve(path)?;
        src.fs.remove(&src.node)
    }

    /// Lists a directory, applying union semantics.
    pub fn ls(&self, path: &str) -> Result<Vec<Dir>> {
        self.union_entries(path)
    }

    fn union_entries(&self, path: &str) -> Result<Vec<Dir>> {
        let sources = self.ns.resolve_all(path);
        if sources.is_empty() {
            return Err(NineError::new(errstr::ENOTEXIST));
        }
        let mut out: Vec<Dir> = Vec::new();
        for src in sources {
            if !src.node.qid.is_dir() {
                // A union member that is a plain file: stat it.
                if let Ok(d) = src.fs.stat(&src.node) {
                    if !out.iter().any(|e| e.name == d.name) {
                        out.push(d);
                    }
                }
                src.clunk();
                continue;
            }
            match src.fs.open(&src.node, OpenMode::READ) {
                Ok(node) => {
                    let mut offset = 0u64;
                    while let Ok(data) = src.fs.read(&node, offset, 16 * DIR_LEN) {
                        if data.is_empty() {
                            break;
                        }
                        offset += data.len() as u64;
                        for chunk in data.chunks(DIR_LEN) {
                            if let Ok(d) = Dir::decode(chunk) {
                                // Earlier members supersede later ones.
                                if !out.iter().any(|e| e.name == d.name) {
                                    out.push(d);
                                }
                            }
                        }
                    }
                    src.fs.clunk(&node);
                }
                Err(_) => src.clunk(),
            }
        }
        Ok(out)
    }

    /// Mounts a file server at `path`.
    pub fn mount_fs(&self, fs: &Arc<dyn ProcFs>, aname: &str, path: &str, flags: u32) -> Result<()> {
        let src = Source::attach(fs, &self.user, aname)?;
        self.ns.mount(src, path, flags)
    }

    /// Mounts the 9P server reachable through an open descriptor — the
    /// paper's `mount` system call: "provides a file descriptor, which
    /// can be a pipe to a user process or a network connection to a
    /// remote machine".
    ///
    /// `framed` must be true when the descriptor is a byte stream that
    /// does not preserve delimiters (TCP), engaging the marshaling layer.
    pub fn mount_fd(&self, fd: i32, aname: &str, path: &str, flags: u32, framed: bool) -> Result<()> {
        let src = self.fd_source(fd)?;
        let io = ChanIo::new(src);
        let driver = if framed {
            MountDriver::over_bytes(io)
        } else {
            MountDriver::over_messages(io)
        };
        let fs: Arc<dyn ProcFs> = driver?;
        self.mount_fs(&fs, aname, path, flags)
    }

    /// Binds `from` over `to`.
    pub fn bind(&self, from: &str, to: &str, flags: u32) -> Result<()> {
        self.ns.bind(from, to, flags)
    }

    /// Creates a stream pipe (§2.4) and returns descriptors for its two
    /// ends, like the pipe(2) system call.
    pub fn pipe(&self) -> Result<(i32, i32)> {
        let fs: Arc<dyn ProcFs> = crate::dev::PipeFs::new();
        let root = fs.attach(&self.user, "")?;
        let a = fs.walk(&fs.clone_node(&root)?, "data")?;
        let a = fs.open(&a, OpenMode::RDWR)?;
        let b = fs.walk(&fs.clone_node(&root)?, "data1")?;
        let b = fs.open(&b, OpenMode::RDWR)?;
        fs.clunk(&root);
        let fd_a = self.install(Fd {
            kind: FdKind::File(Source {
                fs: Arc::clone(&fs),
                node: a,
            }),
            offset: 0,
            path: "#|/data".to_string(),
        });
        let fd_b = self.install(Fd {
            kind: FdKind::File(Source { fs, node: b }),
            offset: 0,
            path: "#|/data1".to_string(),
        });
        Ok((fd_a, fd_b))
    }

    /// Message/byte I/O over an open descriptor, for code that serves a
    /// protocol across it (exportfs).
    pub fn io(&self, fd: i32) -> Result<ChanIo> {
        Ok(ChanIo::new(self.fd_source(fd)?))
    }

    /// Forks and *transfers* one open descriptor to the child, the way
    /// the listener hands an accepted call to a fresh process. The
    /// descriptor disappears from this process.
    pub fn fork_with_fd(&self, fd: i32) -> (Proc, i32) {
        let child = self.fork();
        let moved = {
            let mut fds = self.fds.lock();
            fds.remove(&fd)
        };
        let child_fd = match moved {
            Some(f) => child.install(f),
            None => -1,
        };
        (child, child_fd)
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        // A process's channels are clunked when it exits.
        let fds: Vec<Fd> = {
            let mut table = self.fds.lock();
            std::mem::take(&mut *table).into_values().collect()
        };
        for fd in fds {
            if let FdKind::File(src) = fd.kind {
                src.clunk();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_ninep::procfs::MemFs;

    fn proc_with_root() -> Proc {
        let root = MemFs::new("root", "bootes");
        root.put_file("/net/README", b"the net directory").unwrap();
        root.put_file("/dev/null", b"").unwrap();
        root.put_file("/lib/ndb/local", b"sys=gnot\n").unwrap();
        let fs: Arc<dyn ProcFs> = root;
        let ns = Namespace::new(Source::attach(&fs, "philw", "").unwrap());
        Proc::new(ns, "philw")
    }

    #[test]
    fn open_read_close() {
        let p = proc_with_root();
        let fd = p.open("/net/README", OpenMode::READ).unwrap();
        assert_eq!(p.read(fd, 3).unwrap(), b"the");
        assert_eq!(p.read(fd, 100).unwrap(), b" net directory");
        assert_eq!(p.read(fd, 100).unwrap(), b"");
        p.close(fd);
        assert!(p.read(fd, 1).is_err());
    }

    #[test]
    fn create_write_stat() {
        let p = proc_with_root();
        let fd = p.create("/tmpfile", 0o644, OpenMode::WRITE).unwrap();
        p.write(fd, b"hello").unwrap();
        p.close(fd);
        let d = p.stat("/tmpfile").unwrap();
        assert_eq!(d.length, 5);
        p.remove("/tmpfile").unwrap();
        assert!(p.stat("/tmpfile").is_err());
    }

    #[test]
    fn ls_merges_unions() {
        let p = proc_with_root();
        let extra = MemFs::new("extra", "u");
        extra.put_file("/cs", b"").unwrap();
        extra.put_file("/README", b"shadowed").unwrap();
        let fs: Arc<dyn ProcFs> = extra;
        p.mount_fs(&fs, "", "/net", crate::namespace::MAFTER).unwrap();
        let names: Vec<String> = p.ls("/net").unwrap().iter().map(|d| d.name.clone()).collect();
        assert!(names.contains(&"README".to_string()));
        assert!(names.contains(&"cs".to_string()));
        // Shadowed: README appears once (the local one).
        assert_eq!(names.iter().filter(|n| *n == "README").count(), 1);
        let fd = p.open("/net/README", OpenMode::READ).unwrap();
        assert_eq!(p.read(fd, 100).unwrap(), b"the net directory");
    }

    #[test]
    fn dir_fd_reads_entries() {
        let p = proc_with_root();
        let fd = p.open("/net", OpenMode::READ).unwrap();
        let data = p.read(fd, 4096).unwrap();
        assert_eq!(data.len() % DIR_LEN, 0);
        let d = Dir::decode(&data[..DIR_LEN]).unwrap();
        assert_eq!(d.name, "README");
    }

    #[test]
    fn fork_gets_private_namespace_and_fds() {
        let p = proc_with_root();
        let fd = p.open("/dev/null", OpenMode::READ).unwrap();
        let child = p.fork();
        assert!(child.read(fd, 1).is_err(), "fds are not inherited");
        child.bind("/dev", "/net", crate::namespace::MBEFORE).unwrap();
        assert!(child.open("/net/null", OpenMode::READ).is_ok());
        assert!(p.open("/net/null", OpenMode::READ).is_err());
    }

    #[test]
    fn pipe_syscall_and_mount_over_it() {
        let p = proc_with_root();
        let (a, b) = p.pipe().unwrap();
        p.write(a, b"through the kernel pipe").unwrap();
        assert_eq!(p.read(b, 100).unwrap(), b"through the kernel pipe");
        // "The mount system call provides a file descriptor, which can
        // be a pipe to a user process": serve a MemFs over one end and
        // mount the other.
        let (srv_fd, cli_fd) = p.pipe().unwrap();
        let served = MemFs::new("userfs", "u");
        served.put_file("/answer", b"42").unwrap();
        let io = p.io(srv_fd).unwrap();
        let fs: Arc<dyn ProcFs> = served;
        std::thread::spawn(move || {
            let _ = plan9_ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
        });
        p.mount_fd(cli_fd, "", "/net", crate::namespace::MBEFORE, false)
            .unwrap();
        let fd = p.open("/net/answer", OpenMode::READ).unwrap();
        assert_eq!(p.read(fd, 10).unwrap(), b"42");
    }

    #[test]
    fn seek_and_pread() {
        let p = proc_with_root();
        let fd = p.open("/net/README", OpenMode::READ).unwrap();
        p.seek(fd, 4).unwrap();
        assert_eq!(p.read(fd, 3).unwrap(), b"net");
        assert_eq!(p.pread(fd, 0, 3).unwrap(), b"the");
        // pread did not move the offset.
        assert_eq!(p.read(fd, 100).unwrap(), b" directory");
    }
}
