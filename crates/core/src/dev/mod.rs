//! Kernel-resident device file systems.
//!
//! "Each device driver is a kernel-resident file system" (§2.2). The
//! protocol devices all look identical so user programs contain no
//! network-specific code (§2.3); the Ethernet device is the two-level
//! tree of Figure 1; the `eia` device is the pair of files per UART that
//! opens §2.2.

pub mod eia;
pub mod ether;
pub mod info;
pub mod log;
pub mod pipedev;
pub mod proto;
pub mod trace;

pub use eia::EiaDev;
pub use info::{InfoFs, InfoGen};
pub use log::LogFs;
pub use pipedev::PipeFs;
pub use ether::EtherDev;
pub use proto::{AnnounceOps, ConnOps, ProtoDev, ProtoOps};
pub use trace::TraceFs;
