//! The generic protocol device (§2.3).
//!
//! "All protocol devices look identical so user programs contain no
//! network-specific code." The device serves:
//!
//! ```text
//! /net/tcp/clone
//! /net/tcp/0/{ctl data listen local remote status}
//! /net/tcp/1/...
//! ```
//!
//! Opening `clone` reserves an unused connection and yields a channel to
//! its `ctl` file; reading the `ctl` file returns the connection number;
//! writing `connect <addr>` establishes the connection; the `data` file
//! carries the conversation; opening `listen` blocks for an incoming
//! call and yields the `ctl` file of a *new* connection. All control is
//! ASCII, so it works transparently across machines and byte orders.
//!
//! The protocol itself plugs in through [`ProtoOps`]; TCP, UDP, IL and
//! Datakit/URP implementations live in [`crate::machine`].

use plan9_support::sync::Mutex;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One established conversation, however the protocol implements it.
pub trait ConnOps: Send + Sync {
    /// Sends one message (delimited protocols) or chunk (TCP).
    fn send(&self, msg: &[u8]) -> Result<()>;
    /// Blocks for the next message/chunk; `None` is end-of-file.
    fn recv(&self) -> Result<Option<Vec<u8>>>;
    /// The `local` file contents.
    fn local(&self) -> String;
    /// The `remote` file contents.
    fn remote(&self) -> String;
    /// The `status` file contents.
    fn status(&self) -> String;
    /// Hang up.
    fn close(&self);
}

/// An announcement: a service listening for calls.
pub trait AnnounceOps: Send + Sync {
    /// Blocks until a call arrives and returns the new conversation.
    fn listen(&self) -> Result<Arc<dyn ConnOps>>;
    /// The announced local address.
    fn local(&self) -> String;
}

/// A protocol: how to place and receive calls.
pub trait ProtoOps: Send + Sync {
    /// The directory name under `/net` (`tcp`, `il`, `udp`, `dk`).
    fn proto(&self) -> String;
    /// Dials `addr` (protocol-specific ASCII, e.g. `135.104.9.31!564`).
    fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>>;
    /// Announces a service (`*!564`, `nj/astro/helix!9fs`).
    fn announce(&self, addr: &str) -> Result<Box<dyn AnnounceOps>>;
    /// The protocol-wide `stats` file contents: ASCII `key: value`
    /// lines, re-evaluated on every read.
    fn stats_text(&self) -> String {
        String::new()
    }
}

enum ConnState {
    Idle,
    Connected(Arc<dyn ConnOps>),
    Announced(Box<dyn AnnounceOps>),
}

struct Conn {
    id: usize,
    state: Mutex<ConnState>,
    /// Open channels referencing files in this connection directory.
    refs: Mutex<usize>,
    /// Remainder of a message only partially consumed by a short read.
    pending: Mutex<Vec<u8>>,
}

impl Conn {
    fn status_line(&self, proto: &str) -> String {
        let state = self.state.lock();
        match &*state {
            ConnState::Idle => format!("{}/{} 0 Closed\n", proto, self.id),
            ConnState::Connected(c) => {
                format!("{}/{} 1 {} connect\n", proto, self.id, c.status())
            }
            ConnState::Announced(a) => {
                format!("{}/{} 1 Announced {}\n", proto, self.id, a.local())
            }
        }
    }
}

// Qid layout: top dir = 0; clone = 1; stats = 2; connection c uses
// ((c + 1) << 4) | file-type.
const Q_TOP: u32 = 0;
const Q_CLONE: u32 = 1;
const Q_STATS: u32 = 2;
const T_DIR: u32 = 1;
const T_CTL: u32 = 2;
const T_DATA: u32 = 3;
const T_LISTEN: u32 = 4;
const T_LOCAL: u32 = 5;
const T_REMOTE: u32 = 6;
const T_STATUS: u32 = 7;

fn conn_qid(conn: usize, typ: u32) -> Qid {
    let path = ((conn as u32 + 1) << 4) | typ;
    if typ == T_DIR {
        Qid::dir(path, 0)
    } else {
        Qid::file(path, 0)
    }
}

fn split_qid(q: Qid) -> Option<(usize, u32)> {
    let p = q.path_bits();
    if p < 16 {
        return None;
    }
    Some(((p >> 4) as usize - 1, p & 0xf))
}

/// The device: a [`ProcFs`] exposing one protocol's conversations.
pub struct ProtoDev {
    ops: Box<dyn ProtoOps>,
    conns: Mutex<HashMap<usize, Arc<Conn>>>,
    next_conn: Mutex<usize>,
    handles: AtomicU64,
    /// handle → connection whose refcount it holds.
    open_refs: Mutex<HashMap<u64, usize>>,
}

impl ProtoDev {
    /// Wraps a protocol in the standard device tree.
    pub fn new(ops: Box<dyn ProtoOps>) -> Arc<ProtoDev> {
        Arc::new(ProtoDev {
            ops,
            conns: Mutex::named(HashMap::new(), "core.proto.conns"),
            next_conn: Mutex::named(0, "core.proto.nextconn"),
            handles: AtomicU64::new(1),
            open_refs: Mutex::named(HashMap::new(), "core.proto.openrefs"),
        })
    }

    /// The number of live connection directories (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.conns.lock().len()
    }

    fn fresh_handle(&self) -> u64 {
        self.handles.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_conn(&self) -> Arc<Conn> {
        let mut next = self.next_conn.lock();
        let id = *next;
        *next += 1;
        let conn = Arc::new(Conn {
            id,
            state: Mutex::named(ConnState::Idle, "core.proto.connstate"),
            refs: Mutex::named(0, "core.proto.connrefs"),
            pending: Mutex::named(Vec::new(), "core.proto.pending"),
        });
        self.conns.lock().insert(id, Arc::clone(&conn));
        conn
    }

    fn conn(&self, id: usize) -> Result<Arc<Conn>> {
        self.conns
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }

    /// Takes an open reference on `conn` for `handle`.
    fn take_ref(&self, handle: u64, conn: &Arc<Conn>) {
        *conn.refs.lock() += 1;
        self.open_refs.lock().insert(handle, conn.id);
    }

    fn conn_dir_entries(&self, conn: &Conn) -> Vec<Dir> {
        let owner = "network";
        let c = conn.id;
        vec![
            Dir::file("ctl", conn_qid(c, T_CTL), 0o660, owner, 0),
            Dir::file("data", conn_qid(c, T_DATA), 0o660, owner, 0),
            Dir::file("listen", conn_qid(c, T_LISTEN), 0o660, owner, 0),
            Dir::file("local", conn_qid(c, T_LOCAL), 0o444, owner, 0),
            Dir::file("remote", conn_qid(c, T_REMOTE), 0o444, owner, 0),
            Dir::file("status", conn_qid(c, T_STATUS), 0o444, owner, 0),
        ]
        .into_iter()
        .map(|mut d| {
            d.dev_type = b'I' as u16;
            d
        })
        .collect()
    }

    fn top_entries(&self) -> Vec<Dir> {
        let mut out = vec![
            Dir::file("clone", Qid::file(Q_CLONE, 0), 0o666, "network", 0),
            Dir::file("stats", Qid::file(Q_STATS, 0), 0o444, "network", 0),
        ];
        let conns = self.conns.lock();
        let mut ids: Vec<usize> = conns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            out.push(Dir::directory(
                &id.to_string(),
                conn_qid(id, T_DIR),
                0o555,
                "network",
            ));
        }
        out
    }

    fn ctl_command(&self, conn: &Arc<Conn>, cmd: &str) -> Result<()> {
        let fields: Vec<&str> = cmd.split_whitespace().collect();
        match fields.as_slice() {
            ["connect", addr, ..] => {
                let c = self.ops.connect(addr)?;
                *conn.state.lock() = ConnState::Connected(c);
                Ok(())
            }
            ["announce", addr] => {
                let a = self.ops.announce(addr)?;
                *conn.state.lock() = ConnState::Announced(a);
                Ok(())
            }
            ["hangup"] | ["close"] => {
                let mut state = conn.state.lock();
                if let ConnState::Connected(c) = &*state {
                    c.close();
                }
                *state = ConnState::Idle;
                Ok(())
            }
            // "Networks such as IP ignore the third argument" (§5.2):
            // reject is a close with a reason we note but cannot always
            // deliver.
            ["reject", ..] => {
                let mut state = conn.state.lock();
                if let ConnState::Connected(c) = &*state {
                    c.close();
                }
                *state = ConnState::Idle;
                Ok(())
            }
            _ => Err(NineError::new(format!("unknown control request: {cmd}"))),
        }
    }
}

impl ProcFs for ProtoDev {
    fn fsname(&self) -> String {
        self.ops.proto()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(Qid::dir(Q_TOP, 0), self.fresh_handle()))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        // Open references stay with the original handle.
        Ok(ServeNode::new(n.qid, self.fresh_handle()))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let q = n.qid;
        if q.path_bits() == Q_TOP && q.is_dir() {
            if name == ".." {
                return Ok(*n);
            }
            if name == "clone" {
                return Ok(ServeNode::new(Qid::file(Q_CLONE, 0), n.handle));
            }
            if name == "stats" {
                return Ok(ServeNode::new(Qid::file(Q_STATS, 0), n.handle));
            }
            if let Ok(id) = name.parse::<usize>() {
                self.conn(id)?;
                return Ok(ServeNode::new(conn_qid(id, T_DIR), n.handle));
            }
            return Err(NineError::new(errstr::ENOTEXIST));
        }
        if let Some((id, T_DIR)) = split_qid(q) {
            if name == ".." {
                return Ok(ServeNode::new(Qid::dir(Q_TOP, 0), n.handle));
            }
            let typ = match name {
                "ctl" => T_CTL,
                "data" => T_DATA,
                "listen" => T_LISTEN,
                "local" => T_LOCAL,
                "remote" => T_REMOTE,
                "status" => T_STATUS,
                _ => return Err(NineError::new(errstr::ENOTEXIST)),
            };
            self.conn(id)?;
            return Ok(ServeNode::new(conn_qid(id, typ), n.handle));
        }
        Err(NineError::new(errstr::ENOTDIR))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        let q = n.qid;
        if q.is_dir() {
            if mode.access() != 0 {
                return Err(NineError::new(errstr::EISDIR));
            }
            if let Some((id, T_DIR)) = split_qid(q) {
                let conn = self.conn(id)?;
                self.take_ref(n.handle, &conn);
            }
            return Ok(*n);
        }
        if q.path_bits() == Q_STATS {
            if mode.writable() {
                return Err(NineError::new(errstr::EPERM));
            }
            return Ok(*n);
        }
        if q.path_bits() == Q_CLONE {
            // Reserve an unused connection; the channel now points at
            // its ctl file.
            let conn = self.alloc_conn();
            self.take_ref(n.handle, &conn);
            return Ok(ServeNode::new(conn_qid(conn.id, T_CTL), n.handle));
        }
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conn = self.conn(id)?;
        match typ {
            T_LISTEN => {
                // Block for an incoming call; the channel ends up at the
                // new connection's ctl file.
                let listener = {
                    let state = conn.state.lock();
                    match &*state {
                        ConnState::Announced(_) => {}
                        _ => return Err(NineError::new("not announced")),
                    }
                    drop(state);
                    conn
                };
                // Call listen without holding the state lock; we need to
                // re-enter the state to reach the AnnounceOps. Keep the
                // lock during the blocking call is unacceptable; instead
                // the AnnounceOps is used through a raw pointer-free
                // trick: a second lock acquisition per call.
                let accepted = {
                    let state = listener.state.lock();
                    match &*state {
                        ConnState::Announced(a) => {
                            // The announce objects are internally
                            // synchronized and listen() blocks; support
                            // locks are not reentrant, so hold only what we
                            // must. We temporarily move the call out via
                            // the trait object reference. Blocking while
                            // holding this conn's state lock is acceptable:
                            // only this connection's files contend on it.
                            a.listen()?
                        }
                        _ => return Err(NineError::new("not announced")),
                    }
                };
                let newc = self.alloc_conn();
                *newc.state.lock() = ConnState::Connected(accepted);
                self.take_ref(n.handle, &newc);
                Ok(ServeNode::new(conn_qid(newc.id, T_CTL), n.handle))
            }
            T_DATA => {
                // "When the data file is opened the connection is
                // established."
                let state = conn.state.lock();
                match &*state {
                    ConnState::Connected(_) => {}
                    _ => return Err(NineError::new("not connected")),
                }
                drop(state);
                self.take_ref(n.handle, &conn);
                Ok(*n)
            }
            _ => {
                self.take_ref(n.handle, &conn);
                Ok(*n)
            }
        }
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        let q = n.qid;
        if q.is_dir() && q.path_bits() == Q_TOP {
            return read_dir_slice(&self.top_entries(), offset, count);
        }
        if q.path_bits() == Q_STATS {
            let bytes = self.ops.stats_text().into_bytes();
            let off = (offset as usize).min(bytes.len());
            let end = (off + count).min(bytes.len());
            return Ok(bytes[off..end].to_vec());
        }
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conn = self.conn(id)?;
        if q.is_dir() {
            return read_dir_slice(&self.conn_dir_entries(&conn), offset, count);
        }
        let text = |s: String| -> Result<Vec<u8>> {
            let bytes = s.into_bytes();
            let off = (offset as usize).min(bytes.len());
            let end = (off + count).min(bytes.len());
            Ok(bytes[off..end].to_vec())
        };
        match typ {
            // "Reading the control file returns the ASCII connection
            // number."
            T_CTL => text(conn.id.to_string()),
            T_DATA => {
                // Serve any remainder of a previous short read first so
                // no bytes are lost (stream read semantics, §2.4.1).
                {
                    let mut pending = conn.pending.lock();
                    if !pending.is_empty() {
                        let n = pending.len().min(count);
                        return Ok(pending.drain(..n).collect());
                    }
                }
                let ops = {
                    let state = conn.state.lock();
                    match &*state {
                        ConnState::Connected(c) => Arc::clone(c),
                        _ => return Err(NineError::new("not connected")),
                    }
                };
                match ops.recv()? {
                    Some(msg) => {
                        if msg.len() > count {
                            let mut pending = conn.pending.lock();
                            pending.extend_from_slice(&msg[count..]);
                            Ok(msg[..count].to_vec())
                        } else {
                            Ok(msg)
                        }
                    }
                    None => Ok(Vec::new()),
                }
            }
            T_LOCAL => {
                let state = conn.state.lock();
                match &*state {
                    ConnState::Connected(c) => {
                        let s = format!("{}\n", c.local());
                        drop(state);
                        text(s)
                    }
                    ConnState::Announced(a) => {
                        let s = format!("{}\n", a.local());
                        drop(state);
                        text(s)
                    }
                    _ => text("::\n".to_string()),
                }
            }
            T_REMOTE => {
                let state = conn.state.lock();
                match &*state {
                    ConnState::Connected(c) => {
                        let s = format!("{}\n", c.remote());
                        drop(state);
                        text(s)
                    }
                    _ => text("::\n".to_string()),
                }
            }
            T_STATUS => text(conn.status_line(&self.ops.proto())),
            T_LISTEN => Err(NineError::new(errstr::EBADUSE)),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        let q = n.qid;
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conn = self.conn(id)?;
        match typ {
            T_CTL => {
                let cmd = std::str::from_utf8(data)
                    .map_err(|_| NineError::new("control request is not text"))?;
                self.ctl_command(&conn, cmd.trim())?;
                Ok(data.len())
            }
            T_DATA => {
                let ops = {
                    let state = conn.state.lock();
                    match &*state {
                        ConnState::Connected(c) => Arc::clone(c),
                        _ => return Err(NineError::new("not connected")),
                    }
                };
                ops.send(data)?;
                Ok(data.len())
            }
            _ => Err(NineError::new(errstr::EPERM)),
        }
    }

    fn clunk(&self, n: &ServeNode) {
        let conn_id = self.open_refs.lock().remove(&n.handle);
        if let Some(id) = conn_id {
            let conn = { self.conns.lock().get(&id).cloned() };
            if let Some(conn) = conn {
                let mut refs = conn.refs.lock();
                *refs = refs.saturating_sub(1);
                if *refs == 0 {
                    // "A connection remains established while any of the
                    // files in the connection directory are referenced."
                    let mut state = conn.state.lock();
                    if let ConnState::Connected(c) = &*state {
                        c.close();
                    }
                    *state = ConnState::Idle;
                    drop(state);
                    drop(refs);
                    self.conns.lock().remove(&id);
                }
            }
        }
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        let q = n.qid;
        if q.path_bits() == Q_TOP {
            return Ok(Dir::directory(
                &self.ops.proto(),
                Qid::dir(Q_TOP, 0),
                0o555,
                "network",
            ));
        }
        if q.path_bits() == Q_CLONE {
            return Ok(Dir::file("clone", Qid::file(Q_CLONE, 0), 0o666, "network", 0));
        }
        if q.path_bits() == Q_STATS {
            return Ok(Dir::file("stats", Qid::file(Q_STATS, 0), 0o444, "network", 0));
        }
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conn = self.conn(id)?;
        if typ == T_DIR {
            return Ok(Dir::directory(
                &id.to_string(),
                conn_qid(id, T_DIR),
                0o555,
                "network",
            ));
        }
        let entries = self.conn_dir_entries(&conn);
        entries
            .into_iter()
            .find(|d| d.qid == q)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_support::chan::{unbounded, Receiver, Sender};

    /// A toy in-memory protocol: "addresses" name rendezvous queues.
    struct Rendezvous {
        boards: Mutex<HashMap<String, Sender<LoopConn>>>,
    }

    struct LoopConn {
        tx: Sender<Vec<u8>>,
        rx: Receiver<Vec<u8>>,
        addr: String,
    }

    impl ConnOps for LoopConn {
        fn send(&self, msg: &[u8]) -> Result<()> {
            self.tx
                .send(msg.to_vec())
                .map_err(|_| NineError::new("hungup"))
        }
        fn recv(&self) -> Result<Option<Vec<u8>>> {
            Ok(self.rx.recv().ok())
        }
        fn local(&self) -> String {
            "local".to_string()
        }
        fn remote(&self) -> String {
            self.addr.clone()
        }
        fn status(&self) -> String {
            "Established".to_string()
        }
        fn close(&self) {}
    }

    struct ToyProto {
        rdv: Arc<Rendezvous>,
    }

    struct ToyAnnounce {
        rx: Receiver<LoopConn>,
        addr: String,
    }

    impl AnnounceOps for ToyAnnounce {
        fn listen(&self) -> Result<Arc<dyn ConnOps>> {
            self.rx
                .recv()
                .map(|c| Arc::new(c) as Arc<dyn ConnOps>)
                .map_err(|_| NineError::new("hungup"))
        }
        fn local(&self) -> String {
            self.addr.clone()
        }
    }

    impl ProtoOps for ToyProto {
        fn proto(&self) -> String {
            "toy".to_string()
        }
        fn connect(&self, addr: &str) -> Result<Arc<dyn ConnOps>> {
            let boards = self.rdv.boards.lock();
            let tx = boards
                .get(addr)
                .ok_or_else(|| NineError::new("connection refused"))?;
            let (atx, arx) = unbounded();
            let (btx, brx) = unbounded();
            tx.send(LoopConn {
                tx: btx,
                rx: arx,
                addr: "caller".to_string(),
            })
            .map_err(|_| NineError::new("hungup"))?;
            Ok(Arc::new(LoopConn {
                tx: atx,
                rx: brx,
                addr: addr.to_string(),
            }))
        }
        fn announce(&self, addr: &str) -> Result<Box<dyn AnnounceOps>> {
            let (tx, rx) = unbounded();
            self.rdv.boards.lock().insert(addr.to_string(), tx);
            Ok(Box::new(ToyAnnounce {
                rx,
                addr: addr.to_string(),
            }))
        }
        fn stats_text(&self) -> String {
            format!("toyCalls: {}\n", self.rdv.boards.lock().len())
        }
    }

    fn toy_dev() -> (Arc<ProtoDev>, Arc<ProtoDev>) {
        let rdv = Arc::new(Rendezvous {
            boards: Mutex::named(HashMap::new(), "core.proto.boards"),
        });
        let a = ProtoDev::new(Box::new(ToyProto {
            rdv: Arc::clone(&rdv),
        }));
        let b = ProtoDev::new(Box::new(ToyProto { rdv }));
        (a, b)
    }

    #[test]
    fn clone_reserves_connection_and_ctl_reports_number() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        assert_eq!(dev.read(&ctl, 0, 16).unwrap(), b"0");
        // A second clone gets connection 1.
        let root2 = dev.attach("u", "").unwrap();
        let clone2 = dev.walk(&root2, "clone").unwrap();
        let ctl2 = dev.open(&clone2, OpenMode::RDWR).unwrap();
        assert_eq!(dev.read(&ctl2, 0, 16).unwrap(), b"1");
    }

    #[test]
    fn paper_connection_steps() {
        let (dev_a, dev_b) = toy_dev();
        // Server side: announce + listen in a thread.
        let server = {
            let dev_b = Arc::clone(&dev_b);
            std::thread::spawn(move || {
                let root = dev_b.attach("srv", "").unwrap();
                let clone = dev_b.walk(&root, "clone").unwrap();
                let actl = dev_b.open(&clone, OpenMode::RDWR).unwrap();
                dev_b.write(&actl, 0, b"announce here").unwrap();
                let n = dev_b.read(&actl, 0, 16).unwrap();
                let adir = String::from_utf8(n).unwrap();
                // open listen — blocks until a call.
                let root2 = dev_b.attach("srv", "").unwrap();
                let mut lnode = root2;
                for elem in [adir.as_str(), "listen"] {
                    lnode = dev_b.walk(&lnode, elem).unwrap();
                }
                let newctl = dev_b.open(&lnode, OpenMode::RDWR).unwrap();
                let newid = String::from_utf8(dev_b.read(&newctl, 0, 16).unwrap()).unwrap();
                // Open the new connection's data file and echo.
                let root3 = dev_b.attach("srv", "").unwrap();
                let mut dnode = root3;
                for elem in [newid.as_str(), "data"] {
                    dnode = dev_b.walk(&dnode, elem).unwrap();
                }
                let data = dev_b.open(&dnode, OpenMode::RDWR).unwrap();
                let msg = dev_b.read(&data, 0, 100).unwrap();
                dev_b.write(&data, 0, &msg).unwrap();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Client side: the four steps of §2.3.
        let root = dev_a.attach("cli", "").unwrap();
        // 1) open the clone file.
        let clone = dev_a.walk(&root, "clone").unwrap();
        let ctl = dev_a.open(&clone, OpenMode::RDWR).unwrap();
        // 2) read the connection number.
        let id = String::from_utf8(dev_a.read(&ctl, 0, 16).unwrap()).unwrap();
        // 3) write the address to ctl.
        dev_a.write(&ctl, 0, b"connect here").unwrap();
        // 4) open the data file.
        let root2 = dev_a.attach("cli", "").unwrap();
        let mut dnode = root2;
        for elem in [id.as_str(), "data"] {
            dnode = dev_a.walk(&dnode, elem).unwrap();
        }
        let data = dev_a.open(&dnode, OpenMode::RDWR).unwrap();
        dev_a.write(&data, 0, b"echo me").unwrap();
        assert_eq!(dev_a.read(&data, 0, 100).unwrap(), b"echo me");
        server.join().unwrap();
    }

    #[test]
    fn status_files_read_like_the_paper() {
        let (dev_a, dev_b) = toy_dev();
        let rootb = dev_b.attach("srv", "").unwrap();
        let cloneb = dev_b.walk(&rootb, "clone").unwrap();
        let actl = dev_b.open(&cloneb, OpenMode::RDWR).unwrap();
        dev_b.write(&actl, 0, b"announce spot").unwrap();
        let root = dev_a.attach("cli", "").unwrap();
        let clone = dev_a.walk(&root, "clone").unwrap();
        let ctl = dev_a.open(&clone, OpenMode::RDWR).unwrap();
        dev_a.write(&ctl, 0, b"connect spot").unwrap();
        // cat local remote status
        let conn_dir = dev_a.walk(&dev_a.attach("cli", "").unwrap(), "0").unwrap();
        let local = dev_a.walk(&conn_dir, "local").unwrap();
        let local = dev_a.open(&local, OpenMode::READ).unwrap();
        assert_eq!(dev_a.read(&local, 0, 100).unwrap(), b"local\n");
        let remote = dev_a.walk(&conn_dir, "remote").unwrap();
        let remote = dev_a.open(&remote, OpenMode::READ).unwrap();
        assert_eq!(dev_a.read(&remote, 0, 100).unwrap(), b"spot\n");
        let status = dev_a.walk(&conn_dir, "status").unwrap();
        let status = dev_a.open(&status, OpenMode::READ).unwrap();
        let text = String::from_utf8(dev_a.read(&status, 0, 100).unwrap()).unwrap();
        assert!(text.starts_with("toy/0 1 Established connect"), "{text}");
    }

    #[test]
    fn data_before_connect_refused() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let _ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        let data = dev
            .walk(&dev.attach("u", "").unwrap(), "0")
            .and_then(|n| dev.walk(&n, "data"))
            .unwrap();
        let err = dev.open(&data, OpenMode::RDWR).unwrap_err();
        assert_eq!(err.0, "not connected");
    }

    #[test]
    fn bad_ctl_command_is_error() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        let err = dev.write(&ctl, 0, b"frobnicate 7").unwrap_err();
        assert!(err.0.contains("unknown control request"), "{err}");
    }

    #[test]
    fn connection_torn_down_when_last_ref_clunked() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        assert_eq!(dev.conn_count(), 1);
        dev.clunk(&ctl);
        assert_eq!(dev.conn_count(), 0);
        // The directory is gone.
        let err = dev.walk(&root, "0").unwrap_err();
        assert_eq!(err.0, errstr::ENOTEXIST);
    }

    #[test]
    fn top_listing_shows_clone_and_conns() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let _ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        let entries = dev
            .read(&root, 0, 4096)
            .unwrap()
            .chunks(plan9_ninep::dir::DIR_LEN)
            .map(|c| Dir::decode(c).unwrap().name)
            .collect::<Vec<_>>();
        assert_eq!(entries, vec!["clone", "stats", "0"]);
    }

    #[test]
    fn stats_file_serves_protocol_counters() {
        let (dev, _) = toy_dev();
        let root = dev.attach("u", "").unwrap();
        let stats = dev.walk(&root, "stats").unwrap();
        assert!(dev.open(&stats, OpenMode::WRITE).is_err());
        let stats = dev.open(&stats, OpenMode::READ).unwrap();
        assert_eq!(dev.read(&stats, 0, 4096).unwrap(), b"toyCalls: 0\n");
    }
}
