//! The nettrace device: `/net/trace/{ctl,data}`.
//!
//! The flight recorder driven the Plan 9 way: ASCII strings to a ctl
//! file (`trace on`, `filter il 9p`, `dump`, `clear`), completed root
//! spans with their trees read back from the data file as ASCII lines.
//! [`TraceFs`] is union-mounted under `/net` next to `/net/log`; every
//! machine serves the process-wide recorder, the shared analyzer a
//! trace that crosses machines needs.

use plan9_netlog::trace::Tracer;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Qid paths: attach root = 0, the `trace` directory = 1, files above.
const Q_ROOT: u32 = 0;
const Q_TRACE: u32 = 1;
const Q_CTL: u32 = 2;
const Q_DATA: u32 = 3;

/// Serves a directory `trace` containing `ctl` and `data` over a
/// [`Tracer`].
pub struct TraceFs {
    tracer: Arc<Tracer>,
    handles: AtomicU64,
}

impl TraceFs {
    /// Wraps a flight recorder in the device tree.
    pub fn new(tracer: Arc<Tracer>) -> Arc<TraceFs> {
        Arc::new(TraceFs {
            tracer,
            handles: AtomicU64::new(1),
        })
    }

    fn trace_entries(&self) -> Vec<Dir> {
        vec![
            Dir::file("ctl", Qid::file(Q_CTL, 0), 0o660, "network", 0),
            Dir::file("data", Qid::file(Q_DATA, 0), 0o444, "network", 0),
        ]
    }

    fn text_slice(s: String, offset: u64, count: usize) -> Vec<u8> {
        let bytes = s.into_bytes();
        let off = (offset as usize).min(bytes.len());
        let end = (off + count).min(bytes.len());
        bytes[off..end].to_vec()
    }
}

impl ProcFs for TraceFs {
    fn fsname(&self) -> String {
        "nettrace".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(
            Qid::dir(Q_ROOT, 0),
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(
            n.qid,
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        match (n.qid.path_bits(), name) {
            (Q_ROOT, "..") => Ok(*n),
            (Q_ROOT, "trace") => Ok(ServeNode::new(Qid::dir(Q_TRACE, 0), n.handle)),
            (Q_TRACE, "..") => Ok(ServeNode::new(Qid::dir(Q_ROOT, 0), n.handle)),
            (Q_TRACE, "ctl") => Ok(ServeNode::new(Qid::file(Q_CTL, 0), n.handle)),
            (Q_TRACE, "data") => Ok(ServeNode::new(Qid::file(Q_DATA, 0), n.handle)),
            _ if !n.qid.is_dir() => Err(NineError::new(errstr::ENOTDIR)),
            _ => Err(NineError::new(errstr::ENOTEXIST)),
        }
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if n.qid.is_dir() && mode.access() != 0 {
            return Err(NineError::new(errstr::EISDIR));
        }
        if n.qid.path_bits() == Q_DATA && mode.writable() {
            return Err(NineError::new(errstr::EPERM));
        }
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        match n.qid.path_bits() {
            Q_ROOT => read_dir_slice(
                &[Dir::directory("trace", Qid::dir(Q_TRACE, 0), 0o775, "network")],
                offset,
                count,
            ),
            Q_TRACE => read_dir_slice(&self.trace_entries(), offset, count),
            // Reading ctl shows the switch and filter as replayable
            // requests.
            Q_CTL => Ok(Self::text_slice(self.tracer.status_line(), offset, count)),
            Q_DATA => Ok(Self::text_slice(self.tracer.render(), offset, count)),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        if n.qid.path_bits() != Q_CTL {
            return Err(NineError::new(errstr::EPERM));
        }
        let req = std::str::from_utf8(data)
            .map_err(|_| NineError::new("control request is not text"))?;
        self.tracer.ctl(req).map_err(NineError::new)?;
        Ok(data.len())
    }

    fn clunk(&self, _n: &ServeNode) {}

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        match n.qid.path_bits() {
            Q_ROOT => Ok(Dir::directory("/", Qid::dir(Q_ROOT, 0), 0o775, "network")),
            Q_TRACE => Ok(Dir::directory(
                "trace",
                Qid::dir(Q_TRACE, 0),
                0o775,
                "network",
            )),
            Q_CTL => Ok(Dir::file("ctl", Qid::file(Q_CTL, 0), 0o660, "network", 0)),
            Q_DATA => Ok(Dir::file("data", Qid::file(Q_DATA, 0), 0o444, "network", 0)),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_netlog::Facility;
    use std::time::Instant;

    fn served() -> (Arc<TraceFs>, Arc<Tracer>) {
        let tracer = Tracer::new(16);
        (TraceFs::new(Arc::clone(&tracer)), tracer)
    }

    fn walk_open(fs: &Arc<TraceFs>, path: &[&str], mode: OpenMode) -> ServeNode {
        let mut n = fs.attach("u", "").unwrap();
        for elem in path {
            n = fs.walk(&n, elem).unwrap();
        }
        fs.open(&n, mode).unwrap()
    }

    #[test]
    fn ctl_toggles_and_reads_back() {
        let (fs, tracer) = served();
        let ctl = walk_open(&fs, &["trace", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"trace on").unwrap();
        assert!(tracer.enabled());
        fs.write(&ctl, 0, b"filter il 9p").unwrap();
        let text = String::from_utf8(fs.read(&ctl, 0, 128).unwrap()).unwrap();
        assert_eq!(text, "trace on\nfilter il 9p\nsample 1\n");
        fs.write(&ctl, 0, b"sample 8").unwrap();
        let text = String::from_utf8(fs.read(&ctl, 0, 128).unwrap()).unwrap();
        assert_eq!(text, "trace on\nfilter il 9p\nsample 8\n");
        fs.write(&ctl, 0, b"trace off").unwrap();
        assert!(!tracer.enabled());
    }

    #[test]
    fn data_streams_completed_spans() {
        let (fs, tracer) = served();
        let ctl = walk_open(&fs, &["trace", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"trace on").unwrap();
        let h = tracer.begin("Tread tag 4").unwrap();
        let now = Instant::now();
        h.span(Facility::NineP, "marshal", now, now);
        h.finish();
        let data = walk_open(&fs, &["trace", "data"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&data, 0, 4096).unwrap()).unwrap();
        assert!(text.contains("trace 1 Tread tag 4"), "{text}");
        assert!(text.contains("span 9p marshal"), "{text}");
        fs.write(&ctl, 0, b"clear").unwrap();
        assert!(fs.read(&data, 0, 4096).unwrap().is_empty());
    }

    #[test]
    fn dump_forces_open_roots_into_data() {
        let (fs, tracer) = served();
        let ctl = walk_open(&fs, &["trace", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"trace on").unwrap();
        let _h = tracer.begin("stuck").unwrap();
        fs.write(&ctl, 0, b"dump").unwrap();
        let data = walk_open(&fs, &["trace", "data"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&data, 0, 4096).unwrap()).unwrap();
        assert!(text.contains("stuck") && text.contains("open"), "{text}");
    }

    #[test]
    fn bad_requests_are_errors_naming_the_offender() {
        let (fs, _tracer) = served();
        let ctl = walk_open(&fs, &["trace", "ctl"], OpenMode::RDWR);
        let err = fs.write(&ctl, 0, b"filter lance").unwrap_err();
        assert!(err.0.contains("lance"), "{err}");
        let err = fs.write(&ctl, 0, b"rewind").unwrap_err();
        assert!(err.0.contains("rewind"), "{err}");
        let data = walk_open(&fs, &["trace", "data"], OpenMode::READ);
        assert!(fs.write(&data, 0, b"no").is_err());
    }
}
