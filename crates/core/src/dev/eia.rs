//! The `eia` UART device (§2.2).
//!
//! "Simple device drivers serve a single level directory containing just
//! a few files; for example, we represent each UART by a data and a
//! control file":
//!
//! ```text
//! % ls -l /dev/eia*
//! --rw-rw-rw- t 0 bootes bootes 0 Jul 16 17:28 eia1
//! --rw-rw-rw- t 0 bootes bootes 0 Jul 16 17:28 eia1ctl
//! ```
//!
//! "The control file is used to control the device; writing the string
//! `b1200` to /dev/eia1ctl sets the line to 1200 baud."

use plan9_support::sync::Mutex;
use plan9_netsim::uart::UartEnd;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Line {
    uart: UartEnd,
    /// Bytes received but not yet consumed by a reader.
    pending: Mutex<VecDeque<u8>>,
}

/// The serial-line device: `eia1`, `eia1ctl`, `eia2`, ... numbered from
/// one like the paper's listing.
pub struct EiaDev {
    lines: Vec<Line>,
    handles: AtomicU64,
}

const Q_TOP: u32 = 0;

fn data_qid(i: usize) -> Qid {
    Qid::file(((i as u32 + 1) << 4) | 1, 0)
}

fn ctl_qid(i: usize) -> Qid {
    Qid::file(((i as u32 + 1) << 4) | 2, 0)
}

impl EiaDev {
    /// Builds the device over a set of serial lines.
    pub fn new(uarts: Vec<UartEnd>) -> Arc<EiaDev> {
        Arc::new(EiaDev {
            lines: uarts
                .into_iter()
                .map(|uart| Line {
                    uart,
                    pending: Mutex::named(VecDeque::new(), "core.eia.pending"),
                })
                .collect(),
            handles: AtomicU64::new(1),
        })
    }

    fn entries(&self) -> Vec<Dir> {
        let mut out = Vec::new();
        for i in 0..self.lines.len() {
            let mut d = Dir::file(&format!("eia{}", i + 1), data_qid(i), 0o666, "bootes", 0);
            d.dev_type = b't' as u16;
            out.push(d);
            let mut d = Dir::file(
                &format!("eia{}ctl", i + 1),
                ctl_qid(i),
                0o666,
                "bootes",
                0,
            );
            d.dev_type = b't' as u16;
            out.push(d);
        }
        out
    }

    fn line_of(&self, q: Qid) -> Result<(usize, bool)> {
        let p = q.path_bits();
        if p < 16 {
            return Err(NineError::new(errstr::EBADUSE));
        }
        let idx = (p >> 4) as usize - 1;
        if idx >= self.lines.len() {
            return Err(NineError::new(errstr::ENOTEXIST));
        }
        Ok((idx, p & 0xf == 2))
    }
}

impl ProcFs for EiaDev {
    fn fsname(&self) -> String {
        "eia".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(
            Qid::dir(Q_TOP, 0),
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(
            n.qid,
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        if name == ".." {
            return Ok(*n);
        }
        self.entries()
            .into_iter()
            .find(|d| d.name == name)
            .map(|d| ServeNode::new(d.qid, n.handle))
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if n.qid.is_dir() && mode.access() != 0 {
            return Err(NineError::new(errstr::EISDIR));
        }
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        if n.qid.is_dir() {
            return read_dir_slice(&self.entries(), offset, count);
        }
        let (idx, is_ctl) = self.line_of(n.qid)?;
        let line = &self.lines[idx];
        if is_ctl {
            let s = format!("b{}\n", line.uart.baud());
            let bytes = s.into_bytes();
            let off = (offset as usize).min(bytes.len());
            let end = (off + count).min(bytes.len());
            return Ok(bytes[off..end].to_vec());
        }
        // Data: drain pending bytes, else block for more from the line.
        {
            let mut pending = line.pending.lock();
            if !pending.is_empty() {
                let n = pending.len().min(count);
                return Ok(pending.drain(..n).collect());
            }
        }
        match line.uart.recv() {
            Some(bytes) => {
                let mut pending = line.pending.lock();
                let take = bytes.len().min(count);
                pending.extend(bytes[take..].iter());
                Ok(bytes[..take].to_vec())
            }
            None => Ok(Vec::new()),
        }
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        let (idx, is_ctl) = self.line_of(n.qid)?;
        let line = &self.lines[idx];
        if is_ctl {
            let cmd = std::str::from_utf8(data)
                .map_err(|_| NineError::new("control request is not text"))?
                .trim();
            if let Some(baud) = cmd.strip_prefix('b') {
                let baud: u32 = baud
                    .parse()
                    .map_err(|_| NineError::new(format!("bad baud rate: {cmd}")))?;
                line.uart.set_baud(baud);
                return Ok(data.len());
            }
            return Err(NineError::new(format!("unknown control request: {cmd}")));
        }
        line.uart.send(data).map_err(NineError::new)?;
        Ok(data.len())
    }

    fn clunk(&self, _n: &ServeNode) {}

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        if n.qid.is_dir() {
            return Ok(Dir::directory("eia", Qid::dir(Q_TOP, 0), 0o555, "bootes"));
        }
        self.entries()
            .into_iter()
            .find(|d| d.qid == n.qid)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_netsim::uart::uart_pair;

    fn dev_and_peer() -> (Arc<EiaDev>, UartEnd) {
        let (a, b) = uart_pair(1_000_000);
        (EiaDev::new(vec![a]), b)
    }

    #[test]
    fn listing_matches_paper_shape() {
        let (dev, _peer) = dev_and_peer();
        let root = dev.attach("u", "").unwrap();
        let names: Vec<String> = dev
            .read(&root, 0, 4096)
            .unwrap()
            .chunks(plan9_ninep::dir::DIR_LEN)
            .map(|c| Dir::decode(c).unwrap())
            .map(|d| {
                assert!(d.ls_line().starts_with("-rw-rw-rw- t"), "{}", d.ls_line());
                d.name
            })
            .collect();
        assert_eq!(names, vec!["eia1", "eia1ctl"]);
    }

    #[test]
    fn b1200_sets_the_line() {
        let (dev, peer) = dev_and_peer();
        let root = dev.attach("u", "").unwrap();
        let ctl = dev.walk(&root, "eia1ctl").unwrap();
        let ctl = dev.open(&ctl, OpenMode::WRITE).unwrap();
        dev.write(&ctl, 0, b"b1200").unwrap();
        assert_eq!(peer.baud(), 1200);
        let text = dev.read(&ctl, 0, 16).unwrap();
        assert_eq!(text, b"b1200\n");
        assert!(dev.write(&ctl, 0, b"stty -echo").is_err());
    }

    #[test]
    fn data_crosses_the_line() {
        let (dev, peer) = dev_and_peer();
        let root = dev.attach("u", "").unwrap();
        let data = dev.walk(&root, "eia1").unwrap();
        let data = dev.open(&data, OpenMode::RDWR).unwrap();
        dev.write(&data, 0, b"hello").unwrap();
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(peer.recv().unwrap());
        }
        assert_eq!(got, b"hello");
        peer.send(b"back").unwrap();
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(dev.read(&data, 0, 100).unwrap());
        }
        assert_eq!(got, b"back");
    }

    #[test]
    fn short_reads_keep_remainder() {
        let (dev, peer) = dev_and_peer();
        let root = dev.attach("u", "").unwrap();
        let data = dev.walk(&root, "eia1").unwrap();
        let data = dev.open(&data, OpenMode::READ).unwrap();
        peer.send(b"abcdef").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut got = Vec::new();
        while got.len() < 6 {
            got.extend(dev.read(&data, 0, 2).unwrap());
        }
        assert_eq!(got, b"abcdef");
    }
}
