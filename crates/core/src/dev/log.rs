//! The netlog device: `/net/log/{ctl,data}`.
//!
//! Plan 9's `netlog` lets an administrator turn on per-protocol event
//! tracing without recompiling the kernel: writing ASCII requests like
//! `set il tcp` to the ctl file enables those facilities, and reading
//! the data file drains the accumulated event text. [`LogFs`] is that
//! device over a machine's [`plan9_netlog::EventLog`]; it is union-mounted under
//! `/net` next to the protocol directories so the diagnostics travel
//! with the network they describe.
//!
//! Two more files extend the idea to continuous measurement: `series`
//! renders the machine's deterministic metric time series (driven by
//! `series ...` ctl requests; see [`plan9_netlog::series`]) and `copy`
//! renders the process-wide data-path copy-site table, ranked by
//! bytes. Because they are ordinary files under `/net`, a remote
//! machine that imports this `/net` can read the whole fabric's
//! telemetry with nothing but `read(2)`.

use plan9_netlog::NetLog;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Qid paths: attach root = 0, the `log` directory = 1, its files above.
const Q_ROOT: u32 = 0;
const Q_LOG: u32 = 1;
const Q_CTL: u32 = 2;
const Q_DATA: u32 = 3;
const Q_SERIES: u32 = 4;
const Q_COPY: u32 = 5;
const Q_LOCKGRAPH: u32 = 6;

/// Serves a directory `log` containing `ctl` and `data` over a
/// machine's event log.
pub struct LogFs {
    netlog: Arc<NetLog>,
    handles: AtomicU64,
}

impl LogFs {
    /// Wraps the machine's instrumentation block in the device tree.
    pub fn new(netlog: Arc<NetLog>) -> Arc<LogFs> {
        Arc::new(LogFs {
            netlog,
            handles: AtomicU64::new(1),
        })
    }

    fn log_entries(&self) -> Vec<Dir> {
        vec![
            Dir::file("copy", Qid::file(Q_COPY, 0), 0o444, "network", 0),
            Dir::file("ctl", Qid::file(Q_CTL, 0), 0o660, "network", 0),
            Dir::file("data", Qid::file(Q_DATA, 0), 0o444, "network", 0),
            Dir::file("lockgraph", Qid::file(Q_LOCKGRAPH, 0), 0o444, "network", 0),
            Dir::file("series", Qid::file(Q_SERIES, 0), 0o444, "network", 0),
        ]
    }

    fn text_slice(s: String, offset: u64, count: usize) -> Vec<u8> {
        let bytes = s.into_bytes();
        let off = (offset as usize).min(bytes.len());
        let end = (off + count).min(bytes.len());
        bytes[off..end].to_vec()
    }
}

impl ProcFs for LogFs {
    fn fsname(&self) -> String {
        "netlog".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(
            Qid::dir(Q_ROOT, 0),
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(
            n.qid,
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        match (n.qid.path_bits(), name) {
            (Q_ROOT, "..") => Ok(*n),
            (Q_ROOT, "log") => Ok(ServeNode::new(Qid::dir(Q_LOG, 0), n.handle)),
            (Q_LOG, "..") => Ok(ServeNode::new(Qid::dir(Q_ROOT, 0), n.handle)),
            (Q_LOG, "ctl") => Ok(ServeNode::new(Qid::file(Q_CTL, 0), n.handle)),
            (Q_LOG, "data") => Ok(ServeNode::new(Qid::file(Q_DATA, 0), n.handle)),
            (Q_LOG, "series") => Ok(ServeNode::new(Qid::file(Q_SERIES, 0), n.handle)),
            (Q_LOG, "copy") => Ok(ServeNode::new(Qid::file(Q_COPY, 0), n.handle)),
            (Q_LOG, "lockgraph") => Ok(ServeNode::new(Qid::file(Q_LOCKGRAPH, 0), n.handle)),
            _ if !n.qid.is_dir() => Err(NineError::new(errstr::ENOTDIR)),
            _ => Err(NineError::new(errstr::ENOTEXIST)),
        }
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if n.qid.is_dir() && mode.access() != 0 {
            return Err(NineError::new(errstr::EISDIR));
        }
        if matches!(n.qid.path_bits(), Q_DATA | Q_SERIES | Q_COPY | Q_LOCKGRAPH)
            && mode.writable()
        {
            return Err(NineError::new(errstr::EPERM));
        }
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        match n.qid.path_bits() {
            Q_ROOT => read_dir_slice(
                &[Dir::directory("log", Qid::dir(Q_LOG, 0), 0o775, "network")],
                offset,
                count,
            ),
            Q_LOG => read_dir_slice(&self.log_entries(), offset, count),
            // Reading ctl shows the enabled facilities as a replayable
            // `set` request.
            Q_CTL => Ok(Self::text_slice(self.netlog.events.mask_line(), offset, count)),
            Q_DATA => Ok(Self::text_slice(self.netlog.events.render(), offset, count)),
            Q_SERIES => Ok(Self::text_slice(self.netlog.series.render(), offset, count)),
            Q_COPY => Ok(Self::text_slice(
                plan9_support::copysite::render(),
                offset,
                count,
            )),
            // The process-wide runtime lock-order graph: lockdep is a
            // process singleton, so every machine's /net serves the
            // same text — which is the point, the fabric's lock
            // discipline is one artifact.
            Q_LOCKGRAPH => Ok(Self::text_slice(
                plan9_support::lockgraph_dump(),
                offset,
                count,
            )),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        if n.qid.path_bits() != Q_CTL {
            return Err(NineError::new(errstr::EPERM));
        }
        let req = std::str::from_utf8(data)
            .map_err(|_| NineError::new("control request is not text"))?;
        // `series ...` requests drive the sampler; everything else is
        // the classic netlog facility-mask language.
        if req.split_whitespace().next() == Some("series") {
            plan9_netlog::series::ctl(&self.netlog, req).map_err(NineError::new)?;
        } else {
            self.netlog.events.ctl(req).map_err(NineError::new)?;
        }
        Ok(data.len())
    }

    fn clunk(&self, _n: &ServeNode) {}

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        match n.qid.path_bits() {
            Q_ROOT => Ok(Dir::directory("/", Qid::dir(Q_ROOT, 0), 0o775, "network")),
            Q_LOG => Ok(Dir::directory("log", Qid::dir(Q_LOG, 0), 0o775, "network")),
            Q_CTL => Ok(Dir::file("ctl", Qid::file(Q_CTL, 0), 0o660, "network", 0)),
            Q_DATA => Ok(Dir::file("data", Qid::file(Q_DATA, 0), 0o444, "network", 0)),
            Q_SERIES => Ok(Dir::file("series", Qid::file(Q_SERIES, 0), 0o444, "network", 0)),
            Q_COPY => Ok(Dir::file("copy", Qid::file(Q_COPY, 0), 0o444, "network", 0)),
            Q_LOCKGRAPH => Ok(Dir::file(
                "lockgraph",
                Qid::file(Q_LOCKGRAPH, 0),
                0o444,
                "network",
                0,
            )),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_netlog::Facility;

    fn served() -> (Arc<LogFs>, Arc<NetLog>) {
        let netlog = NetLog::new();
        (LogFs::new(Arc::clone(&netlog)), netlog)
    }

    fn walk_open(fs: &Arc<LogFs>, path: &[&str], mode: OpenMode) -> ServeNode {
        let mut n = fs.attach("u", "").unwrap();
        for elem in path {
            n = fs.walk(&n, elem).unwrap();
        }
        fs.open(&n, mode).unwrap()
    }

    #[test]
    fn ctl_sets_mask_and_reads_back() {
        let (fs, events) = served();
        let ctl = walk_open(&fs, &["log", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"set il tcp").unwrap();
        assert!(events.events.enabled(Facility::Il));
        assert!(events.events.enabled(Facility::Tcp));
        let text = String::from_utf8(fs.read(&ctl, 0, 128).unwrap()).unwrap();
        assert_eq!(text, "set il tcp\n");
    }

    #[test]
    fn data_returns_enabled_events_only() {
        let (fs, events) = served();
        let ctl = walk_open(&fs, &["log", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"set il").unwrap();
        events.events.log(Facility::Il, || "rexmit id 7".to_string());
        events.events.log(Facility::Tcp, || "never recorded".to_string());
        let data = walk_open(&fs, &["log", "data"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&data, 0, 4096).unwrap()).unwrap();
        assert_eq!(text, "il: rexmit id 7\n");
    }

    #[test]
    fn clear_flushes_and_disables() {
        let (fs, events) = served();
        let ctl = walk_open(&fs, &["log", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"set arp").unwrap();
        events.events.log(Facility::Arp, || "who-has".to_string());
        fs.write(&ctl, 0, b"clear").unwrap();
        assert!(!events.events.enabled(Facility::Arp));
        let data = walk_open(&fs, &["log", "data"], OpenMode::READ);
        assert!(fs.read(&data, 0, 4096).unwrap().is_empty());
    }

    #[test]
    fn series_file_configures_and_reads_back() {
        let (fs, netlog) = served();
        let ctl = walk_open(&fs, &["log", "ctl"], OpenMode::RDWR);
        fs.write(&ctl, 0, b"series interval 50ms").unwrap();
        fs.write(&ctl, 0, b"series retention 16").unwrap();
        let series = walk_open(&fs, &["log", "series"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&series, 0, 4096).unwrap()).unwrap();
        assert!(
            text.starts_with("series interval=50000us retention=16 samples=0\n"),
            "{text}"
        );
        assert!(fs.write(&ctl, 0, b"series interval zoom").is_err());
        // The series file itself is read-only.
        let mut n = fs.attach("u", "").unwrap();
        for elem in ["log", "series"] {
            n = fs.walk(&n, elem).unwrap();
        }
        assert!(fs.open(&n, OpenMode::RDWR).is_err());
        drop(netlog);
    }

    #[test]
    fn copy_file_serves_site_table() {
        let (fs, _netlog) = served();
        // Touch a site so the table is guaranteed non-empty.
        let mut b = plan9_support::buf::BytesMut::new();
        b.put_slice(b"copied");
        let _ = b.freeze();
        let copy = walk_open(&fs, &["log", "copy"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&copy, 0, 65536).unwrap()).unwrap();
        assert!(text.contains("copy buf.freeze bytes="), "{text}");
        assert!(text.contains("copy total sites="), "{text}");
    }

    #[test]
    fn lockgraph_serves_runtime_lock_classes() {
        let (fs, _netlog) = served();
        // Touch a named lock so the dump has at least one class row in
        // debug builds, where lockdep is compiled in.
        let m = plan9_support::sync::Mutex::named(0u32, "core.test.lockgraph");
        *m.lock() += 1;
        let node = walk_open(&fs, &["log", "lockgraph"], OpenMode::READ);
        let text = String::from_utf8(fs.read(&node, 0, 65536).unwrap()).unwrap();
        if cfg!(debug_assertions) {
            assert!(
                text.contains("class core.test.lockgraph acquires="),
                "lockgraph dump missing the class we just used:\n{text}"
            );
        } else {
            assert!(text.starts_with("# lockdep: disabled"));
        }
        // Read-only: opening for write is a permission error.
        let mut n = fs.attach("u", "").unwrap();
        for elem in ["log", "lockgraph"] {
            n = fs.walk(&n, elem).unwrap();
        }
        assert!(fs.open(&n, OpenMode::RDWR).is_err());
    }

    #[test]
    fn log_dir_lists_new_files() {
        let (fs, _netlog) = served();
        let names: Vec<String> = fs
            .log_entries()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(names, ["copy", "ctl", "data", "lockgraph", "series"]);
    }

    #[test]
    fn bad_requests_are_errors() {
        let (fs, _events) = served();
        let ctl = walk_open(&fs, &["log", "ctl"], OpenMode::RDWR);
        // The 9P error must name the offending facility, not just fail.
        let err = fs.write(&ctl, 0, b"set nosuch").unwrap_err();
        assert!(err.0.contains("nosuch"), "{err}");
        let data = walk_open(&fs, &["log", "data"], OpenMode::READ);
        assert!(fs.write(&data, 0, b"no").is_err());
    }
}
