//! Read-only information files backed by closures.
//!
//! Plan 9 scatters small synthesized text files through the name space —
//! `/dev/sysname`, `/net/arp`, and friends. [`InfoFs`] serves a flat
//! directory of such files; each read re-evaluates its generator, so the
//! contents are always current, like the `stats` files of §2.2.

use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Generates the current contents of one info file.
pub type InfoGen = Box<dyn Fn() -> String + Send + Sync>;

/// A flat directory of generated read-only files.
pub struct InfoFs {
    name: String,
    files: Vec<(String, InfoGen)>,
    handles: AtomicU64,
}

impl InfoFs {
    /// Creates the server from `(name, generator)` pairs.
    pub fn new(name: &str, files: Vec<(String, InfoGen)>) -> Arc<InfoFs> {
        Arc::new(InfoFs {
            name: name.to_string(),
            files,
            handles: AtomicU64::new(1),
        })
    }

    fn entries(&self) -> Vec<Dir> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                Dir::file(name, Qid::file(i as u32 + 1, 0), 0o444, "info", 0)
            })
            .collect()
    }

    fn index_of(&self, q: Qid) -> Result<usize> {
        let p = q.path_bits() as usize;
        if p == 0 || p > self.files.len() {
            return Err(NineError::new(errstr::EBADUSE));
        }
        Ok(p - 1)
    }
}

impl ProcFs for InfoFs {
    fn fsname(&self) -> String {
        self.name.clone()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(
            Qid::dir(0, 0),
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(
            n.qid,
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        if name == ".." {
            return Ok(*n);
        }
        self.entries()
            .into_iter()
            .find(|d| d.name == name)
            .map(|d| ServeNode::new(d.qid, n.handle))
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if mode.writable() {
            return Err(NineError::new(errstr::EPERM));
        }
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        if n.qid.is_dir() {
            return read_dir_slice(&self.entries(), offset, count);
        }
        let idx = self.index_of(n.qid)?;
        let text = (self.files[idx].1)().into_bytes();
        let off = (offset as usize).min(text.len());
        let end = (off + count).min(text.len());
        Ok(text[off..end].to_vec())
    }

    fn write(&self, _n: &ServeNode, _offset: u64, _data: &[u8]) -> Result<usize> {
        Err(NineError::new(errstr::EPERM))
    }

    fn clunk(&self, _n: &ServeNode) {}

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        if n.qid.is_dir() {
            return Ok(Dir::directory(&self.name, Qid::dir(0, 0), 0o555, "info"));
        }
        let idx = self.index_of(n.qid)?;
        Ok(self.entries().remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_regenerate_per_read() {
        use std::sync::atomic::AtomicU32;
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        let fs = InfoFs::new(
            "info",
            vec![(
                "tick".to_string(),
                Box::new(move || format!("{}", c.fetch_add(1, Ordering::Relaxed))) as InfoGen,
            )],
        );
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "tick").unwrap();
        let f = fs.open(&f, OpenMode::READ).unwrap();
        assert_eq!(fs.read(&f, 0, 10).unwrap(), b"0");
        assert_eq!(fs.read(&f, 0, 10).unwrap(), b"1");
    }

    #[test]
    fn read_only() {
        let fs = InfoFs::new(
            "info",
            vec![("x".to_string(), Box::new(|| "x".to_string()) as InfoGen)],
        );
        let root = fs.attach("u", "").unwrap();
        let f = fs.walk(&root, "x").unwrap();
        assert!(fs.open(&f, OpenMode::WRITE).is_err());
        assert!(fs.write(&f, 0, b"no").is_err());
    }
}
