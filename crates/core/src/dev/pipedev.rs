//! The pipe device: stream pipes behind the file interface.
//!
//! Plan 9's `#|` serves each pipe as a little tree of two data files;
//! here one [`PipeFs`] instance is one pipe, with `data` and `data1` as
//! its two ends. "The first process to open either file creates the
//! stream automatically. The last close destroys it" (§2.4.1) — the
//! stream pair lives exactly as long as open references to it.

use plan9_support::sync::Mutex;
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use plan9_streams::{stream_pipe, Stream};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const Q_ROOT: u32 = 0;
const Q_DATA0: u32 = 1;
const Q_DATA1: u32 = 2;

/// One pipe as a file server.
pub struct PipeFs {
    ends: (Arc<Stream>, Arc<Stream>),
    handles: AtomicU64,
    /// Open references per end, for last-close destruction.
    refs: Mutex<HashMap<u64, usize>>,
    open_count: Mutex<[usize; 2]>,
}

impl PipeFs {
    /// Creates a fresh pipe.
    pub fn new() -> Arc<PipeFs> {
        Arc::new(PipeFs {
            ends: stream_pipe(),
            handles: AtomicU64::new(1),
            refs: Mutex::named(HashMap::new(), "core.pipedev.refs"),
            open_count: Mutex::named([0, 0], "core.pipedev.open"),
        })
    }

    fn entries(&self) -> Vec<Dir> {
        vec![
            Dir::file("data", Qid::file(Q_DATA0, 0), 0o660, "pipe", 0),
            Dir::file("data1", Qid::file(Q_DATA1, 0), 0o660, "pipe", 0),
        ]
    }

    fn end_of(&self, q: Qid) -> Result<usize> {
        match q.path_bits() {
            Q_DATA0 => Ok(0),
            Q_DATA1 => Ok(1),
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }

    fn stream(&self, end: usize) -> &Arc<Stream> {
        if end == 0 {
            &self.ends.0
        } else {
            &self.ends.1
        }
    }
}

impl Default for PipeFs {
    fn default() -> Self {
        PipeFs {
            ends: stream_pipe(),
            handles: AtomicU64::new(1),
            refs: Mutex::named(HashMap::new(), "core.pipedev.refs"),
            open_count: Mutex::named([0, 0], "core.pipedev.open"),
        }
    }
}

impl ProcFs for PipeFs {
    fn fsname(&self) -> String {
        "pipe".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(
            Qid::dir(Q_ROOT, 0),
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(
            n.qid,
            self.handles.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        if !n.qid.is_dir() {
            return Err(NineError::new(errstr::ENOTDIR));
        }
        match name {
            ".." => Ok(*n),
            "data" => Ok(ServeNode::new(Qid::file(Q_DATA0, 0), n.handle)),
            "data1" => Ok(ServeNode::new(Qid::file(Q_DATA1, 0), n.handle)),
            _ => Err(NineError::new(errstr::ENOTEXIST)),
        }
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        if n.qid.is_dir() {
            if mode.access() != 0 {
                return Err(NineError::new(errstr::EISDIR));
            }
            return Ok(*n);
        }
        let end = self.end_of(n.qid)?;
        self.refs.lock().insert(n.handle, end);
        self.open_count.lock()[end] += 1;
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        if n.qid.is_dir() {
            return read_dir_slice(&self.entries(), offset, count);
        }
        let end = self.end_of(n.qid)?;
        self.stream(end).read(count)
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        let end = self.end_of(n.qid)?;
        self.stream(end).write(data)
    }

    fn clunk(&self, n: &ServeNode) {
        if let Some(end) = self.refs.lock().remove(&n.handle) {
            let mut counts = self.open_count.lock();
            counts[end] = counts[end].saturating_sub(1);
            if counts[end] == 0 {
                // The last close of this end hangs up the peer.
                self.stream(end).destroy();
            }
        }
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        if n.qid.is_dir() {
            return Ok(Dir::directory("pipe", Qid::dir(Q_ROOT, 0), 0o555, "pipe"));
        }
        self.entries()
            .into_iter()
            .find(|d| d.qid == n.qid)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ends_converse() {
        let fs = PipeFs::new();
        let root = fs.attach("u", "").unwrap();
        let a = fs.walk(&fs.clone_node(&root).unwrap(), "data").unwrap();
        let a = fs.open(&a, OpenMode::RDWR).unwrap();
        let b = fs.walk(&fs.clone_node(&root).unwrap(), "data1").unwrap();
        let b = fs.open(&b, OpenMode::RDWR).unwrap();
        fs.write(&a, 0, b"ping").unwrap();
        assert_eq!(fs.read(&b, 0, 100).unwrap(), b"ping");
        fs.write(&b, 0, b"pong").unwrap();
        assert_eq!(fs.read(&a, 0, 100).unwrap(), b"pong");
    }

    #[test]
    fn last_close_hangs_up() {
        let fs = PipeFs::new();
        let root = fs.attach("u", "").unwrap();
        let a = fs.walk(&fs.clone_node(&root).unwrap(), "data").unwrap();
        let a = fs.open(&a, OpenMode::RDWR).unwrap();
        let b = fs.walk(&fs.clone_node(&root).unwrap(), "data1").unwrap();
        let b = fs.open(&b, OpenMode::RDWR).unwrap();
        fs.write(&a, 0, b"tail").unwrap();
        fs.clunk(&a);
        assert_eq!(fs.read(&b, 0, 100).unwrap(), b"tail");
        assert_eq!(fs.read(&b, 0, 100).unwrap(), b"", "EOF after hangup");
    }
}
