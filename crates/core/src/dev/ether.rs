//! The Ethernet device driver: the two-level file tree of Figure 1.
//!
//! ```text
//! ether/clone
//! ether/1/{ctl data stats type}
//! ether/2/...
//! ```
//!
//! Each connection directory corresponds to an Ethernet packet type.
//! Writing `connect 2048` to the `ctl` file sets the packet type;
//! reading `type` yields `2048`; the `data` file accesses the media.
//! "If several connections on an interface are configured for a
//! particular packet type, each receives a copy of the incoming packets.
//! The special packet type −1 selects all packets. Writing the strings
//! `promiscuous` and `connect -1` to the ctl file configures a
//! conversation to receive all packets on the Ethernet."
//!
//! Writing the `data` file queues a packet for transmission "after
//! appending a packet header containing the source address and packet
//! type": the written bytes are the six-byte destination followed by the
//! payload; the driver supplies source and type.

use plan9_netlog::Counter;
use plan9_support::chan::{bounded, Receiver, Sender};
use plan9_support::sync::Mutex;
use plan9_netsim::ether::{mac_to_string, EtherFrame, EtherStation, BROADCAST};
use plan9_ninep::procfs::{read_dir_slice, OpenMode, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::{errstr, Dir, NineError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const Q_TOP: u32 = 0;
const Q_CLONE: u32 = 1;
const T_DIR: u32 = 1;
const T_CTL: u32 = 2;
const T_DATA: u32 = 3;
const T_STATS: u32 = 4;
const T_TYPE: u32 = 5;

fn conn_qid(conn: usize, typ: u32) -> Qid {
    let path = ((conn as u32 + 1) << 4) | typ;
    if typ == T_DIR {
        Qid::dir(path, 0)
    } else {
        Qid::file(path, 0)
    }
}

fn split_qid(q: Qid) -> Option<(usize, u32)> {
    let p = q.path_bits();
    if p < 16 {
        return None;
    }
    Some(((p >> 4) as usize - 1, p & 0xf))
}

struct EtherConv {
    id: usize,
    /// The selected packet type; `-1` selects all; `-2` means not yet
    /// configured.
    ptype: AtomicI64,
    promiscuous: AtomicBool,
    rx_tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    refs: Mutex<usize>,
}

/// The LANCE-style Ethernet device.
pub struct EtherDev {
    station: Arc<EtherStation>,
    convs: Mutex<HashMap<usize, Arc<EtherConv>>>,
    next_conn: Mutex<usize>,
    handles: AtomicU64,
    open_refs: Mutex<HashMap<u64, usize>>,
    /// Frames received from the wire.
    pub in_packets: Counter,
    /// Frames transmitted.
    pub out_packets: Counter,
    /// Frames that matched no conversation.
    pub unrouted: Counter,
    closed: AtomicBool,
}

impl EtherDev {
    /// Wraps a station and starts the receiver kernel process.
    ///
    /// Connection directories are numbered from 1, matching Figure 1.
    pub fn new(station: EtherStation) -> Arc<EtherDev> {
        let dev = Arc::new(EtherDev {
            station: Arc::new(station),
            convs: Mutex::named(HashMap::new(), "core.ether.convs"),
            next_conn: Mutex::named(1, "core.ether.nextconn"),
            handles: AtomicU64::new(1),
            open_refs: Mutex::named(HashMap::new(), "core.ether.openrefs"),
            in_packets: Counter::new("ether.in"),
            out_packets: Counter::new("ether.out"),
            unrouted: Counter::new("ether.unrouted"),
            closed: AtomicBool::new(false),
        });
        let rx_dev = Arc::clone(&dev);
        plan9_support::vtime::kproc("ether-rx", move || rx_dev.rx_loop())
            // checked: spawn fails only on OS thread exhaustion at setup, not on a data path
            .expect("spawn ether rx");
        dev
    }

    /// Stops the receiver process.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// The interface's station address.
    pub fn addr_string(&self) -> String {
        mac_to_string(&self.station.addr)
    }

    fn rx_loop(self: Arc<Self>) {
        while !self.closed.load(Ordering::SeqCst) {
            let Some(frame) = self.station.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            self.in_packets.inc();
            let encoded = frame.encode();
            let mut routed = false;
            let convs: Vec<Arc<EtherConv>> = self.convs.lock().values().cloned().collect();
            for conv in convs {
                let ptype = conv.ptype.load(Ordering::Relaxed);
                let type_ok = ptype == -1 || ptype == frame.ethertype as i64;
                let addr_ok = conv.promiscuous.load(Ordering::Relaxed)
                    || frame.dst == self.station.addr
                    || frame.dst == BROADCAST;
                if type_ok && addr_ok && ptype != -2 {
                    // Each matching conversation receives a copy; full
                    // queues drop, as hardware input rings do.
                    let _ = conv.rx_tx.try_send(encoded.clone());
                    routed = true;
                }
            }
            if !routed {
                self.unrouted.inc();
            }
        }
    }

    fn fresh_handle(&self) -> u64 {
        self.handles.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_conv(&self) -> Arc<EtherConv> {
        let mut next = self.next_conn.lock();
        let id = *next;
        *next += 1;
        let (tx, rx) = bounded(256);
        let conv = Arc::new(EtherConv {
            id,
            ptype: AtomicI64::new(-2),
            promiscuous: AtomicBool::new(false),
            rx_tx: tx,
            rx,
            refs: Mutex::named(0, "core.ether.connrefs"),
        });
        self.convs.lock().insert(id, Arc::clone(&conv));
        conv
    }

    fn conv(&self, id: usize) -> Result<Arc<EtherConv>> {
        self.convs
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }

    fn take_ref(&self, handle: u64, conv: &Arc<EtherConv>) {
        *conv.refs.lock() += 1;
        self.open_refs.lock().insert(handle, conv.id);
    }

    fn conv_entries(&self, id: usize) -> Vec<Dir> {
        vec![
            Dir::file("ctl", conn_qid(id, T_CTL), 0o660, "network", 0),
            Dir::file("data", conn_qid(id, T_DATA), 0o660, "network", 0),
            Dir::file("stats", conn_qid(id, T_STATS), 0o444, "network", 0),
            Dir::file("type", conn_qid(id, T_TYPE), 0o444, "network", 0),
        ]
    }

    fn top_entries(&self) -> Vec<Dir> {
        let mut out = vec![Dir::file("clone", Qid::file(Q_CLONE, 0), 0o666, "network", 0)];
        let convs = self.convs.lock();
        let mut ids: Vec<usize> = convs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            out.push(Dir::directory(
                &id.to_string(),
                conn_qid(id, T_DIR),
                0o555,
                "network",
            ));
        }
        out
    }

    /// The `stats` text: "the interface address, packet input/output
    /// counts, error statistics, and general information about the state
    /// of the interface." The trailing block is the shared wire's own
    /// frame accounting.
    pub fn stats_text(&self) -> String {
        format!(
            "addr: {}\nin: {}\nout: {}\nunrouted: {}\nconversations: {}\nmtu: {}\n{}",
            self.addr_string(),
            self.in_packets.get(),
            self.out_packets.get(),
            self.unrouted.get(),
            self.convs.lock().len(),
            self.station.payload_mtu(),
            self.station.medium().stats().render(),
        )
    }
}

impl ProcFs for EtherDev {
    fn fsname(&self) -> String {
        "ether".to_string()
    }

    fn attach(&self, _uname: &str, _aname: &str) -> Result<ServeNode> {
        Ok(ServeNode::new(Qid::dir(Q_TOP, 0), self.fresh_handle()))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        Ok(ServeNode::new(n.qid, self.fresh_handle()))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let q = n.qid;
        if q.path_bits() == Q_TOP && q.is_dir() {
            if name == ".." {
                return Ok(*n);
            }
            if name == "clone" {
                return Ok(ServeNode::new(Qid::file(Q_CLONE, 0), n.handle));
            }
            if let Ok(id) = name.parse::<usize>() {
                self.conv(id)?;
                return Ok(ServeNode::new(conn_qid(id, T_DIR), n.handle));
            }
            return Err(NineError::new(errstr::ENOTEXIST));
        }
        if let Some((id, T_DIR)) = split_qid(q) {
            if name == ".." {
                return Ok(ServeNode::new(Qid::dir(Q_TOP, 0), n.handle));
            }
            let typ = match name {
                "ctl" => T_CTL,
                "data" => T_DATA,
                "stats" => T_STATS,
                "type" => T_TYPE,
                _ => return Err(NineError::new(errstr::ENOTEXIST)),
            };
            self.conv(id)?;
            return Ok(ServeNode::new(conn_qid(id, typ), n.handle));
        }
        Err(NineError::new(errstr::ENOTDIR))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        let q = n.qid;
        if q.is_dir() {
            if mode.access() != 0 {
                return Err(NineError::new(errstr::EISDIR));
            }
            return Ok(*n);
        }
        if q.path_bits() == Q_CLONE {
            // "Opening the clone file finds an unused connection
            // directory and opens its ctl file."
            let conv = self.alloc_conv();
            self.take_ref(n.handle, &conv);
            return Ok(ServeNode::new(conn_qid(conv.id, T_CTL), n.handle));
        }
        let (id, _typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conv = self.conv(id)?;
        self.take_ref(n.handle, &conv);
        Ok(*n)
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        let q = n.qid;
        if q.is_dir() && q.path_bits() == Q_TOP {
            return read_dir_slice(&self.top_entries(), offset, count);
        }
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conv = self.conv(id)?;
        if q.is_dir() {
            return read_dir_slice(&self.conv_entries(id), offset, count);
        }
        let text = |s: String| -> Vec<u8> {
            let bytes = s.into_bytes();
            let off = (offset as usize).min(bytes.len());
            let end = (off + count).min(bytes.len());
            bytes[off..end].to_vec()
        };
        match typ {
            T_CTL => Ok(text(conv.id.to_string())),
            // "Subsequent reads of the file type yield the string 2048."
            T_TYPE => Ok(text(conv.ptype.load(Ordering::Relaxed).to_string())),
            T_STATS => Ok(text(self.stats_text())),
            T_DATA => {
                // "Reading it returns the next packet of the selected
                // type."
                match conv.rx.recv() {
                    Ok(mut frame) => {
                        frame.truncate(count.max(frame.len().min(count)));
                        Ok(frame)
                    }
                    Err(_) => Ok(Vec::new()),
                }
            }
            _ => Err(NineError::new(errstr::EBADUSE)),
        }
    }

    fn write(&self, n: &ServeNode, _offset: u64, data: &[u8]) -> Result<usize> {
        let (id, typ) = split_qid(n.qid).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        let conv = self.conv(id)?;
        match typ {
            T_CTL => {
                let cmd = std::str::from_utf8(data)
                    .map_err(|_| NineError::new("control request is not text"))?;
                let fields: Vec<&str> = cmd.split_whitespace().collect();
                match fields.as_slice() {
                    ["connect", t] => {
                        let t: i64 = t
                            .parse()
                            .map_err(|_| NineError::new("bad packet type"))?;
                        conv.ptype.store(t, Ordering::Relaxed);
                        Ok(data.len())
                    }
                    ["promiscuous"] => {
                        conv.promiscuous.store(true, Ordering::Relaxed);
                        Ok(data.len())
                    }
                    _ => Err(NineError::new(format!("unknown control request: {cmd}"))),
                }
            }
            T_DATA => {
                // Destination address, then payload; the driver appends
                // the header with source address and the packet type.
                let Some(&dst) = data.first_chunk::<6>() else {
                    return Err(NineError::new("short ether write"));
                };
                let ptype = conv.ptype.load(Ordering::Relaxed);
                if ptype < 0 {
                    return Err(NineError::new("packet type not set"));
                }
                self.station
                    .send(dst, ptype as u16, &data[6..])
                    .map_err(NineError::new)?;
                self.out_packets.inc();
                Ok(data.len())
            }
            _ => Err(NineError::new(errstr::EPERM)),
        }
    }

    fn clunk(&self, n: &ServeNode) {
        let conv_id = self.open_refs.lock().remove(&n.handle);
        if let Some(id) = conv_id {
            let conv = { self.convs.lock().get(&id).cloned() };
            if let Some(conv) = conv {
                let mut refs = conv.refs.lock();
                *refs = refs.saturating_sub(1);
                if *refs == 0 {
                    drop(refs);
                    self.convs.lock().remove(&id);
                }
            }
        }
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        let q = n.qid;
        if q.path_bits() == Q_TOP {
            return Ok(Dir::directory("ether", Qid::dir(Q_TOP, 0), 0o555, "network"));
        }
        if q.path_bits() == Q_CLONE {
            return Ok(Dir::file("clone", Qid::file(Q_CLONE, 0), 0o666, "network", 0));
        }
        let (id, typ) = split_qid(q).ok_or_else(|| NineError::new(errstr::EBADUSE))?;
        self.conv(id)?;
        if typ == T_DIR {
            return Ok(Dir::directory(
                &id.to_string(),
                conn_qid(id, T_DIR),
                0o555,
                "network",
            ));
        }
        self.conv_entries(id)
            .into_iter()
            .find(|d| d.qid == q)
            .ok_or_else(|| NineError::new(errstr::ENOTEXIST))
    }
}

/// Re-export for callers that parse data-file reads.
pub use plan9_netsim::ether::ETHER_HDR;

/// Decodes a frame read from a `data` file.
pub fn parse_frame(bytes: &[u8]) -> Option<EtherFrame> {
    EtherFrame::decode(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_netsim::ether::EtherSegment;
    use plan9_netsim::profile::Profiles;

    fn mac(n: u8) -> [u8; 6] {
        [8, 0, 0x69, 2, 0x22, n]
    }

    fn two_devs() -> (Arc<EtherDev>, Arc<EtherDev>) {
        let seg = EtherSegment::new(Profiles::ether_fast());
        (
            EtherDev::new(seg.attach(mac(1))),
            EtherDev::new(seg.attach(mac(2))),
        )
    }

    /// Opens the clone file, sets the packet type, returns (ctl, data).
    fn conversation(dev: &Arc<EtherDev>, ctl_cmd: &[&str]) -> (ServeNode, ServeNode) {
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        for cmd in ctl_cmd {
            dev.write(&ctl, 0, cmd.as_bytes()).unwrap();
        }
        let id = String::from_utf8(dev.read(&ctl, 0, 16).unwrap()).unwrap();
        let mut data = dev.attach("u", "").unwrap();
        for elem in [id.as_str(), "data"] {
            data = dev.walk(&data, elem).unwrap();
        }
        let data = dev.open(&data, OpenMode::RDWR).unwrap();
        (ctl, data)
    }

    #[test]
    fn figure_1_tree_shape() {
        let (dev, _) = two_devs();
        let (_ctl, _data) = conversation(&dev, &["connect 2048"]);
        let root = dev.attach("u", "").unwrap();
        let names: Vec<String> = dev
            .read(&root, 0, 4096)
            .unwrap()
            .chunks(plan9_ninep::dir::DIR_LEN)
            .map(|c| Dir::decode(c).unwrap().name)
            .collect();
        assert_eq!(names, vec!["clone", "1"]);
        let conn = dev.walk(&root, "1").unwrap();
        let names: Vec<String> = dev
            .read(&conn, 0, 4096)
            .unwrap()
            .chunks(plan9_ninep::dir::DIR_LEN)
            .map(|c| Dir::decode(c).unwrap().name)
            .collect();
        assert_eq!(names, vec!["ctl", "data", "stats", "type"]);
    }

    #[test]
    fn connect_2048_receives_ip_packets_only() {
        let (a, b) = two_devs();
        let (_actl, adata) = conversation(&a, &["connect 2048"]);
        let (_bctl, bdata) = conversation(&b, &["connect 2048"]);
        // Send an IP-type packet from b to a.
        let mut pkt = mac(1).to_vec();
        pkt.extend_from_slice(b"an ip packet");
        b.write(&bdata, 0, &pkt).unwrap();
        let frame = parse_frame(&a.read(&adata, 0, 2048).unwrap()).unwrap();
        assert_eq!(frame.ethertype, 2048);
        assert_eq!(frame.payload, b"an ip packet");
        assert_eq!(frame.src, mac(2));
    }

    #[test]
    fn type_file_reads_back() {
        let (dev, _) = two_devs();
        let (_ctl, _data) = conversation(&dev, &["connect 2048"]);
        let root = dev.attach("u", "").unwrap();
        let mut t = root;
        for elem in ["1", "type"] {
            t = dev.walk(&t, elem).unwrap();
        }
        let t = dev.open(&t, OpenMode::READ).unwrap();
        assert_eq!(dev.read(&t, 0, 16).unwrap(), b"2048");
    }

    #[test]
    fn copy_semantics_for_same_type() {
        let (a, b) = two_devs();
        let (_c1, d1) = conversation(&a, &["connect 9"]);
        let (_c2, d2) = conversation(&a, &["connect 9"]);
        let (_bc, bd) = conversation(&b, &["connect 9"]);
        let mut pkt = mac(1).to_vec();
        pkt.extend_from_slice(b"copied");
        b.write(&bd, 0, &pkt).unwrap();
        // Both conversations on a receive a copy.
        assert_eq!(parse_frame(&a.read(&d1, 0, 2048).unwrap()).unwrap().payload, b"copied");
        assert_eq!(parse_frame(&a.read(&d2, 0, 2048).unwrap()).unwrap().payload, b"copied");
    }

    #[test]
    fn promiscuous_minus_one_sees_everything() {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = EtherDev::new(seg.attach(mac(1)));
        let b = EtherDev::new(seg.attach(mac(2)));
        let c = EtherDev::new(seg.attach(mac(3)));
        // The snooper on c: promiscuous + connect -1 (§2.2).
        let (_cc, cd) = conversation(&c, &["promiscuous", "connect -1"]);
        // b sends to a, type 7 — nothing to do with c.
        let (_bc, bd) = conversation(&b, &["connect 7"]);
        let (_ac, _ad) = conversation(&a, &["connect 7"]);
        let mut pkt = mac(1).to_vec();
        pkt.extend_from_slice(b"sniffed");
        b.write(&bd, 0, &pkt).unwrap();
        let frame = parse_frame(&c.read(&cd, 0, 2048).unwrap()).unwrap();
        assert_eq!(frame.payload, b"sniffed");
        assert_eq!(frame.dst, mac(1));
    }

    #[test]
    fn non_promiscuous_filters_foreign_addresses() {
        let seg = EtherSegment::new(Profiles::ether_fast());
        let a = EtherDev::new(seg.attach(mac(1)));
        let b = EtherDev::new(seg.attach(mac(2)));
        let c = EtherDev::new(seg.attach(mac(3)));
        let (_cc, _cd) = conversation(&c, &["connect 7"]);
        let (_bc, bd) = conversation(&b, &["connect 7"]);
        let (_ac, ad) = conversation(&a, &["connect 7"]);
        let mut pkt = mac(1).to_vec();
        pkt.extend_from_slice(b"private");
        b.write(&bd, 0, &pkt).unwrap();
        // a sees it...
        assert_eq!(parse_frame(&a.read(&ad, 0, 2048).unwrap()).unwrap().payload, b"private");
        // ...c never routed it (it was addressed to a).
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(c.in_packets.get(), 1);
        assert_eq!(c.unrouted.get(), 1);
    }

    #[test]
    fn stats_file_reports_interface() {
        let (dev, _) = two_devs();
        let (_ctl, _d) = conversation(&dev, &["connect 2048"]);
        let root = dev.attach("u", "").unwrap();
        let mut s = root;
        for elem in ["1", "stats"] {
            s = dev.walk(&s, elem).unwrap();
        }
        let s = dev.open(&s, OpenMode::READ).unwrap();
        let text = String::from_utf8(dev.read(&s, 0, 4096).unwrap()).unwrap();
        assert!(text.contains("addr: 080069022201"), "{text}");
        assert!(text.contains("out:"), "{text}");
    }

    #[test]
    fn write_before_connect_refused() {
        let (dev, _) = two_devs();
        let root = dev.attach("u", "").unwrap();
        let clone = dev.walk(&root, "clone").unwrap();
        let _ctl = dev.open(&clone, OpenMode::RDWR).unwrap();
        let mut d = dev.attach("u", "").unwrap();
        for elem in ["1", "data"] {
            d = dev.walk(&d, elem).unwrap();
        }
        let d = dev.open(&d, OpenMode::RDWR).unwrap();
        let mut pkt = mac(2).to_vec();
        pkt.push(0);
        let err = dev.write(&d, 0, &pkt).unwrap_err();
        assert!(err.0.contains("packet type not set"), "{err}");
    }
}
