//! The mount driver (§2.1).
//!
//! "A kernel resident file server called the mount driver converts the
//! procedural version of 9P into RPCs. ... After a mount, operations on
//! the file tree below the mount point are sent as messages to the file
//! server. The mount driver manages buffers, packs and unpacks
//! parameters from messages, and demultiplexes among processes using the
//! file server."
//!
//! [`MountDriver`] implements the kernel-side [`ProcFs`] interface by
//! issuing 9P RPCs through a [`NineClient`]; the client's tag
//! multiplexing is exactly the demultiplexing the paper describes.
//! [`ChanIo`] adapts any open channel (usually a network connection's
//! `data` file) into the transport the client needs; for byte-stream
//! transports the marshaling layer is inserted.

use crate::namespace::Source;
use plan9_ninep::client::NineClient;
use plan9_ninep::marshal::{FramedSink, FramedSource};
use plan9_ninep::procfs::{OpenMode, Perm, ProcFs, ServeNode};
use plan9_ninep::qid::Qid;
use plan9_ninep::transport::{ByteSink, ByteSource, MsgSink, MsgSource};
use plan9_ninep::{Dir, Result};
use std::sync::Arc;

/// Message- and byte-oriented I/O over an open channel (a `data` file).
///
/// Reads and writes go through the channel's own file server, so this
/// works for pipes, IL, URP and TCP conversations alike.
pub struct ChanIo {
    src: Source,
}

impl ChanIo {
    /// Wraps an open channel.
    pub fn new(src: Source) -> ChanIo {
        ChanIo { src }
    }
}

impl Clone for ChanIo {
    fn clone(&self) -> Self {
        ChanIo {
            src: self.src.clone(),
        }
    }
}

impl MsgSink for ChanIo {
    fn sendmsg(&mut self, msg: &[u8]) -> Result<()> {
        // One write, one message: delimited transports preserve it.
        // The span is the protocol device's data-write handling, nested
        // inside the client's txwait.
        let cur = plan9_netlog::trace::current();
        let t0 = cur.as_ref().map(|_| plan9_support::time::now());
        let r = self.src.fs.write(&self.src.node, 0, msg).map(|_| ());
        if let (Some(h), Some(t0)) = (cur, t0) {
            h.span(
                plan9_netlog::Facility::NineP,
                "devwrite",
                t0,
                plan9_support::time::now(),
            );
        }
        r
    }
}

impl MsgSource for ChanIo {
    fn recvmsg(&mut self) -> Result<Option<Vec<u8>>> {
        match self.src.fs.read(&self.src.node, 0, 1 << 16) {
            Ok(data) if data.is_empty() => Ok(None),
            Ok(data) => Ok(Some(data)),
            Err(e) if e.0.contains("hungup") || e.0.contains("closed") => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl ByteSink for ChanIo {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.src.fs.write(&self.src.node, 0, bytes).map(|_| ())
    }
}

impl ByteSource for ChanIo {
    fn recv_some(&mut self) -> Result<Option<Vec<u8>>> {
        match self.src.fs.read(&self.src.node, 0, 1 << 16) {
            Ok(data) if data.is_empty() => Ok(None),
            Ok(data) => Ok(Some(data)),
            Err(e) if e.0.contains("hungup") || e.0.contains("closed") => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The mount driver: procedural 9P in, RPC 9P out.
pub struct MountDriver {
    client: NineClient,
    name: String,
}

impl MountDriver {
    /// Builds a mount driver over a delimiter-preserving transport.
    pub fn over_messages<T>(transport: T) -> Result<Arc<MountDriver>>
    where
        T: MsgSink + MsgSource + Clone + Send + 'static,
    {
        let sink = transport.clone();
        Ok(Self::from_client(NineClient::new(
            Box::new(sink),
            Box::new(transport),
        )))
    }

    /// Builds a mount driver over a byte stream, inserting the
    /// length-prefix marshaling the paper requires for TCP.
    pub fn over_bytes<T>(transport: T) -> Result<Arc<MountDriver>>
    where
        T: ByteSink + ByteSource + Clone + Send + 'static,
    {
        let sink = FramedSink::new(transport.clone());
        let source = FramedSource::new(transport);
        Ok(Self::from_client(NineClient::new(
            Box::new(sink),
            Box::new(source),
        )))
    }

    /// Wraps an existing client.
    pub fn from_client(client: NineClient) -> Arc<MountDriver> {
        Arc::new(MountDriver {
            client,
            name: "mnt".to_string(),
        })
    }

    /// Starts the session (optional but polite; resets the fid space).
    pub fn session(&self) -> Result<(String, String)> {
        self.client.session()
    }

    fn node_from(fid: plan9_ninep::Fid, qid: Qid) -> ServeNode {
        ServeNode::new(qid, fid as u64)
    }

    fn fid_of(n: &ServeNode) -> plan9_ninep::Fid {
        n.handle as plan9_ninep::Fid
    }
}

impl ProcFs for MountDriver {
    fn fsname(&self) -> String {
        self.name.clone()
    }

    fn attach(&self, uname: &str, aname: &str) -> Result<ServeNode> {
        let (fid, qid) = self.client.attach(uname, aname)?;
        Ok(Self::node_from(fid, qid))
    }

    fn clone_node(&self, n: &ServeNode) -> Result<ServeNode> {
        let fid = self.client.clone_fid(Self::fid_of(n))?;
        Ok(Self::node_from(fid, n.qid))
    }

    fn walk(&self, n: &ServeNode, name: &str) -> Result<ServeNode> {
        let qid = self.client.walk(Self::fid_of(n), name)?;
        Ok(ServeNode::new(qid, n.handle))
    }

    fn open(&self, n: &ServeNode, mode: OpenMode) -> Result<ServeNode> {
        let qid = self.client.open(Self::fid_of(n), mode)?;
        Ok(ServeNode::new(qid, n.handle))
    }

    fn create(&self, n: &ServeNode, name: &str, perm: Perm, mode: OpenMode) -> Result<ServeNode> {
        let qid = self.client.create(Self::fid_of(n), name, perm, mode)?;
        Ok(ServeNode::new(qid, n.handle))
    }

    fn read(&self, n: &ServeNode, offset: u64, count: usize) -> Result<Vec<u8>> {
        self.client.read(Self::fid_of(n), offset, count)
    }

    fn write(&self, n: &ServeNode, offset: u64, data: &[u8]) -> Result<usize> {
        self.client.write(Self::fid_of(n), offset, data)
    }

    fn clunk(&self, n: &ServeNode) {
        let _ = self.client.clunk(Self::fid_of(n));
    }

    fn remove(&self, n: &ServeNode) -> Result<()> {
        self.client.remove(Self::fid_of(n))
    }

    fn stat(&self, n: &ServeNode) -> Result<Dir> {
        self.client.stat(Self::fid_of(n))
    }

    fn wstat(&self, n: &ServeNode, d: &Dir) -> Result<()> {
        self.client.wstat(Self::fid_of(n), d)
    }
}

/// Serves a [`ProcFs`] over a message transport in a background thread —
/// the other half of the loop, used to export a local tree (tests,
/// exportfs, srv).
pub fn serve_in_thread<T>(fs: Arc<dyn ProcFs>, transport: T)
where
    T: MsgSink + MsgSource + Clone + Send + 'static,
{
    let sink = transport.clone();
    plan9_support::vtime::kproc("9p-serve", move || {
        let _ = plan9_ninep::server::serve(fs, Box::new(transport), Box::new(sink));
    })
    // checked: spawn fails only on OS thread exhaustion at setup, not on a data path
    .expect("spawn 9p server");
}

/// A guard against accidentally using the driver after hangup.
impl Drop for MountDriver {
    fn drop(&mut self) {
        // Fids die with the connection; nothing to do, but keep the
        // hook for future resource accounting.
        let _ = &self.client;
    }
}

impl std::fmt::Debug for MountDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MountDriver({})", if self.client.hungup() { "hungup" } else { "up" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plan9_ninep::procfs::{walk_path, MemFs};
    use plan9_ninep::transport::MsgPipeEnd;

    /// A cloneable wrapper over split pipe halves. The halves get
    /// independent locks: the demux thread blocks in `recvmsg` while
    /// senders use `sendmsg` concurrently.
    #[derive(Clone)]
    struct SharedPipe {
        tx: std::sync::Arc<plan9_support::sync::Mutex<plan9_ninep::transport::MsgPipeSink>>,
        rx: std::sync::Arc<plan9_support::sync::Mutex<plan9_ninep::transport::MsgPipeSource>>,
    }

    impl MsgSink for SharedPipe {
        fn sendmsg(&mut self, msg: &[u8]) -> Result<()> {
            self.tx.lock().sendmsg(msg)
        }
    }

    impl MsgSource for SharedPipe {
        fn recvmsg(&mut self) -> Result<Option<Vec<u8>>> {
            self.rx.lock().recvmsg()
        }
    }

    fn remote_fs() -> Arc<MountDriver> {
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/srv/readme", b"served remotely").unwrap();
        let (client_end, server_end) = MsgPipeEnd::pair();
        let (ssink, ssource) = server_end.split();
        std::thread::spawn(move || {
            let _ = plan9_ninep::server::serve(fs, Box::new(ssource), Box::new(ssink));
        });
        let (ctx, crx) = client_end.split();
        let shared = SharedPipe {
            tx: std::sync::Arc::new(plan9_support::sync::Mutex::new(ctx)),
            rx: std::sync::Arc::new(plan9_support::sync::Mutex::new(crx)),
        };
        MountDriver::over_messages(shared).unwrap()
    }

    #[test]
    fn procedural_calls_become_rpcs() {
        let drv = remote_fs();
        let root = drv.attach("philw", "").unwrap();
        assert!(root.qid.is_dir());
        let f = walk_path(&*drv as &dyn ProcFs, &root, "srv/readme").unwrap();
        let f = drv.open(&f, OpenMode::READ).unwrap();
        assert_eq!(drv.read(&f, 0, 100).unwrap(), b"served remotely");
        drv.clunk(&f);
    }

    #[test]
    fn errors_cross_the_wire_as_strings() {
        let drv = remote_fs();
        let root = drv.attach("philw", "").unwrap();
        let err = drv.walk(&root, "nonesuch").unwrap_err();
        assert_eq!(err.0, plan9_ninep::errstr::ENOTEXIST);
    }

    #[test]
    fn create_and_write_remote() {
        let drv = remote_fs();
        let root = drv.attach("philw", "").unwrap();
        let f = drv.create(&root, "newfile", 0o644, OpenMode::WRITE).unwrap();
        assert_eq!(drv.write(&f, 0, b"12345").unwrap(), 5);
        let d = drv.stat(&f).unwrap();
        assert_eq!(d.length, 5);
        drv.remove(&f).unwrap();
    }
}
