//! Name-space and connection-setup costs: path resolution through mount
//! tables, union listing, CS translation, and the full §2.3 dial dance.

use plan9_support::bench::{black_box, Harness};
use plan9_core::dial::{accept, announce, dial, listen};
use plan9_core::machine::{Machine, MachineBuilder};
use plan9_inet::ip::IpConfig;
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_ninep::procfs::OpenMode;
use std::sync::Arc;

fn machines() -> (Arc<Machine>, Arc<Machine>) {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let ndb = "sys=helix ip=10.13.0.1 proto=il proto=tcp\nsys=gnot ip=10.13.0.2 proto=il proto=tcp\n";
    let a = MachineBuilder::new("helix")
        .ether(&seg, [8, 0, 0, 13, 0, 1], IpConfig::local("10.13.0.1"))
        .ndb(ndb)
        .build()
        .unwrap();
    let b = MachineBuilder::new("gnot")
        .ether(&seg, [8, 0, 0, 13, 0, 2], IpConfig::local("10.13.0.2"))
        .ndb(ndb)
        .build()
        .unwrap();
    (a, b)
}

fn bench_namespace(c: &mut Harness) {
    let (helix, gnot) = machines();
    let p = gnot.proc();

    c.bench_function("ns/resolve-net-tcp-clone", |b| {
        b.iter(|| {
            let src = p.ns.resolve(black_box("/net/tcp/clone")).unwrap();
            src.clunk();
        })
    });

    c.bench_function("ns/union-ls-net", |b| {
        b.iter(|| black_box(p.ls("/net").unwrap().len()))
    });

    c.bench_function("cs/translate-via-file", |b| {
        b.iter(|| {
            let fd = p.open("/net/cs", OpenMode::RDWR).unwrap();
            p.write_str(fd, black_box("net!helix!9fs")).unwrap();
            let line = p.read(fd, 256).unwrap();
            p.close(fd);
            black_box(line)
        })
    });

    // The full dial dance against a persistent echo acceptor.
    let hp = helix.proc();
    std::thread::spawn(move || {
        let (_afd, adir) = announce(&hp, "il!*!echo").expect("announce");
        loop {
            let Ok((lcfd, ldir)) = listen(&hp, &adir) else { return };
            let Ok(dfd) = accept(&hp, lcfd, &ldir) else { return };
            hp.close(dfd);
            hp.close(lcfd);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    c.bench_function("dial/il-connect-teardown", |b| {
        b.iter(|| {
            let conn = dial(&p, black_box("il!helix!echo")).expect("dial");
            p.close(conn.data_fd);
            p.close(conn.ctl_fd);
        })
    });
}

fn main() {
    let mut h = Harness::new();
    bench_namespace(&mut h);
}
