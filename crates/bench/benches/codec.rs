//! Microbenchmarks for the 9P wire codec: the per-message cost that
//! every remote file operation pays.

use plan9_support::bench::{black_box, Harness};
use plan9_ninep::codec::{decode_rmsg, decode_tmsg, encode_rmsg, encode_tmsg};
use plan9_ninep::fcall::{Rmsg, Tmsg};
use plan9_ninep::{Dir, Qid};

fn bench_codec(c: &mut Harness) {
    let mut g = c.benchmark_group("9p-codec");
    let twalk = Tmsg::Walk {
        fid: 7,
        name: "clone".into(),
    };
    g.bench_function("encode-twalk", |b| {
        b.iter(|| encode_tmsg(black_box(3), black_box(&twalk)))
    });
    let twalk_bytes = encode_tmsg(3, &twalk);
    g.bench_function("decode-twalk", |b| {
        b.iter(|| decode_tmsg(black_box(&twalk_bytes)).unwrap())
    });

    let rread = Rmsg::Read {
        fid: 7,
        data: vec![0x42; 8192],
    };
    g.throughput_bytes(8192);
    g.bench_function("encode-rread-8k", |b| {
        b.iter(|| encode_rmsg(black_box(9), black_box(&rread)))
    });
    let rread_bytes = encode_rmsg(9, &rread);
    g.bench_function("decode-rread-8k", |b| {
        b.iter(|| decode_rmsg(black_box(&rread_bytes)).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("dir-codec");
    let dir = Dir::file("eia1ctl", Qid::file(42, 7), 0o666, "bootes", 116);
    g.bench_function("encode-dir", |b| b.iter(|| black_box(&dir).encode()));
    let bytes = dir.encode();
    g.bench_function("decode-dir", |b| {
        b.iter(|| Dir::decode(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn main() {
    let mut h = Harness::new();
    bench_codec(&mut h);
}
