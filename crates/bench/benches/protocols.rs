//! Per-message protocol costs over unpaced media: what IL, TCP and URP
//! cost when the wire is free — the processing the paper charges to
//! 25 MHz MIPS, measured on this machine.

use plan9_support::bench::{black_box, Harness};
use plan9_bench::paths::{
    cyclone_path, il_ether_path, pipes_path, urp_datakit_path, BenchChan, Calibration,
};

fn rtt_bench<A: BenchChan, B: BenchChan>(c: &mut Harness, name: &str, a: A, b: B) {
    let echo = std::thread::spawn(move || loop {
        let msg = b.recv();
        if msg == b"quit" {
            return;
        }
        b.send(&msg);
    });
    c.bench_function(name, |bench| {
        bench.iter(|| {
            a.send(black_box(&[1u8; 64]));
            black_box(a.recv());
        })
    });
    a.send(b"quit");
    let _ = echo.join();
}

fn bench_protocols(c: &mut Harness) {
    {
        let (a, b) = pipes_path();
        rtt_bench(c, "rtt/pipes", a, b);
    }
    {
        let (a, b) = il_ether_path(Calibration::Fast);
        rtt_bench(c, "rtt/il-ether", a, b);
    }
    {
        let (a, b) = urp_datakit_path(Calibration::Fast);
        rtt_bench(c, "rtt/urp-datakit", a, b);
    }
    {
        let (a, b) = cyclone_path(Calibration::Fast);
        rtt_bench(c, "rtt/cyclone", a, b);
    }

    // One-way 16 KiB messages: the Table 1 write size, unpaced.
    let mut g = c.benchmark_group("oneway-16k");
    g.throughput_bytes(16 * 1024);
    {
        let (a, b) = il_ether_path(Calibration::Fast);
        let drain = std::thread::spawn(move || loop {
            if b.recv().is_empty() {
                continue;
            }
        });
        let msg = vec![0u8; 16 * 1024];
        g.bench_function("il", |bench| bench.iter(|| a.send(black_box(&msg))));
        drop(drain);
    }
    {
        let (a, b) = urp_datakit_path(Calibration::Fast);
        let _drain = std::thread::spawn(move || loop {
            let _ = b.recv();
        });
        let msg = vec![0u8; 16 * 1024];
        g.bench_function("urp", |bench| bench.iter(|| a.send(black_box(&msg))));
    }
    g.finish();
}

fn main() {
    let mut h = Harness::new();
    bench_protocols(&mut h);
}
