//! Database search costs at the paper's scale (§4.1): hashed attribute
//! lookup against linear scan over a 43,000-line global file.

use plan9_support::bench::{black_box, Harness};
use plan9_ndb::db::Db;
use plan9_ndb::gen::generate_global;
use plan9_ndb::hash::build_hash;
use std::io::Write as _;

fn bench_ndb(c: &mut Harness) {
    let (text, names) = generate_global(43_000, 1993);
    let dir = std::env::temp_dir().join(format!("plan9-ndbbench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let master = dir.join("global");
    std::fs::File::create(&master)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .expect("write");
    let target = names[names.len() / 2].clone();

    let db = Db::open(std::slice::from_ref(&master)).expect("open");
    c.bench_function("ndb/linear-scan-43k", |b| {
        b.iter(|| black_box(db.query("sys", black_box(&target))))
    });

    build_hash(&master, "sys").expect("hash");
    let db = Db::open(std::slice::from_ref(&master)).expect("reopen");
    c.bench_function("ndb/hashed-43k", |b| {
        b.iter(|| black_box(db.query("sys", black_box(&target))))
    });

    c.bench_function("ndb/parse-43k-lines", |b| {
        b.iter(|| black_box(plan9_ndb::parse::parse_entries(black_box(&text)).len()))
    });

    let small = Db::from_texts(&[
        "ipnet=net ip=10.0.0.0 auth=authsrv\nsys=me ip=10.1.2.3\n",
    ]);
    c.bench_function("ndb/ipattr-closest", |b| {
        b.iter(|| black_box(plan9_ndb::ipattr_search(&small, "me", "auth")))
    });

    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut h = Harness::new();
    bench_ndb(&mut h);
}
