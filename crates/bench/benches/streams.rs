//! Stream-mechanism costs (§2.4.4): "the time to process protocols and
//! drive device interfaces continues to dwarf the time spent allocating,
//! freeing, and moving blocks of data" — measured here as the block-move
//! cost through put chains of increasing length.

use plan9_support::bench::{black_box, Harness};
use plan9_streams::{Block, BlockKind, ModuleCtx, Stream, StreamModule};
use std::sync::Arc;

struct PassThru;

impl StreamModule for PassThru {
    fn name(&self) -> &str {
        "passthru"
    }
    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> plan9_streams::Result<()> {
        ctx.send_down(b)
    }
    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> plan9_streams::Result<()> {
        ctx.send_up(b)
    }
}

struct Loopback;

impl StreamModule for Loopback {
    fn name(&self) -> &str {
        "loop"
    }
    fn put_down(&self, ctx: &ModuleCtx, b: Block) -> plan9_streams::Result<()> {
        if b.kind == BlockKind::Data {
            ctx.send_up(b)
        } else {
            Ok(())
        }
    }
    fn put_up(&self, ctx: &ModuleCtx, b: Block) -> plan9_streams::Result<()> {
        ctx.send_up(b)
    }
}

fn bench_streams(c: &mut Harness) {
    let mut g = c.benchmark_group("stream-roundtrip");
    for depth in [0usize, 2, 4, 8] {
        let s = Stream::bare();
        s.set_device(Arc::new(Loopback));
        for _ in 0..depth {
            s.push_module(Arc::new(PassThru));
        }
        let payload = vec![7u8; 4096];
        g.throughput_bytes(4096);
        g.bench_function(&format!("modules/{depth}"), |b| {
            b.iter(|| {
                s.write(black_box(&payload)).unwrap();
                black_box(s.read(8192).unwrap());
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("mux-route");
    let mux = plan9_streams::Mux::new("bench", |b| b.data.first().map(|&k| (k as i64, 1)));
    let sink = Arc::new(plan9_streams::Queue::new(usize::MAX));
    let q = Arc::clone(&sink);
    mux.attach(1, move |b| {
        let _ = q.put(b);
    });
    // Route through the public module interface: stream with mux on top.
    let s = Stream::bare();
    s.set_device(Arc::new(Loopback));
    s.push_module(mux);
    g.bench_function("classify-deliver", |b| {
        b.iter(|| {
            s.feed_up(Block::delim(vec![1u8, 2, 3, 4])).unwrap();
            black_box(sink.try_get());
        })
    });
    g.finish();
}

fn main() {
    let mut h = Harness::new();
    bench_streams(&mut h);
}
