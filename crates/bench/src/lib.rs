//! Shared machinery for the benchmark and table/figure binaries.
//!
//! The per-experiment index in `DESIGN.md` maps each of the paper's
//! tables and figures to a binary in `src/bin/`; this library holds the
//! measurement plumbing they share.

pub mod loc;
pub mod paths;

/// The paper's Table 1, for side-by-side reporting.
pub const PAPER_TABLE1: [(&str, f64, f64); 4] = [
    ("pipes", 8.15, 0.255),
    ("IL/ether", 1.02, 1.42),
    ("URP/Datakit", 0.22, 1.75),
    ("Cyclone", 3.2, 0.375),
];

/// Formats a throughput/latency table row like the paper's.
pub fn table_row(name: &str, mbs: f64, ms: f64) -> String {
    format!("{name:<14} {mbs:>10.2} {ms:>10.3}")
}
