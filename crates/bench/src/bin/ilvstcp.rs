//! The §3 design argument, measured: IL's query-based recovery against
//! TCP's blind retransmission, under increasing loss — plus a 9P RPC
//! loop over IL that prices the nettrace instrumentation.
//!
//! "In contrast to other protocols, IL does not do blind retransmission.
//! If a message is lost and a timeout occurs, a query message is sent.
//! ... This allows the protocol to behave well in congested networks,
//! where blind retransmission would cause further congestion."
//!
//! The sweep moves the same payload over the same (unpaced, lossy)
//! Ethernet with both protocols and reports how many payload bytes each
//! had to re-send. TCP's go-back-N resends everything from the last
//! acknowledged byte; IL's State replies let it resend only what was
//! actually lost.
//!
//! The RPC loop serves a file tree over an IL conversation and reads
//! one file as fast as 9P will go: twice with tracing off (the A/B
//! noise gauge — the recorder must cost nothing when disabled) and once
//! with tracing on, from which the per-layer span totals come.
//!
//! Results land in `BENCH_ilvstcp.json` at the repository root.
//!
//! Usage: `cargo run -p plan9-bench --release --bin ilvstcp`

use plan9_inet::il::IlConn;
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netlog::trace;
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_ninep::client::NineClient;
use plan9_ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9_ninep::transport::{MsgSink, MsgSource};
use plan9_support::json::quote;
use plan9_support::{time, vtime};
use std::sync::Arc;

const TOTAL: usize = 1 << 20; // 1 MiB per cell of the sweep
const MSG: usize = 1400; // one ether frame per message

fn hosts(loss: f64, salt: u8) -> (Arc<IpStack>, Arc<IpStack>) {
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(loss));
    let a = IpStack::new(
        seg.attach([8, 0, 0, 0xc, salt, 1]),
        IpConfig::local(&format!("10.{}.0.1", 100 + salt)),
    );
    let b = IpStack::new(
        seg.attach([8, 0, 0, 0xc, salt, 2]),
        IpConfig::local(&format!("10.{}.0.2", 100 + salt)),
    );
    (a, b)
}

/// Returns (elapsed_s, retransmitted_bytes, control_msgs) for IL.
///
/// The cell body runs in a registered kernel process so that, under a
/// virtual clock, every actor in the conversation is visible to the
/// quiescence census — an uncounted thread mid-send would let the clock
/// jump a retransmit deadline it should have waited out.
fn run_il(loss: f64, salt: u8) -> (f64, u64, u64) {
    let cell = vtime::kproc("il-cell", move || {
        let (a, b) = hosts(loss, salt);
        let listener = b.il_module().listen(&b, 17008).expect("listen");
        let server = vtime::kproc("il-server", move || {
            let conn = listener.accept().expect("accept");
            let mut got = 0usize;
            while got < TOTAL {
                got += conn.recv().expect("recv").expect("eof").len();
            }
        })
        // checked: spawn fails only on OS thread exhaustion
        .expect("spawn il server");
        let conn = a.il_module().connect(&a, b.addr(), 17008).expect("connect");
        let msg = vec![0xabu8; MSG];
        let start = time::now();
        let mut sent = 0usize;
        while sent < TOTAL {
            let n = MSG.min(TOTAL - sent);
            conn.send(&msg[..n]).expect("send");
            sent += n;
        }
        server.join().expect("server");
        let elapsed = time::now().saturating_duration_since(start).as_secs_f64();
        let stats = &a.il_module().stats;
        (
            elapsed,
            stats.retransmit_bytes.get(),
            stats.queries.get(),
        )
    })
    // checked: spawn fails only on OS thread exhaustion
    .expect("spawn il cell");
    cell.join().expect("il cell")
}

/// Returns (elapsed_s, retransmitted_bytes, retransmit_segments) for TCP.
fn run_tcp(loss: f64, salt: u8) -> (f64, u64, u64) {
    let cell = vtime::kproc("tcp-cell", move || {
        let (a, b) = hosts(loss, salt);
        let listener = b.tcp_module().listen(&b, 564).expect("listen");
        let server = vtime::kproc("tcp-server", move || {
            let conn = listener.accept().expect("accept");
            let mut got = 0usize;
            while got < TOTAL {
                let d = conn.read(65536).expect("read");
                assert!(!d.is_empty(), "early eof");
                got += d.len();
            }
        })
        // checked: spawn fails only on OS thread exhaustion
        .expect("spawn tcp server");
        let conn = a.tcp_module().connect(&a, b.addr(), 564).expect("connect");
        let payload = vec![0xcdu8; TOTAL];
        let start = time::now();
        conn.write(&payload).expect("write");
        server.join().expect("server");
        let elapsed = time::now().saturating_duration_since(start).as_secs_f64();
        let stats = &a.tcp_module().stats;
        (
            elapsed,
            stats.retransmit_bytes.get(),
            stats.retransmit_segments.get(),
        )
    })
    // checked: spawn fails only on OS thread exhaustion
    .expect("spawn tcp cell");
    cell.join().expect("tcp cell")
}

/// An IL conversation as a delimited 9P transport.
#[derive(Clone)]
struct IlIo(Arc<IlConn>);

impl MsgSink for IlIo {
    fn sendmsg(&mut self, msg: &[u8]) -> plan9_ninep::Result<()> {
        self.0.send(msg)
    }
}

impl MsgSource for IlIo {
    fn recvmsg(&mut self) -> plan9_ninep::Result<Option<Vec<u8>>> {
        self.0.recv()
    }
}

/// Runs `rpcs` 9P read RPCs over a clean IL conversation; returns
/// RPCs per second.
fn run_rpc_loop(salt: u8, rpcs: usize) -> f64 {
    let (a, b) = hosts(0.0, salt);
    let listener = b.il_module().listen(&b, 17010).expect("listen");
    let server = vtime::kproc("rpc-server", move || {
        let conn = listener.accept().expect("accept");
        let fs = MemFs::new("ram", "bootes");
        fs.put_file("/blob", &[0x42u8; 512]).expect("seed");
        let fs: Arc<dyn ProcFs> = fs;
        let io = IlIo(conn);
        let _ = plan9_ninep::server::serve(fs, Box::new(io.clone()), Box::new(io));
    })
    // checked: spawn fails only on OS thread exhaustion
    .expect("spawn rpc server");
    let conn = a.il_module().connect(&a, b.addr(), 17010).expect("connect");
    let io = IlIo(Arc::clone(&conn));
    let client = NineClient::new(Box::new(io.clone()), Box::new(io));
    let (fid, _) = client.attach("bench", "").expect("attach");
    client.walk(fid, "blob").expect("walk");
    client.open(fid, OpenMode::READ).expect("open");
    // Warm the path (thread scheduling, lazy allocations) before timing.
    for _ in 0..500 {
        client.read(fid, 0, 512).expect("warmup read");
    }
    let start = time::now();
    for _ in 0..rpcs {
        let d = client.read(fid, 0, 512).expect("read");
        assert_eq!(d.len(), 512);
    }
    let rps = rpcs as f64 / time::now().saturating_duration_since(start).as_secs_f64();
    let _ = client.clunk(fid);
    conn.close();
    let _ = server.join();
    rps
}

fn layer_of(name: &str) -> Option<&'static str> {
    ["marshal", "txwait", "devwrite", "il send", "ip tx", "wire tx", "queue", "reply", "handle"]
        .into_iter()
        .find(|l| name.starts_with(l))
}

const LOSSES: [f64; 5] = [0.0, 0.01, 0.03, 0.05, 0.10];

/// One full IL-vs-TCP loss sweep starting at `salt0`; returns the JSON
/// rows. Asserts the §3 claim at meaningful loss: blind retransmission
/// resends far more than query-repair.
fn sweep(salt0: u8) -> Vec<String> {
    println!(
        "{:>6} | {:>10} {:>12} {:>9} | {:>10} {:>12} {:>9}",
        "loss", "IL s", "IL rexmit B", "queries", "TCP s", "TCP rexmit B", "segments"
    );
    println!("{}", "-".repeat(80));
    let mut salt = salt0;
    let mut rows = Vec::new();
    for loss in LOSSES {
        let (il_s, il_rexmit, il_q) = run_il(loss, salt);
        salt += 1;
        let (tcp_s, tcp_rexmit, tcp_seg) = run_tcp(loss, salt);
        salt += 1;
        println!(
            "{:>5.0}% | {:>10.2} {:>12} {:>9} | {:>10.2} {:>12} {:>9}",
            loss * 100.0,
            il_s,
            il_rexmit,
            il_q,
            tcp_s,
            tcp_rexmit,
            tcp_seg
        );
        rows.push(format!(
            "{{\"loss\": {loss}, \"il_s\": {il_s:.4}, \"il_rexmit_bytes\": {il_rexmit}, \
             \"il_queries\": {il_q}, \"tcp_s\": {tcp_s:.4}, \"tcp_rexmit_bytes\": {tcp_rexmit}, \
             \"tcp_rexmit_segments\": {tcp_seg}}}"
        ));
        if loss >= 0.05 {
            assert!(
                tcp_rexmit > il_rexmit,
                "at {loss} loss TCP should re-send more bytes than IL"
            );
        }
    }
    rows
}

fn main() {
    println!("IL vs TCP under loss — 1 MiB transfer, unpaced Ethernet");
    let wall0 = time::real_now();
    let sweep_rows = sweep(0);
    let real_sweep_wall_s = wall0.elapsed().as_secs_f64();
    println!("real-time sweep wall clock: {real_sweep_wall_s:.2}s");

    // The same sweep on the discrete-event clock: protocol time is
    // virtual (timers fire by quiescence-advance, not by waiting), so
    // the whole thing should take well under a second of wall clock.
    println!();
    println!("same sweep under the virtual clock:");
    let guard = vtime::enter();
    let wall0 = time::real_now();
    let vsweep_rows = sweep(30);
    let virtual_sweep_wall_s = wall0.elapsed().as_secs_f64();
    drop(guard);
    println!("virtual sweep wall clock: {virtual_sweep_wall_s:.2}s");
    assert!(
        virtual_sweep_wall_s < 5.0,
        "virtual sweep must not wait out real timers (took {virtual_sweep_wall_s:.2}s)"
    );
    let speedup = real_sweep_wall_s / virtual_sweep_wall_s.max(1e-9);

    // The 9P-over-IL RPC loop: off, off again (A/B), then on.
    let tracer = trace::global();
    assert!(!tracer.enabled(), "tracing must default to off");
    println!();
    println!("9P RPC loop over IL (512-byte reads):");
    let rpcs_off = 3000;
    let rps_off_a = run_rpc_loop(20, rpcs_off);
    let rps_off_b = run_rpc_loop(21, rpcs_off);
    let ab_delta_pct = 100.0 * (rps_off_a - rps_off_b).abs() / rps_off_a.max(rps_off_b);
    println!("  trace off: {rps_off_a:>8.0} rpc/s (A) {rps_off_b:>8.0} rpc/s (B), |A-B| {ab_delta_pct:.2}%");

    // The on leg is sized to fit the span ring so the totals cover it.
    let rpcs_on = 1000;
    tracer.ctl("clear").expect("clear");
    tracer.ctl("trace on").expect("trace on");
    let rps_on = run_rpc_loop(22, rpcs_on);
    tracer.ctl("trace off").expect("trace off");
    let roots = tracer.roots();
    tracer.ctl("clear").expect("clear");
    let on_overhead_pct =
        100.0 * (rps_off_a.max(rps_off_b) - rps_on) / rps_off_a.max(rps_off_b);
    println!("  trace on:  {rps_on:>8.0} rpc/s ({on_overhead_pct:.1}% slower, {} roots recorded)", roots.len());

    // The sampled leg: 1-in-16 statistical tracing should price close
    // to off — only every 16th RPC pays for span recording, the rest
    // pay one relaxed counter bump at the gate.
    let sample_n = 16u64;
    tracer.ctl(&format!("sample {sample_n}")).expect("sample on");
    tracer.ctl("trace on").expect("trace on");
    let rps_sampled = run_rpc_loop(23, rpcs_off);
    tracer.ctl("trace off").expect("trace off");
    let sampled_roots = tracer.roots().len();
    tracer.ctl("sample 1").expect("sample off");
    tracer.ctl("clear").expect("clear");
    let sampled_overhead_pct =
        100.0 * (rps_off_a.max(rps_off_b) - rps_sampled) / rps_off_a.max(rps_off_b);
    println!(
        "  trace 1/{sample_n}: {rps_sampled:>8.0} rpc/s ({sampled_overhead_pct:.1}% slower, \
         {sampled_roots} roots recorded)"
    );

    // Per-layer span totals across every recorded root.
    let mut layer_rows = Vec::new();
    println!("  {:<10} {:>7} {:>12}", "layer", "spans", "total(us)");
    for layer in ["marshal", "txwait", "devwrite", "il send", "ip tx", "wire tx", "queue", "reply", "handle"] {
        let (count, total_us) = roots
            .iter()
            .flat_map(|r| r.spans.iter())
            .filter(|s| layer_of(&s.name) == Some(layer))
            .fold((0u64, 0u64), |(c, t), s| {
                (c + 1, t + s.end_ns.saturating_sub(s.start_ns) / 1_000)
            });
        if count == 0 {
            continue;
        }
        println!("  {layer:<10} {count:>7} {total_us:>12}");
        layer_rows.push(format!(
            "{{\"layer\": {}, \"spans\": {count}, \"total_us\": {total_us}}}",
            quote(layer)
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"ilvstcp\",\n  \"vtime\": true,\n  \
         \"real_sweep_wall_s\": {real_sweep_wall_s:.3}, \
         \"virtual_sweep_wall_s\": {virtual_sweep_wall_s:.3}, \"speedup\": {speedup:.1},\n  \
         \"sweep\": [\n    {}\n  ],\n  \"vsweep\": [\n    {}\n  ],\n  \"rpc\": {{\n    \
         \"rpcs_off\": {rpcs_off}, \"rpcs_on\": {rpcs_on},\n    \
         \"rps_off_a\": {rps_off_a:.1}, \"rps_off_b\": {rps_off_b:.1}, \"rps_on\": {rps_on:.1},\n    \
         \"off_ab_delta_pct\": {ab_delta_pct:.3}, \"on_overhead_pct\": {on_overhead_pct:.3},\n    \
         \"sample_n\": {sample_n}, \"rps_sampled\": {rps_sampled:.1}, \
         \"sampled_overhead_pct\": {sampled_overhead_pct:.3},\n    \
         \"layers\": [{}]\n  }}\n}}\n",
        sweep_rows.join(",\n    "),
        vsweep_rows.join(",\n    "),
        layer_rows.join(", "),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ilvstcp.json");
    std::fs::write(path, json).expect("write BENCH_ilvstcp.json");
    println!();
    println!("wrote BENCH_ilvstcp.json");
    println!(
        "ilvstcp: OK (IL repairs precisely; TCP goes back and blasts; \
         virtual sweep {speedup:.0}x faster)"
    );
}
