//! The §3 design argument, measured: IL's query-based recovery against
//! TCP's blind retransmission, under increasing loss.
//!
//! "In contrast to other protocols, IL does not do blind retransmission.
//! If a message is lost and a timeout occurs, a query message is sent.
//! ... This allows the protocol to behave well in congested networks,
//! where blind retransmission would cause further congestion."
//!
//! The experiment moves the same payload over the same (unpaced, lossy)
//! Ethernet with both protocols and reports how many payload bytes each
//! had to re-send. TCP's go-back-N resends everything from the last
//! acknowledged byte; IL's State replies let it resend only what was
//! actually lost.
//!
//! Usage: `cargo run -p plan9-bench --release --bin ilvstcp`

use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use std::sync::Arc;
use std::time::Instant;

const TOTAL: usize = 1 << 20; // 1 MiB per cell of the sweep
const MSG: usize = 1400; // one ether frame per message

fn hosts(loss: f64, salt: u8) -> (Arc<IpStack>, Arc<IpStack>) {
    let seg = EtherSegment::new(Profiles::ether_fast().with_loss(loss));
    let a = IpStack::new(
        seg.attach([8, 0, 0, 0xc, salt, 1]),
        IpConfig::local(&format!("10.{}.0.1", 100 + salt)),
    );
    let b = IpStack::new(
        seg.attach([8, 0, 0, 0xc, salt, 2]),
        IpConfig::local(&format!("10.{}.0.2", 100 + salt)),
    );
    (a, b)
}

/// Returns (elapsed_s, retransmitted_bytes, control_msgs) for IL.
fn run_il(loss: f64, salt: u8) -> (f64, u64, u64) {
    let (a, b) = hosts(loss, salt);
    let listener = b.il_module().listen(&b, 17008).expect("listen");
    let server = std::thread::spawn(move || {
        let conn = listener.accept().expect("accept");
        let mut got = 0usize;
        while got < TOTAL {
            got += conn.recv().expect("recv").expect("eof").len();
        }
    });
    let conn = a.il_module().connect(&a, b.addr(), 17008).expect("connect");
    let msg = vec![0xabu8; MSG];
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < TOTAL {
        let n = MSG.min(TOTAL - sent);
        conn.send(&msg[..n]).expect("send");
        sent += n;
    }
    server.join().expect("server");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = &a.il_module().stats;
    (
        elapsed,
        stats.retransmit_bytes.get(),
        stats.queries.get(),
    )
}

/// Returns (elapsed_s, retransmitted_bytes, retransmit_segments) for TCP.
fn run_tcp(loss: f64, salt: u8) -> (f64, u64, u64) {
    let (a, b) = hosts(loss, salt);
    let listener = b.tcp_module().listen(&b, 564).expect("listen");
    let server = std::thread::spawn(move || {
        let conn = listener.accept().expect("accept");
        let mut got = 0usize;
        while got < TOTAL {
            let d = conn.read(65536).expect("read");
            assert!(!d.is_empty(), "early eof");
            got += d.len();
        }
    });
    let conn = a.tcp_module().connect(&a, b.addr(), 564).expect("connect");
    let payload = vec![0xcdu8; TOTAL];
    let start = Instant::now();
    conn.write(&payload).expect("write");
    server.join().expect("server");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = &a.tcp_module().stats;
    (
        elapsed,
        stats.retransmit_bytes.get(),
        stats.retransmit_segments.get(),
    )
}

fn main() {
    println!("IL vs TCP under loss — 1 MiB transfer, unpaced Ethernet");
    println!(
        "{:>6} | {:>10} {:>12} {:>9} | {:>10} {:>12} {:>9}",
        "loss", "IL s", "IL rexmit B", "queries", "TCP s", "TCP rexmit B", "segments"
    );
    println!("{}", "-".repeat(80));
    let mut salt = 0u8;
    for loss in [0.0, 0.01, 0.03, 0.05, 0.10] {
        let (il_s, il_rexmit, il_q) = run_il(loss, salt);
        salt += 1;
        let (tcp_s, tcp_rexmit, tcp_seg) = run_tcp(loss, salt);
        salt += 1;
        println!(
            "{:>5.0}% | {:>10.2} {:>12} {:>9} | {:>10.2} {:>12} {:>9}",
            loss * 100.0,
            il_s,
            il_rexmit,
            il_q,
            tcp_s,
            tcp_rexmit,
            tcp_seg
        );
        if loss >= 0.05 {
            // The §3 claim: blind retransmission resends far more than
            // query-repair under meaningful loss.
            assert!(
                tcp_rexmit > il_rexmit,
                "at {loss} loss TCP should re-send more bytes than IL"
            );
        }
    }
    println!();
    println!("ilvstcp: OK (IL repairs precisely; TCP goes back and blasts)");
}
