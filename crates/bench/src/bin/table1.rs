//! Regenerates the paper's **Table 1**: throughput and latency for
//! pipes, IL/ether, URP/Datakit, and Cyclone.
//!
//! Usage:
//! ```text
//! cargo run -p plan9-bench --release --bin table1 [fast]
//! ```
//! The default run uses the 1993 calibration profiles, which pace the
//! simulated media at period hardware rates so the measured numbers land
//! near the paper's; `fast` removes pacing and reports the raw speed of
//! the protocol code on this machine. Pipes are always unpaced (they
//! were memory-bound in 1993 too; only the absolute number moves).
//!
//! Results also land in `BENCH_table1.json` at the repository root.

use plan9_bench::paths::*;
use plan9_bench::{table_row, PAPER_TABLE1};
use plan9_support::json::quote;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let cal = if fast {
        Calibration::Fast
    } else {
        Calibration::Calibrated
    };
    let write = 16 * 1024; // "throughput is measured using 16k writes"
    let reps = 200;
    println!(
        "Table 1 — performance ({} profile)",
        if fast { "fast/unpaced" } else { "calibrated 1993" }
    );
    println!("{:<14} {:>10} {:>10}   {:>10} {:>10}", "test", "MB/s", "ms", "paper MB/s", "paper ms");
    println!("{}", "-".repeat(62));

    let mut results = Vec::new();

    // pipes
    let (a, b) = pipes_path();
    let mbs = measure_throughput(a, b, 32 << 20, write);
    let (a, b) = pipes_path();
    let lat = measure_latency(a, b, reps * 5);
    results.push(("pipes", mbs, lat));

    // IL/ether
    settle();
    let total = if fast { 32 << 20 } else { 2 << 20 };
    let (a, b) = il_ether_path(cal);
    let mbs = measure_throughput(a, b, total, write);
    settle();
    let (a, b) = il_ether_path(cal);
    let lat = measure_latency(a, b, reps);
    results.push(("IL/ether", mbs, lat));

    // URP/Datakit
    settle();
    let total = if fast { 16 << 20 } else { 1 << 20 };
    let (a, b) = urp_datakit_path(cal);
    let mbs = measure_throughput(a, b, total, write);
    settle();
    let (a, b) = urp_datakit_path(cal);
    let lat = measure_latency(a, b, reps);
    results.push(("URP/Datakit", mbs, lat));

    // Cyclone
    settle();
    let total = if fast { 32 << 20 } else { 4 << 20 };
    let (a, b) = cyclone_path(cal);
    let mbs = measure_throughput(a, b, total, write);
    settle();
    let (a, b) = cyclone_path(cal);
    let lat = measure_latency(a, b, reps * 2);
    results.push(("Cyclone", mbs, lat));

    for ((name, mbs, lat), (pname, pmbs, pms)) in results.iter().zip(PAPER_TABLE1.iter()) {
        assert_eq!(name, pname);
        println!(
            "{}   {:>10.2} {:>10.3}",
            table_row(name, *mbs, *lat),
            pmbs,
            pms
        );
    }

    // Shape checks the paper's table implies.
    let t: Vec<f64> = results.iter().map(|r| r.1).collect();
    let l: Vec<f64> = results.iter().map(|r| r.2).collect();
    let order_ok = t[0] > t[3] && t[3] > t[1] && t[1] > t[2];
    let lat_ok = l[0] < l[3] && l[3] < l[1] && l[1] < l[2];
    println!();
    println!(
        "throughput ordering pipes > Cyclone > IL/ether > URP/Datakit: {}",
        if order_ok { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "latency ordering    pipes < Cyclone < IL/ether < URP/Datakit: {}",
        if lat_ok { "HOLDS" } else { "VIOLATED" }
    );

    let rows: Vec<String> = results
        .iter()
        .zip(PAPER_TABLE1.iter())
        .map(|((name, mbs, lat), (_, pmbs, pms))| {
            format!(
                "{{\"test\": {}, \"mbs\": {mbs:.3}, \"ms\": {lat:.4}, \
                 \"paper_mbs\": {pmbs}, \"paper_ms\": {pms}}}",
                quote(name)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"table1\",\n  \"profile\": {},\n  \"rows\": [\n    {}\n  ],\n  \
         \"throughput_ordering_holds\": {order_ok},\n  \"latency_ordering_holds\": {lat_ok}\n}}\n",
        quote(if fast { "fast" } else { "calibrated" }),
        rows.join(",\n    "),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table1.json");
    std::fs::write(path, json).expect("write BENCH_table1.json");
    println!();
    println!("wrote BENCH_table1.json");

    if !fast && (!order_ok || !lat_ok) {
        std::process::exit(1);
    }
}
