//! Regenerates **Figure 1**: the Ethernet driver's two-level file tree,
//! plus the §2.2 listings around it, by walking a live machine's name
//! space.
//!
//! Usage: `cargo run -p plan9-bench --bin fig1`

use plan9_core::machine::MachineBuilder;
use plan9_inet::ip::IpConfig;
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_netsim::uart::uart_pair;
use plan9_ninep::procfs::OpenMode;

fn main() {
    let seg = EtherSegment::new(Profiles::ether_fast());
    let (u1, _peer1) = uart_pair(9600);
    let (u2, _peer2) = uart_pair(9600);
    let m = MachineBuilder::new("cpu")
        .ether(&seg, [8, 0, 0x69, 2, 0x22, 0xf0], IpConfig::local("135.104.9.31"))
        .uart(u1)
        .uart(u2)
        .ndb("sys=cpu ip=135.104.9.31\n")
        .build()
        .expect("boot");
    let p = m.proc();

    // The §2.2 UART listing.
    println!("cpu% cd /dev");
    println!("cpu% ls -l eia*");
    for d in p.ls("/dev").expect("ls /dev") {
        if d.name.starts_with("eia") {
            println!("{}", d.ls_line());
        }
    }
    println!("cpu%");
    println!();

    // Make a few conversations so the tree has numbered directories.
    for ptype in ["2048", "2054", "-1"] {
        let fd = p
            .open("/net/ether0/clone", OpenMode::RDWR)
            .expect("open clone");
        p.write_str(fd, &format!("connect {ptype}")).expect("connect");
        // The fd is simply never closed, so the conversation stays
        // referenced for the walk below.
        let _ = fd;
    }

    // Figure 1: the two-level tree.
    println!("Figure 1 — the Ethernet device tree:");
    println!("ether");
    let entries = p.ls("/net/ether0").expect("ls ether");
    for (i, d) in entries.iter().enumerate() {
        let last_top = i + 1 == entries.len();
        let bar = if last_top { "└──" } else { "├──" };
        println!("{bar} {}", d.name);
        if d.is_dir() {
            let files = p
                .ls(&format!("/net/ether0/{}", d.name))
                .expect("ls conn");
            for (j, f) in files.iter().enumerate() {
                let inner = if last_top { "    " } else { "│   " };
                let leaf = if j + 1 == files.len() { "└──" } else { "├──" };
                println!("{inner}{leaf} {}", f.name);
            }
        }
    }
    println!();

    // The §2.2 behaviors, live: type readback and stats.
    let t = p
        .open("/net/ether0/1/type", OpenMode::READ)
        .expect("open type");
    println!(
        "cpu% cat /net/ether0/1/type\n{}",
        p.read_string(t).expect("read type")
    );
    let s = p
        .open("/net/ether0/1/stats", OpenMode::READ)
        .expect("open stats");
    println!("cpu% cat /net/ether0/1/stats");
    print!("{}", p.read_string(s).expect("read stats"));
}
