//! netdash — fabric-wide telemetry rollup: every gateway's
//! `/net/log/series` pulled across the fabric through exportfs, merged
//! into one time-indexed view of the whole internet-in-a-process, plus
//! the ranked copy-site profile behind the zero-copy roadmap item.
//!
//! The 4×250 EXPERIMENTS walkthrough runs with `netmon 250ms`: each
//! gateway samples its metric registry (IL/TCP/IP counters, the il.rtt
//! histogram, pool-shard depth and armed-timer gauges) into a bounded
//! ring on the shared timer wheel. At scenario end, city 0's gateway
//! imports every peer's `/net` and reads `log/series` remotely — the
//! dashboard never needs an agent, just `read(2)` on a file the fabric
//! already exports (§6.1 of the paper). The walkthrough runs twice
//! with the same seed; the fetched series must match byte for byte.
//!
//! The merged view answers the questions an operator would ask of a
//! wall display: fabric IL traffic per interval, mean RPC round-trip
//! over time (the flash crowd and the partition are both visible),
//! queue-depth watermarks, and timer backlog. The copy profile ranks
//! every named data-path memcpy/alloc site by bytes — the measured
//! table ROADMAP item 3 burns down.
//!
//! Results land in `BENCH_netmon.json` and `REPORT_netmon.txt` at the
//! repository root.
//!
//! Usage: `cargo run -p plan9-bench --release --bin netdash`

use plan9_support::{copysite, time, vtime};
use std::collections::BTreeMap;

/// The EXPERIMENTS walkthrough with the sampler switched on: a flash
/// crowd hits city 3 while the backbone misbehaves, and every gateway
/// records a 250ms-resolution series of the ordeal.
const WALKTHROUGH: &str = "\
seed 1993
topology grid cities=4 hosts=250
at 2s flashcrowd city=3 dials=2000 size=512 window=1s
at 2500ms flap trunk=1-2 for 300ms
at 8s partition {0,1}|{2,3} heal 2s
at 12s kill gateway city=2
netmon 250ms
end 15s
";

/// One merged fabric sample: sums of per-gateway counter deltas, maxes
/// of the process-wide scheduler gauges.
#[derive(Default, Clone)]
struct FabricSample {
    il_tx: u64,
    il_rx: u64,
    rexmits: u64,
    rtt_count: u64,
    rtt_sum_us: u64,
    queue_depth_max: u64,
    wheel_armed: u64,
    cities: usize,
}

/// Folds one gateway's rendered series into the fabric map, keyed by
/// the sample's scheduled offset. Gauges only render when they change,
/// so the parser carries the last seen value forward within a series.
fn merge_series(fabric: &mut BTreeMap<u64, FabricSample>, body: &str) {
    let mut t: Option<u64> = None;
    let (mut depth_max, mut armed) = (0u64, 0u64);
    for line in body.lines() {
        if line.starts_with("series ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("sample ") {
            // Leaving a sample: commit the carried gauges to it.
            if let Some(prev) = t {
                let f = fabric.entry(prev).or_default();
                f.queue_depth_max = f.queue_depth_max.max(depth_max);
                f.wheel_armed = f.wheel_armed.max(armed);
            }
            t = rest
                .split_whitespace()
                .nth(1)
                .and_then(|w| w.strip_prefix("t="))
                .and_then(|w| w.strip_suffix("us"))
                .and_then(|w| w.parse().ok());
            if let Some(at) = t {
                fabric.entry(at).or_default().cities += 1;
            }
            continue;
        }
        let Some(at) = t else { continue };
        let mut it = line.split_whitespace();
        let (Some(name), Some(second)) = (it.next(), it.next()) else {
            continue;
        };
        let f = fabric.entry(at).or_default();
        if let Some(d) = second.strip_prefix('+') {
            let d: u64 = d.parse().unwrap_or(0);
            match name {
                "il.tx" => f.il_tx += d,
                "il.rx" => f.il_rx += d,
                "il.rexmit" | "tcp.rexmit" => f.rexmits += d,
                _ => {}
            }
        } else if let Some(v) = second.strip_prefix('=') {
            let v: u64 = v.parse().unwrap_or(0);
            if name.starts_with("pool.shard") && name.ends_with(".depth") {
                depth_max = depth_max.max(v);
            } else if name == "pool.wheel.armed" {
                armed = v;
            }
        } else if second == "count" && name == "il.rtt" {
            // `il.rtt count +<n> sum +<n>us`
            let dc: u64 = it
                .next()
                .and_then(|w| w.strip_prefix('+'))
                .and_then(|w| w.parse().ok())
                .unwrap_or(0);
            let ds: u64 = it
                .nth(1)
                .and_then(|w| w.strip_prefix('+'))
                .and_then(|w| w.strip_suffix("us"))
                .and_then(|w| w.parse().ok())
                .unwrap_or(0);
            f.rtt_count += dc;
            f.rtt_sum_us += ds;
        }
    }
    if let Some(prev) = t {
        let f = fabric.entry(prev).or_default();
        f.queue_depth_max = f.queue_depth_max.max(depth_max);
        f.wheel_armed = f.wheel_armed.max(armed);
    }
}

fn fabric_report(fabric: &BTreeMap<u64, FabricSample>) -> String {
    let mut out = String::from(
        "fabric series: t il_tx il_rx rexmits rtt_mean_us queue_max wheel_armed cities\n",
    );
    for (t, f) in fabric {
        let mean = f.rtt_sum_us.checked_div(f.rtt_count).unwrap_or(0);
        out.push_str(&format!(
            "fabric t={t}us il_tx={} il_rx={} rexmits={} rtt_mean_us={mean} \
             queue_max={} wheel_armed={} cities={}\n",
            f.il_tx, f.il_rx, f.rexmits, f.queue_depth_max, f.wheel_armed, f.cities
        ));
    }
    out
}

fn main() {
    println!("netdash — fabric-wide time-series telemetry + copy-site profile");

    let sc = plan9_scenario::dsl::parse(WALKTHROUGH).expect("walkthrough parses");
    let guard = vtime::enter();
    let wall0 = time::real_now();

    let copy0 = copysite::snapshot();
    let first = plan9_scenario::run(&sc);
    let copy_sites = copy0.delta();
    let second = plan9_scenario::run(&sc);
    let wall_s = wall0.elapsed().as_secs_f64();
    drop(guard);

    assert!(first.clean(), "first run violated fabric invariants:\n{}", first.text);
    assert!(second.clean(), "rerun violated fabric invariants:\n{}", second.text);
    let runs_identical = first.text == second.text;
    assert!(
        runs_identical,
        "same-seed reports diverged:\n--- first\n{}--- second\n{}",
        first.text, second.text
    );
    let series_identical = first.series == second.series;
    assert!(series_identical, "same-seed fabric series diverged");

    // Every surviving gateway's series made it across the fabric; the
    // murdered one (city 2) deterministically reports empty.
    let live: Vec<&(String, String)> =
        first.series.iter().filter(|(_, b)| !b.is_empty()).collect();
    assert!(
        live.len() >= sc.cities - 1,
        "only {} of {} gateways exported a series",
        live.len(),
        sc.cities
    );
    for (sys, body) in &live {
        let samples = body.lines().filter(|l| l.starts_with("sample ")).count();
        assert!(samples >= 10, "{sys} recorded only {samples} samples");
        println!("  {sys}: {samples} samples, {} bytes", body.len());
    }

    // The ranked copy table: the walkthrough must exercise at least
    // three named sites, all with positive byte totals.
    assert!(
        copy_sites.len() >= 3 && copy_sites.iter().take(3).all(|c| c.bytes > 0),
        "copy profile too thin: {copy_sites:?}"
    );
    println!("top copy sites:");
    for c in copy_sites.iter().take(5) {
        println!("  {} bytes={} calls={}", c.name, c.bytes, c.calls);
    }

    // Merge the per-gateway series into the fabric view.
    let mut fabric = BTreeMap::new();
    for (_, body) in &first.series {
        merge_series(&mut fabric, body);
    }
    assert!(!fabric.is_empty(), "merged fabric series is empty");
    let report = fabric_report(&fabric);
    let report_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../REPORT_netmon.txt");
    std::fs::write(report_path, &report).expect("write REPORT_netmon.txt");

    let series_json = first
        .series
        .iter()
        .map(|(sys, body)| {
            let samples = body.lines().filter(|l| l.starts_with("sample ")).count();
            format!(
                "{{\"sys\": \"{sys}\", \"samples\": {samples}, \"bytes\": {}}}",
                body.len()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let copy_json = copy_sites
        .iter()
        .take(10)
        .map(|c| {
            format!(
                "{{\"site\": \"{}\", \"bytes\": {}, \"calls\": {}}}",
                c.name, c.bytes, c.calls
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let top3 = copy_sites
        .iter()
        .take(3)
        .map(|c| format!("\"{}\"", c.name))
        .collect::<Vec<_>>()
        .join(", ");
    let fabric_json = fabric
        .iter()
        .map(|(t, f)| {
            let mean = f.rtt_sum_us.checked_div(f.rtt_count).unwrap_or(0);
            format!(
                "{{\"t_us\": {t}, \"il_tx\": {}, \"il_rx\": {}, \"rexmits\": {}, \
                 \"rtt_mean_us\": {mean}, \"queue_depth_max\": {}, \"wheel_armed\": {}}}",
                f.il_tx, f.il_rx, f.rexmits, f.queue_depth_max, f.wheel_armed
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");

    let json = format!(
        "{{\n  \"bench\": \"netmon\",\n  \"vtime\": true,\n  \"seed\": 1993,\n  \
         \"cities\": {},\n  \"hosts_per_city\": {},\n  \
         \"sample_interval_us\": 250000,\n  \
         \"runs_byte_identical\": {runs_identical},\n  \
         \"series_byte_identical\": {series_identical},\n  \
         \"fabric_samples\": {},\n  \"wall_s\": {wall_s:.2},\n  \
         \"top_copy_sites\": [{top3}],\n  \
         \"series\": [\n    {series_json}\n  ],\n  \
         \"copy_sites\": [\n    {copy_json}\n  ],\n  \
         \"fabric\": [\n    {fabric_json}\n  ]\n}}\n",
        sc.cities,
        sc.hosts_per_city,
        fabric.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netmon.json");
    std::fs::write(path, json).expect("write BENCH_netmon.json");

    println!();
    println!("wrote BENCH_netmon.json and REPORT_netmon.txt");
    println!(
        "netdash: OK ({} fabric samples from {} gateways, {} copy sites, \
         two byte-identical runs, {wall_s:.1}s wall)",
        fabric.len(),
        live.len(),
        copy_sites.len()
    );
}
