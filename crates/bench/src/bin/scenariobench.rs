//! Adversity at paper scale, measured: a generated internet of a
//! thousand hosts survives a flash crowd, a flapping trunk, a
//! backbone partition, and a murdered gateway — twice, byte-for-byte
//! identically.
//!
//! The scenario engine (crates/scenario) builds the fabric from a
//! seeded script: four cities of 250 pooled machines each, bridged
//! Ethernets inside a city, Cyclone trunks between them, an exportfs
//! `/net` gateway at every border, and an ndb at the paper's 43k-line
//! scale. The script then injects the events on the shared timer
//! wheel under the virtual clock, so the whole ordeal is a pure
//! function of (script, seed): running it twice must produce the same
//! canonical report text down to the last byte, and the fabric-wide
//! frame-conservation audit (delivered == sent − dropped + duplicated
//! on every medium) must hold on both runs.
//!
//! A smaller two-city row runs first as a warm-up and a second data
//! point; the 4×250 walkthrough row is the gate. Results land in
//! `BENCH_scenario.json` at the repository root.
//!
//! Usage: `cargo run -p plan9-bench --release --bin scenariobench`

use plan9_scenario::Report;
use plan9_support::{time, vtime};

/// The EXPERIMENTS walkthrough: a flash crowd hits city 3 while the
/// backbone misbehaves. 4 cities × 250 hosts, ndb at paper scale.
const WALKTHROUGH: &str = "\
seed 1993
topology grid cities=4 hosts=250
at 2s flashcrowd city=3 dials=2000 size=512 window=1s
at 2500ms flap trunk=1-2 for 300ms
at 8s partition {0,1}|{2,3} heal 2s
at 12s kill gateway city=2
end 15s
";

/// The warm-up row: two cities, one partition, small ndb.
const WARMUP: &str = "\
seed 7
topology grid cities=2 hosts=50 ndb-lines=4000
at 100ms flashcrowd city=1 dials=200 size=64 window=500ms
at 1s partition {0}|{1} heal 500ms
end 3s
";

struct Row {
    name: &'static str,
    cities: usize,
    hosts_per_city: usize,
    /// Payload size per event index, for labeling the p99s.
    sizes: Vec<Option<usize>>,
    report: Report,
    wall_s: f64,
}

fn run_script(name: &'static str, text: &str) -> Row {
    let sc = plan9_scenario::dsl::parse(text).expect("bench script parses");
    let sizes = sc
        .events
        .iter()
        .map(|te| match te.ev {
            plan9_scenario::Event::FlashCrowd { size, .. } => Some(size),
            _ => None,
        })
        .collect();
    let wall0 = time::real_now();
    let report = plan9_scenario::run(&sc);
    let wall_s = wall0.elapsed().as_secs_f64();
    println!(
        "{name}: {} cities x {} hosts, dials ok={} failed={}, \
         violations={}, residual={}, virtual {:.1}s in {wall_s:.1}s wall",
        sc.cities,
        sc.hosts_per_city,
        report.dials_ok,
        report.dials_failed,
        report.conservation_violations,
        report.residual_conns,
        report.virtual_s,
    );
    Row {
        name,
        cities: sc.cities,
        hosts_per_city: sc.hosts_per_city,
        sizes,
        report,
        wall_s,
    }
}

fn row_json(r: &Row) -> String {
    // The engine keys p99s by event index; label them by the crowd's
    // payload size, the way the other benches do.
    let p99 = r
        .report
        .p99_us
        .iter()
        .map(|&(ev, us)| {
            let size = r.sizes.get(ev).copied().flatten().unwrap_or(0);
            format!("\"{size}\": {us}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"name\": \"{}\", \"cities\": {}, \"hosts_per_city\": {}, \
         \"hosts\": {}, \"dials_ok\": {}, \"dials_failed\": {}, \
         \"p99_us\": {{{p99}}}, \"conservation_violations\": {}, \
         \"residual_conns\": {}, \"virtual_s\": {:.1}, \"wall_s\": {:.2}}}",
        r.name,
        r.cities,
        r.hosts_per_city,
        r.cities * r.hosts_per_city,
        r.report.dials_ok,
        r.report.dials_failed,
        r.report.conservation_violations,
        r.report.residual_conns,
        r.report.virtual_s,
        r.wall_s,
    )
}

fn main() {
    println!("scenariobench — generated topologies under a deterministic adversarial script");

    let guard = vtime::enter();
    let wall0 = time::real_now();

    let warmup = run_script("warmup", WARMUP);
    assert!(warmup.report.clean(), "warm-up row violated fabric invariants");

    // The gate row, twice with the same seed: the virtual clock makes
    // the whole run a pure function of the script, so the canonical
    // reports must match byte for byte.
    let first = run_script("walkthrough", WALKTHROUGH);
    let second = run_script("walkthrough-rerun", WALKTHROUGH);
    let virtual_sweep_wall_s = wall0.elapsed().as_secs_f64();
    drop(guard);

    assert!(first.report.clean(), "walkthrough violated fabric invariants");
    assert!(second.report.clean(), "rerun violated fabric invariants");
    let identical = first.report.text == second.report.text;
    assert!(identical, "same-seed runs diverged:\n--- first\n{}--- second\n{}",
        first.report.text, second.report.text);
    let hosts = first.cities * first.hosts_per_city;
    assert!(hosts >= 1000, "the gate row must hold at least 1000 hosts");
    assert!(
        first.report.dials_ok >= 2000 && first.report.dials_failed == 0,
        "the flash crowd must land every dial"
    );

    let json = format!(
        "{{\n  \"bench\": \"scenario\",\n  \"vtime\": true,\n  \
         \"seed\": 1993,\n  \"runs_byte_identical\": {identical},\n  \
         \"virtual_sweep_wall_s\": {virtual_sweep_wall_s:.2},\n  \
         \"sweep\": [\n    {},\n    {}\n  ]\n}}\n",
        row_json(&second),
        row_json(&warmup),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, json).expect("write BENCH_scenario.json");
    println!();
    println!("wrote BENCH_scenario.json");
    println!(
        "scenariobench: OK ({hosts} hosts, {} dials, two byte-identical runs, \
         {virtual_sweep_wall_s:.1}s of wall clock)",
        first.report.dials_ok,
    );
}
