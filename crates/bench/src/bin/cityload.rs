//! Connection scale, measured: can the fabric carry a city's worth of
//! machines without a city's worth of threads?
//!
//! "The system networks were designed for the... CPU servers [that]
//! provide the computing muscle for hundreds of machines" — and the
//! thread-per-conversation seed kernel capped out long before that.
//! This bench drives the sharded worker pool and the shared timer
//! wheel through dial storms, listen/accept churn, and per-conversation
//! 9P traffic across 1k → 10k simulated machines, with the service
//! side of every conversation running pool-serviced (no parked thread
//! per connection: readiness hooks plus [`NineService`] inline
//! dispatch).
//!
//! Machines come in pairs on private Ethernet segments — the scaling
//! cost under test is conversations and timers, not broadcast-domain
//! crosstalk. Every pair's stacks are `IpStack::new_pooled`, so frame
//! delivery, protocol timers, and 9P service all ride the fixed pool;
//! the only per-driver threads are the eight storm drivers themselves.
//!
//! The sweep runs on the virtual clock (a 10k-machine fabric would
//! otherwise wait out real ack timers); a small real-clock smoke run
//! first proves the same code path works with wall-clock timers.
//! Results land in `BENCH_cityload.json` at the repository root.
//!
//! Usage: `cargo run -p plan9-bench --release --bin cityload`

use plan9_inet::il::{IlConn, TryRecv};
use plan9_inet::ip::{IpConfig, IpStack};
use plan9_netsim::ether::EtherSegment;
use plan9_netsim::profile::Profiles;
use plan9_ninep::client::NineClient;
use plan9_ninep::procfs::{MemFs, OpenMode, ProcFs};
use plan9_ninep::server::NineService;
use plan9_ninep::transport::{MsgSink, MsgSource};
use plan9_support::{pool, time, vtime};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Concurrent dial-storm drivers. Together with the pool's fixed
/// shards and the one wheel thread, the whole fabric runs on O(cores)
/// threads no matter how many machines the row simulates.
const DRIVERS: usize = 8;

/// Payload sizes cycled across conversations; each gets its own p99.
const SIZES: [usize; 3] = [64, 512, 4096];

const PORT: u16 = 17008;

/// An IL conversation as a delimited 9P transport.
#[derive(Clone)]
struct IlIo(Arc<IlConn>);

impl MsgSink for IlIo {
    fn sendmsg(&mut self, msg: &[u8]) -> plan9_ninep::Result<()> {
        self.0.send(msg)
    }
}

impl MsgSource for IlIo {
    fn recvmsg(&mut self) -> plan9_ninep::Result<Option<Vec<u8>>> {
        self.0.recv()
    }
}

/// One machine pair: a dialing client stack and a serving stack, both
/// pool-serviced, on a private segment that stays alive for the whole
/// row so the fabric really holds `machines` stations at once.
struct Pair {
    client: Arc<IpStack>,
    server: Arc<IpStack>,
    fs: Arc<dyn ProcFs>,
}

fn build_pair(idx: usize) -> Pair {
    let (hi, lo) = ((idx >> 8) as u8, (idx & 0xff) as u8);
    // The calibrated 10 Mbit/s profile paces every frame, so the
    // per-size p99s below reflect modeled wire time, not just the
    // host's compute speed.
    let seg = EtherSegment::new(Profiles::ether_calibrated());
    let client = IpStack::new_pooled(
        seg.attach([8, 0, 1, hi, lo, 1]),
        IpConfig::local(&format!("10.{hi}.{lo}.1")),
    );
    let server = IpStack::new_pooled(
        seg.attach([8, 0, 1, hi, lo, 2]),
        IpConfig::local(&format!("10.{hi}.{lo}.2")),
    );
    let fs = MemFs::new("city", "bootes");
    for size in SIZES {
        fs.put_file(&format!("/b{size}"), &vec![0x5au8; size])
            .expect("seed file");
    }
    Pair { client, server, fs }
}

/// Drains everything queued on a pool-serviced conversation into the
/// 9P service. Runs as a pool job on the conversation's shard, so
/// drains for one conversation serialize; weak handles keep the
/// readiness hook from pinning the conversation alive.
fn drain(svc: &Weak<NineService>, conn: &Weak<IlConn>) {
    let (Some(svc), Some(conn)) = (svc.upgrade(), conn.upgrade()) else {
        return;
    };
    loop {
        match conn.try_recv() {
            Ok(TryRecv::Msg(m)) => {
                // blocking-ok: this service wraps a MemFs, whose ProcFs
                // ops answer from memory; relay-backed services run on
                // dedicated kprocs, never on pool shards
                if svc.input(&m).is_err() {
                    conn.close();
                    return;
                }
            }
            Ok(TryRecv::Empty) => return,
            Ok(TryRecv::Eof) | Err(_) => {
                // blocking-ok: MemFs-backed service, as above — clunks
                // answer from memory
                svc.hangup();
                return;
            }
        }
    }
}

/// One full conversation: listen, dial, accept, serve 9P from the
/// pool, read one payload, hang up. Returns the read's latency.
fn converse(pair: &Pair, size: usize) -> Duration {
    let listener = pair
        .server
        .il_module()
        .listen(&pair.server, PORT)
        .expect("listen");
    let conn = pair
        .client
        .il_module()
        .connect(&pair.client, pair.server.addr(), PORT)
        .expect("dial");
    let srv = listener
        .accept_timeout(Duration::from_secs(30))
        .expect("accept");
    drop(listener); // listener churn: every conversation re-announces

    // The service side: no thread. Readiness submits a drain job onto
    // the conversation's pool shard. The hook may fire from under the
    // connection lock, so it must only enqueue, never drain inline.
    let svc = Arc::new(NineService::new(
        Arc::clone(&pair.fs),
        Box::new(IlIo(Arc::clone(&srv))),
    ));
    let wsvc = Arc::downgrade(&svc);
    let wconn = Arc::downgrade(&srv);
    let key = srv.conv_id();
    srv.set_rx_notify(move || {
        let (wsvc, wconn) = (wsvc.clone(), wconn.clone());
        let _ = pool::submit(key, move || drain(&wsvc, &wconn));
    });
    // Catch anything that landed before the hook was registered.
    drain(&Arc::downgrade(&svc), &Arc::downgrade(&srv));

    let io = IlIo(Arc::clone(&conn));
    let client = NineClient::new(Box::new(io.clone()), Box::new(io));
    let (fid, _) = client.attach("city", "").expect("attach");
    client.walk(fid, &format!("b{size}")).expect("walk");
    client.open(fid, OpenMode::READ).expect("open");
    let t0 = time::now();
    let d = client.read(fid, 0, size).expect("read");
    let lat = time::now().saturating_duration_since(t0);
    assert_eq!(d.len(), size, "short read");
    conn.close();
    lat
}

/// What one storm driver brings home: per-size read latencies (µs).
type DriverTake = Vec<(usize, Vec<u64>)>;

struct Row {
    machines: usize,
    conversations: usize,
    rpcs: usize,
    virtual_s: f64,
    wall_s: f64,
    lat_us: Vec<(usize, Vec<u64>)>,
}

/// Runs one fabric row: `machines / 2` live pairs, churned through
/// `convs_per_pair` conversations each by the storm drivers.
fn run_row(machines: usize, convs_per_pair: usize) -> Row {
    let wall0 = time::real_now();
    let row = vtime::kproc("city-row", move || {
        let pairs_total = machines / 2;
        let t0 = time::now();
        let drivers: Vec<_> = (0..DRIVERS)
            .map(|d| {
                vtime::kproc(&format!("storm-{d}"), move || {
                    // This driver's slice of the fabric, built and held
                    // live for the whole row.
                    let mine: Vec<Pair> = (0..pairs_total)
                        .filter(|i| i % DRIVERS == d)
                        .map(build_pair)
                        .collect();
                    let mut take: DriverTake =
                        SIZES.iter().map(|&s| (s, Vec::new())).collect();
                    for c in 0..convs_per_pair {
                        for (i, pair) in mine.iter().enumerate() {
                            let size = SIZES[(c + i) % SIZES.len()];
                            let lat = converse(pair, size);
                            take.iter_mut()
                                .find(|(s, _)| *s == size)
                                .expect("size bucket")
                                .1
                                .push(lat.as_micros() as u64);
                        }
                    }
                    (mine.len() * convs_per_pair, take)
                })
                // checked: spawn fails only on OS thread exhaustion
                .expect("spawn storm driver")
            })
            .collect();
        let mut conversations = 0usize;
        let mut lat_us: Vec<(usize, Vec<u64>)> =
            SIZES.iter().map(|&s| (s, Vec::new())).collect();
        for d in drivers {
            let (convs, take) = d.join().expect("storm driver");
            conversations += convs;
            for (size, mut v) in take {
                lat_us
                    .iter_mut()
                    .find(|(s, _)| *s == size)
                    .expect("size bucket")
                    .1
                    .append(&mut v);
            }
        }
        let virtual_s = time::now().saturating_duration_since(t0).as_secs_f64();
        (conversations, virtual_s, lat_us)
    })
    // checked: spawn fails only on OS thread exhaustion
    .expect("spawn city row");
    let (conversations, virtual_s, lat_us) = row.join().expect("city row");
    Row {
        machines,
        conversations,
        // attach + walk + open + read per conversation
        rpcs: conversations * 4,
        virtual_s,
        wall_s: wall0.elapsed().as_secs_f64(),
        lat_us,
    }
}

fn p99(v: &mut [u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[(v.len() - 1) * 99 / 100]
}

fn row_json(r: &mut Row) -> String {
    let p99s: Vec<String> = r
        .lat_us
        .iter_mut()
        .map(|(size, v)| format!("\"{size}\": {}", p99(v)))
        .collect();
    format!(
        "{{\"machines\": {}, \"conversations\": {}, \"rpcs\": {}, \
         \"virtual_s\": {:.4}, \"wall_s\": {:.2}, \"rpc_per_virtual_s\": {:.0}, \
         \"p99_us\": {{{}}}}}",
        r.machines,
        r.conversations,
        r.rpcs,
        r.virtual_s,
        r.wall_s,
        r.rpcs as f64 / r.virtual_s.max(1e-9),
        p99s.join(", "),
    )
}

fn print_row(r: &Row, clock: &str) {
    println!(
        "{clock:>7} | {:>7} machines {:>7} convs {:>8} rpcs | virtual {:>8.3}s wall {:>6.2}s",
        r.machines, r.conversations, r.rpcs, r.virtual_s, r.wall_s
    );
}

fn main() {
    println!(
        "cityload — dial storms and 9P churn over the worker pool \
         ({DRIVERS} drivers, {} pool shards)",
        pool::NSHARDS
    );

    // Real-clock smoke: the identical fabric code with wall timers.
    let mut smoke = run_row(96, 1);
    print_row(&smoke, "real");
    assert!(smoke.conversations == 48, "smoke fabric lost conversations");

    // Drain the smoke fabric before switching clocks: close
    // handshakes still in flight hold armed wheel timers, and a
    // conversation must not straddle a clock transition.
    while plan9_support::wheel::armed() > 0 || pool::backlog() > 0 {
        time::sleep(Duration::from_millis(1));
    }

    // The scale sweep, on the discrete-event clock.
    let sweep_plan = [(1000usize, 4usize), (4000, 4), (10_000, 10)];
    let guard = vtime::enter();
    let wall0 = time::real_now();
    let mut rows: Vec<Row> = sweep_plan
        .iter()
        .map(|&(machines, convs)| {
            let r = run_row(machines, convs);
            print_row(&r, "virtual");
            r
        })
        .collect();
    let virtual_sweep_wall_s = wall0.elapsed().as_secs_f64();
    drop(guard);

    let (top_machines, top_convs) = {
        let last = rows.last().expect("sweep rows");
        (last.machines, last.conversations)
    };
    assert!(
        top_machines == 10_000 && top_convs >= 50_000,
        "the top row must be a 10k-machine, 50k-conversation fabric"
    );

    let json = format!(
        "{{\n  \"bench\": \"cityload\",\n  \"vtime\": true,\n  \
         \"drivers\": {DRIVERS}, \"pool_shards\": {},\n  \
         \"real_smoke\": {},\n  \
         \"virtual_sweep_wall_s\": {virtual_sweep_wall_s:.2},\n  \
         \"sweep\": [\n    {}\n  ]\n}}\n",
        pool::NSHARDS,
        row_json(&mut smoke),
        rows.iter_mut()
            .map(row_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cityload.json");
    std::fs::write(path, json).expect("write BENCH_cityload.json");
    println!();
    println!("wrote BENCH_cityload.json");
    println!(
        "cityload: OK (10k machines, {} conversations, {} service threads, \
         virtual sweep {virtual_sweep_wall_s:.1}s of wall clock)",
        top_convs,
        DRIVERS + pool::NSHARDS + 1,
    );
}
