//! Reproduces the paper's code-size measurements against this
//! repository:
//!
//! * §2: "of 25,000 lines of kernel code, 12,500 are network and
//!   protocol related" — the fraction of the workspace that is network
//!   and protocol code.
//! * §3: "The entire protocol [IL] is 847 lines of code, compared to
//!   2200 lines for TCP" — the relative sizes of our `il.rs` and
//!   `tcp.rs`.
//!
//! Usage: `cargo run -p plan9-bench --bin loc`

use plan9_bench::loc::{count_dir, count_file, Counts};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates = [
        ("ninep", true),
        ("streams", true),
        ("netsim", true),
        ("inet", true),
        ("datakit", true),
        ("ndb", true),
        ("cs", true),
        ("netlog", true),
        ("core", true),
        ("exportfs", true),
        ("bench", false),
    ];
    println!("{:<12} {:>8} {:>8} {:>10}  network?", "crate", "total", "code", "non-test");
    println!("{}", "-".repeat(52));
    let mut all = Counts::default();
    let mut net = Counts::default();
    for (name, is_net) in crates {
        let c = count_dir(&root.join("crates").join(name).join("src"));
        println!(
            "{name:<12} {:>8} {:>8} {:>10}  {}",
            c.total,
            c.code,
            c.non_test_code,
            if is_net { "yes" } else { "no (harness)" }
        );
        all += c;
        if is_net {
            net += c;
        }
    }
    println!("{}", "-".repeat(52));
    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "workspace", all.total, all.code, all.non_test_code
    );
    let frac = net.non_test_code as f64 / all.non_test_code as f64;
    println!();
    println!(
        "network/protocol fraction: {:.0}% of non-test code (paper: 12,500/25,000 = 50% of the kernel)",
        frac * 100.0
    );

    // §3: IL vs TCP.
    let il = count_file(&root.join("crates/inet/src/il.rs")).expect("il.rs");
    let tcp = count_file(&root.join("crates/inet/src/tcp.rs")).expect("tcp.rs");
    println!();
    println!("IL  (il.rs):  {:>5} non-test code lines", il.non_test_code);
    println!("TCP (tcp.rs): {:>5} non-test code lines", tcp.non_test_code);
    println!(
        "TCP/IL ratio: {:.2}x (paper: 2200/847 = {:.2}x)",
        tcp.non_test_code as f64 / il.non_test_code as f64,
        2200.0 / 847.0
    );
    assert!(
        il.non_test_code < tcp.non_test_code,
        "IL must stay smaller than TCP, as in the paper"
    );
}
