//! Reproduces §4.1's database-scale behavior: a 43,000-line global file
//! ("our global file ... has 43,000 lines"), hashed attribute search
//! against linear scan, and the stale-hash fallback.
//!
//! Usage: `cargo run -p plan9-bench --release --bin ndbscale`

use plan9_ndb::db::Db;
use plan9_ndb::gen::generate_global;
use plan9_ndb::hash::build_hash;
use plan9_support::rng::SmallRng;
use plan9_support::time;
use std::io::Write as _;

fn main() {
    let lines = 43_000;
    let (text, names) = generate_global(lines, 1993);
    println!(
        "generated global db: {} lines, {} systems",
        text.lines().count(),
        names.len()
    );
    let dir = std::env::temp_dir().join(format!("plan9-ndbscale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let master = dir.join("global");
    std::fs::File::create(&master)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .expect("write global");

    let mut rng = SmallRng::seed_from_u64(7);
    let mut probe: Vec<&String> = names.iter().collect();
    rng.shuffle(&mut probe);
    let probes: Vec<&String> = probe.into_iter().take(200).collect();

    // Linear scans (no hash file yet).
    let db = Db::open(std::slice::from_ref(&master)).expect("open db");
    let start = time::real_now();
    for name in &probes {
        let hits = db.query("sys", name);
        assert!(!hits.is_empty());
    }
    let linear = start.elapsed();
    println!(
        "linear scan:  {:>9.3} ms / lookup  ({} lookups in {:?})",
        linear.as_secs_f64() * 1000.0 / probes.len() as f64,
        probes.len(),
        linear
    );

    // Build the hash file, then repeat.
    let start = time::real_now();
    let n = build_hash(&master, "sys").expect("build hash");
    println!("built hash for sys: {n} values in {:?}", start.elapsed());
    let db = Db::open(std::slice::from_ref(&master)).expect("reopen db");
    let start = time::real_now();
    for name in &probes {
        let hits = db.query("sys", name);
        assert!(!hits.is_empty());
    }
    let hashed = start.elapsed();
    println!(
        "hashed:       {:>9.3} ms / lookup  (speedup {:.0}x)",
        hashed.as_secs_f64() * 1000.0 / probes.len() as f64,
        linear.as_secs_f64() / hashed.as_secs_f64().max(1e-9)
    );
    assert!(hashed < linear, "hashing must beat scanning at 43k lines");

    // "Searches for attributes that aren't hashed ... still work, they
    // just take longer."
    let dom = db
        .query_one("sys", probes[0])
        .and_then(|e| e.get("dom").map(String::from))
        .expect("dom attr");
    let start = time::real_now();
    let hits = db.query("dom", &dom);
    let unhashed = start.elapsed();
    println!(
        "unhashed attribute (dom): {} hit(s) by scan in {:?}",
        hits.len(),
        unhashed
    );
    assert_eq!(hits.len(), 1);

    // "Every hash file contains the modification time of its master file
    // so we can avoid using an out-of-date hash table."
    // The staleness check compares host-filesystem mtimes, which tick in
    // real seconds — so this wait must be a real one.
    // checked: real sleep on purpose, host mtime granularity
    std::thread::sleep(std::time::Duration::from_millis(1100));
    let mut updated = text.clone();
    updated.push_str("sys=freshhost\n\tip=135.1.2.3\n");
    std::fs::write(&master, &updated).expect("update master");
    let db = Db::open(std::slice::from_ref(&master)).expect("reopen");
    let hits = db.query("sys", "freshhost");
    println!(
        "stale hash detected, fell back to scan: freshhost found = {}",
        hits.len() == 1
    );
    assert_eq!(hits.len(), 1);
    let scans = db.scans.load(std::sync::atomic::Ordering::Relaxed);
    assert!(scans > 0, "stale hash must force a scan");
    let _ = std::fs::remove_dir_all(&dir);
    println!("ndbscale: OK");
}
