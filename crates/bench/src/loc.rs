//! Line counting for the paper's code-size claims.
//!
//! §2: "of 25,000 lines of kernel code, 12,500 are network and protocol
//! related." §3: "The entire protocol is 847 lines of code, compared to
//! 2200 lines for TCP." The `loc` binary reproduces both measurements
//! against this repository.

use std::path::{Path, PathBuf};

/// Line counts for one source file.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counts {
    /// All lines.
    pub total: usize,
    /// Non-blank, non-comment lines.
    pub code: usize,
    /// Code lines outside `#[cfg(test)]` modules.
    pub non_test_code: usize,
}

impl std::ops::AddAssign for Counts {
    fn add_assign(&mut self, rhs: Counts) {
        self.total += rhs.total;
        self.code += rhs.code;
        self.non_test_code += rhs.non_test_code;
    }
}

/// Counts one Rust source text.
pub fn count_source(text: &str) -> Counts {
    let mut c = Counts::default();
    let mut in_tests = false;
    let mut test_depth = 0usize;
    let mut pending_cfg_test = false;
    for line in text.lines() {
        c.total += 1;
        let trimmed = line.trim();
        let is_code = !trimmed.is_empty()
            && !trimmed.starts_with("//")
            && !trimmed.starts_with("/*")
            && !trimmed.starts_with('*');
        if is_code {
            c.code += 1;
        }
        // Track `#[cfg(test)] mod tests { ... }` blocks by brace depth.
        if !in_tests {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                continue;
            }
            if pending_cfg_test {
                if trimmed.starts_with("mod ") || trimmed.starts_with("pub(crate) mod ") {
                    in_tests = true;
                    test_depth = 0;
                    for ch in trimmed.chars() {
                        match ch {
                            '{' => test_depth += 1,
                            '}' => test_depth = test_depth.saturating_sub(1),
                            _ => {}
                        }
                    }
                    continue;
                }
                pending_cfg_test = false;
            }
            if is_code {
                c.non_test_code += 1;
            }
        } else {
            for ch in trimmed.chars() {
                match ch {
                    '{' => test_depth += 1,
                    '}' => test_depth = test_depth.saturating_sub(1),
                    _ => {}
                }
            }
            if test_depth == 0 {
                in_tests = false;
                pending_cfg_test = false;
            }
        }
    }
    c
}

/// Counts a file on disk.
pub fn count_file(path: &Path) -> std::io::Result<Counts> {
    Ok(count_source(&std::fs::read_to_string(path)?))
}

/// Recursively finds `.rs` files under a directory.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            out.extend(rust_files(&p));
        } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    out.sort();
    out
}

/// Sums counts for every Rust file under a directory.
pub fn count_dir(dir: &Path) -> Counts {
    let mut total = Counts::default();
    for f in rust_files(dir) {
        if let Ok(c) = count_file(&f) {
            total += c;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_excluded_from_code() {
        let c = count_source("// comment\n\nlet x = 1;\n");
        assert_eq!(c.total, 3);
        assert_eq!(c.code, 1);
        assert_eq!(c.non_test_code, 1);
    }

    #[test]
    fn test_modules_excluded_from_non_test() {
        let src = "\
fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(true);
    }
}
";
        let c = count_source(src);
        assert_eq!(c.non_test_code, 1, "{c:?}");
        assert!(c.code > c.non_test_code);
    }

    #[test]
    fn nested_braces_tracked() {
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() {
        if true {
            let _ = 1;
        }
    }
}
fn after() {}
";
        let c = count_source(src);
        assert_eq!(c.non_test_code, 1);
    }
}
